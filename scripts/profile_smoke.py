#!/usr/bin/env python
"""CI smoke for the observability layer (stage 8 of ``scripts/ci.sh``).

Drives the instrumentation end-to-end through the real CLI and daemon:

1. ``repro partition --profile --trace-out`` on a generated instance
   must exit cleanly, print the aggregated profile (spans + FM metric
   series), and write a trace file;
2. the emitted trace must pass the Chrome trace-event schema gate
   (:func:`repro.obs.validate_chrome_trace`) and contain the per-level
   pipeline spans (``gp`` > ``gp.cycle`` > ``coarsen`` / ``gp.initial``
   / ``uncoarsen``) plus FM counters under ``otherData.repro``;
3. ``repro profile --trace`` must validate and summarise the same file;
4. a live ``repro serve`` daemon must report library-level series
   (``fm.*`` / ``cache.*`` / ``pool.*``) in the ``library`` section of
   ``/metrics`` after one compute.

Run directly: ``PYTHONPATH=src python scripts/profile_smoke.py``.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, _SRC)

from repro.obs import validate_chrome_trace

GRAPH_N, GRAPH_M, GRAPH_SEED = 800, 2200, 23
K, BMAX, RMAX = 4, 4000.0, 14000.0


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=600,
        env={
            **os.environ,
            "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
        },
    )


def check(proc: subprocess.CompletedProcess, what: str) -> None:
    if proc.returncode != 0:
        raise RuntimeError(
            f"{what} exited with {proc.returncode}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )


def span_names(span: dict, acc: set) -> set:
    acc.add(span["name"])
    for child in span.get("children", []):
        span_names(child, acc)
    return acc


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-profile-smoke-") as tmp:
        graph = str(Path(tmp, "g.json"))
        trace = str(Path(tmp, "trace.json"))

        print("profile_smoke: generating instance ...")
        check(run_cli("generate", "--n", str(GRAPH_N), "--m", str(GRAPH_M),
                      "--seed", str(GRAPH_SEED), "--out", graph),
              "repro generate")

        print("profile_smoke: partition --profile --trace-out ...")
        proc = run_cli(
            "partition", "--input", graph, "--k", str(K),
            "--bmax", str(BMAX), "--rmax", str(RMAX),
            "--profile", "--trace-out", trace,
        )
        check(proc, "repro partition --profile")
        assert "spans (aggregated by call path):" in proc.stdout, (
            f"no profile summary in output:\n{proc.stdout}")
        assert "fm." in proc.stdout, "no FM metric series in the profile"

        print("profile_smoke: validating the emitted trace ...")
        doc = json.loads(Path(trace).read_text())
        n_events = validate_chrome_trace(doc)
        assert n_events > 0, "trace has no events"
        names: set = set()
        for root in doc["otherData"]["repro"]["spans"]:
            span_names(root, names)
        for expected in ("gp", "gp.cycle", "coarsen", "coarsen.level",
                         "gp.initial", "uncoarsen", "gp.refine_level"):
            assert expected in names, (
                f"span {expected!r} missing from the trace "
                f"(got {sorted(names)})")
        metric_names = set(doc["otherData"]["repro"].get("metrics", {}))
        assert any(m.startswith("fm.") for m in metric_names), (
            f"no fm.* series in the trace metrics (got {sorted(metric_names)})")
        print(f"profile_smoke: {n_events} events, "
              f"{len(names)} span kinds, {len(metric_names)} metric series")

        print("profile_smoke: repro profile --trace ...")
        proc = run_cli("profile", "--trace", trace)
        check(proc, "repro profile")
        assert "trace events" in proc.stdout
        assert "gp" in proc.stdout

        print("profile_smoke: live daemon /metrics library series ...")
        from repro.graph.generators import random_process_network
        from repro.serve.client import ServeClient

        g = random_process_network(GRAPH_N, GRAPH_M, seed=GRAPH_SEED)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={
                **os.environ,
                "PYTHONPATH": _SRC + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            },
        )
        try:
            line = daemon.stdout.readline().strip()
            if "listening on http://" not in line:
                rest = daemon.stdout.read()
                raise RuntimeError(f"unexpected serve banner: {line!r}\n{rest}")
            client = ServeClient(line.split("listening on ")[1], timeout=600)
            client.partition(g, k=K, bmax=BMAX, rmax=RMAX, seed=1)
            metrics = client.metrics()
            library = metrics.get("library")
            assert library, f"/metrics has no library section: {metrics.keys()}"
            for prefix in ("fm.", "cache.", "pool."):
                assert any(name.startswith(prefix) for name in library), (
                    f"no {prefix}* series in /metrics library section "
                    f"(got {sorted(library)})")
            client.shutdown()
            daemon.communicate(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()

    print("profile_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
