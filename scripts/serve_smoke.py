#!/usr/bin/env python
"""CI smoke for ``repro serve`` (stage 7 of ``scripts/ci.sh``).

Drives a *real* daemon subprocess (``python -m repro serve``) through
the acceptance story of the serving subsystem:

1. served results are **bit-identical** to the direct library call
   (``partition_graph``), at any ``n_jobs``;
2. two concurrent identical requests on a cold cache collapse to **one
   compute** (single-flight) and return identical payloads;
3. a daemon **restart** on the same cache directory answers from the
   persistent store (``cached: true``), again bit-identically;
4. ``POST /shutdown`` exits the process cleanly (exit code 0).

Run directly: ``PYTHONPATH=src python scripts/serve_smoke.py``.
"""

import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, _SRC)

import numpy as np

from repro.core.api import partition_graph
from repro.graph.generators import random_process_network
from repro.serve.client import ServeClient

# big enough that the compute takes long enough for two requests to
# genuinely overlap on a cold cache (single-flight, not luck)
GRAPH_N, GRAPH_M, GRAPH_SEED = 400, 1100, 17
K, BMAX, RMAX, SEED = 4, 6000.0, 12000.0, 3


class Daemon:
    """A ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, cache_dir: str, jobs: int = 2):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--cache-dir", cache_dir,
                "--jobs", str(jobs),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
            },
        )
        # first stdout line is machine-parseable: "... on http://H:P"
        line = self.proc.stdout.readline().strip()
        if "listening on http://" not in line:
            rest = self.proc.stdout.read()
            raise RuntimeError(f"unexpected serve banner: {line!r}\n{rest}")
        self.url = line.split("listening on ")[1]
        self.client = ServeClient(self.url, timeout=600)

    def shutdown_and_wait(self) -> int:
        self.client.shutdown()
        try:
            out, _ = self.proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise RuntimeError("daemon did not exit after /shutdown")
        if "shut down cleanly" not in out:
            raise RuntimeError(f"missing clean-shutdown line in:\n{out}")
        return self.proc.returncode

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()


def main() -> int:
    g = random_process_network(GRAPH_N, GRAPH_M, seed=GRAPH_SEED)
    digest = g.content_digest()

    print("serve_smoke: direct reference runs (n_jobs=1 and 2) ...")
    direct = partition_graph(g, K, bmax=BMAX, rmax=RMAX, seed=SEED)
    direct2 = partition_graph(g, K, bmax=BMAX, rmax=RMAX, seed=SEED,
                              n_jobs=2)
    np.testing.assert_array_equal(direct.assign, direct2.assign)
    assert direct.metrics == direct2.metrics, "n_jobs changed the result"

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as cache:
        daemon = Daemon(cache)
        try:
            print(f"serve_smoke: daemon up at {daemon.url}")
            assert daemon.client.health()["status"] == "ok"

            print("serve_smoke: two concurrent identical requests ...")
            outs, errs = [], []

            def call():
                try:
                    outs.append(daemon.client.partition(
                        g, k=K, bmax=BMAX, rmax=RMAX, seed=SEED))
                except Exception as exc:  # surfaced below
                    errs.append(exc)

            threads = [threading.Thread(target=call) for _ in range(2)]
            threads[0].start()
            time.sleep(0.25)  # the leader is parsing/computing by now
            threads[1].start()
            for t in threads:
                t.join(600)
            if errs:
                raise errs[0]
            assert len(outs) == 2, "a request never returned"

            m = daemon.client.metrics()
            assert m["computes"] == 1, (
                f"expected exactly one compute, got {m['computes']}")
            assert m["single_flight"]["shared"] >= 1, (
                "second request did not share the in-flight compute")
            assert outs[0]["assign"] == outs[1]["assign"]
            assert outs[0]["metrics"] == outs[1]["metrics"]
            assert sorted(o["deduped"] for o in outs) == [False, True]

            print("serve_smoke: served == direct (bit-identical) ...")
            for out in outs:
                np.testing.assert_array_equal(out["assign"], direct.assign)
                assert out["cut"] == direct.metrics.cut
                assert out["feasible"] == direct.feasible

            print("serve_smoke: clean shutdown ...")
            rc = daemon.shutdown_and_wait()
            assert rc == 0, f"daemon exited with {rc}"
        finally:
            daemon.kill()

        print("serve_smoke: restart on the same cache dir ...")
        daemon = Daemon(cache)
        try:
            # digest-only: the graph is never re-shipped, the result must
            # come from the persistent store
            out = daemon.client.partition(
                digest=digest, k=K, bmax=BMAX, rmax=RMAX, seed=SEED)
            assert out["cached"] is True, "restart did not hit the disk cache"
            np.testing.assert_array_equal(out["assign"], direct.assign)
            assert out["cut"] == direct.metrics.cut
            m = daemon.client.metrics()
            assert m["computes"] == 0, "restart recomputed a cached result"
            rc = daemon.shutdown_and_wait()
            assert rc == 0, f"daemon exited with {rc}"
        finally:
            daemon.kill()

    print("serve_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
