#!/usr/bin/env bash
# CI entry point — no Makefile/tox required.
#
# Stage 1 is the tier-1 contract verbatim (fast tests + everything else);
# stage 2 re-runs the perf smoke tests alone so timing regressions are
# reported separately from functional failures and can't hide behind -x.
#
# Usage: scripts/ci.sh [extra pytest args passed to stage 1]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== stage 1: tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== stage 2: perf smoke (slow marker) =="
python -m pytest -q -m slow

echo "CI OK"
