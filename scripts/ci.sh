#!/usr/bin/env bash
# CI entry point — no Makefile/tox required.
#
# Stage 1 is the tier-1 contract verbatim (fast tests + everything else);
# stage 2 re-runs the perf smoke tests alone (graph engine + hypergraph Φ
# engine, both slow-marked) so timing regressions are reported separately
# from functional failures and can't hide behind -x; stage 3 re-runs the
# hypergraph subsystem suite explicitly — structure, Φ invariants and the
# 2-pin differential corpus — so a connectivity-engine regression is named
# in the CI log even when stage 1 already caught it; stage 4 re-runs the
# parallel-execution differential suite with real worker processes
# (REPRO_TEST_JOBS=2: parallel==serial bit-identity, cache behaviour,
# vectorized-vs-legacy coarsening) so a determinism break is named even
# when stage 1 already caught it; stage 5 runs the evolutionary-search
# suite with real workers plus the X12 equal-budget smoke benchmark
# (evolve vs restart-only GP vs portfolio on LU + multicast synthetics;
# the gated asserts fail the stage if the EA ever loses to GP, and the
# artefact lands in benchmarks/artifacts/x12_evolve_quality.txt);
# stage 6 runs the vector-resource engine suites with real workers
# (REPRO_TEST_JOBS=2 for the mr_gp/evolve serial==parallel bit-identity
# tests) — the seam FM differential against the frozen
# benchmarks/_legacy_multires.py corpus and the (k, R) load-matrix
# invariants — plus the X13 engine-unification smoke benchmark (gated:
# FM speedup, feasibility parity, evolve never losing to restart-only
# vector GP; artefact benchmarks/artifacts/x13_multires_engine.txt);
# stage 7 runs the serving-subsystem suites (disk cache + serve) and the
# live-daemon smoke (scripts/serve_smoke.py): a real `repro serve`
# subprocess on an ephemeral port must collapse two concurrent identical
# requests into one compute (single-flight), serve bit-identically to the
# direct partition_graph call, answer digest-only from the persistent
# store after a restart, and shut down cleanly on POST /shutdown;
# stage 8 runs the observability suite and the profiling smoke
# (scripts/profile_smoke.py): a profiled `repro partition --profile
# --trace-out` must emit a schema-valid Chrome trace with the per-level
# pipeline spans, `repro profile` must summarise it, and a live daemon's
# /metrics must expose the library-level fm./cache./pool. series;
# stage 9 runs the flow-refinement suites with real workers (the
# max-flow solver pinned against brute-force min-cut enumeration, the
# corridor/never-worse/cross-engine invariants, and the fm+flow
# serial==parallel bit-identity) plus the X14 equal-budget smoke
# benchmark (gated: fm+flow never worse than fm anywhere, strictly
# better somewhere; artefact benchmarks/artifacts/x14_flow_quality.txt);
# stage 10 exercises the benchmark telemetry gate end to end: `repro
# bench --suite smoke` must write a schema-valid BENCH JSON artifact,
# comparing the run against its own artifact must pass, and comparing
# against a copy with a +25% injected runtime regression must exit 3
# (the gate actually trips, not just runs);
# stage 11 runs the million-node-scale track (`repro bench --suite
# x15_scale`): the sparse connectivity store at k=64 — the dense/sparse
# footprint ratio is gated (a shrinking ratio past the band exits 3),
# exercised exactly like stage 10 with a perturbed-copy trip check.
#
# Usage: scripts/ci.sh [extra pytest args passed to stage 1]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== stage 1: tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== stage 2: perf smoke (slow marker) =="
python -m pytest -q -m slow

echo "== stage 3: hypergraph subsystem suite =="
python -m pytest -q \
  tests/test_hypergraph.py \
  tests/test_hyper_refine_invariants.py \
  tests/test_hyper_differential.py

echo "== stage 4: parallel differential suite (n_jobs=2) =="
REPRO_TEST_JOBS=2 python -m pytest -q \
  tests/test_parallel_portfolio.py \
  tests/test_coarsen_vectorized.py

echo "== stage 5: evolutionary search suite + equal-budget smoke =="
REPRO_TEST_JOBS=2 python -m pytest -q \
  tests/test_evolve.py \
  tests/test_rng_properties.py \
  tests/test_cli_parity.py
python -m pytest -q benchmarks/bench_evolve.py

echo "== stage 6: vector-resource engine suite (n_jobs=2) =="
REPRO_TEST_JOBS=2 python -m pytest -q \
  tests/test_multires.py \
  tests/test_multires_differential.py \
  tests/test_multires_invariants.py
python -m pytest -q benchmarks/bench_multires_engine.py

echo "== stage 7: serving subsystem + live-daemon smoke =="
python -m pytest -q \
  tests/test_diskcache.py \
  tests/test_serve.py
python scripts/serve_smoke.py

echo "== stage 8: observability suite + profiling smoke =="
REPRO_TEST_JOBS=2 python -m pytest -q tests/test_obs.py
python scripts/profile_smoke.py

echo "== stage 9: flow refinement suite + equal-budget smoke =="
REPRO_TEST_JOBS=2 python -m pytest -q \
  tests/test_flow_core.py \
  tests/test_flow_refine.py
python -m pytest -q benchmarks/bench_flow_refine.py

echo "== stage 10: benchmark telemetry + regression gate =="
python -m repro bench --suite smoke
python - <<'EOF'
import json, sys

from repro.obs.benchdb import load_bench

# re-validate the artifact the bench run just wrote, then derive a
# perturbed copy: every timing metric 25% slower must trip the 15% band
doc = load_bench("benchmarks/artifacts/BENCH_smoke.json")
bad = json.loads(json.dumps(doc))
slowed = 0
for m in bad["metrics"]:
    if m["unit"] == "s":
        m["value"] *= 1.25
        slowed += 1
if not slowed:
    sys.exit("smoke suite has no timing metrics to perturb")
with open("benchmarks/artifacts/BENCH_smoke_perturbed.json", "w") as fh:
    json.dump(bad, fh)
print(f"validated BENCH_smoke.json; perturbed {slowed} timing metrics")
EOF
# identical comparison must pass ...
python -m repro bench --compare benchmarks/artifacts/BENCH_smoke.json \
  --current benchmarks/artifacts/BENCH_smoke.json
# ... and the injected regression must trip the gate (exit 3)
if python -m repro bench --compare benchmarks/artifacts/BENCH_smoke.json \
     --current benchmarks/artifacts/BENCH_smoke_perturbed.json; then
  echo "regression gate FAILED to trip on a 25% injected slowdown" >&2
  exit 1
else
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "regression gate exited $rc, expected 3" >&2
    exit 1
  fi
fi
rm -f benchmarks/artifacts/BENCH_smoke_perturbed.json
echo "regression gate trips correctly"

echo "== stage 11: million-node-scale track (sparse conn engine) =="
python -m repro bench --suite x15_scale
python - <<'PYEOF'
import json, sys

from repro.obs.benchdb import load_bench

# validate the artifact, check the footprint ratio actually reports the
# sparse win, then derive a perturbed copy: timings 25% slower AND the
# dense/sparse ratio 30% smaller must both trip the gate
doc = load_bench("benchmarks/artifacts/BENCH_x15_scale.json")
by_name = {m["name"]: m for m in doc["metrics"]}
ratio = by_name["x15.conn_ratio"]["value"]
if ratio < 4.0:
    sys.exit(f"sparse store only {ratio:.1f}x below dense at k=64 "
             "(expected well above 4x on the bounded-degree instance)")
bad = json.loads(json.dumps(doc))
slowed = 0
for m in bad["metrics"]:
    if m["unit"] == "s":
        m["value"] *= 1.25
        slowed += 1
    if m["name"] == "x15.conn_ratio":
        m["value"] *= 0.70
if not slowed:
    sys.exit("x15_scale suite has no timing metrics to perturb")
with open("benchmarks/artifacts/BENCH_x15_scale_perturbed.json", "w") as fh:
    json.dump(bad, fh)
print(f"validated BENCH_x15_scale.json (ratio {ratio:.1f}x); "
      f"perturbed {slowed} timing metrics + the footprint ratio")
PYEOF
# identical comparison must pass ...
python -m repro bench --compare benchmarks/artifacts/BENCH_x15_scale.json \
  --current benchmarks/artifacts/BENCH_x15_scale.json
# ... and the injected regression must trip the gate (exit 3)
if python -m repro bench --compare benchmarks/artifacts/BENCH_x15_scale.json \
     --current benchmarks/artifacts/BENCH_x15_scale_perturbed.json; then
  echo "x15 regression gate FAILED to trip on the injected regression" >&2
  exit 1
else
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "x15 regression gate exited $rc, expected 3" >&2
    exit 1
  fi
fi
rm -f benchmarks/artifacts/BENCH_x15_scale_perturbed.json
echo "x15 scale gate trips correctly"

echo "CI OK"
