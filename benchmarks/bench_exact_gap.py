"""Study X5 — optimality gap vs the exact constrained optimum (extension).

The paper's intro concedes exact methods exist for small instances.  The
branch-and-bound solver certifies how far GP's heuristic cut is from the
true constrained minimum on 11-node instances.
"""

from conftest import emit

from repro.bench.suites import exact_gap_suite
from repro.util.tables import format_table


def test_exact_gap(benchmark):
    rows = benchmark.pedantic(exact_gap_suite, rounds=1, iterations=1)
    assert rows, "no feasible exact instances generated — regenerate seeds"
    table = format_table(
        ["study", "params", "algo", "cut", "time(s)", "max_res", "max_bw", "feasible"],
        [r.as_list() for r in rows],
        title="X5 exact-vs-GP optimality gap (constrained)",
    )
    emit("x5_exact_gap.txt", table)
    by_seed: dict[int, dict[str, object]] = {}
    for r in rows:
        by_seed.setdefault(r.params["seed"], {})[r.algorithm] = r
    for seed, pair in by_seed.items():
        exact, gp = pair["exact"], pair["GP"]
        assert exact.feasible
        assert exact.cut <= gp.cut + 1e-9, (
            f"seed {seed}: heuristic beat the proven optimum — B&B bug"
        )
