"""Study X1 — scaling sweep (extension; see DESIGN.md).

The paper motivates "graphs with potentially thousands nodes" but evaluates
on 12.  This sweep measures GP vs the METIS-like baseline vs spectral on
PN-shaped graphs from 50 to 400 nodes under tight constraints, reporting
cut, runtime and feasibility.
"""

from conftest import emit

from repro.bench.suites import scaling_suite
from repro.util.tables import format_table

SIZES = (50, 100, 200, 400)


def test_scaling_sweep(benchmark):
    rows = benchmark.pedantic(
        scaling_suite, kwargs={"sizes": SIZES}, rounds=1, iterations=1
    )
    table = format_table(
        ["study", "params", "algo", "cut", "time(s)", "max_res", "max_bw", "feasible"],
        [r.as_list() for r in rows],
        title="X1 scaling sweep (GP vs MLKP vs spectral)",
    )
    emit("x1_scaling.txt", table)
    # headline shape: GP never reports worse feasibility than the baselines
    # on any size, and MLKP stays the fastest
    by_size = {}
    for r in rows:
        by_size.setdefault(r.params["n"], {})[r.algorithm] = r
    for n, algos in by_size.items():
        assert algos["MLKP"].runtime <= algos["GP"].runtime, (
            f"n={n}: the unconstrained baseline should be faster than GP"
        )
        assert algos["GP"].feasible or not algos["MLKP"].feasible, (
            f"n={n}: GP must not be dominated on feasibility"
        )
