"""Study X6 — end-to-end polyhedral pipeline (extension).

SANLP -> exact dependence analysis -> PPN -> KPN simulation (sustained
bandwidths) -> constrained partitioning -> multi-FPGA mapping validation,
on the gallery applications.  This is the full workflow the paper's title
promises; the 12-node tables only exercise its back half.
"""

from conftest import emit

from repro.core.api import map_to_fpgas, partition_ppn
from repro.kpn import simulate_ppn
from repro.polyhedral import derive_ppn
from repro.polyhedral.gallery import fir_filter, jacobi1d, sobel, split_merge
from repro.util.tables import format_table

APPS = {
    "fir_filter(8 taps)": lambda: fir_filter(8, 128),
    "jacobi1d(T=12,N=48)": lambda: jacobi1d(12, 48),
    "sobel(24x24)": lambda: sobel(24, 24),
    "split_merge(6)": lambda: split_merge(6, 120),
}
K = 2


def run_pipeline():
    rows = []
    for name, builder in APPS.items():
        ppn = derive_ppn(builder())
        sim = simulate_ppn(ppn)
        total_res = sum(p.resources for p in ppn.processes)
        rmax = 0.7 * total_res
        g, _names0 = ppn.to_wgraph()
        bmax = 0.8 * g.total_edge_weight
        result, graph, names = partition_ppn(
            ppn, K, bmax=bmax, rmax=rmax, method="gp", seed=0
        )
        mapping = map_to_fpgas(graph, result, bmax=bmax, rmax=rmax, names=names)
        rows.append(
            [
                name,
                ppn.n_processes,
                ppn.n_channels,
                sim.cycles,
                result.metrics.cut,
                result.feasible,
                mapping.is_valid,
            ]
        )
    return rows


def test_ppn_pipeline(benchmark):
    rows = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    table = format_table(
        ["application", "procs", "channels", "sim cycles", "cut",
         "gp feasible", "mapping valid"],
        rows,
        title="X6 end-to-end polyhedral pipeline (K=2 FPGAs)",
    )
    emit("x6_ppn_pipeline.txt", table)
    for row in rows:
        assert row[5], f"{row[0]}: GP infeasible on a loose instance"
        assert row[6], f"{row[0]}: mapping validation failed"
