"""Study X12 — memetic search vs restart-only search at equal budget.

Every instance is partitioned three ways with the same seed:

* **GP** — the paper's restart-only search, its cycle cap set to the
  evolutionary run's total evaluation budget (so restart-only search gets
  at least as many coarsen/partition/refine attempts as the EA gets
  evaluations — a deliberately generous baseline).
* **portfolio** — the four-config GP portfolio (graph instances; it is
  the EA's own seeding, so the delta isolates what the evolutionary loop
  adds on top).
* **evolve** — :func:`~repro.evolve.evolve_partition` under
  ``max_evals`` equal to the GP cycle cap.

All three are compared under the goodness order (violation first, cut
last) on the instance's native objective — edge cut for graphs, (λ−1)
connectivity for hypergraphs, where the restart-only baseline is
:func:`~repro.hypergraph.partition.hyper_partition` with the same cycle
cap.  Measured wall-clock is reported per run so the "equal budget" claim
is auditable in the artefact.

Artefact: ``benchmarks/artifacts/x12_evolve_quality.txt``.

Acceptance (gated below): the EA is **never worse** than restart-only GP
anywhere in the corpus and **strictly better on ≥ 2 instances**.
"""

import dataclasses

from conftest import emit

from repro.evolve import EvolveConfig, evolve_partition
from repro.graph.generators import multicast_network, random_process_network
from repro.hypergraph.partition import HyperConfig, hyper_partition
from repro.kpn.traffic import ppn_to_mapped_graph
from repro.partition.goodness import goodness_key
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.portfolio import portfolio_partition
from repro.polyhedral.gallery import fir_filter, lu
from repro.polyhedral.ppn import derive_ppn
from repro.util.tables import format_table

SEED = 2015
EA_CFG = EvolveConfig(pop_size=6, generations=8, offspring_per_gen=3,
                      max_evals=30, seed_max_cycles=2)
#: restart-only search gets the EA's full evaluation budget in cycles
GP_CYCLES = EA_CFG.max_evals


def _constraints(total_node_weight, k, slack=1.15, bmax=float("inf")):
    return ConstraintSpec(rmax=float(round(slack * total_node_weight / k)),
                          bmax=bmax)


def _fmt_key(key):
    v, bv, rv, cut = key
    return f"viol={v:g} cut={cut:g}"


def _graph_instance_rows(name, g, k, cons, rows, keys):
    gp = gp_partition(
        g, k, cons, GPConfig(max_cycles=GP_CYCLES), seed=SEED
    )
    pf = portfolio_partition(g, k, cons, seed=SEED, cache=False)
    ea = evolve_partition(g, k, cons, EA_CFG, seed=SEED, cache=False)
    k_gp = goodness_key(gp.metrics, cons)
    k_pf = goodness_key(pf.metrics, cons)
    k_ea = goodness_key(ea.metrics, cons)
    rows.append([
        name, g.n, k,
        f"{gp.metrics.cut:g}", f"{pf.metrics.cut:g}", f"{ea.metrics.cut:g}",
        _fmt_key(k_ea),
        f"{gp.runtime:.2f}", f"{pf.runtime:.2f}", f"{ea.runtime:.2f}",
        ea.info["evals"],
    ])
    keys[name] = (k_gp, k_pf, k_ea)


def _hyper_instance_rows(name, hg, k, cons, rows, keys):
    gp = hyper_partition(
        hg, k, cons, config=HyperConfig(max_cycles=GP_CYCLES), seed=SEED
    )
    ea = evolve_partition(hg, k, cons, EA_CFG, seed=SEED, cache=False)
    k_gp = goodness_key(gp.metrics, cons)
    k_ea = goodness_key(ea.metrics, cons)
    rows.append([
        name, hg.n, k,
        f"{gp.metrics.cut:g}", "-", f"{ea.metrics.cut:g}",
        _fmt_key(k_ea),
        f"{gp.runtime:.2f}", "-", f"{ea.runtime:.2f}",
        ea.info["evals"],
    ])
    keys[name] = (k_gp, None, k_ea)


def test_evolve_vs_restart_only(benchmark, artifacts_dir):
    rows = []
    keys = {}

    def sweep():
        # gallery PPNs through the paper pipeline (2-pin mapping graph)
        for name, prog, k, bmax in [
            ("lu(10)", lu(10), 2, float("inf")),
            ("fir(8,64)", fir_filter(8, 64), 3, float("inf")),
        ]:
            ppn = derive_ppn(prog)
            g, _ = ppn_to_mapped_graph(ppn, mode="tokens")
            cons = _constraints(g.total_node_weight, k, bmax=bmax)
            _graph_instance_rows(name, g, k, cons, rows, keys)

        # synthetic process networks, cut-dominated and bandwidth-tight
        for n, m, k, bmax, gseed in [
            (96, 220, 4, float("inf"), 11),
            (120, 280, 4, 260.0, 12),
            (150, 360, 5, float("inf"), 13),
        ]:
            g = random_process_network(n, m, seed=gseed)
            cons = _constraints(g.total_node_weight, k, bmax=bmax)
            _graph_instance_rows(f"rand(n={n},k={k})", g, k, cons, rows, keys)

        # multicast synthetics under the (λ-1) connectivity objective
        for n, fanout, k in [(90, 6, 3), (120, 10, 4)]:
            hg = multicast_network(n, seed=fanout, fanout=fanout)
            cons = _constraints(hg.total_node_weight, k)
            _hyper_instance_rows(
                f"multicast(n={n},f={fanout})", hg, k, cons, rows, keys
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["instance", "n", "k",
         "GP cut", "portfolio cut", "evolve cut", "evolve quality",
         "GP s", "pf s", "EA s", "EA evals"],
        rows,
        title=(
            f"X12 memetic search vs restart-only at equal budget "
            f"(GP max_cycles = EA max_evals = {GP_CYCLES}, seed {SEED}; "
            f"cut = edge cut on graphs, (λ-1) connectivity on hypergraphs)"
        ),
    )
    table += (
        "\nNote: restart-only GP stops at its first feasible cycle by design"
        "\n(feasibility-driven search), so it may consume less wall-clock than"
        "\nthe budget it was offered; the EA spends the same budget improving"
        "\ncut past feasibility — that gap is exactly what this study measures."
        "\nMeasured per-run seconds are printed so the claim is auditable.\n"
    )
    emit("x12_evolve_quality.txt", table)

    # acceptance: never worse than restart-only GP under the goodness
    # order, strictly better on at least two instances
    worse = {n: (kg, ke) for n, (kg, _kp, ke) in keys.items() if ke > kg}
    assert not worse, f"evolve worse than GP on: {worse}"
    strict = [n for n, (kg, _kp, ke) in keys.items() if ke < kg]
    assert len(strict) >= 2, (
        f"evolve strictly better on only {strict} "
        f"(keys: { {n: v for n, v in keys.items()} })"
    )
    # and it never loses to its own seeding portfolio either
    pf_worse = {
        n: (kp, ke)
        for n, (_kg, kp, ke) in keys.items()
        if kp is not None and ke > kp
    }
    assert not pf_worse, f"evolve worse than portfolio on: {pf_worse}"
