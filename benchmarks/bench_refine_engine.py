"""Study X9 — vectorized refinement engine vs. the pre-refactor path.

Times the frozen pre-refactor implementations (``_legacy_refine``, per-node
Python loops over ``PartitionState``) against the vectorized
``RefinementState`` engine on PN-shaped generator graphs, 1k → 50k nodes:

* **uncoarsen** — the MLKP per-level refinement step (rebalance pass +
  greedy k-way boundary refinement) from a skewed, projected-like start.
  This is the acceptance workload: at 10k nodes / k=8 the engine must be
  ≥5× faster, with byte-identical output (asserted, not assumed).
* **ckfm** — the paper's constrained FM pass (2 passes from a random
  start under tight Bmax/Rmax).  The gain here is smaller — the pass is
  bounded by the same abort heuristic in both implementations — but the
  output is identical and the engine never loses.
* a new-engine-only scaling sweep up to 50k nodes (the legacy path is
  quadratic on the rebalance stage and is not run past ``LEGACY_MAX_N``).

Artefact: ``benchmarks/artifacts/x9_refine_engine.txt``.
"""

import time

import numpy as np
from conftest import emit, emit_bench

from _legacy_refine import (
    legacy_constrained_kway_fm,
    legacy_greedy_kway_refine,
    legacy_rebalance_pass,
)
from repro.graph import random_process_network
from repro.partition.kway_refine import (
    constrained_kway_fm,
    greedy_kway_refine,
    rebalance_pass,
)
from repro.obs.benchdb import BenchMetric
from repro.partition.metrics import ConstraintSpec
from repro.partition.refine_state import RefinementState
from repro.util.tables import format_table

K = 8
SIZES = (1_000, 10_000)
SCALING_SIZES = (1_000, 10_000, 50_000)
LEGACY_MAX_N = 10_000
SKEW = np.array([3, 2, 1.5, 1, 1, 0.5, 0.5, 0.5]) / 10


def _graph(n, seed=0):
    return random_process_network(n, int(2.5 * n), seed=seed)


def _uncoarsen_inputs(g, n):
    rng = np.random.default_rng(1)
    a = rng.choice(K, size=n, p=SKEW)
    cap = 1.03 * g.total_node_weight / K
    return a, cap


def _ckfm_inputs(g, n):
    a = np.random.default_rng(0).integers(0, K, size=n)
    # integer-valued constraints: exact old-vs-new parity is only guaranteed
    # when every weight and cap is integer-valued (see docs/refinement.md) —
    # a fractional bmax can flip near-tie move ordering by ~1 ulp
    cons = ConstraintSpec(
        bmax=float(round(0.02 * g.total_edge_weight)),
        rmax=float(round(1.1 * g.total_node_weight / K)),
    )
    return a, cons


def _run_uncoarsen_new(g, a, cap):
    state = RefinementState(g, a, K)
    out = rebalance_pass(g, a, K, cap, state=state)
    return greedy_kway_refine(
        g, out, K, max_part_weight=cap, seed=0, state=state
    )


def _run_uncoarsen_legacy(g, a, cap):
    out = legacy_rebalance_pass(g, a, K, cap, seed=0)
    return legacy_greedy_kway_refine(g, out, K, max_part_weight=cap, seed=0)


def _timed(fn, *args, repeats=3):
    """Best-of-*repeats* wall clock; output kept from the first run
    (every timed path is deterministic, so repeats return the same
    array).  The artifact box is a busy single-core container and the
    smallest cells are ~40 ms — min-of-N keeps scheduler/GC noise out
    of the 15% band ``repro bench --compare`` gates on.  Array inputs
    are re-copied per repeat: the frozen legacy reference mutates its
    assignment argument in place."""
    out = None
    best = float("inf")
    for i in range(repeats):
        fresh = [a.copy() if isinstance(a, np.ndarray) else a for a in args]
        start = time.perf_counter()
        result = fn(*fresh)
        elapsed = time.perf_counter() - start
        if i == 0:
            out = result
        best = min(best, elapsed)
    return out, best


def test_refine_engine_speedup(benchmark):
    rows = []
    bench = []
    speedup_10k = None

    def sweep():
        nonlocal speedup_10k
        for n in SIZES:
            g = _graph(n)

            a, cap = _uncoarsen_inputs(g, n)
            new_out, t_new = _timed(_run_uncoarsen_new, g, a, cap)
            old_out, t_old = _timed(_run_uncoarsen_legacy, g, a, cap)
            assert np.array_equal(new_out, old_out), (
                f"uncoarsen n={n}: engine output diverged from reference"
            )
            ratio = t_old / t_new
            rows.append(
                ["uncoarsen", n, K, round(t_old, 3), round(t_new, 3),
                 f"{ratio:.1f}x", "identical"]
            )
            p = {"stage": "uncoarsen", "n": n, "k": K}
            bench.append(BenchMetric("x9.engine", t_new, "s", p))
            bench.append(BenchMetric("x9.legacy", t_old, "s", p))
            bench.append(BenchMetric("x9.speedup", ratio, "", p,
                                     better="higher"))
            if n == 10_000:
                speedup_10k = ratio

            a, cons = _ckfm_inputs(g, n)
            new_out, t_new = _timed(
                constrained_kway_fm, g, a, K, cons, 2, 0
            )
            old_out, t_old = _timed(
                legacy_constrained_kway_fm, g, a, K, cons, 2, 0
            )
            assert np.array_equal(new_out, old_out), (
                f"ckfm n={n}: engine output diverged from reference"
            )
            rows.append(
                ["ckfm", n, K, round(t_old, 3), round(t_new, 3),
                 f"{t_old / t_new:.1f}x", "identical"]
            )
            p = {"stage": "ckfm", "n": n, "k": K}
            bench.append(BenchMetric("x9.engine", t_new, "s", p))
            bench.append(BenchMetric("x9.legacy", t_old, "s", p))
            bench.append(BenchMetric("x9.speedup", t_old / t_new, "", p,
                                     better="higher"))

        for n in SCALING_SIZES:
            g = _graph(n)
            a, cap = _uncoarsen_inputs(g, n)
            _, t_new = _timed(_run_uncoarsen_new, g, a, cap)
            legacy_cell = "skipped (quadratic)" if n > LEGACY_MAX_N else "-"
            rows.append(
                ["uncoarsen/scale", n, K, legacy_cell, round(t_new, 3), "-", "-"]
            )
            bench.append(BenchMetric(
                "x9.engine", t_new, "s",
                {"stage": "uncoarsen/scale", "n": n, "k": K},
            ))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["stage", "n", "k", "legacy(s)", "engine(s)", "speedup", "output"],
        rows,
        title="X9 vectorized refinement engine vs pre-refactor path",
    )
    emit("x9_refine_engine.txt", table)
    emit_bench("x9_refine_engine", bench)

    # acceptance: ≥5× on the 10k-node k=8 refinement path
    assert speedup_10k is not None and speedup_10k >= 5.0, (
        f"10k-node refinement speedup {speedup_10k:.1f}x is below the 5x bar"
    )
