"""Table "EXPERIMENT I" (paper Section V.A).

12 nodes, 33 edges, K=4, Bmax=16, Rmax=165.  Published shape: METIS violates
*both* constraints (cut 58, res 172, bw 20); GP meets both at a slightly
larger cut (70, res 163, bw 16) and is slower.
"""

from conftest import emit

from repro.bench.experiments import paper_experiment_table, run_paper_experiment


def test_table1_gp(benchmark):
    outcome = benchmark(run_paper_experiment, 1)
    checks = outcome.reproduces_paper_shape()
    assert checks["gp_feasible"], "GP must meet both constraints (Table I)"
    assert checks["mlkp_violates_some_constraint"], (
        "the METIS-like baseline must violate a constraint (Table I shows both)"
    )
    assert checks["cut_difference_same_sign"], (
        "paper Table I has GP cut >= METIS cut"
    )
    assert outcome.mlkp.metrics.bandwidth_violation > 0
    assert outcome.mlkp.metrics.resource_violation > 0
    emit("table1.txt", paper_experiment_table(1))
