"""Study X2 — coarsening matching ablation (extension; see DESIGN.md).

Section IV.A races three matching heuristics per level and keeps the best.
This ablation runs each heuristic alone versus the best-of-three default.
"""

from conftest import emit

from repro.bench.suites import matching_ablation
from repro.util.tables import format_table


def test_matching_ablation(benchmark):
    rows = benchmark.pedantic(matching_ablation, rounds=1, iterations=1)
    table = format_table(
        ["study", "params", "variant", "cut", "time(s)", "max_res", "max_bw", "feasible"],
        [r.as_list() for r in rows],
        title="X2 matching-strategy ablation (GP coarsening)",
    )
    emit("x2_matching_ablation.txt", table)
    # best-of-3 must be feasible wherever any single strategy is
    by_seed: dict[int, dict[str, bool]] = {}
    for r in rows:
        by_seed.setdefault(r.params["seed"], {})[r.algorithm] = r.feasible
    for seed, variants in by_seed.items():
        if any(v for k, v in variants.items() if k != "best-of-3"):
            assert variants["best-of-3"], (
                f"seed {seed}: best-of-3 infeasible while a single matching "
                f"succeeded — the racing logic regressed"
            )
