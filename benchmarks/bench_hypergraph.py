"""Study X10 — connectivity metric vs the 2-pin edge-cut model.

For every instance two partitions are produced at **equal constraints**
(balanced ``Rmax``, unconstrained ``Bmax``) and both are priced on the
hypergraph's (λ−1) connectivity metric — the traffic a multicast actually
generates, one copy per extra FPGA:

* **gallery PPNs** — the paper pipeline as-is: GP on the token-weighted
  2-pin mapping graph (``ppn_to_mapped_graph``, where a broadcast pays
  once per consumer) vs the hypergraph pipeline
  (``PPN.to_hypergraph`` + ``hyper_partition``).  LU's pivot-row broadcast
  and FIR's tap fan-out are the multicast-bearing cases; chain and
  split/merge are the control group where the models coincide and must tie.
* **synthetic sweeps** — ``multicast_network`` over rising broadcast
  fan-out; the 2-pin side partitions the star expansion (one full-weight
  edge per consumer) of the same hypergraph.

Artefact: ``benchmarks/artifacts/x10_hypergraph_traffic.txt``.
"""

from conftest import emit

from repro.graph import multicast_network
from repro.hypergraph import evaluate_hyper_partition, hyper_partition
from repro.kpn.traffic import ppn_to_mapped_graph
from repro.partition.gp import gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.polyhedral.gallery import chain, fir_filter, lu, split_merge
from repro.polyhedral.ppn import derive_ppn
from repro.util.tables import format_table


def _constraints(total_node_weight: float, k: int) -> ConstraintSpec:
    return ConstraintSpec(rmax=float(round(1.15 * total_node_weight / k)))


def _compare(name, g, hg, k, seed=0):
    """Partition both models at equal constraints; price both on hg."""
    cons = _constraints(hg.total_node_weight, k)
    res_g = gp_partition(g, k, cons, seed=seed)
    res_h = hyper_partition(hg, k, cons, seed=seed)
    priced_g = evaluate_hyper_partition(hg, res_g.assign, k, cons)
    priced_h = evaluate_hyper_partition(hg, res_h.assign, k, cons)
    n_multi = sum(1 for e in range(hg.n_nets) if hg.net_size(e) > 2)
    saved = (
        (priced_g.cut - priced_h.cut) / priced_g.cut * 100.0
        if priced_g.cut
        else 0.0
    )
    row = [
        name, hg.n, hg.n_nets, n_multi, k,
        priced_g.cut, priced_h.cut, f"{saved:.1f}%",
        "yes" if (priced_g.feasible and priced_h.feasible) else "no",
    ]
    return row, priced_g.cut, priced_h.cut


def test_hypergraph_vs_edge_cut_traffic(benchmark, artifacts_dir):
    rows = []
    multicast_wins = {}

    def sweep():
        # gallery PPNs through the two real pipelines
        for name, prog, k in [
            ("lu(10)", lu(10), 2),
            ("fir(8,64)", fir_filter(8, 64), 3),
            ("fir(6,48)", fir_filter(6, 48), 3),
            ("chain(12,64)", chain(12, 64), 3),
            ("split_merge(6,60)", split_merge(6, 60), 3),
        ]:
            ppn = derive_ppn(prog)
            hg, _ = ppn.to_hypergraph()
            g, _ = ppn_to_mapped_graph(ppn, mode="tokens")
            row, cut_g, cut_h = _compare(name, g, hg, k)
            rows.append(row)
            if any(hg.net_size(e) > 2 for e in range(hg.n_nets)):
                multicast_wins[name] = (cut_g, cut_h)

        # synthetic multicast-heavy sweeps: fan-out is the lever
        for fanout in (4, 8, 12):
            hg = multicast_network(
                120, seed=fanout, fanout=fanout, n_broadcasts=24
            )
            g = hg.star_expansion()
            row, cut_g, cut_h = _compare(f"synthetic f={fanout}", g, hg, 4)
            rows.append(row)
            multicast_wins[f"synthetic f={fanout}"] = (cut_g, cut_h)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["instance", "n", "nets", "multicast", "k",
         "edge-cut model traffic", "hypergraph model traffic",
         "saved", "both feasible"],
        rows,
        title=(
            "X10 modeled inter-partition traffic ((λ-1) connectivity) at "
            "equal constraints: partitioned via 2-pin edge-cut vs hypergraph"
        ),
    )
    emit("x10_hypergraph_traffic.txt", table)

    # acceptance: on multicast-heavy gallery PPNs (LU pivot broadcast, FIR
    # tap fan-out) the hypergraph model yields strictly lower modeled
    # inter-partition traffic than the 2-pin edge-cut model
    for name in ("lu(10)", "fir(8,64)"):
        cut_g, cut_h = multicast_wins[name]
        assert cut_h < cut_g, (
            f"{name}: hypergraph model traffic {cut_h} not below "
            f"edge-cut model traffic {cut_g}"
        )
    # and it never loses on any multicast-bearing instance
    assert all(h <= g for g, h in multicast_wins.values()), multicast_wins
