"""Shared helpers for the benchmark drivers.

Every driver regenerates one paper table or figure (or one extended study)
and prints the measured-vs-paper comparison; artefacts land in
``benchmarks/artifacts/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    return ARTIFACTS


def emit(name: str, text: str) -> None:
    """Print a study's table and persist it under artifacts/."""
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    (ARTIFACTS / name).write_text(text)
    print(f"\n{text}")


def emit_bench(suite: str, metrics, seed: int = 0) -> None:
    """Persist a driver's structured metrics as a BENCH JSON artifact.

    The machine-readable companion of :func:`emit`: the same study run
    lands as ``artifacts/BENCH_<suite>.json`` in the schema
    ``repro bench --compare`` gates on (see ``docs/observability.md``),
    so driver runs accumulate a revision-to-revision trajectory instead
    of only a text table.
    """
    from repro.obs.benchdb import BenchResult, write_bench

    path = ARTIFACTS / f"BENCH_{suite}.json"
    write_bench(path, BenchResult(suite=suite, metrics=list(metrics),
                                  seed=seed))
    print(f"wrote {path}")
