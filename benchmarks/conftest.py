"""Shared helpers for the benchmark drivers.

Every driver regenerates one paper table or figure (or one extended study)
and prints the measured-vs-paper comparison; artefacts land in
``benchmarks/artifacts/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    return ARTIFACTS


def emit(name: str, text: str) -> None:
    """Print a study's table and persist it under artifacts/."""
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    (ARTIFACTS / name).write_text(text)
    print(f"\n{text}")
