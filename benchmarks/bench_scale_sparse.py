"""Study X15b — million-node acceptance run for the sparse connectivity store.

The dense ``(k, n)`` connectivity matrices cost ``16·k·n`` bytes — a
flat 1.024 GB at n=1M, k=64 before a single move — and were the blocker
to million-node instances.  This driver is the acceptance workload for
the sparse store (``docs/refinement.md``): one full ``partition_graph``
call on a bounded-degree million-node network at k=64, with memory
instrumentation on, asserting that

* ``conn_format="auto"`` picked the sparse store at every level whose
  footprint matters (``k·n`` is 16× the auto threshold at the top);
* the ``mem.alloc_bytes{site=refine_state.conn}`` gauge at the finest
  level is **≥8× below** the dense figure;
* the run actually completes and satisfies its replication constraint.

``matchings=("hem",)`` is deliberate: the kmeans matching builds an
``O(n²)``-shaped distance tensor during Lloyd iterations and is not a
million-node algorithm; heavy-edge matching is linear.  The locality
threshold (200k) sits far below 1M, so this run also exercises the
uncontracted-node seeded FM path end to end.

Not part of ``scripts/ci.sh`` (several minutes); the 80k-node
``x15_scale`` suite gates the same ratio in CI.

Artefact: ``benchmarks/artifacts/x15_scale_1m.txt`` +
``BENCH_x15_scale_1m.json``.
"""

import time

import numpy as np
from conftest import emit, emit_bench

import repro.obs as _obs
from repro.bench.suites import bounded_degree_graph
from repro.core import partition_graph
from repro.obs.benchdb import BenchMetric
from repro.partition.conn_store import AUTO_SPARSE_CELLS
from repro.partition.gp import GPConfig
from repro.util.tables import format_table

N = 1_000_000
K = 64
DENSE_BYTES = 16 * K * N  # what the (k, n) matrices would have cost


def test_million_node_sparse_store(benchmark):
    assert K * N > AUTO_SPARSE_CELLS  # "auto" must resolve to sparse here

    t0 = time.perf_counter()
    g = bounded_degree_graph(N)
    t_build = time.perf_counter() - t0
    rmax = float(np.ceil(1.05 * g.total_node_weight / K))
    cfg = GPConfig(
        max_cycles=1, restarts=2, level_candidates=1, matchings=("hem",)
    )

    def run():
        # gauges-only memory mode: the conn-store/RSS gauges publish,
        # tracemalloc stays off (per-allocation tracing multiplies a
        # minutes-long single-core run several-fold)
        with _obs.capture(memory="gauges") as cap:
            start = time.perf_counter()
            res = partition_graph(
                g, K, rmax=rmax, method="gp", config=cfg, seed=0
            )
            return cap, res, time.perf_counter() - start

    cap, res, t_gp = benchmark.pedantic(run, rounds=1, iterations=1)

    gauges = cap.metrics.get("gauges", {}).get("mem.alloc_bytes", {})
    conn = [
        (dict(key), value)
        for key, value in gauges.items()
        if dict(key).get("site") == "refine_state.conn"
    ]
    assert conn, "no refine_state.conn gauge was published"
    top = [(lab, v) for lab, v in conn if lab.get("n") == N]
    assert top, "no conn gauge at the finest (1M-node) level"
    assert {lab.get("format") for lab, _ in top} == {"sparse"}, (
        "auto format selection did not pick sparse at the finest level"
    )
    sparse_bytes = max(v for _, v in top)
    ratio = DENSE_BYTES / sparse_bytes
    rss_peak = max(
        cap.metrics.get("gauges", {}).get("mem.rss_peak_bytes", {}).values(),
        default=0.0,
    )

    rows = [
        ["nodes", f"{N:,}"],
        ["edges", f"{g.m:,}"],
        ["k", K],
        ["graph build (s)", round(t_build, 1)],
        ["partition_graph (s)", round(t_gp, 1)],
        ["cut", res.metrics.cut],
        ["feasible", res.feasible],
        ["dense conn would be (MB)", round(DENSE_BYTES / 1e6, 1)],
        ["sparse conn gauge (MB)", round(sparse_bytes / 1e6, 1)],
        ["dense/sparse ratio", f"{ratio:.1f}x"],
        ["rss peak (MB)", round(rss_peak / 1e6, 1)],
    ]
    table = format_table(
        ["quantity", "value"],
        rows,
        title="X15b million-node sparse connectivity store",
    )
    emit("x15_scale_1m.txt", table)

    p = {"n": N, "k": K}
    emit_bench("x15_scale_1m", [
        BenchMetric("x15b.graph_build.runtime", t_build, "s", p),
        BenchMetric("x15b.partition.runtime", t_gp, "s", p),
        BenchMetric("x15b.partition.cut", float(res.metrics.cut), "", p),
        BenchMetric(
            "x15b.partition.feasible", float(res.feasible), "", p,
            better="higher",
        ),
        BenchMetric("x15b.conn_bytes.sparse", float(sparse_bytes), "bytes", p),
        BenchMetric(
            "x15b.conn_bytes.dense_would_be", float(DENSE_BYTES), "bytes", p
        ),
        BenchMetric("x15b.conn_ratio", ratio, "", p, better="higher"),
        BenchMetric("x15b.rss_peak", float(rss_peak), "bytes", p),
    ])

    # acceptance: the finest-level conn footprint is ≥8× below dense
    assert ratio >= 8.0, (
        f"sparse conn store is only {ratio:.1f}x below the dense figure "
        f"({sparse_bytes / 1e6:.1f} MB vs {DENSE_BYTES / 1e6:.1f} MB)"
    )
    assert res.feasible, "million-node run did not satisfy its rmax"
