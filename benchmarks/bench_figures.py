"""Figures 2-13 (paper Section V).

Regenerates all twelve figures — four views per experiment (plain graph,
weighted graph, GP partitioning, METIS-like partitioning) — as ``.dot``,
``.svg`` and ``.txt`` artefacts, byte-deterministically.
"""

from repro.bench.figures import FIGURE_BASE, figure_artifacts, write_figure_artifacts


def test_figures_all_experiments(benchmark, artifacts_dir):
    paths = benchmark(write_figure_artifacts, artifacts_dir)
    # 3 experiments x 4 figures x 3 formats
    assert len(paths) == 36
    names = {p.name for p in paths}
    for exp, base in FIGURE_BASE.items():
        for off, tag in enumerate(
            ("unpartitioned_plain", "unpartitioned_weighted",
             "gp_partitioning", "mlkp_partitioning")
        ):
            for suffix in (".dot", ".svg", ".txt"):
                assert f"fig{base + off:02d}_{tag}{suffix}" in names


def test_figures_deterministic(benchmark):
    arts = benchmark(figure_artifacts, 1)

    again = figure_artifacts(1)
    for a, b in zip(arts, again):
        assert a.dot == b.dot
        assert a.svg == b.svg
        assert a.text == b.text


def test_figure_semantics(benchmark):
    """The partitioned views must visually encode the published verdicts."""
    arts = benchmark(figure_artifacts, 1)
    gp_view = next(a for a in arts if a.name == "gp_partitioning")
    mlkp_view = next(a for a in arts if a.name == "mlkp_partitioning")
    assert "met" in gp_view.text and "VIOLATED" not in gp_view.text
    assert "VIOLATED" in mlkp_view.text
    # dashed edges mark partition crossings in the DOT output
    assert "style=dashed" in gp_view.dot
