"""Study X14 — flow refinement on top of FM at equal search budget.

Every instance is partitioned twice with the same seed and the same
cycle budget, differing only in the ``refine=`` knob:

* **fm** — the native pipeline (constrained FM local search everywhere).
* **fm+flow** — the same pipeline plus the guarded corridor max-flow
  stage (:mod:`repro.partition.flow_refine`) on the race winner.

Graph instances (gallery PPNs through the paper pipeline, plus random
process networks) run through :func:`~repro.partition.gp.gp_partition`;
multicast hypergraphs run :func:`~repro.hypergraph.partition.hyper_partition`
and then the flow stage on the Φ engine directly (``hyper_partition`` has
no pluggable refine stage — the comparison is the same pipeline with and
without the extra flow polish).  Both arms are compared under the
goodness order (violation first, cut last) on the instance's native
objective.

Artefact: ``benchmarks/artifacts/x14_flow_quality.txt``.

Acceptance (gated below): ``fm+flow`` is **never worse** than ``fm``
anywhere in the corpus — the flow stage's acceptance guard makes this a
hard invariant of the implementation, so any violation is a bug, not a
tuning regression.
"""

from conftest import emit, emit_bench

from repro.graph.generators import multicast_network, random_process_network
from repro.obs.benchdb import BenchMetric
from repro.hypergraph.partition import HyperConfig, hyper_partition
from repro.hypergraph.refine_state import HyperRefinementState
from repro.kpn.traffic import ppn_to_mapped_graph
from repro.partition.flow_refine import run_flow_refine
from repro.partition.goodness import goodness_key
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.polyhedral.gallery import fir_filter, lu
from repro.polyhedral.ppn import derive_ppn
from repro.util.tables import format_table

SEED = 2015
CYCLES = 6


def _constraints(total_node_weight, k, slack=1.15, bmax=float("inf")):
    return ConstraintSpec(rmax=float(round(slack * total_node_weight / k)),
                          bmax=bmax)


def _fmt_key(key):
    v = key[0]
    cut = key[-1]
    return f"viol={v:g} cut={cut:g}"


def _graph_rows(name, g, k, cons, rows, keys, bench):
    fm = gp_partition(
        g, k, cons, GPConfig(max_cycles=CYCLES, refine="fm"), seed=SEED
    )
    ff = gp_partition(
        g, k, cons, GPConfig(max_cycles=CYCLES, refine="fm+flow"), seed=SEED
    )
    k_fm = goodness_key(fm.metrics, cons)
    k_ff = goodness_key(ff.metrics, cons)
    rows.append([
        name, g.n, k,
        f"{fm.metrics.cut:g}", f"{ff.metrics.cut:g}",
        f"{fm.metrics.cut - ff.metrics.cut:+g}",
        _fmt_key(k_ff),
        f"{fm.runtime:.2f}", f"{ff.runtime:.2f}",
    ])
    keys[name] = (k_fm, k_ff)
    p = {"instance": name, "n": g.n, "k": k}
    bench.append(BenchMetric("x14.fm.cut", float(fm.metrics.cut), "", p))
    bench.append(BenchMetric("x14.flow.cut", float(ff.metrics.cut), "", p))
    bench.append(BenchMetric("x14.fm.runtime", fm.runtime, "s", p))
    bench.append(BenchMetric("x14.flow.runtime", ff.runtime, "s", p))


def _hyper_rows(name, hg, k, cons, rows, keys, bench):
    fm = hyper_partition(
        hg, k, cons, config=HyperConfig(max_cycles=CYCLES), seed=SEED
    )
    st = HyperRefinementState(hg, fm.assign, k)
    k_fm = goodness_key(fm.metrics, cons)
    run_flow_refine(st, cons)
    m_ff = st.metrics(cons)
    k_ff = goodness_key(m_ff, cons)
    rows.append([
        name, hg.n, k,
        f"{fm.metrics.cut:g}", f"{m_ff.cut:g}",
        f"{fm.metrics.cut - m_ff.cut:+g}",
        _fmt_key(k_ff),
        f"{fm.runtime:.2f}", "-",
    ])
    keys[name] = (k_fm, k_ff)
    p = {"instance": name, "n": hg.n, "k": k}
    bench.append(BenchMetric("x14.fm.cut", float(fm.metrics.cut), "", p))
    bench.append(BenchMetric("x14.flow.cut", float(m_ff.cut), "", p))
    bench.append(BenchMetric("x14.fm.runtime", fm.runtime, "s", p))


def test_fm_plus_flow_vs_fm(benchmark, artifacts_dir):
    rows = []
    keys = {}
    bench = []

    def sweep():
        # gallery PPNs through the paper pipeline (2-pin mapping graph)
        for name, prog, k, bmax in [
            ("lu(10)", lu(10), 2, float("inf")),
            ("fir(8,64)", fir_filter(8, 64), 3, float("inf")),
        ]:
            ppn = derive_ppn(prog)
            g, _ = ppn_to_mapped_graph(ppn, mode="tokens")
            cons = _constraints(g.total_node_weight, k, bmax=bmax)
            _graph_rows(name, g, k, cons, rows, keys, bench)

        # synthetic process networks, cut-dominated and bandwidth-tight
        for n, m, k, bmax, gseed in [
            (96, 220, 4, float("inf"), 11),
            (120, 280, 4, 260.0, 12),
            (150, 360, 5, float("inf"), 13),
        ]:
            g = random_process_network(n, m, seed=gseed)
            cons = _constraints(g.total_node_weight, k, bmax=bmax)
            _graph_rows(f"rand(n={n},k={k})", g, k, cons, rows, keys, bench)

        # multicast synthetics under the (λ-1) connectivity objective
        for n, fanout, k in [(90, 6, 3), (120, 10, 4)]:
            hg = multicast_network(n, seed=fanout, fanout=fanout)
            cons = _constraints(hg.total_node_weight, k)
            _hyper_rows(f"multicast(n={n},f={fanout})", hg, k, cons, rows,
                        keys, bench)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["instance", "n", "k",
         "fm cut", "fm+flow cut", "gain", "fm+flow quality",
         "fm s", "fm+flow s"],
        rows,
        title=(
            f"X14 corridor-flow refinement vs FM alone at equal budget "
            f"(max_cycles={CYCLES}, seed {SEED}; cut = edge cut on graphs, "
            f"(λ-1) connectivity on hypergraphs)"
        ),
    )
    table += (
        "\nNote: the flow stage runs once on the race winner under a"
        "\nnever-worse acceptance guard, so fm+flow ≤ fm is an invariant of"
        "\nthe implementation; 'gain' is the cut it recovered past the FM"
        "\nplateau.  Hypergraph rows apply the same flow stage to the"
        "\nhyper_partition output (its pipeline has no refine knob), so"
        "\ntheir fm+flow wall-clock is not separately measured.\n"
    )
    emit("x14_flow_quality.txt", table)
    emit_bench("x14_flow_quality", bench, seed=SEED)

    worse = {n: (kf, kq) for n, (kf, kq) in keys.items() if kq > kf}
    assert not worse, f"fm+flow worse than fm on: {worse}"
    # the corpus is seeded and deterministic, so the flow stage finding
    # cut past the FM plateau somewhere is a stable property to gate on
    strict = [n for n, (kf, kq) in keys.items() if kq < kf]
    assert strict, f"flow stage recovered no cut anywhere (keys: {keys})"
