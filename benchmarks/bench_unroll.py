"""Study X9 — unroll-factor sweep: growing the network to partition (ext.).

Section I: "the number of nodes is usually proportional with the parallel
portions of computation".  PPN tools expose that knob as loop unrolling;
this sweep unrolls a pipeline's middle stage by 1/2/4/8, derives the grown
network, and partitions it over 4 FPGAs — process count, channel count, GP
feasibility and cut versus unroll factor.
"""

from conftest import emit

from repro.core.api import partition_ppn
from repro.polyhedral import derive_ppn
from repro.polyhedral.gallery import chain
from repro.polyhedral.transform import unroll_statement
from repro.util.tables import format_table

K = 4
FACTORS = (1, 2, 4, 8)


def run_study():
    rows = []
    base = chain(4, 64)
    for f in FACTORS:
        prog = base
        for stage in ("s1", "s2"):
            prog = unroll_statement(prog, stage, f)
        ppn = derive_ppn(prog)
        g, _names = ppn.to_wgraph()
        rmax = 1.3 * g.total_node_weight / K
        bmax = 0.4 * g.total_edge_weight
        result, graph, names = partition_ppn(
            ppn, K, bmax=bmax, rmax=rmax, seed=0
        )
        rows.append(
            [
                f,
                ppn.n_processes,
                ppn.n_channels,
                result.metrics.cut,
                round(result.runtime, 4),
                result.feasible,
            ]
        )
    return rows


def test_unroll_sweep(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = format_table(
        ["unroll", "processes", "channels", "cut", "gp time(s)", "feasible"],
        rows,
        title="X9 unroll-factor sweep (chain(4) stages s1+s2, K=4)",
    )
    emit("x9_unroll_sweep.txt", table)
    # network growth must be monotone in the factor and GP must keep up
    procs = [r[1] for r in rows]
    assert procs == sorted(procs)
    assert procs[-1] > procs[0]
    assert all(r[5] for r in rows), "GP must stay feasible across the sweep"
