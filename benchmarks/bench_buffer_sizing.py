"""Study X11 — FIFO buffer sizing across the gallery (extension).

PPN-to-FPGA flows must size every FIFO; this study reports, per gallery
application: the minimal *uniform* capacity that avoids deadlock (binary
search over simulated runs), the per-channel peak-occupancy sizing, and the
BRAM cost of each policy — the memory side of the paper's resource story.
"""

from conftest import emit

from repro.kpn.buffer_sizing import (
    brams_needed,
    minimal_uniform_capacity,
    per_channel_depths,
)
from repro.polyhedral import derive_ppn
from repro.polyhedral.gallery import GALLERY
from repro.util.tables import format_table

APPS = ("chain", "fir_filter", "jacobi1d", "matmul", "split_merge", "lu")


def run_study():
    rows = []
    for name in APPS:
        ppn = derive_ppn(GALLERY[name]())
        depths = per_channel_depths(ppn)
        uniform = minimal_uniform_capacity(ppn)
        rows.append(
            [
                name,
                ppn.n_channels,
                uniform,
                max(depths.values()),
                sum(depths.values()),
                brams_needed(ppn, tokens_per_bram=64, depths=depths),
            ]
        )
    return rows


def test_buffer_sizing(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = format_table(
        ["application", "channels", "min uniform cap", "max channel depth",
         "total depth (per-channel)", "BRAMs (64 tok/BRAM)"],
        rows,
        title="X11 FIFO buffer sizing across the gallery",
    )
    emit("x11_buffer_sizing.txt", table)
    for row in rows:
        name, _, uniform, max_depth, _, _ = row
        # uniform capacity can never need more than the worst channel depth
        assert uniform <= max_depth, f"{name}: sizing inconsistency"
        assert uniform >= 1
