"""Study X10 — multi-resource partitioning (the paper's stated extension).

"Only one resource is considered at this time" (Section V).  This study
partitions networks whose processes consume LUTs, BRAMs and DSPs with very
different distributions, under simultaneous per-resource budgets, and
contrasts the vector-aware partitioner against the scalar GP run on LUTs
alone (which can silently blow the BRAM/DSP budgets).
"""

import numpy as np
from conftest import emit

from repro.graph import random_process_network
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.multires import (
    VectorConstraints,
    evaluate_multires,
    mr_gp_partition,
)
from repro.util.tables import format_table

K = 4


def make_instance(seed):
    g = random_process_network(28, 64, seed=seed)
    rng = np.random.default_rng(seed)
    w = np.stack(
        [
            rng.integers(20, 80, 28).astype(float),      # LUTs: smooth
            rng.choice([0, 0, 0, 8, 12], 28).astype(float),   # BRAMs: lumpy
            rng.choice([0, 0, 1, 2, 6], 28).astype(float),    # DSPs: rare
        ],
        axis=1,
    )
    rmax = (
        1.25 * w[:, 0].sum() / K,
        1.45 * w[:, 1].sum() / K,
        1.5 * w[:, 2].sum() / K,
    )
    bmax = 0.35 * g.total_edge_weight
    return g, w, VectorConstraints(bmax=bmax, rmax=rmax,
                                   names=("luts", "brams", "dsps"))


def run_study():
    rows = []
    for seed in (0, 1, 2):
        g, w, cons = make_instance(seed)
        # vector-aware
        mr = mr_gp_partition(g, w, K, cons, seed=0)
        m_mr = mr.metrics
        # scalar GP on LUTs only, audited against the full vector afterwards
        scalar = gp_partition(
            g.with_node_weights(w[:, 0]), K,
            ConstraintSpec(bmax=cons.bmax, rmax=cons.rmax[0]),
            GPConfig(max_cycles=10), seed=0,
        )
        m_sc = evaluate_multires(g, w, scalar.assign, K, cons)
        for tag, m in (("vector GP", m_mr), ("scalar GP (LUTs only)", m_sc)):
            rows.append(
                [
                    seed,
                    tag,
                    m.cut,
                    m.feasible,
                    round(m.resource_violation, 1),
                    tuple(round(x, 0) for x in m.max_loads),
                ]
            )
    return rows


def test_multires(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = format_table(
        ["seed", "partitioner", "cut", "vector-feasible",
         "res violation", "max loads (luts, brams, dsps)"],
        rows,
        title="X10 multi-resource (LUT/BRAM/DSP) partitioning",
    )
    emit("x10_multires.txt", table)
    by_seed = {}
    for r in rows:
        by_seed.setdefault(r[0], {})[r[1]] = r
    for seed, pair in by_seed.items():
        assert pair["vector GP"][3], (
            f"seed {seed}: vector-aware GP must satisfy all three budgets"
        )
        # vector GP never reports more violation than the LUT-only run
        assert pair["vector GP"][4] <= pair["scalar GP (LUTs only)"][4] + 1e-9
