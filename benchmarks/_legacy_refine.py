"""Frozen pre-refactor refinement implementations (reference / benchmark only).

Verbatim snapshot of ``repro.partition.kway_refine`` and ``repro.partition.fm``
as of the commit preceding the vectorized :mod:`repro.partition.refine_state`
engine.  ``benchmarks/bench_refine_engine.py`` times these against the new
engine, and ``tests/test_refine_differential.py``'s pinned corpus values were
produced by them.  Do not "fix" or optimise this module: its value is that it
does not change.
"""

from __future__ import annotations

import heapq
from itertools import count

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionState
from repro.partition.metrics import ConstraintSpec, check_assignment, cut_value, part_weights
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = [
    "legacy_greedy_kway_refine",
    "legacy_rebalance_pass",
    "legacy_constrained_kway_fm",
    "legacy_fm_pass_bisection",
    "legacy_fm_refine_bisection",
]

_EPS = 1e-12


def legacy_rebalance_pass(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    max_part_weight: float,
    seed=None,
) -> np.ndarray:
    """Explicit balance phase (kmetis style).

    While any part exceeds *max_part_weight*, evict the node whose move
    damages the cut least into the lightest part that can take it.  Used by
    the METIS-like baseline between projection and cut refinement; gives up
    (returning the best effort) when no move can reduce the overflow —
    e.g. single nodes heavier than the cap.
    """
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    rng = as_rng(seed)
    counts = np.bincount(state.assign, minlength=k)
    for _ in range(4 * g.n):  # generous bound; each move reduces overflow
        over = np.nonzero(
            (state.part_weight > max_part_weight) & (counts > 1)
        )[0]  # single-member parts are never emptied (kmetis rule)
        if over.size == 0:
            break
        src = int(over[int(np.argmax(state.part_weight[over]))])
        members = np.nonzero(state.assign == src)[0]
        rng.shuffle(members)
        best = None  # (cut_damage, -weight, u, dest)
        for u in members:
            u = int(u)
            w_u = float(g.node_weights[u])
            conn = state.connection_vector(u)
            for dest in range(k):
                if dest == src:
                    continue
                if state.part_weight[dest] + w_u > max_part_weight:
                    continue
                damage = float(conn[src] - conn[dest])
                key = (damage, -w_u, u, dest)
                if best is None or key < best:
                    best = key
        if best is None:
            break  # nothing fits anywhere: give up gracefully
        _, _, u, dest = best
        state.move(u, dest)
        counts[src] -= 1
        counts[dest] += 1
    return state.assign


def legacy_greedy_kway_refine(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    max_part_weight: float = float("inf"),
    max_passes: int = 8,
    seed=None,
) -> np.ndarray:
    """Cut-driven greedy boundary refinement (METIS style).

    Moves a boundary node to the *adjacent* part with the highest positive
    gain, provided the destination stays under *max_part_weight*.  Among
    equal-gain destinations the one improving balance wins.  Passes repeat
    until no move fires.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    rng = as_rng(seed)
    part_count = np.bincount(state.assign, minlength=k)

    for _ in range(max_passes):
        boundary = state.boundary_nodes()
        if boundary.size == 0:
            break
        rng.shuffle(boundary)
        moved = 0
        for u in boundary:
            u = int(u)
            src = int(state.assign[u])
            if part_count[src] <= 1:
                continue  # kmetis rule: never empty a part
            conn = state.connection_vector(u)
            w_u = float(g.node_weights[u])
            best_dest, best_gain = -1, _EPS
            for dest in np.nonzero(conn > 0)[0]:
                dest = int(dest)
                if dest == src:
                    continue
                if state.part_weight[dest] + w_u > max_part_weight:
                    continue
                gain = float(conn[dest] - conn[src])
                if gain > best_gain + _EPS:
                    best_dest, best_gain = dest, gain
                elif (
                    best_dest >= 0
                    and abs(gain - best_gain) <= _EPS
                    and state.part_weight[dest] < state.part_weight[best_dest]
                ):
                    best_dest = dest
            if best_dest >= 0:
                state.move(u, best_dest)
                part_count[src] -= 1
                part_count[best_dest] += 1
                moved += 1
        if moved == 0:
            break
    return state.assign


def move_delta(
    state: PartitionState,
    u: int,
    dest: int,
    constraints: ConstraintSpec,
    conn: np.ndarray | None = None,
) -> tuple[float, float]:
    """Effect of moving *u* to *dest*: ``(violation_delta, cut_delta)``.

    Negative values are improvements.  Computed incrementally from the
    state's bandwidth matrix and part weights in O(k).
    """
    src = int(state.assign[u])
    if dest == src:
        return (0.0, 0.0)
    if conn is None:
        conn = state.connection_vector(u)
    w_u = float(state.g.node_weights[u])
    rmax, bmax = constraints.rmax, constraints.bmax

    dv = 0.0
    if np.isfinite(rmax):
        w_src, w_dest = state.part_weight[src], state.part_weight[dest]
        dv += max(0.0, w_src - w_u - rmax) - max(0.0, w_src - rmax)
        dv += max(0.0, w_dest + w_u - rmax) - max(0.0, w_dest - rmax)

    if np.isfinite(bmax):
        for c in range(state.k):
            if c == src or c == dest or conn[c] == 0.0:
                continue
            old_sc = state.bw[src, c]
            old_dc = state.bw[dest, c]
            dv += max(0.0, old_sc - conn[c] - bmax) - max(0.0, old_sc - bmax)
            dv += max(0.0, old_dc + conn[c] - bmax) - max(0.0, old_dc - bmax)
        old_sd = state.bw[src, dest]
        new_sd = old_sd - conn[dest] + conn[src]
        dv += max(0.0, new_sd - bmax) - max(0.0, old_sd - bmax)

    cut_delta = float(conn[src] - conn[dest])
    return (float(dv), cut_delta)


def _best_move(
    state: PartitionState, u: int, constraints: ConstraintSpec
) -> tuple[float, float, int] | None:
    """Best ``(violation_delta, cut_delta, dest)`` for node *u*, or None."""
    src = int(state.assign[u])
    conn = state.connection_vector(u)
    dests = {int(c) for c in np.nonzero(conn > 0)[0] if int(c) != src}
    if (
        np.isfinite(constraints.rmax)
        and state.part_weight[src] > constraints.rmax
    ):
        # over-full part: any escape destination is worth considering
        dests.update(c for c in range(state.k) if c != src)
    best = None
    for dest in sorted(dests):
        dv, dc = move_delta(state, u, dest, constraints, conn=conn)
        key = (dv, dc, dest)
        if best is None or key < best:
            best = key
    return best


def legacy_constrained_kway_fm(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    max_passes: int = 6,
    seed=None,
    abort_after: int | None = None,
) -> np.ndarray:
    """Constraint-driven FM k-way refinement (the GP local search).

    Per pass, nodes move at most once, ordered by a lazy-validation heap on
    ``(violation_delta, cut_delta)``.  Moves that would *increase* violation
    are never taken; cut-worsening moves with non-increasing violation are
    taken FM-style (best state by ``(total violation, cut)`` is restored at
    the end).  *abort_after* bounds consecutive non-improving moves per pass
    (defaults to ``max(50, n // 10)``), the standard early-exit that keeps
    passes cheap on large graphs.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    rng = as_rng(seed)
    if abort_after is None:
        abort_after = max(50, g.n // 10)

    def total_violation() -> float:
        v = 0.0
        if np.isfinite(constraints.rmax):
            v += float(np.maximum(state.part_weight - constraints.rmax, 0.0).sum())
        if np.isfinite(constraints.bmax):
            v += float(
                np.triu(np.maximum(state.bw - constraints.bmax, 0.0), k=1).sum()
            )
        return v

    best_assign = state.assign.copy()
    best_key = (total_violation(), state.cut)

    tick = count()
    for _ in range(max_passes):
        locked = np.zeros(g.n, dtype=bool)
        start_key = (total_violation(), state.cut)

        heap: list[tuple[float, float, int, int, int]] = []

        def push(u: int) -> None:
            mv = _best_move(state, u, constraints)
            if mv is not None:
                dv, dc, dest = mv
                heapq.heappush(heap, (dv, dc, next(tick), u, dest))

        seeds = state.boundary_nodes()
        if np.isfinite(constraints.rmax):
            over = np.nonzero(state.part_weight > constraints.rmax)[0]
            if over.size:
                extra = np.nonzero(np.isin(state.assign, over))[0]
                seeds = np.union1d(seeds, extra)
        seeds = seeds.astype(np.int64)
        rng.shuffle(seeds)
        for u in seeds:
            push(int(u))

        stagnant = 0
        while heap:
            dv, dc, _, u, dest = heapq.heappop(heap)
            if locked[u]:
                continue
            fresh = _best_move(state, u, constraints)
            if fresh is None:
                continue
            if (fresh[0], fresh[1], fresh[2]) != (dv, dc, dest):
                heapq.heappush(heap, (fresh[0], fresh[1], next(tick), u, fresh[2]))
                continue
            if dv > _EPS:
                break  # every remaining move strictly worsens violation
            if dv > -_EPS and dc > _EPS and stagnant >= abort_after:
                break
            state.move(u, dest)
            locked[u] = True
            key_now = (total_violation(), state.cut)
            if key_now < best_key:
                best_key = key_now
                best_assign = state.assign.copy()
                stagnant = 0
            else:
                stagnant += 1
            if stagnant > abort_after:
                break
            for v in g.neighbors(u):
                v = int(v)
                if not locked[v]:
                    push(v)

        if best_key < start_key:
            # FM discipline: next pass starts from the best prefix seen
            state = PartitionState(g, best_assign, k)
        else:
            break  # the pass found nothing better anywhere
    return best_assign


def default_side_caps(g: WGraph) -> tuple[float, float]:
    """Default side-weight caps: half the total plus one max-node of slack."""
    slack = float(g.node_weights.max()) if g.n else 0.0
    cap = g.total_node_weight / 2.0 + slack
    return (cap, cap)


def _side_limits(
    g: WGraph, max_weight: tuple[float, float] | None
) -> tuple[float, float]:
    if max_weight is None:
        return default_side_caps(g)
    lo, hi = max_weight
    if lo < 0 or hi < 0:
        raise PartitionError(f"side weight limits must be >= 0, got {max_weight}")
    return (float(lo), float(hi))


def _cap_violation(part_weight: np.ndarray, limits: tuple[float, float]) -> float:
    return max(0.0, part_weight[0] - limits[0]) + max(
        0.0, part_weight[1] - limits[1]
    )


def legacy_fm_pass_bisection(
    g: WGraph,
    assign: np.ndarray,
    max_weight: tuple[float, float] | None = None,
) -> tuple[np.ndarray, float]:
    """One FM pass over a bisection.

    Parameters
    ----------
    g, assign:
        Graph and 0/1 assignment.
    max_weight:
        ``(limit_side0, limit_side1)`` caps on the node-weight sum of each
        side; ``None`` uses :func:`default_side_caps`.  Moves into a side
        that would exceed its cap are skipped, except that an over-cap side
        may always shed weight.

    Returns
    -------
    (new_assign, new_cut):
        The prefix with the lexicographically best ``(cap violation, cut)``,
        never worse than the input under that order.
    """
    a = check_assignment(g, assign, 2)
    limits = _side_limits(g, max_weight)
    state = PartitionState(g, a, 2)

    heap: list[tuple[float, int, int]] = []  # (-gain, tiebreak, node)
    for u in range(g.n):
        heap.append((-state.gain(u, 1 - int(state.assign[u])), u, u))
    heapq.heapify(heap)
    locked = np.zeros(g.n, dtype=bool)

    best_assign = state.assign.copy()
    best_key = (_cap_violation(state.part_weight, limits), state.cut)
    current_cut = state.cut
    moved = 0

    while heap:
        neg_gain, _, u = heapq.heappop(heap)
        if locked[u]:
            continue
        src = int(state.assign[u])
        dest = 1 - src
        true_gain = state.gain(u, dest)
        if -neg_gain != true_gain:  # stale entry: reinsert with fresh gain
            heapq.heappush(heap, (-true_gain, u + g.n * (moved + 1), u))
            continue
        w_u = float(g.node_weights[u])
        dest_ok = state.part_weight[dest] + w_u <= limits[dest]
        src_over = state.part_weight[src] > limits[src]
        if not dest_ok and not src_over:
            locked[u] = True  # cannot legally move this pass
            continue
        state.move(u, dest)
        locked[u] = True
        moved += 1
        current_cut -= true_gain
        key = (_cap_violation(state.part_weight, limits), current_cut)
        if key < best_key:
            best_key = key
            best_assign = state.assign.copy()
        # refresh neighbours' gains lazily
        for v in state.g.neighbors(u):
            v = int(v)
            if not locked[v]:
                gv = state.gain(v, 1 - int(state.assign[v]))
                heapq.heappush(heap, (-gv, v + g.n * (moved + 1), v))

    return best_assign, best_key[1]


def legacy_fm_refine_bisection(
    g: WGraph,
    assign: np.ndarray,
    max_weight: tuple[float, float] | None = None,
    max_passes: int = 10,
) -> np.ndarray:
    """Run FM passes until no pass improves ``(cap violation, cut)``.

    "The best bi-section observed during an iteration is used as input for
    the next iteration" (Section II.A.2).
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, 2).copy()
    limits = _side_limits(g, max_weight)
    key = (
        _cap_violation(part_weights(g, a, 2), limits),
        cut_value(g, a),
    )
    for _ in range(max_passes):
        new_a, _ = legacy_fm_pass_bisection(g, a, max_weight=limits)
        new_key = (
            _cap_violation(part_weights(g, new_a, 2), limits),
            cut_value(g, new_a),
        )
        if new_key >= key:
            break
        a, key = new_a, new_key
    return a
