"""Study X7 — mapped-execution throughput: why Bmax matters (extension).

The paper validates constraints analytically; its future work is running on
real multi-FPGA hardware.  The platform simulator closes that loop: execute
each mapping with per-link capacity Bmax and measure the makespan inflation.
A Bmax-feasible mapping (GP) must sustain (near-)full throughput; a mapping
that concentrates traffic beyond Bmax saturates its link and slows down.

Workload: split_merge(6) — a splitter fans 240 tokens out to 6 workers, a
merger folds them back.  The network's steady state moves ~2 tokens/cycle
across any cut separating the splitter *and* merger from all the workers,
but only ~1 token/cycle if half the workers sit with the splitter/merger.
With a 1-token/cycle link, only the second shape sustains full throughput.
"""

import numpy as np
from conftest import emit

from repro.fpga import MultiFPGASystem
from repro.kpn.platform_sim import simulate_mapped_ppn
from repro.kpn.simulator import simulate_ppn
from repro.kpn.traffic import ppn_to_mapped_graph
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec, evaluate_partition
from repro.polyhedral import derive_ppn
from repro.polyhedral.gallery import split_merge
from repro.util.tables import format_table

K = 2
LINK_TOKENS_PER_CYCLE = 1
SCALE = 100.0  # graph weights = sustained tokens/cycle x SCALE


def run_study():
    ppn = derive_ppn(split_merge(6, 240))
    sim = simulate_ppn(ppn)
    ideal = sim.cycles
    g, names = ppn_to_mapped_graph(
        ppn, mode="sustained", scale=SCALE, result=sim, round_up=False
    )
    bmax_weight = LINK_TOKENS_PER_CYCLE * SCALE
    rmax = 0.8 * g.total_node_weight
    cons = ConstraintSpec(bmax=bmax_weight, rmax=rmax)
    sys_ = MultiFPGASystem.homogeneous(
        K, rmax=rmax, bmax=LINK_TOKENS_PER_CYCLE
    )

    gp = gp_partition(g, K, cons, GPConfig(max_cycles=10), seed=0)

    # bandwidth-oblivious adversary: splitter and merger isolated from all
    # workers — every token crosses the link twice (~2 tokens/cycle demand)
    adversary = np.zeros(g.n, dtype=np.int64)
    adversary[names.index("split")] = 1
    adversary[names.index("merge")] = 1

    rows = []
    for tag, assign in (("GP", gp.assign), ("oblivious", adversary)):
        metrics = evaluate_partition(g, assign, K, cons)
        res = simulate_mapped_ppn(ppn, assign, sys_, ideal_cycles=ideal)
        rows.append(
            [
                tag,
                round(metrics.max_local_bandwidth / SCALE, 3),
                metrics.bandwidth_violation == 0.0,
                res.cycles,
                round(res.slowdown, 3),
                round(res.max_link_saturation, 3),
            ]
        )
    return rows, ideal


def test_mapped_throughput(benchmark):
    rows, ideal = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = format_table(
        ["mapping", "max pair bw (tokens/cycle)", "Bmax met", "mapped cycles",
         "slowdown", "link saturation"],
        rows,
        title=(
            f"X7 mapped execution, link = {LINK_TOKENS_PER_CYCLE} token/cycle "
            f"(contention-free makespan {ideal} cycles)"
        ),
    )
    emit("x7_mapped_throughput.txt", table)
    gp_row = next(r for r in rows if r[0] == "GP")
    obl_row = next(r for r in rows if r[0] == "oblivious")
    assert gp_row[2], "GP's mapping must meet Bmax"
    assert not obl_row[2], "the adversary must violate Bmax by construction"
    assert gp_row[4] <= obl_row[4], (
        "a Bmax-feasible mapping must not run slower than a violating one"
    )
    assert obl_row[4] > 1.3, (
        "the bandwidth-violating mapping should be measurably throttled"
    )
    assert gp_row[4] < 1.3, (
        "the Bmax-feasible mapping should sustain near-full throughput"
    )
