"""Frozen pre-seam multi-resource implementations (reference / benchmark only).

Verbatim snapshot of the algorithm drivers of ``repro.partition.multires``
as of the commit preceding the vector-resource engine unification — the
hand-rolled violation-lexicographic FM loop over
:class:`~repro.partition.base.PartitionState`, the greedy vector-aware
initial growing (including its original leftover-placement rule), and the
multilevel cyclic-retry partitioner, all with their per-step Python-loop
move selection.  ``benchmarks/bench_multires_engine.py`` times these
against the seam-based engine, and the pinned corpus values in
``tests/test_multires_differential.py`` were produced by
:func:`legacy_mr_constrained_fm`.  Do not "fix" or optimise this module:
its value is that it does not change.

The dataclasses (``VectorConstraints`` etc.) are imported from the live
library — they are containers, not algorithms, and sharing them keeps the
differential comparisons type-compatible.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionState
from repro.partition.coarsen import build_hierarchy
from repro.partition.metrics import check_assignment
from repro.partition.multires import (
    MultiResResult,
    VectorConstraints,
    evaluate_multires,
)
from repro.util.errors import InfeasibleError, PartitionError
from repro.util.rng import as_rng, spawn_seeds
from repro.util.stopwatch import Stopwatch

__all__ = [
    "legacy_mr_constrained_fm",
    "legacy_mr_greedy_initial",
    "legacy_mr_gp_partition",
]

_EPS = 1e-12


def _check_weights(g: WGraph, weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != g.n:
        raise PartitionError(
            f"weight matrix must be (n={g.n}, R), got {w.shape}"
        )
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise PartitionError("weight matrix entries must be finite and >= 0")
    return w


def _loads(weights: np.ndarray, assign: np.ndarray, k: int) -> np.ndarray:
    out = np.zeros((k, weights.shape[1]))
    np.add.at(out, assign, weights)
    return out


def _res_violation_delta(
    loads: np.ndarray, rmax: np.ndarray, src: int, dest: int, w_u: np.ndarray
) -> float:
    before = (
        np.maximum(loads[src] - rmax, 0.0).sum()
        + np.maximum(loads[dest] - rmax, 0.0).sum()
    )
    after = (
        np.maximum(loads[src] - w_u - rmax, 0.0).sum()
        + np.maximum(loads[dest] + w_u - rmax, 0.0).sum()
    )
    return float(after - before)


def legacy_mr_constrained_fm(
    g: WGraph,
    weights: np.ndarray,
    assign: np.ndarray,
    k: int,
    cons: VectorConstraints,
    max_passes: int = 6,
    seed=None,
) -> np.ndarray:
    """Violation-lexicographic FM with vector resource deltas (frozen).

    Per pass each node moves at most once, moves never increase total
    violation, best state by ``(violation, cut)`` is kept.  Move selection
    is a per-step global scan: every unlocked boundary / over-cap node's
    best ``(dv, dc, dest)`` is recomputed fresh and the global minimum
    ``(dv, dc, u, dest)`` fires.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    w = _check_weights(g, weights)
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    loads = _loads(w, state.assign, k)
    rmax = np.asarray(cons.rmax)
    rng = as_rng(seed)

    def bw_violation_delta(u: int, dest: int, conn: np.ndarray) -> float:
        src = int(state.assign[u])
        dv = 0.0
        for c in range(k):
            if c == src or c == dest or conn[c] == 0.0:
                continue
            dv += max(0.0, state.bw[src, c] - conn[c] - cons.bmax) - max(
                0.0, state.bw[src, c] - cons.bmax
            )
            dv += max(0.0, state.bw[dest, c] + conn[c] - cons.bmax) - max(
                0.0, state.bw[dest, c] - cons.bmax
            )
        old_sd = state.bw[src, dest]
        new_sd = old_sd - conn[dest] + conn[src]
        dv += max(0.0, new_sd - cons.bmax) - max(0.0, old_sd - cons.bmax)
        return float(dv)

    def total_violation() -> float:
        v = float(np.maximum(loads - rmax, 0.0).sum())
        v += float(np.triu(np.maximum(state.bw - cons.bmax, 0.0), k=1).sum())
        return v

    def best_move(u: int):
        src = int(state.assign[u])
        conn = state.connection_vector(u)
        dests = {int(c) for c in np.nonzero(conn > 0)[0] if int(c) != src}
        if np.any(loads[src] > rmax):
            dests.update(c for c in range(k) if c != src)
        best = None
        for dest in sorted(dests):
            dv = bw_violation_delta(u, dest, conn) + _res_violation_delta(
                loads, rmax, src, dest, w[u]
            )
            dc = float(conn[src] - conn[dest])
            key = (dv, dc, dest)
            if best is None or key < best:
                best = key
        return best

    best_assign = state.assign.copy()
    best_key = (total_violation(), state.cut)

    for _ in range(max_passes):
        locked = np.zeros(g.n, dtype=bool)
        start_key = (total_violation(), state.cut)
        for _step in range(g.n):
            seeds = state.boundary_nodes()
            over_parts = np.nonzero(np.any(loads > rmax, axis=1))[0]
            if over_parts.size:
                extra = np.nonzero(np.isin(state.assign, over_parts))[0]
                seeds = np.union1d(seeds, extra)
            seeds = seeds[~locked[seeds]]
            if seeds.size == 0:
                break
            rng.shuffle(seeds)
            chosen = None
            for u in seeds:
                mv = best_move(int(u))
                if mv is None:
                    continue
                key = (mv[0], mv[1], int(u), mv[2])
                if chosen is None or key < chosen:
                    chosen = key
            if chosen is None:
                break
            dv, dc, u, dest = chosen
            if dv > _EPS:
                break  # every move strictly worsens violation
            src = int(state.assign[u])
            state.move(u, dest)
            loads[src] -= w[u]
            loads[dest] += w[u]
            locked[u] = True
            key_now = (total_violation(), state.cut)
            if key_now < best_key:
                best_key = key_now
                best_assign = state.assign.copy()
        if best_key < start_key:
            state = PartitionState(g, best_assign, k)
            loads = _loads(w, state.assign, k)
        else:
            break
    return best_assign


def legacy_mr_greedy_initial(
    g: WGraph,
    weights: np.ndarray,
    k: int,
    cons: VectorConstraints,
    restarts: int = 10,
    seed=None,
) -> np.ndarray:
    """Vector-aware greedy growing with restarts (frozen).

    Includes the original leftover-placement rule: when no part fits, the
    node lands on the part with the largest min-component headroom, even
    if another part would take zero violation increase on the binding
    resource (the defect the seam-based version repairs).
    """
    if restarts < 1:
        raise PartitionError(f"restarts must be >= 1, got {restarts}")
    w = _check_weights(g, weights)
    rmax = np.asarray(cons.rmax)
    rng = as_rng(seed)
    round_seeds = spawn_seeds(rng, restarts)
    # size proxy for "heaviest": max utilisation share across resources
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(rmax > 0, w / rmax, 0.0).max(axis=1)

    best_assign, best_key = None, None
    for r in range(restarts):
        r_rng = as_rng(round_seeds[r])
        assign = np.full(g.n, -1, dtype=np.int64)
        loads = np.zeros((k, w.shape[1]))
        for part in range(k):
            unassigned = np.nonzero(assign < 0)[0]
            if unassigned.size == 0:
                break
            if r == 0:
                seed_node = int(unassigned[int(np.argmax(share[unassigned]))])
            else:
                seed_node = int(r_rng.choice(unassigned))
            assign[seed_node] = part
            loads[part] += w[seed_node]
            frontier: dict[int, float] = {}
            for v, ew in zip(*g.neighbor_weights(seed_node)):
                if assign[int(v)] < 0:
                    frontier[int(v)] = frontier.get(int(v), 0.0) + float(ew)
            while frontier:
                u = min(frontier, key=lambda x: (-frontier[x], x))
                del frontier[u]
                if assign[u] >= 0:
                    continue
                if np.any(loads[part] + w[u] > rmax):
                    continue
                assign[u] = part
                loads[part] += w[u]
                for v, ew in zip(*g.neighbor_weights(u)):
                    if assign[int(v)] < 0:
                        frontier[int(v)] = frontier.get(int(v), 0.0) + float(ew)
        leftovers = np.nonzero(assign < 0)[0]
        leftovers = leftovers[np.argsort(-share[leftovers], kind="stable")]
        for u in leftovers:
            u = int(u)
            headroom = (rmax - (loads + w[u])).min(axis=1)
            fits = np.nonzero(headroom >= 0)[0]
            dest = (
                int(fits[int(np.argmax(headroom[fits]))])
                if fits.size
                else int(np.argmax(headroom))
            )
            assign[u] = dest
            loads[dest] += w[u]
        assign = legacy_mr_constrained_fm(
            g, w, assign, k, cons, max_passes=4, seed=round_seeds[r]
        )
        m = evaluate_multires(g, w, assign, k, cons)
        key = (m.total_violation, m.bandwidth_violation, m.cut)
        if best_key is None or key < best_key:
            best_assign, best_key = assign, key
    assert best_assign is not None
    return best_assign


def legacy_mr_gp_partition(
    g: WGraph,
    weights: np.ndarray,
    k: int,
    cons: VectorConstraints,
    coarsen_to: int = 100,
    restarts: int = 10,
    max_cycles: int = 10,
    refine_passes: int = 6,
    seed=None,
    on_infeasible: str = "return",
) -> MultiResResult:
    """GP lifted to vector resources (frozen serial cyclic-retry loop)."""
    if on_infeasible not in ("return", "raise"):
        raise PartitionError(
            f"on_infeasible must be return/raise, got {on_infeasible!r}"
        )
    if k < 1 or k > g.n:
        raise PartitionError(f"bad k={k} for n={g.n}")
    w = _check_weights(g, weights)
    if w.shape[1] != cons.n_resources:
        raise PartitionError(
            f"weights have {w.shape[1]} resources, constraints {cons.n_resources}"
        )
    rmax = np.asarray(cons.rmax)
    with np.errstate(divide="ignore", invalid="ignore"):
        scalar_proxy = np.where(rmax > 0, w / rmax, 0.0).sum(axis=1)
    proxy_graph = g.with_node_weights(scalar_proxy + 1e-9)
    rng = as_rng(seed)

    sw = Stopwatch().start()
    best_assign, best_key = None, None
    cycles_used = 0
    for cycle in range(max_cycles):
        cycles_used = cycle + 1
        s_hier, s_init, s_ref = spawn_seeds(rng, 3)
        hier = build_hierarchy(
            proxy_graph, coarsen_to=max(coarsen_to, 2 * k), seed=s_hier
        )
        # aggregate the weight matrix down the hierarchy
        level_weights = [w]
        for lvl in hier.levels[1:]:
            prev = level_weights[-1]
            agg = np.zeros((lvl.graph.n, w.shape[1]))
            np.add.at(agg, lvl.node_map, prev)
            level_weights.append(agg)

        assign = legacy_mr_greedy_initial(
            hier.coarsest, level_weights[-1], k, cons,
            restarts=restarts, seed=s_init,
        )
        ref_seeds = spawn_seeds(s_ref, hier.depth)
        for level in range(hier.depth - 1, 0, -1):
            assign = hier.project(assign, level)
            assign = legacy_mr_constrained_fm(
                hier.levels[level - 1].graph,
                level_weights[level - 1],
                assign, k, cons,
                max_passes=refine_passes, seed=ref_seeds[level - 1],
            )
        if hier.depth == 1:
            assign = legacy_mr_constrained_fm(
                g, w, assign, k, cons,
                max_passes=refine_passes, seed=ref_seeds[0],
            )
        m = evaluate_multires(g, w, assign, k, cons)
        key = (m.total_violation, m.bandwidth_violation, m.cut)
        if best_key is None or key < best_key:
            best_assign, best_key = assign, key
        if m.feasible:
            break
    sw.stop()

    assert best_assign is not None
    metrics = evaluate_multires(g, w, best_assign, k, cons)
    result = MultiResResult(
        assign=best_assign,
        k=k,
        metrics=metrics,
        constraints=cons,
        runtime=sw.elapsed,
        info={"cycles": cycles_used},
    )
    if not metrics.feasible and on_infeasible == "raise":
        raise InfeasibleError(
            f"no vector-feasible partitioning within {max_cycles} cycles "
            f"(violation {metrics.total_violation:g})",
            best=result,
        )
    return result
