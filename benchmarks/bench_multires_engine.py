"""Study X13 — the vector-resource engine unification, measured.

Three questions, one corpus (random + fpga device-shaped weight matrices):

* **FM speedup** — the seam-based vector FM
  (:func:`~repro.partition.multires.mr_constrained_fm` =
  ``run_constrained_fm`` on a ``VectorRefinementState``) against the
  frozen pre-unification loop (``_legacy_multires``), same starts, same
  seeds.  The frozen loop re-scans every candidate per step (O(n²·k)
  Python per pass); the engine pays O(deg + k) per move through the
  shared gain-bucket queue.
* **End-to-end speedup** — ``mr_gp_partition`` against
  ``legacy_mr_gp_partition`` at identical knobs, with feasibility
  compared (the engines' hill-climb tie-breaking differs, so cuts may
  differ a few percent either way; feasibility must not).
* **What the unification unlocks** — the memetic search
  (:func:`~repro.evolve.evolve_partition` on the vector engine, newly
  possible) against the restart-only ``mr_gp_partition`` at an equal
  evaluation budget, under the goodness order.

Artefact: ``benchmarks/artifacts/x13_multires_engine.txt``.

Acceptance (gated below): the seam FM is **faster** on every timing
instance (≥ 2× on the largest), end-to-end feasibility is **never lost**
vs the frozen path, and evolve is **never worse** than restart-only
vector GP under the goodness order.
"""

import time

import numpy as np
from conftest import emit, emit_bench

import _legacy_multires as legacy
from repro.evolve import EvolveConfig, evolve_partition
from repro.fpga.resources import random_device_matrix
from repro.graph.generators import random_process_network
from repro.obs.benchdb import BenchMetric
from repro.partition.goodness import goodness_key
from repro.partition.multires import (
    VectorConstraints,
    evaluate_multires,
    mr_constrained_fm,
    mr_gp_partition,
)
from repro.partition.vector_state import VectorGraph
from repro.util.tables import format_table

SEED = 2015


def make_instance(n, m, R, k, seed, kind="rand", slack=1.25, bmax_frac=0.35):
    g = random_process_network(n, m, seed=seed)
    if kind == "dev":
        w, _ = random_device_matrix(n, seed=seed, n_resources=R)
    else:
        rng = np.random.default_rng(seed)
        w = np.stack(
            [rng.integers(1, 30, n).astype(float) for _ in range(R)], axis=1
        )
    rmax = tuple(
        float(np.ceil(slack * max(w[:, r].sum() / k, w[:, r].max())))
        for r in range(R)
    )
    cons = VectorConstraints(
        bmax=float(np.ceil(bmax_frac * g.total_edge_weight)), rmax=rmax
    )
    return g, w, cons


def timed(fn, repeats: int = 1):
    """``(result, best-of-repeats wall-clock)`` — best-of keeps the CI
    gates below robust against scheduler stalls on loaded machines."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def fm_speedup_study():
    """Seam FM vs frozen loop: same greedy start, same seed, wall-clock."""
    rows = []
    bench = []
    speedups = []
    for kind, n, m, R, k in (
        ("rand", 60, 132, 3, 4),
        ("dev", 90, 200, 4, 4),
        ("dev", 140, 310, 4, 6),
    ):
        g, w, cons = make_instance(n, m, R, k, SEED, kind=kind)
        start = legacy.legacy_mr_greedy_initial(
            g, w, k, cons, restarts=2, seed=SEED
        )
        new, t_new = timed(
            lambda: mr_constrained_fm(g, w, start.copy(), k, cons, seed=SEED),
            repeats=3,
        )
        old, t_old = timed(
            lambda: legacy.legacy_mr_constrained_fm(
                g, w, start.copy(), k, cons, seed=SEED
            ),
            repeats=2,
        )
        m_new = evaluate_multires(g, w, new, k, cons)
        m_old = evaluate_multires(g, w, old, k, cons)
        speedup = t_old / t_new if t_new > 0 else float("inf")
        speedups.append((n, speedup))
        rows.append([
            f"{kind} n={n} R={R} k={k}",
            round(t_old * 1e3, 1),
            round(t_new * 1e3, 1),
            f"{speedup:.1f}x",
            f"{m_old.total_violation:g}/{m_old.cut:g}",
            f"{m_new.total_violation:g}/{m_new.cut:g}",
        ])
        p = {"stage": "fm", "kind": kind, "n": n, "R": R, "k": k}
        bench.append(BenchMetric("x13.engine", t_new * 1e3, "ms", p))
        bench.append(BenchMetric("x13.legacy", t_old * 1e3, "ms", p))
        bench.append(BenchMetric("x13.cut", float(m_new.cut), "", p))
    table = format_table(
        ["instance", "legacy FM (ms)", "engine FM (ms)", "speedup",
         "legacy viol/cut", "engine viol/cut"],
        rows,
        title="X13a — vector FM: frozen loop vs shared engine",
    )
    return table, speedups, bench


def end_to_end_study():
    """mr_gp_partition vs the frozen serial pipeline, identical knobs."""
    rows = []
    bench = []
    feas_pairs = []
    speedups = []
    for kind, n, m, R, k in (
        ("rand", 40, 90, 3, 4),
        ("dev", 56, 124, 4, 4),
    ):
        g, w, cons = make_instance(n, m, R, k, SEED, kind=kind)
        new, t_new = timed(
            lambda: mr_gp_partition(g, w, k, cons, seed=SEED, cache=False)
        )
        old, t_old = timed(
            lambda: legacy.legacy_mr_gp_partition(g, w, k, cons, seed=SEED)
        )
        speedup = t_old / t_new if t_new > 0 else float("inf")
        speedups.append(speedup)
        feas_pairs.append((new.feasible, old.feasible))
        rows.append([
            f"{kind} n={n} R={R} k={k}",
            round(t_old, 3),
            round(t_new, 3),
            f"{speedup:.1f}x",
            f"{old.metrics.total_violation:g}/{old.metrics.cut:g}",
            f"{new.metrics.total_violation:g}/{new.metrics.cut:g}",
            f"{old.feasible}/{new.feasible}",
        ])
        p = {"stage": "e2e", "kind": kind, "n": n, "R": R, "k": k}
        bench.append(BenchMetric("x13.engine", t_new, "s", p))
        bench.append(BenchMetric("x13.cut", float(new.metrics.cut), "", p))
        bench.append(BenchMetric("x13.feasible", float(new.feasible), "",
                                 p, better="higher"))
    table = format_table(
        ["instance", "legacy (s)", "engine (s)", "speedup",
         "legacy viol/cut", "engine viol/cut", "feasible old/new"],
        rows,
        title="X13b — mr_gp_partition: frozen pipeline vs shared engine",
    )
    return table, feas_pairs, speedups, bench


def evolve_unlocked_study():
    """What the seam buys: the memetic search on vector instances."""
    ea_cfg = EvolveConfig(pop_size=4, generations=6, offspring_per_gen=2,
                          max_evals=16, seed_max_cycles=2)
    rows = []
    verdicts = []
    for kind, n, m, R, k, seed in (
        ("rand", 40, 90, 3, 4, SEED),
        ("dev", 48, 108, 4, 4, SEED + 1),
        ("dev", 56, 124, 3, 5, SEED + 2),
    ):
        g, w, cons = make_instance(n, m, R, k, seed, kind=kind)
        gp = mr_gp_partition(
            g, w, k, cons, max_cycles=ea_cfg.max_evals, seed=seed,
            cache=False,
        )
        ea = evolve_partition(
            VectorGraph(g, w), k, cons, config=ea_cfg, seed=seed,
            cache=False,
        )
        kg = goodness_key(gp.metrics, cons)
        ke = goodness_key(ea.metrics, cons)
        verdict = "better" if ke < kg else ("equal" if ke == kg else "worse")
        verdicts.append(verdict)
        rows.append([
            f"{kind} n={n} R={R} k={k}",
            f"viol={kg[0]:g} cut={kg[3]:g}",
            f"viol={ke[0]:g} cut={ke[3]:g}",
            verdict,
        ])
    table = format_table(
        ["instance", f"restart-only GP ({ea_cfg.max_evals} cycles)",
         f"evolve ({ea_cfg.max_evals} evals)", "evolve is"],
        rows,
        title="X13c — equal-budget memetic search on vector instances "
              "(newly unlocked)",
    )
    return table, verdicts


def run_study():
    fm_table, fm_speedups, fm_bench = fm_speedup_study()
    e2e_table, feas_pairs, e2e_speedups, e2e_bench = end_to_end_study()
    ea_table, verdicts = evolve_unlocked_study()
    lines = [fm_table, "", e2e_table, "", ea_table, ""]
    largest_n, largest_speedup = max(fm_speedups)
    lines.append(
        f"headline: seam-based vector FM is {largest_speedup:.1f}x the "
        f"frozen loop at n={largest_n}; end-to-end mr_gp "
        f"{min(e2e_speedups):.1f}-{max(e2e_speedups):.1f}x; evolve verdicts "
        f"vs restart-only GP at equal budget: {', '.join(verdicts)}"
    )
    return "\n".join(lines), fm_speedups, feas_pairs, verdicts, \
        fm_bench + e2e_bench


def test_multires_engine(benchmark):
    (text, fm_speedups, feas_pairs, verdicts, bench) = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    emit("x13_multires_engine.txt", text)
    emit_bench("x13_multires_engine", bench, seed=SEED)
    # gated acceptance — see module docstring
    for n, s in fm_speedups:
        assert s > 1.0, f"vector FM slower than the frozen loop at n={n}"
    largest_n, largest_speedup = max(fm_speedups)
    assert largest_speedup >= 2.0, (
        f"expected >= 2x FM speedup at n={largest_n}, got {largest_speedup:.2f}x"
    )
    for new_feasible, old_feasible in feas_pairs:
        assert new_feasible or not old_feasible, (
            "engine path lost feasibility the frozen path had"
        )
    assert all(v in ("better", "equal") for v in verdicts), (
        f"evolve lost to restart-only GP at equal budget: {verdicts}"
    )


if __name__ == "__main__":
    text, _, _, _, bench = run_study()
    emit("x13_multires_engine.txt", text)
    emit_bench("x13_multires_engine", bench, seed=SEED)
