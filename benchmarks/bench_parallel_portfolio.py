"""Study X11 — parallel portfolio racing + vectorized coarsening.

Three measurements, one artefact (``artifacts/x11_parallel_portfolio.txt``):

* **portfolio** — the default 4-config GP portfolio on a PN-shaped
  generator graph, serial vs ``n_jobs=4`` process racing.  Outputs are
  asserted bit-identical (assignment, metrics, per-member summaries);
  the wall-clock ratio is recorded together with the visible CPU count,
  because racing cannot beat serial on a single-core host — the ≥2×
  acceptance bar is asserted only when ≥4 CPUs are actually available.
* **coarsening** — the 10k-node microbenchmark: one best-of-methods
  coarsening step (``coarsen_once`` with the two vectorized matchings +
  contraction) against the same step assembled from the frozen loop
  implementations in ``_legacy_coarsen``.  Must be ≥5× and
  method/contraction-identical (HEM and contraction are move-for-move
  references; the random matching races under its reworked pre-drawn
  priorities, so only its invariants — not its stream — are comparable,
  which is why the equality assertion pins the HEM-only step).
* **cache** — a repeated portfolio call must be a sub-millisecond
  ``KeyedCache`` hit.
"""

import os
import time

import numpy as np
from conftest import emit, emit_bench

import _legacy_coarsen as legacy
from repro.graph import random_process_network
from repro.obs.benchdb import BenchMetric
from repro.partition.coarsen import coarsen_once
from repro.partition.metrics import ConstraintSpec
from repro.partition.portfolio import (
    clear_portfolio_cache,
    default_portfolio,
    portfolio_partition,
)
from repro.util.rng import as_rng
from repro.util.tables import format_table

PORTFOLIO_N = 180
PORTFOLIO_M = 420
PORTFOLIO_K = 4
COARSEN_N = 10_000
COARSEN_M = 40_000
N_JOBS = 4


def _legacy_coarsen_once(g, seed, methods=("random", "hem")):
    """The pre-vectorization coarsening step, assembled from the frozen
    loop kernels (same best-of-methods selection rule as coarsen_once)."""
    fns = {
        "random": legacy.random_maximal_matching_legacy,
        "hem": legacy.heavy_edge_matching_legacy,
    }
    rng = as_rng(seed)
    best = None
    for rank, name in enumerate(methods):
        match = fns[name](g, seed=rng)
        quality = legacy.matching_quality_legacy(g, match)
        n_coarse = g.n - int((match != np.arange(g.n)).sum() // 2)
        key = (-quality, n_coarse, rank)
        if best is None or key < best[0]:
            best = (key, match, name)
    _, match, name = best
    coarse, node_map = legacy.contract_legacy(g, match)
    return coarse, node_map, name


def _timed(fn, *args, repeats=3, **kwargs):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return out, best


def test_parallel_portfolio_and_coarsening(benchmark):
    rows = []
    bench = []
    cpus = os.cpu_count() or 1

    def sweep():
        # ---- portfolio racing -------------------------------------------
        g = random_process_network(PORTFOLIO_N, PORTFOLIO_M, seed=7)
        cons = ConstraintSpec(
            bmax=0.35 * g.total_edge_weight,
            rmax=0.4 * g.total_node_weight,
        )
        configs = default_portfolio()
        serial, t_serial = _timed(
            portfolio_partition, g, PORTFOLIO_K, cons,
            configs=configs, seed=0, cache=False, repeats=1,
        )
        parallel, t_parallel = _timed(
            portfolio_partition, g, PORTFOLIO_K, cons,
            configs=configs, seed=0, cache=False, n_jobs=N_JOBS, repeats=1,
        )
        assert np.array_equal(serial.assign, parallel.assign)
        assert serial.metrics == parallel.metrics
        assert serial.info == parallel.info
        ratio = t_serial / t_parallel
        rows.append(
            [f"portfolio 4cfg n={PORTFOLIO_N} k={PORTFOLIO_K}",
             f"{t_serial:.2f}s", f"{t_parallel:.2f}s ({N_JOBS} jobs)",
             f"{ratio:.2f}x", f"identical ({cpus} CPUs visible)"]
        )
        p = {"n": PORTFOLIO_N, "k": PORTFOLIO_K}
        bench.append(BenchMetric("x11.portfolio.serial", t_serial, "s", p))
        bench.append(BenchMetric(
            "x11.portfolio.parallel", t_parallel, "s",
            {**p, "jobs": N_JOBS},
        ))
        bench.append(BenchMetric(
            "x11.portfolio.cut", float(serial.metrics.cut), "", p,
        ))
        if cpus >= N_JOBS:
            # the acceptance bar only binds where 4 workers can exist
            assert ratio >= 2.0, (
                f"portfolio racing speedup {ratio:.2f}x < 2x on {cpus} CPUs"
            )

        # ---- portfolio result cache -------------------------------------
        clear_portfolio_cache()
        portfolio_partition(
            g, PORTFOLIO_K, cons, configs=configs, seed=0
        )
        hit, t_hit = _timed(
            portfolio_partition, g, PORTFOLIO_K, cons,
            configs=configs, seed=0,
        )
        assert hit.info.get("cache_hit") is True
        assert np.array_equal(hit.assign, serial.assign)
        rows.append(
            ["portfolio repeat (cache hit)", f"{t_serial:.2f}s",
             f"{t_hit * 1e3:.2f}ms", f"{t_serial / t_hit:.0f}x", "identical"]
        )
        bench.append(BenchMetric(
            "x11.portfolio.cache_hit", t_hit * 1e3, "ms", p,
        ))
        clear_portfolio_cache()

        # ---- coarsening microbenchmark ----------------------------------
        g10 = random_process_network(COARSEN_N, COARSEN_M, seed=0)
        (c_new, _, m_new), t_new = _timed(
            coarsen_once, g10, 0, methods=("random", "hem")
        )
        (c_old, _, m_old), t_old = _timed(_legacy_coarsen_once, g10, 0)
        ratio_c = t_old / t_new
        rows.append(
            [f"coarsen_once n={COARSEN_N} (random+hem)",
             f"{t_old * 1e3:.0f}ms", f"{t_new * 1e3:.0f}ms",
             f"{ratio_c:.1f}x", "see note"]
        )
        pc = {"n": COARSEN_N, "methods": "random+hem"}
        bench.append(BenchMetric("x11.coarsen.vectorized",
                                 t_new * 1e3, "ms", pc))
        bench.append(BenchMetric("x11.coarsen.legacy",
                                 t_old * 1e3, "ms", pc))
        bench.append(BenchMetric("x11.coarsen.speedup", ratio_c, "", pc,
                                 better="higher"))
        assert ratio_c >= 5.0, (
            f"10k-node coarsening speedup {ratio_c:.1f}x is below the 5x bar"
        )

        # HEM-only step: reference is move-for-move, so outputs must be
        # fully identical (graph equality covers nodes, edges, weights)
        (ch_new, map_new, _), t_hem_new = _timed(
            coarsen_once, g10, 0, methods=("hem",)
        )
        (ch_old, map_old, _), t_hem_old = _timed(
            _legacy_coarsen_once, g10, 0, methods=("hem",)
        )
        assert ch_new == ch_old and np.array_equal(map_new, map_old)
        rows.append(
            [f"coarsen_once n={COARSEN_N} (hem only)",
             f"{t_hem_old * 1e3:.0f}ms", f"{t_hem_new * 1e3:.0f}ms",
             f"{t_hem_old / t_hem_new:.1f}x", "identical"]
        )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["stage", "serial/legacy", "parallel/vectorized", "speedup", "output"],
        rows,
        title="X11 parallel portfolio racing + vectorized coarsening",
    )
    emit("x11_parallel_portfolio.txt", table)
    emit_bench("x11_parallel_portfolio", bench)
