"""Study X4 — constraint-tightness sweep (extension).

Tightens Bmax/Rmax from loose (2x) to near-critical (1.05x) and tracks the
paper's headline separation: GP keeps satisfying (or degrades gracefully to
least-violating), while the METIS-like baseline's violations grow because it
never looks at the constraints.
"""

from conftest import emit

from repro.bench.suites import constraint_sweep
from repro.util.tables import format_table


def test_constraint_sweep(benchmark):
    rows = benchmark.pedantic(constraint_sweep, rounds=1, iterations=1)
    table = format_table(
        ["study", "params", "algo", "cut", "time(s)", "max_res", "max_bw", "feasible"],
        [r.as_list() for r in rows],
        title="X4 constraint-tightness sweep",
    )
    emit("x4_constraint_sweep.txt", table)
    gp = {r.params["tightness"]: r for r in rows if r.algorithm == "GP"}
    mlkp = {r.params["tightness"]: r for r in rows if r.algorithm == "MLKP"}
    # at the loosest setting both should be feasible; GP must stay feasible
    # at least as deep into the sweep as MLKP does
    tight_levels = sorted(gp, reverse=True)  # loose -> tight
    assert gp[tight_levels[0]].feasible
    gp_depth = sum(1 for t in tight_levels if gp[t].feasible)
    mlkp_depth = sum(1 for t in tight_levels if mlkp[t].feasible)
    assert gp_depth >= mlkp_depth, (
        "GP's feasibility frontier must dominate the unconstrained baseline's"
    )
    # GP violation (if any) never exceeds MLKP's at the same tightness
    for t in tight_levels:
        gp_viol = gp[t].extra["bw_violation"] + gp[t].extra["res_violation"]
        mlkp_viol = mlkp[t].extra["bw_violation"] + mlkp[t].extra["res_violation"]
        assert gp_viol <= mlkp_viol + 1e-9
