"""Seed-calibration sweep for the three reconstructed paper graphs.

The paper publishes only the envelope of its three experiment graphs (node
and edge counts, weight regimes, constraints) plus the qualitative outcome
of each tool.  This script scans generator seeds and reports, for each, how
the reproduction behaves, so a seed matching the published pattern can be
pinned in ``repro.graph.generators.PAPER_SPECS``:

* EXPERIMENT I   — feasible; MLKP violates *both* constraints; GP feasible
                   with a slightly larger cut.
* EXPERIMENT II  — feasible; MLKP violates resources, meets bandwidth;
                   GP feasible with a *smaller* cut.
* EXPERIMENT III — feasible; MLKP violates bandwidth (large), meets
                   resources; GP feasible with a slightly larger cut.

Run:  python benchmarks/calibrate_paper_graphs.py [experiment] [n_seeds]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.graph.generators import PAPER_SPECS, PaperExperimentSpec
from repro.graph.generators import random_process_network
from repro.partition.exact import feasibility_certificate
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.mlkp import mlkp_partition


def build(spec: PaperExperimentSpec, seed: int):
    return random_process_network(
        spec.n_nodes,
        spec.n_edges,
        seed=seed,
        node_weight_range=spec.node_weight_range,
        edge_weight_range=spec.edge_weight_range,
        total_node_weight=spec.total_node_weight,
    )


def classify(spec: PaperExperimentSpec, seed: int) -> dict | None:
    g = build(spec, seed)
    cons = ConstraintSpec(bmax=spec.bmax, rmax=spec.rmax)
    if feasibility_certificate(g, spec.k, cons) is None:
        return None
    mlkp = mlkp_partition(g, spec.k, seed=0, constraints=cons)
    gp = gp_partition(g, spec.k, cons, GPConfig(max_cycles=20), seed=0)
    m, p = mlkp.metrics, gp.metrics
    return {
        "seed": seed,
        "gp_feasible": p.feasible,
        "mlkp_bw_viol": m.max_local_bandwidth > spec.bmax,
        "mlkp_res_viol": m.max_resource > spec.rmax,
        "mlkp_cut": m.cut,
        "gp_cut": p.cut,
        "mlkp_bw": m.max_local_bandwidth,
        "mlkp_res": m.max_resource,
        "gp_bw": p.max_local_bandwidth,
        "gp_res": p.max_resource,
        "gp_cycles": gp.info["cycles"],
    }


WANTED = {
    1: lambda r: r["gp_feasible"]
    and r["mlkp_bw_viol"]
    and r["mlkp_res_viol"]
    and r["gp_cut"] >= r["mlkp_cut"],
    2: lambda r: r["gp_feasible"]
    and r["mlkp_res_viol"]
    and not r["mlkp_bw_viol"]
    and r["gp_cut"] < r["mlkp_cut"],
    3: lambda r: r["gp_feasible"]
    and r["mlkp_bw_viol"]
    and not r["mlkp_res_viol"]
    and r["gp_cut"] >= r["mlkp_cut"],
}


def main() -> None:
    exps = [int(sys.argv[1])] if len(sys.argv) > 1 else [1, 2, 3]
    n_seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    for exp in exps:
        spec = PAPER_SPECS[exp]
        print(f"== {spec.name} (want: {WANTED[exp].__doc__ or 'pattern'}) ==")
        hits = []
        for seed in range(n_seeds):
            r = classify(replace(spec, seed=seed), seed)
            if r is None:
                continue
            flag = "  <== MATCH" if WANTED[exp](r) else ""
            if flag or len(hits) < 3:
                print(
                    f" seed={seed:3d} gp_ok={r['gp_feasible']} "
                    f"mlkp(bw={r['mlkp_bw']:g},res={r['mlkp_res']:g},"
                    f"cut={r['mlkp_cut']:g}) "
                    f"gp(bw={r['gp_bw']:g},res={r['gp_res']:g},"
                    f"cut={r['gp_cut']:g}) cyc={r['gp_cycles']}{flag}"
                )
            if WANTED[exp](r):
                hits.append(seed)
        print(f" matching seeds: {hits}")


if __name__ == "__main__":
    main()
