"""Table "EXPERIMENT II" (paper Section V.B).

12 nodes, 30 edges, K=4, Bmax=25, Rmax=130.  Published shape: METIS violates
resources while meeting bandwidth (cut 77, res 137, bw 25); GP meets both
and — "incidentally" — lands a *better* global cut (62, res 127, bw 18).
"""

from conftest import emit

from repro.bench.experiments import paper_experiment_table, run_paper_experiment


def test_table2_gp(benchmark):
    outcome = benchmark(run_paper_experiment, 2)
    checks = outcome.reproduces_paper_shape()
    assert checks["gp_feasible"], "GP must meet both constraints (Table II)"
    m = outcome.mlkp.metrics
    assert m.resource_violation > 0, "Table II: METIS violates resources"
    assert m.bandwidth_violation == 0, "Table II: METIS meets bandwidth"
    assert outcome.gp.cut < outcome.mlkp.cut, (
        "Table II's incidental result: GP's refinement yields a better cut"
    )
    emit("table2.txt", paper_experiment_table(2))
