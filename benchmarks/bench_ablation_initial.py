"""Study X3 — initial-partitioning restart ablation (extension).

Section IV.B repeats the greedy growing from "a parametrized number of
randomly chosen initial nodes (10 is default)".  This sweep varies the
restart budget and reports quality/runtime.
"""

from conftest import emit

from repro.bench.suites import restart_ablation
from repro.util.tables import format_table


def test_restart_ablation(benchmark):
    rows = benchmark.pedantic(restart_ablation, rounds=1, iterations=1)
    table = format_table(
        ["study", "params", "variant", "cut", "time(s)", "max_res", "max_bw", "feasible"],
        [r.as_list() for r in rows],
        title="X3 initial-partitioning restart ablation",
    )
    emit("x3_restart_ablation.txt", table)
    # more restarts must never lose feasibility on the same instance
    by_seed: dict[int, dict[int, bool]] = {}
    for r in rows:
        by_seed.setdefault(r.params["seed"], {})[r.params["restarts"]] = r.feasible
    for seed, grid in by_seed.items():
        if grid.get(1):
            assert grid.get(20, True), (
                f"seed {seed}: 20 restarts infeasible where 1 sufficed"
            )
