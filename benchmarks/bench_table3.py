"""Table "EXPERIMENT III" (paper Section V.C).

12 nodes, 32 edges, K=4, Bmax=20, Rmax=78 (the tightest resource regime:
total resources ~96% of K*Rmax).  Published shape: METIS violates bandwidth
badly (38 > 20) while meeting resources incidentally (78 <= 78); GP meets
both at a small cut premium (96 vs 90) and needs by far the longest runtime
of the three experiments (7.76s vs 0.25-0.33s).
"""

from conftest import emit

from repro.bench.experiments import paper_experiment_table, run_paper_experiment


def test_table3_gp(benchmark):
    outcome = benchmark(run_paper_experiment, 3)
    checks = outcome.reproduces_paper_shape()
    assert checks["gp_feasible"], "GP must meet both constraints (Table III)"
    m = outcome.mlkp.metrics
    assert m.bandwidth_violation > 0, "Table III: METIS violates bandwidth"
    assert m.resource_violation == 0, "Table III: METIS meets resources"
    assert checks["cut_difference_same_sign"], (
        "paper Table III has GP cut >= METIS cut"
    )
    emit("table3.txt", paper_experiment_table(3))
