"""Frozen pre-vectorization coarsening implementations (reference only).

Snapshot of the per-node/per-edge Python loop kernels of
``repro.partition.coarsen`` and ``repro.hypergraph.coarsen`` as of the
commit preceding their NumPy rewrite, plus a loop-form reference for the
rewritten random matching.  Two jobs:

* ``benchmarks/bench_parallel_portfolio.py`` times them against the
  vectorized kernels (the coarsening-speedup artifact), and
* ``tests/test_coarsen_vectorized.py`` pins the vectorized kernels to
  these references **exactly** (identical matching arrays, identical
  contracted graphs) under fixed seeds.

Three of the four kernels were vectorized move-for-move, so their
references here are verbatim snapshots:

* ``heavy_edge_matching_legacy`` — sequential greedy over the weight-sorted
  edge list; the vectorized version computes the same matching by iterated
  locally-dominant edge selection.
* ``contract_legacy`` — dict-merge contraction; the vectorized version
  reproduces the identical coarse ``WGraph`` (same arrays, same CSR).
* ``heavy_pin_matching_legacy`` — sequential greedy over static pair
  ratings; the visit permutation is the only randomness, so the vectorized
  rounds formulation is exact.

``random_maximal_matching`` is the exception: the old loop drew one
``rng.integers`` call per visited node (a state-dependent stream that no
array pass can replay), so the rewrite moved its randomness up front —
one pre-drawn random priority per adjacency slot, each node pairing with
its lowest-priority free neighbour.  Both forms of that are kept here:

* ``random_maximal_matching_legacy`` — the *old* semantics, for benchmark
  comparison only (its matchings differ stream-wise from the new ones);
* ``random_maximal_matching_loopref`` — the *new* semantics in loop form,
  which the vectorized kernel must reproduce exactly.

Do not "fix" or optimise this module: its value is that it does not change.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.hypergraph.hgraph import HGraph
from repro.util.rng import as_rng

__all__ = [
    "random_maximal_matching_legacy",
    "random_maximal_matching_loopref",
    "heavy_edge_matching_legacy",
    "matching_quality_legacy",
    "contract_legacy",
    "heavy_pin_matching_legacy",
]


def random_maximal_matching_legacy(g: WGraph, seed=None) -> np.ndarray:
    """Pre-vectorization random matching (one RNG draw per visited node)."""
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    matched = np.zeros(g.n, dtype=bool)
    for u in rng.permutation(g.n):
        u = int(u)
        if matched[u]:
            continue
        nbrs = g.neighbors(u)
        free = nbrs[~matched[nbrs]]
        if free.size == 0:
            continue
        v = int(free[rng.integers(0, free.size)])
        match[u], match[v] = v, u
        matched[u] = matched[v] = True
    return match


def random_maximal_matching_loopref(g: WGraph, seed=None) -> np.ndarray:
    """Loop-form reference of the *vectorized* random matching semantics.

    All randomness is pre-drawn: one random priority per CSR adjacency
    slot (a single permutation — unique, tie-free) plus a visit
    permutation.  Each unmatched node, in visit order, pairs with the free
    neighbour behind its lowest-priority slot.  A random permutation
    restricted to any slot subset ranks that subset uniformly, so each
    choice is still a uniformly random free neighbour; the matching
    distribution matches the legacy semantics even though the streams
    differ.
    """
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    if g.n == 0:
        return match
    indptr, indices, _ = g.csr
    slot_pri = rng.permutation(indices.size)
    matched = np.zeros(g.n, dtype=bool)
    for u in rng.permutation(g.n):
        u = int(u)
        if matched[u]:
            continue
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        slot_free = ~matched[indices[lo:hi]]
        if not slot_free.any():
            continue
        pri = np.where(slot_free, slot_pri[lo:hi], np.iinfo(np.int64).max)
        v = int(indices[lo + int(np.argmin(pri))])
        match[u], match[v] = v, u
        matched[u] = matched[v] = True
    return match


def heavy_edge_matching_legacy(g: WGraph, seed=None) -> np.ndarray:
    """Pre-vectorization HEM (sequential greedy over the sorted edge list)."""
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    if g.m == 0:
        return match
    eu, ev, ew = g.edge_array
    jitter = rng.permutation(g.m)
    order = np.lexsort((jitter, -ew))
    matched = np.zeros(g.n, dtype=bool)
    for i in order:
        u, v = int(eu[i]), int(ev[i])
        if not matched[u] and not matched[v]:
            match[u], match[v] = v, u
            matched[u] = matched[v] = True
    return match


def matching_quality_legacy(g: WGraph, match: np.ndarray) -> float:
    """Pre-vectorization matched-edge-weight total (per-node loop)."""
    total = 0.0
    for u in range(g.n):
        v = int(match[u])
        if v > u:
            total += g.edge_weight(u, v)
    return total


def contract_legacy(g: WGraph, match: np.ndarray) -> tuple[WGraph, np.ndarray]:
    """Pre-vectorization contraction (dict edge-merge, per-edge loop)."""
    node_map = np.full(g.n, -1, dtype=np.int64)
    next_id = 0
    for u in range(g.n):
        if node_map[u] >= 0:
            continue
        v = int(match[u])
        node_map[u] = next_id
        if v != u:
            node_map[v] = next_id
        next_id += 1
    coarse_w = np.zeros(next_id, dtype=np.float64)
    np.add.at(coarse_w, node_map, g.node_weights)
    merged: dict[tuple[int, int], float] = {}
    for u, v, w in g.edges():
        cu, cv = int(node_map[u]), int(node_map[v])
        if cu == cv:
            continue
        key = (cu, cv) if cu < cv else (cv, cu)
        merged[key] = merged.get(key, 0.0) + w
    edges = [(u, v, w) for (u, v), w in merged.items()]
    return WGraph(next_id, edges, node_weights=coarse_w), node_map


def heavy_pin_matching_legacy(hg: HGraph, seed=None) -> np.ndarray:
    """Pre-vectorization heavy-edge hypergraph matching (per-node dicts)."""
    rng = as_rng(seed)
    match = np.arange(hg.n, dtype=np.int64)
    matched = np.zeros(hg.n, dtype=bool)
    w = hg.net_weights
    for u in rng.permutation(hg.n):
        u = int(u)
        if matched[u]:
            continue
        rating: dict[int, float] = {}
        for e in hg.nets_of(u):
            e = int(e)
            pins = hg.pins_of(e)
            if pins.size < 2:
                continue
            r = float(w[e]) / (pins.size - 1)
            for v in pins:
                v = int(v)
                if v != u and not matched[v]:
                    rating[v] = rating.get(v, 0.0) + r
        if not rating:
            continue
        v = min(rating, key=lambda x: (-rating[x], x))
        match[u], match[v] = v, u
        matched[u] = matched[v] = True
    return match
