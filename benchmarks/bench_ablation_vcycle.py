"""Study X8 — V-cycle refinement ablation (extension).

Section IV's "un-coarsened up to a certain intermediate level and then
coarsened back" has two realisations in this library: full restart cycles
(always on) and partition-preserving V-cycles (``GPConfig.vcycles``).  This
ablation measures what the V-cycles buy on mid-size tight instances.
"""

from conftest import emit

from repro.bench.suites import tight_instance
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.goodness import goodness_key
from repro.util.tables import format_table


def run_study():
    rows = []
    for seed in (0, 1, 2):
        g, cons = tight_instance(180, 4, seed=400 + seed)
        for vcycles in (0, 1, 2):
            cfg = GPConfig(
                max_cycles=3, restarts=5, coarsen_to=40, vcycles=vcycles
            )
            res = gp_partition(g, 4, cons, cfg, seed=seed)
            rows.append(
                {
                    "seed": seed,
                    "vcycles": vcycles,
                    "cut": res.metrics.cut,
                    "runtime": res.runtime,
                    "feasible": res.feasible,
                    "key": goodness_key(res.metrics, cons),
                }
            )
    return rows


def test_vcycle_ablation(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = format_table(
        ["seed", "vcycles", "cut", "time(s)", "feasible"],
        [
            [r["seed"], r["vcycles"], r["cut"], round(r["runtime"], 3),
             r["feasible"]]
            for r in rows
        ],
        title="X8 V-cycle refinement ablation (GP, n=180, K=4)",
    )
    emit("x8_vcycle_ablation.txt", table)
    # V-cycles must never worsen the goodness on the same seed
    by_seed = {}
    for r in rows:
        by_seed.setdefault(r["seed"], {})[r["vcycles"]] = r
    for seed, grid in by_seed.items():
        assert grid[2]["key"] <= grid[0]["key"], (
            f"seed {seed}: 2 V-cycles worsened the result vs 0"
        )
