#!/usr/bin/env python
"""Heterogeneous multi-FPGA mapping with vector resources and a ring.

Extensions beyond the paper's homogeneous scalar model (documented in
DESIGN.md): per-device resource *vectors* (LUT/FF/BRAM/DSP) and a restricted
ring interconnect where non-adjacent FPGA pairs have no direct link, so any
traffic between them is a hard violation.

Run:  python examples/multi_fpga_mapping.py
"""

import numpy as np

from repro.fpga import FPGADevice, Mapping, MultiFPGASystem, ResourceVector
from repro.graph import random_process_network
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec


def main() -> None:
    g = random_process_network(
        n=16, m=34, seed=7, node_weight_range=(500, 3000),
        edge_weight_range=(1, 8),
    )
    k = 4
    rmax = 1.2 * g.total_node_weight / k
    bmax = 14.0

    # 1. partition with the paper's scalar model
    cons = ConstraintSpec(bmax=bmax, rmax=rmax)
    result = gp_partition(g, k, cons, GPConfig(max_cycles=10), seed=0)
    print(f"GP: cut={result.cut:g}, feasible={result.feasible}")

    # 2. bind to a heterogeneous board set (vector capacities)
    devices = [
        FPGADevice("z7020-a", ResourceVector(luts=12_000, dsps=60)),
        FPGADevice("z7020-b", ResourceVector(luts=12_000, dsps=60)),
        FPGADevice("vx485t", ResourceVector(luts=30_000, dsps=400)),
        FPGADevice("ku115", ResourceVector(luts=40_000, dsps=800)),
    ]
    # vector loads: LUTs from node weights, DSPs ~ weight/100
    node_resources = [
        ResourceVector(luts=float(w), dsps=float(w) / 100.0)
        for w in g.node_weights
    ]
    all_to_all = MultiFPGASystem(devices, bmax=bmax)
    mapping = Mapping(g, result.assign, all_to_all, node_resources=node_resources)
    report = mapping.validate()
    print("\nall-to-all heterogeneous system:")
    print(report.summary())

    # If the scalar-feasible partition overflows a small device, remap the
    # heaviest partition onto the biggest board (slot permutation).
    if not report.valid:
        loads = [mapping.device_load(c).total for c in range(k)]
        order = np.argsort(loads)  # lightest..heaviest partitions
        caps = np.argsort([d.capacity.total for d in devices])
        perm = np.empty(k, dtype=np.int64)
        perm[order] = caps  # heaviest partition -> biggest device
        remapped = perm[result.assign]
        mapping = Mapping(g, remapped, all_to_all, node_resources=node_resources)
        print("\nafter slot permutation (heavy partitions on big boards):")
        print(mapping.validate().summary())

    # 3. the same partition on a ring: non-adjacent traffic is disallowed
    ring = MultiFPGASystem.ring(k, rmax=rmax, bmax=bmax)
    ring_map = Mapping(g, result.assign, ring)
    ring_report = ring_map.validate()
    print("\nring topology (links only between neighbours):")
    print(ring_report.summary())
    zero_cap = [v for v in ring_report.violations if v.capacity == 0.0]
    print(f"({len(zero_cap)} violations are missing-link pairs — the paper's "
          f"all-to-all assumption does not hold on a ring)")


if __name__ == "__main__":
    main()
