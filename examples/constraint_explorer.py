#!/usr/bin/env python
"""Constraint exploration: find the feasibility frontier of an instance.

Given a process network and K FPGAs, sweep (Bmax, Rmax) and report where GP
still finds feasible mappings, where it degrades to least-violating, and —
on small instances — where exhaustive search *proves* infeasibility (the
paper's closing remark: "partitioning with these constraints is either
impossible or we have to give the tool more time").

Run:  python examples/constraint_explorer.py
"""

from repro.graph import paper_graph
from repro.partition.exact import feasibility_certificate
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.util.tables import format_table


def main() -> None:
    g, spec = paper_graph(1)
    k = spec.k
    print(f"instance: {spec.name} reconstruction "
          f"(n={g.n}, m={g.m}, K={k})")
    print(f"published operating point: Bmax={spec.bmax:g}, Rmax={spec.rmax:g}\n")

    rows = []
    for bmax_scale, rmax_scale in [
        (1.5, 1.2), (1.0, 1.0), (0.9, 1.0), (1.0, 0.95), (0.8, 0.9), (0.6, 0.85),
    ]:
        bmax = round(spec.bmax * bmax_scale)
        rmax = round(spec.rmax * rmax_scale)
        cons = ConstraintSpec(bmax=bmax, rmax=rmax)
        proven = feasibility_certificate(g, k, cons)
        gp = gp_partition(g, k, cons, GPConfig(max_cycles=15), seed=0)
        rows.append([
            f"{bmax:g}", f"{rmax:g}",
            "feasible" if proven is not None else "IMPOSSIBLE (proven)",
            "yes" if gp.feasible else "no",
            gp.cut,
            f"{gp.metrics.bandwidth_violation:g}"
            f"+{gp.metrics.resource_violation:g}",
            gp.info["cycles"],
        ])
    print(format_table(
        ["Bmax", "Rmax", "exact verdict", "GP feasible", "GP cut",
         "GP violation (bw+res)", "cycles"],
        rows,
        title="feasibility frontier sweep",
    ))
    print("\nreading: GP finds every feasible point; on proven-impossible "
          "points it burns its cycle budget and reports the least-violating "
          "mapping instead of looping forever.")


if __name__ == "__main__":
    main()
