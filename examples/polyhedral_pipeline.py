#!/usr/bin/env python
"""End-to-end polyhedral flow: loop nest -> PPN -> simulate -> map to FPGAs.

This is the full workflow the paper's title describes:

1. write a Static Affine Nested Loop Program (a Sobel edge detector),
2. derive its Polyhedral Process Network with exact dataflow analysis,
3. simulate the KPN to measure sustained per-channel bandwidths,
4. partition the network over 2 FPGAs with GP under Bmax/Rmax,
5. validate the mapping against the platform model.

Run:  python examples/polyhedral_pipeline.py
"""

from repro.core.api import map_to_fpgas, partition_ppn
from repro.kpn import simulate_ppn
from repro.polyhedral import derive_ppn
from repro.polyhedral.gallery import sobel


def main() -> None:
    # 1. the SANLP: pixel source, gx/gy gradient stages, magnitude merge
    prog = sobel(rows=32, cols=32)
    print(f"program: {prog.name}, statements:",
          [s.name for s in prog.statements])

    # 2. derive the PPN (one process per statement, one FIFO per dependence)
    ppn = derive_ppn(prog)
    print(f"derived PPN: {ppn.n_processes} processes, "
          f"{ppn.n_channels} channels, {ppn.total_tokens()} tokens total")
    for ch in ppn.channels:
        print(f"  {ch.src:>6s} -> {ch.dst:<6s} [{ch.array}] "
              f"{ch.token_count} tokens (FIFO order ok: "
              f"{ch.dependence.in_order})")

    # 3. simulate: makespan, per-channel sustained bandwidth, buffer peaks
    sim = simulate_ppn(ppn)
    print(f"\nsimulation: {sim.cycles} cycles, "
          f"{sim.total_traffic} tokens moved")
    for cs in sim.channel_stats:
        print(f"  {cs.src:>6s} -> {cs.dst:<6s} sustained "
              f"{cs.sustained_bandwidth:.2f} tokens/cycle, "
              f"peak FIFO {cs.peak_occupancy}")

    # 4. partition over 2 FPGAs using sustained bandwidths as edge weights.
    #    The gradient stages each pull ~8 tokens/cycle from the pixel source
    #    (scaled x100 -> ~800), so Bmax must keep source and gradients
    #    together; Rmax = 80% of the total leaves exactly one feasible shape:
    #    {pixel, gx, gy} | {mag}.
    total_res = sum(p.resources for p in ppn.processes)
    rmax = 0.8 * total_res
    result, graph, names = partition_ppn(
        ppn, k=2, bmax=250.0, rmax=rmax,
        bandwidth_mode="sustained", bandwidth_scale=100.0, seed=0,
    )
    print(f"\nGP partition: cut={result.metrics.cut:g}, "
          f"feasible={result.feasible}")

    # 5. validate the mapping on the platform model
    mapping = map_to_fpgas(graph, result, bmax=250.0, rmax=rmax, names=names)
    report = mapping.validate()
    print(report.summary())
    for slot in range(2):
        print(f"  fpga{slot}: {mapping.processes_on(slot)} "
              f"(load {mapping.device_load(slot).total:g})")

    assert mapping.is_valid


if __name__ == "__main__":
    main()
