#!/usr/bin/env python
"""Multi-resource partitioning: LUTs, BRAMs and DSPs budgeted together.

The paper models a single resource ("for example LUTs") and names the
vector case as the obvious extension.  This example shows why it matters:
a partition that balances LUTs can still pile every DSP-hungry process onto
one FPGA.  The vector-aware partitioner (repro.partition.multires) enforces
all budgets simultaneously.

Run:  python examples/vector_resources.py
"""

import numpy as np

from repro.graph import random_process_network
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.multires import (
    VectorConstraints,
    evaluate_multires,
    mr_gp_partition,
)
from repro.util.tables import format_table


def main() -> None:
    k = 4
    g = random_process_network(n=28, m=64, seed=0)
    rng = np.random.default_rng(0)
    # three resources with very different shapes: smooth LUTs, lumpy BRAMs,
    # rare DSPs (a handful of processes hog them)
    weights = np.stack(
        [
            rng.integers(20, 80, g.n).astype(float),
            rng.choice([0, 0, 0, 8, 12], g.n).astype(float),
            rng.choice([0, 0, 1, 2, 6], g.n).astype(float),
        ],
        axis=1,
    )
    rmax = (
        1.25 * weights[:, 0].sum() / k,
        1.45 * weights[:, 1].sum() / k,
        1.5 * weights[:, 2].sum() / k,
    )
    bmax = 0.35 * g.total_edge_weight
    cons = VectorConstraints(bmax=bmax, rmax=rmax, names=("luts", "brams", "dsps"))
    print(f"instance: n={g.n}, m={g.m}, K={k}")
    print(f"budgets per FPGA: luts={rmax[0]:.0f}, brams={rmax[1]:.0f}, "
          f"dsps={rmax[2]:.0f}, Bmax={bmax:.0f}\n")

    vector = mr_gp_partition(g, weights, k, cons, seed=0)
    scalar = gp_partition(
        g.with_node_weights(weights[:, 0]), k,
        ConstraintSpec(bmax=bmax, rmax=rmax[0]),
        GPConfig(max_cycles=10), seed=0,
    )
    scalar_m = evaluate_multires(g, weights, scalar.assign, k, cons)

    rows = []
    for tag, m in (("vector-aware GP", vector.metrics),
                   ("LUT-only GP (audited)", scalar_m)):
        rows.append([
            tag, m.cut, m.feasible,
            f"{m.max_loads[0]:.0f}/{rmax[0]:.0f}",
            f"{m.max_loads[1]:.0f}/{rmax[1]:.0f}",
            f"{m.max_loads[2]:.0f}/{rmax[2]:.0f}",
        ])
    print(format_table(
        ["partitioner", "cut", "all budgets met",
         "luts (max/cap)", "brams (max/cap)", "dsps (max/cap)"],
        rows,
    ))
    print("\nreading: optimising LUTs alone leaves BRAM/DSP overflows that "
          "the vector-aware run eliminates at a small cut premium.")
    assert vector.feasible


if __name__ == "__main__":
    main()
