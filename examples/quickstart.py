#!/usr/bin/env python
"""Quickstart: partition a process network onto 4 FPGAs in ~20 lines.

Builds a 12-node process network, partitions it with the paper's GP
algorithm under a bandwidth cap (Bmax) and a resource cap (Rmax), compares
against the METIS-like unconstrained baseline, and prints the paper-style
table.

Run:  python examples/quickstart.py
"""

from repro.core import partition_graph
from repro.core.report import comparison_report
from repro.graph import random_process_network
from repro.partition.metrics import ConstraintSpec
from repro.viz import render_ascii


def main() -> None:
    # A process network: node weights = FPGA resources (e.g. LUTs),
    # edge weights = sustained channel bandwidth.
    g = random_process_network(
        n=12,
        m=30,
        seed=42,
        node_weight_range=(20, 70),
        edge_weight_range=(1, 6),
    )
    k = 4
    bmax = 18.0  # per-FPGA-pair link capacity
    rmax = 1.15 * g.total_node_weight / k  # per-FPGA resource budget

    gp = partition_graph(g, k, bmax=bmax, rmax=rmax, method="gp", seed=0)
    baseline = partition_graph(g, k, bmax=bmax, rmax=rmax, method="mlkp", seed=0)

    constraints = ConstraintSpec(bmax=bmax, rmax=rmax)
    print(comparison_report([baseline, gp], constraints, title="quickstart"))
    print()
    print(render_ascii(g, assign=gp.assign, k=k, constraints=constraints,
                       title="GP mapping"))

    assert gp.feasible, "GP should satisfy both constraints on this instance"


if __name__ == "__main__":
    main()
