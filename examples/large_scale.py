#!/usr/bin/env python
"""Large-scale partitioning: the regime the paper motivates.

Section I argues exact methods die on "graphs with potentially thousands
nodes" — this example partitions a 1500-node process network over 8 FPGAs
with GP and the METIS-like baseline, exercising the real multilevel path
(several coarsening levels), and prints the level structure and timings.

Run:  python examples/large_scale.py
"""

import time

from repro.graph import random_process_network
from repro.partition.coarsen import build_hierarchy
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.mlkp import mlkp_partition


def main() -> None:
    n, k = 1500, 8
    g = random_process_network(
        n=n, m=int(2.4 * n), seed=1, node_weight_range=(4, 40),
        edge_weight_range=(1, 6),
    )
    # tight caps: resources at 1.025x ideal (just inside METIS's 1.03
    # balance envelope) and a pairwise bandwidth cap below what a pure
    # cut-minimiser spreads onto its busiest FPGA pair
    rmax = 1.025 * g.total_node_weight / k
    bmax = 90.0
    cons = ConstraintSpec(bmax=bmax, rmax=rmax)
    print(f"instance: n={g.n}, m={g.m}, K={k}, "
          f"Bmax={bmax:g}, Rmax={rmax:g}")

    t0 = time.perf_counter()
    hier = build_hierarchy(g, coarsen_to=100, seed=0)
    t_coarsen = time.perf_counter() - t0
    sizes = [lvl.graph.n for lvl in hier.levels]
    methods = [lvl.method for lvl in hier.levels[1:]]
    print(f"hierarchy: {' -> '.join(map(str, sizes))} "
          f"({t_coarsen:.2f}s; winning matchings: {methods})")

    gp = gp_partition(
        g, k, cons,
        GPConfig(max_cycles=3, restarts=5, level_candidates=2), seed=0,
    )
    print(f"GP:   cut={gp.cut:g} feasible={gp.feasible} "
          f"max_bw={gp.metrics.max_local_bandwidth:g} "
          f"max_res={gp.metrics.max_resource:g} "
          f"({gp.runtime:.2f}s, {gp.info['cycles']} cycle(s), "
          f"{gp.info['levels']} levels)")

    mlkp = mlkp_partition(g, k, seed=0, constraints=cons)
    print(f"MLKP: cut={mlkp.cut:g} feasible={mlkp.feasible} "
          f"max_bw={mlkp.metrics.max_local_bandwidth:g} "
          f"max_res={mlkp.metrics.max_resource:g} ({mlkp.runtime:.2f}s)")

    if gp.feasible and not mlkp.feasible:
        print("\nheadline shape holds at scale: GP satisfies the mapping "
              "constraints, the cut-minimising baseline does not.")


if __name__ == "__main__":
    main()
