#!/usr/bin/env python
"""Regenerate the paper's three experiment tables (Section V).

Prints, for each experiment, the measured table in the paper's format plus
the published numbers for side-by-side comparison.  The same code path the
``benchmarks/bench_table*.py`` drivers measure.

Run:  python examples/paper_tables.py
"""

from repro.bench.experiments import paper_experiment_table, run_paper_experiment


def main() -> None:
    for exp in (1, 2, 3):
        print(paper_experiment_table(exp))
        outcome = run_paper_experiment(exp)
        checks = outcome.reproduces_paper_shape()
        failed = [name for name, ok in checks.items() if not ok]
        verdict = "all shape checks hold" if not failed else f"FAILED: {failed}"
        print(f"shape checks: {verdict}")
        print("=" * 78)


if __name__ == "__main__":
    main()
