"""Command-line interface.

Usage (see ``python -m repro --help``):

* ``python -m repro partition --input g.json --k 4 --bmax 16 --rmax 165``
  — partition a graph (JSON, METIS ``.graph``, incidence text or hMETIS
  ``.hgr``) with any of the methods and print the paper-style report.
  ``--model hypergraph`` partitions under the (λ−1) connectivity metric
  (multicasts charged once per extra FPGA); graph inputs are lifted to
  2-pin hypergraphs, ``.hgr`` inputs are taken as-is.
  ``--resources res.json`` plus a comma-separated ``--rmax`` vector
  (e.g. ``--rmax 400,600,40,12``) switches to componentwise
  multi-resource budgets (``--method gp``/``evolve`` with ``--model
  graph`` only; see ``docs/multires.md``).
* ``python -m repro tables [--experiment N]`` — regenerate the paper tables.
* ``python -m repro figures --out DIR`` — regenerate Figures 2-13 artefacts.
* ``python -m repro generate --n 12 --m 30 --out g.json`` — synthesise a
  process-network instance; with ``--fanout F`` a multicast-heavy
  *hypergraph* instance is written instead (``.hgr``); with
  ``--resources res.json`` a device-shaped per-node resource matrix is
  written alongside the graph.
* ``python -m repro cache [--stats] [--clear] [--dir DIR]`` — inspect (or
  drop) the in-process portfolio/evolve/multires memo caches, and with
  ``--dir`` a persistent on-disk cache; ``partition --no-cache`` forces
  a cold evolve (or vector-gp) run.
* ``python -m repro serve --port 8077 --cache-dir ~/.cache/repro`` — run
  the partitioning daemon: JSON requests over HTTP, digest-keyed results
  served from a persistent cache, concurrent duplicates computed once
  (see ``docs/serve.md``).  ``GET /metrics?format=prometheus`` exposes
  the metrics registry in the Prometheus text format.
* ``python -m repro bench --suite smoke`` — run a registered benchmark
  suite and write ``benchmarks/artifacts/BENCH_<suite>.json``; with
  ``--compare BASELINE.json`` judge the run against a stored baseline
  (exit 3 on regression — the CI gate; see ``docs/observability.md``).

``--method evolve`` selects the memetic population search (either
``--model``); ``--generations`` / ``--time-budget`` / ``--pop-size``
shape its budget (see ``docs/evolve.md``).

``--refine flow|fm+flow`` swaps or augments the multilevel methods'
refinement stage with corridor max-flow passes (``--method
gp/mlkp/evolve``; see ``docs/refinement.md``).

``python -m repro`` and the ``repro`` console script expose the identical
surface (``tests/test_cli_parity.py`` pins the parity).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

import repro.obs as _obs
from repro.bench.experiments import paper_experiment_table
from repro.bench.figures import write_figure_artifacts
from repro.core.api import partition_graph
from repro.evolve.ea import (
    EvolveConfig,
    clear_evolve_cache,
    evolve_cache,
    evolve_partition,
)
from repro.core.report import comparison_report, multires_report
from repro.fpga.resources import random_device_matrix
from repro.graph.generators import multicast_network, random_process_network
from repro.graph.io import graph_from_json, graph_to_json
from repro.graph.matrixio import parse_incidence_text
from repro.graph.metisio import parse_hmetis, parse_metis, save_hmetis
from repro.graph.wgraph import WGraph
from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.partition import hyper_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.multires import clear_multires_cache, multires_cache
from repro.partition.portfolio import clear_portfolio_cache, portfolio_cache
from repro.partition.vector_state import VectorConstraints
from repro.util.errors import ReproError
from repro.viz.ascii_art import render_ascii
from repro.viz.dot import to_dot

__all__ = ["main", "build_parser"]


def _load_graph(path: str) -> WGraph:
    text = Path(path).read_text()
    suffix = Path(path).suffix.lower()
    if suffix == ".hgr":
        raise ReproError(
            f"{path} is a hypergraph instance; re-run with --model hypergraph"
        )
    if suffix == ".json":
        return graph_from_json(text)
    if suffix == ".graph":
        return parse_metis(text)
    if suffix in (".inc", ".txt"):
        return parse_incidence_text(text)
    # sniff: JSON object vs METIS header vs incidence
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return graph_from_json(text)
    if stripped.startswith("#"):
        return parse_incidence_text(text)
    return parse_metis(text)


def _load_hypergraph(path: str) -> HGraph:
    """`.hgr` files load natively; every graph format lifts to 2-pin nets."""
    if Path(path).suffix.lower() == ".hgr":
        return parse_hmetis(Path(path).read_text())
    return HGraph.from_wgraph(_load_graph(path))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "K-Ways Partitioning of Polyhedral Process Networks "
            "(IPDPSW 2015) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a process-network graph")
    p.add_argument("--input", required=True, help=".json/.graph/.inc/.hgr file")
    p.add_argument("--k", type=int, required=True, help="number of FPGAs")
    p.add_argument("--bmax", type=float, default=float("inf"))
    p.add_argument("--rmax", default="inf", metavar="R[,R...]",
                   help="per-partition resource budget; a comma-separated "
                        "vector (with --resources) caps each resource "
                        "componentwise (--method gp/evolve only)")
    p.add_argument("--resources", metavar="FILE", default=None,
                   help="per-node resource matrix (JSON: [[...]] rows or "
                        "{'weights': ..., 'names': ...}); switches to "
                        "vector budgets — needs a comma-separated --rmax "
                        "(--method gp/evolve with --model graph only)")
    p.add_argument(
        "--method",
        default="gp",
        choices=["gp", "mlkp", "spectral", "exact", "hyper", "evolve"],
    )
    p.add_argument(
        "--model",
        default="graph",
        choices=["graph", "hypergraph"],
        help="traffic model: 2-pin edge cut (graph) or (λ-1) connectivity "
             "(hypergraph; .hgr inputs load natively, graphs are lifted)",
    )
    p.add_argument(
        "--refine",
        default="fm",
        choices=["fm", "flow", "fm+flow"],
        help="refinement stage of the multilevel methods: the native "
             "local search (fm, default), corridor max-flow passes "
             "replacing it (flow), or fm plus a guarded flow polish that "
             "is never worse than fm (fm+flow) — --method gp/mlkp/evolve "
             "(--model hypergraph: evolve only); see docs/refinement.md",
    )
    p.add_argument(
        "--conn-format",
        default="auto",
        choices=["auto", "dense", "sparse"],
        help="refinement engine connectivity store: dense (k,n) matrices, "
             "the degree-sized sparse store, or pick by instance size "
             "(auto, default) — results are bit-identical either way; "
             "--method gp/mlkp with --model graph, scalar --rmax; see "
             "docs/refinement.md",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes racing the method's independent "
                        "randomized work (-1 = all CPUs; results are "
                        "bit-identical to --jobs 1, only faster; --method "
                        "gp with --model graph, or --method evolve with "
                        "either model)")
    p.add_argument("--generations", type=int, default=None, metavar="G",
                   help="evolve: generation cap (--method evolve only)")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="evolve: wall-clock budget in seconds, checked at "
                        "generation boundaries (--method evolve only)")
    p.add_argument("--pop-size", type=int, default=None, metavar="P",
                   help="evolve: population size (--method evolve only)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the in-process memo caches (cold run; "
                        "--method evolve, or --method gp with --resources)")
    p.add_argument("--compare", action="store_true",
                   help="also run the METIS-like baseline and compare")
    p.add_argument("--dot", metavar="FILE", help="write partitioned DOT here")
    p.add_argument("--assign-out", metavar="FILE",
                   help="write the assignment as JSON here")
    p.add_argument("--profile", action="store_true",
                   help="run under the observability capture and print the "
                        "aggregated span/metric profile after the report "
                        "(results are bit-identical; docs/observability.md)")
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write a Chrome trace-event JSON of the run here "
                        "(Perfetto-loadable; summarise it later with "
                        "`repro profile --trace FILE`)")
    p.add_argument("--mem", action="store_true",
                   help="with --profile/--trace-out: also measure memory — "
                        "per-span peak/retained bytes (tracemalloc) and the "
                        "big-allocation gauges; slower, results still "
                        "bit-identical")

    t = sub.add_parser("tables", help="regenerate the paper's tables")
    t.add_argument("--experiment", type=int, choices=[1, 2, 3], default=None)

    f = sub.add_parser("figures", help="regenerate Figures 2-13 artefacts")
    f.add_argument("--out", default="artifacts", help="output directory")
    f.add_argument("--html", action="store_true",
                   help="also write one self-contained HTML report per experiment")

    g = sub.add_parser("generate", help="synthesise a process network")
    g.add_argument("--n", type=int, required=True)
    g.add_argument("--m", type=int, default=None,
                   help="edge count (graph output; ignored with --fanout)")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--node-weights", default="10,60",
                   help="node weight range lo,hi")
    g.add_argument("--edge-weights", default="1,8",
                   help="edge weight range lo,hi")
    g.add_argument("--fanout", type=int, default=None,
                   help="emit a multicast-heavy hypergraph (.hgr) with this "
                        "broadcast fan-out instead of a graph; --edge-weights "
                        "then sets the backbone chain-net range (broadcast "
                        "nets stay heavier)")
    g.add_argument("--resources", metavar="FILE", default=None,
                   help="also write a device-shaped per-node resource "
                        "matrix (LUTs/FFs/BRAMs/DSPs) to FILE, ready for "
                        "`partition --resources` (graph output only)")
    g.add_argument("--n-resources", type=int, default=4, metavar="R",
                   help="resource columns in the --resources matrix "
                        "(1-4, default 4)")
    g.add_argument("--out", required=True, help="output .json (or .hgr) path")

    c = sub.add_parser(
        "cache",
        help="inspect or clear the in-process portfolio/evolve/multires "
             "memo caches (and, with --dir, a persistent disk cache)",
    )
    c.add_argument("--stats", action="store_true",
                   help="print per-cache size and hit/miss stats "
                        "(the default action)")
    c.add_argument("--clear", action="store_true",
                   help="drop every memoised portfolio, evolve and "
                        "multires result (with --dir: the disk store too)")
    c.add_argument("--dir", metavar="DIR", default=None,
                   help="also inspect/clear the persistent disk cache at "
                        "DIR (the directory `repro serve --cache-dir` "
                        "writes)")

    s = sub.add_parser(
        "serve",
        help="run the partitioning daemon (persistent digest-keyed cache, "
             "single-flight dedup; see docs/serve.md)",
    )
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8077,
                   help="TCP port (0 = pick an ephemeral port and print it)")
    s.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent result-cache directory; omitting it "
                        "serves from memory only (no warm restarts)")
    s.add_argument("--cache-mb", type=int, default=256, metavar="MB",
                   help="disk-cache size budget in MiB (default 256)")
    s.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes racing gp/evolve work per "
                        "request (-1 = all CPUs available to the daemon); "
                        "kept warm across requests; results are "
                        "bit-identical for every value")
    s.add_argument("--memory-entries", type=int, default=256, metavar="E",
                   help="in-memory result-cache entries layered above "
                        "the disk store (default 256)")

    pr = sub.add_parser(
        "profile",
        help="validate and summarise a Chrome trace written by "
             "`partition --trace-out` (aggregated spans + metric series)",
    )
    pr.add_argument("--trace", required=True, metavar="FILE",
                    help="trace-event JSON file to summarise")
    pr.add_argument("--mem", action="store_true",
                    help="force the memory columns (peak/allocated bytes "
                         "per call path) even when no span carries them; "
                         "they appear automatically for traces recorded "
                         "with `partition --profile --mem`")

    b = sub.add_parser(
        "bench",
        help="run a registered benchmark suite, write the structured "
             "BENCH JSON artifact, optionally gate against a baseline "
             "(see docs/observability.md)",
    )
    b.add_argument("--suite", metavar="NAME", default=None,
                   help="registered suite to run (see --list)")
    b.add_argument("--list", action="store_true",
                   help="list registered suites and exit")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--out", metavar="FILE", default=None,
                   help="artifact path (default "
                        "benchmarks/artifacts/BENCH_<suite>.json)")
    b.add_argument("--compare", metavar="BASELINE", default=None,
                   help="judge the run against this stored BENCH JSON; "
                        "exit 3 if any shared metric regressed past its "
                        "tolerance band")
    b.add_argument("--current", metavar="FILE", default=None,
                   help="with --compare: judge this stored BENCH JSON "
                        "instead of re-running the suite (what CI does — "
                        "no timing noise from a second run)")
    b.add_argument("--tolerance", metavar="PAT=FRAC", action="append",
                   default=[],
                   help="override a tolerance band: fnmatch pattern on "
                        "metric names = relative fraction, e.g. "
                        "'*.runtime=0.3' (repeatable; per-unit defaults: "
                        "s/ms 15%%, bytes 25%%, else exact)")
    return parser


def _parse_rmax(text: str):
    """``--rmax`` value: a float, or a comma-separated tuple of floats."""
    text = str(text)
    try:
        if "," not in text:
            return float(text)
        vals = tuple(float(p) for p in text.split(",") if p != "")
    except ValueError:
        raise ReproError(f"bad --rmax value {text!r}") from None
    if not vals:
        raise ReproError(f"bad --rmax value {text!r}")
    return vals


def _load_resource_matrix(path: str) -> tuple[np.ndarray, tuple[str, ...]]:
    """``--resources`` file: JSON ``[[...]]`` rows, or an object with
    ``weights`` rows and optional ``names`` column labels."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read resource matrix {path}: {exc}") from exc
    names: tuple[str, ...] = ()
    if isinstance(data, dict):
        if "weights" not in data:
            raise ReproError(
                f"{path}: resource object needs a 'weights' row list"
            )
        names = tuple(data.get("names", ()))
        rows = data["weights"]
    else:
        rows = data
    try:
        w = np.asarray(rows, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"{path}: bad resource rows: {exc}") from exc
    if w.ndim != 2:
        raise ReproError(
            f"{path}: resource matrix must be rows of equal length, "
            f"got shape {w.shape}"
        )
    if names and len(names) != w.shape[1]:
        raise ReproError(
            f"{path}: {len(names)} names for {w.shape[1]} resource columns"
        )
    return w, names


def _evolve_config(args: argparse.Namespace) -> EvolveConfig | None:
    """EvolveConfig from the CLI budget knobs (None = library defaults);
    rejects the knobs for every other method so they stay honest."""
    if args.method != "evolve":
        given = [
            name
            for name, v in (
                ("--generations", args.generations),
                ("--time-budget", args.time_budget),
                ("--pop-size", args.pop_size),
            )
            if v is not None  # `v` may be a legitimate (if invalid) 0
        ]
        if given:
            raise ReproError(
                f"{', '.join(given)} applies to --method evolve only"
            )
        return None
    fields = {}
    if args.generations is not None:
        fields["generations"] = args.generations
    if args.time_budget is not None:
        fields["time_budget"] = args.time_budget
    if args.pop_size is not None:
        fields["pop_size"] = args.pop_size
    return EvolveConfig(**fields) if fields else None


def _cmd_partition(args: argparse.Namespace) -> int:
    """``repro partition`` — optionally under an observability capture.

    ``--profile`` / ``--trace-out`` wrap the *whole* run (any of the
    three branches: graph, vector-resource, hypergraph) in one
    :func:`repro.obs.capture`, so the profile covers loading, the
    partitioner and the baseline comparison alike.  The partition itself
    is bit-identical to an unprofiled run.
    """
    if not (args.profile or args.trace_out):
        if args.mem:
            raise ReproError("--mem needs --profile or --trace-out")
        return _run_partition(args)
    with _obs.capture(memory=args.mem) as cap:
        rc = _run_partition(args)
    spans = [s.to_dict() for s in cap.spans]
    if args.trace_out:
        _obs.write_trace(args.trace_out, spans, cap.metrics)
        print(f"wrote {args.trace_out}")
    if args.profile:
        print()
        print(_obs.format_profile(spans, cap.metrics, cap.wall_s))
    return rc


def _run_partition(args: argparse.Namespace) -> int:
    rmax = _parse_rmax(args.rmax)
    rmax_is_vector = isinstance(rmax, tuple)
    evolve_cfg = _evolve_config(args)
    if args.no_cache and args.method != "evolve" and not (
        args.method == "gp" and args.resources
    ):
        raise ReproError(
            "--no-cache applies to --method evolve, or --method gp "
            "with --resources"
        )
    if (args.resources or rmax_is_vector) and args.model != "graph":
        raise ReproError(
            "--resources / a comma-separated --rmax need --model graph "
            "(vector budgets live on the 2-pin mapping graph)"
        )
    if args.conn_format != "auto" and (
        args.method not in ("gp", "mlkp")
        or args.model != "graph"
        or args.resources
        or rmax_is_vector
    ):
        raise ReproError(
            "--conn-format applies to --method gp/mlkp with --model graph "
            "and a scalar --rmax (other engines pick their format via auto)"
        )
    if args.resources or rmax_is_vector:
        return _cmd_partition_vector(args, rmax, evolve_cfg)
    constraints = ConstraintSpec(bmax=args.bmax, rmax=rmax)
    if args.model == "hypergraph":
        if args.method not in ("gp", "hyper", "evolve"):
            raise ReproError(
                f"--model hypergraph supports --method gp/hyper/evolve, "
                f"got {args.method!r}"
            )
        if args.jobs not in (None, 1) and args.method != "evolve":
            raise ReproError(
                "--jobs applies to --method gp with --model graph, "
                "or --method evolve with either model"
            )
        if args.dot:
            raise ReproError(
                "--dot renders 2-pin graphs only; re-run with "
                "--model graph or export the instance via star expansion"
            )
        if args.refine != "fm" and args.method != "evolve":
            raise ReproError(
                "--refine applies to --method evolve under --model "
                "hypergraph (gp/hyper have no pluggable refinement "
                "stage there)"
            )
        hg = _load_hypergraph(args.input)
        if args.method == "evolve":
            if args.refine != "fm":
                evolve_cfg = (
                    dataclasses.replace(evolve_cfg, refine=args.refine)
                    if evolve_cfg is not None
                    else EvolveConfig(refine=args.refine)
                )
            result = evolve_partition(
                hg, args.k, constraints, config=evolve_cfg, seed=args.seed,
                n_jobs=args.jobs, cache=not args.no_cache,
            )
        else:
            result = hyper_partition(hg, args.k, constraints, seed=args.seed)
        results = [result]
        if args.compare:
            # the 2-pin edge-cut baseline: GP on the per-consumer star
            # expansion, priced on the hypergraph's connectivity metric
            from repro.hypergraph.metrics import evaluate_hyper_partition

            baseline = partition_graph(
                hg.star_expansion(), args.k, bmax=args.bmax, rmax=rmax,
                method="gp", seed=args.seed,
            )
            baseline.algorithm = "GP (2-pin model)"
            baseline.metrics = evaluate_hyper_partition(
                hg, baseline.assign, args.k, constraints
            )
            results.insert(0, baseline)
        print(comparison_report(results, constraints))
        print(f"(connectivity objective: {result.metrics.cut:g}; "
              f"a multicast net counts once per extra FPGA)")
        if args.assign_out:
            Path(args.assign_out).write_text(
                json.dumps({
                    "k": args.k,
                    "assign": [int(c) for c in result.assign],
                    "feasible": result.feasible,
                    # "cut" keeps the graph branch's schema; here it is the
                    # connectivity objective, also under its proper name
                    "cut": result.metrics.cut,
                    "connectivity": result.metrics.cut,
                }, indent=1)
            )
            print(f"wrote {args.assign_out}")
        return 0 if result.feasible or constraints.unconstrained else 2
    g = _load_graph(args.input)
    if args.jobs not in (None, 1) and args.method not in ("gp", "evolve"):
        raise ReproError("--jobs applies to --method gp or evolve only")
    result = partition_graph(
        g, args.k, bmax=args.bmax, rmax=rmax,
        method=args.method, seed=args.seed, config=evolve_cfg,
        n_jobs=args.jobs, cache=not args.no_cache, refine=args.refine,
        conn_format=args.conn_format,
    )
    results = [result]
    if args.compare and args.method != "mlkp":
        baseline = partition_graph(
            g, args.k, bmax=args.bmax, rmax=rmax,
            method="mlkp", seed=args.seed,
        )
        results.insert(0, baseline)
    print(comparison_report(results, constraints))
    print()
    print(render_ascii(g, assign=result.assign, k=args.k,
                       constraints=constraints,
                       title=f"{result.algorithm} mapping"))
    if args.dot:
        Path(args.dot).write_text(
            to_dot(g, assign=result.assign, k=args.k)
        )
        print(f"wrote {args.dot}")
    if args.assign_out:
        Path(args.assign_out).write_text(
            json.dumps({
                "k": args.k,
                "assign": [int(c) for c in result.assign],
                "feasible": result.feasible,
                "cut": result.metrics.cut,
            }, indent=1)
        )
        print(f"wrote {args.assign_out}")
    return 0 if result.feasible or constraints.unconstrained else 2


def _cmd_partition_vector(
    args: argparse.Namespace, rmax, evolve_cfg: EvolveConfig | None
) -> int:
    """The ``--resources`` / vector ``--rmax`` branch of ``partition``."""
    if args.method not in ("gp", "evolve"):
        raise ReproError(
            f"--resources / a comma-separated --rmax apply to --method gp "
            f"or evolve, got --method {args.method}"
        )
    if not args.resources:
        raise ReproError(
            "a comma-separated --rmax needs --resources FILE "
            "(one cap per resource column)"
        )
    if not isinstance(rmax, tuple):
        raise ReproError(
            "--resources needs a comma-separated --rmax vector "
            "(one cap per resource column), got a scalar"
        )
    if args.compare:
        raise ReproError(
            "--compare has no scalar baseline under vector budgets; "
            "run the methods separately"
        )
    g = _load_graph(args.input)
    w, names = _load_resource_matrix(args.resources)
    if w.shape[0] != g.n:
        raise ReproError(
            f"resource matrix has {w.shape[0]} rows for a graph of "
            f"{g.n} nodes"
        )
    if len(rmax) != w.shape[1]:
        raise ReproError(
            f"--rmax caps {len(rmax)} resources, {args.resources} has "
            f"{w.shape[1]} columns"
        )
    constraints = VectorConstraints(bmax=args.bmax, rmax=rmax, names=names)
    result = partition_graph(
        g, args.k, bmax=args.bmax, rmax=rmax,
        method=args.method, seed=args.seed, config=evolve_cfg,
        n_jobs=args.jobs, cache=not args.no_cache, resources=w,
        refine=args.refine,
    )
    print(multires_report([result], constraints))
    if args.dot:
        Path(args.dot).write_text(to_dot(g, assign=result.assign, k=args.k))
        print(f"wrote {args.dot}")
    if args.assign_out:
        Path(args.assign_out).write_text(
            json.dumps({
                "k": args.k,
                "assign": [int(c) for c in result.assign],
                "feasible": result.feasible,
                "cut": result.metrics.cut,
                "max_loads": list(result.metrics.max_loads),
            }, indent=1)
        )
        print(f"wrote {args.assign_out}")
    return 0 if result.feasible else 2


def _cmd_tables(args: argparse.Namespace) -> int:
    experiments = [args.experiment] if args.experiment else [1, 2, 3]
    for exp in experiments:
        print(paper_experiment_table(exp))
        print("=" * 78)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    paths = write_figure_artifacts(args.out)
    if args.html:
        from repro.viz.html_report import write_experiment_report

        paths += write_experiment_report(args.out)
    print(f"wrote {len(paths)} artefacts under {args.out}/")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    def parse_range(text: str) -> tuple[int, int]:
        lo, hi = (int(x) for x in text.split(","))
        return lo, hi

    if args.fanout is not None and args.resources:
        raise ReproError(
            "--resources emits per-node vectors for graph instances; "
            "vector budgets are not supported on hypergraph (.hgr) output"
        )
    if args.fanout is not None:
        node_range = parse_range(args.node_weights)
        edge_range = parse_range(args.edge_weights)
        if node_range[0] < 1 or edge_range[0] < 1:
            raise ReproError(
                ".hgr output needs positive integer weights; "
                "use ranges with lower bound >= 1"
            )
        hg = multicast_network(
            args.n, seed=args.seed, fanout=args.fanout,
            node_weight_range=node_range,
            chain_weight_range=edge_range,
        )
        save_hmetis(hg, args.out, comment=f"multicast_network n={args.n} "
                                          f"fanout={args.fanout} seed={args.seed}")
        print(f"wrote {args.out} (n={hg.n}, nets={hg.n_nets}, "
              f"pins={hg.n_pins}, total resources {hg.total_node_weight:g})")
        return 0
    if args.m is None:
        raise ReproError("--m is required unless --fanout is given")
    g = random_process_network(
        args.n, args.m, seed=args.seed,
        node_weight_range=parse_range(args.node_weights),
        edge_weight_range=parse_range(args.edge_weights),
    )
    Path(args.out).write_text(graph_to_json(g))
    print(f"wrote {args.out} (n={g.n}, m={g.m}, "
          f"total resources {g.total_node_weight:g})")
    if args.resources:
        w, names = random_device_matrix(
            args.n, seed=args.seed, n_resources=args.n_resources
        )
        Path(args.resources).write_text(
            json.dumps({
                "names": list(names),
                "weights": [[float(x) for x in row] for row in w],
            }, indent=1)
        )
        print(f"wrote {args.resources} ({w.shape[0]}x{w.shape[1]} "
              f"resource matrix: {', '.join(names)})")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Report (and optionally clear) the in-process memo caches.

    The in-process caches live in this process only — ``cache --clear``
    matters for long-lived hosts of :func:`main` (notebooks, tests,
    benchmark harnesses), not across separate CLI invocations; cold
    *runs* are what ``partition --no-cache`` is for.  ``--dir`` targets
    the *persistent* store (`repro serve --cache-dir`) instead, which
    does span invocations; ``--stats`` is the (default) report action.
    """
    if args.clear:
        clear_portfolio_cache()
        clear_evolve_cache()
        clear_multires_cache()
        print("cleared portfolio, evolve and multires caches")
    for name, c in (
        ("portfolio", portfolio_cache),
        ("evolve", evolve_cache),
        ("multires", multires_cache),
    ):
        s = c.stats()
        print(f"{name}: size={s['size']} hits={s['hits']} misses={s['misses']}")
    # the instrumented view: cache.* counter series from the metrics
    # registry (populated when observability was on during the runs)
    cache_series = [
        (mname, key, value)
        for mname, series in sorted(
            _obs.REGISTRY.snapshot()["counters"].items()
        )
        if mname.startswith("cache.")
        for key, value in sorted(series.items())
    ]
    if cache_series:
        print("registry cache.* counters:")
        for mname, key, value in cache_series:
            labels = ",".join(f"{k}={v}" for k, v in key)
            tag = f"{mname}{{{labels}}}" if labels else mname
            print(f"  {tag} {value:g}")
    if args.dir:
        from repro.util.diskcache import DiskCache

        disk = DiskCache(args.dir)
        if args.clear:
            n = len(disk)
            disk.clear()
            print(f"cleared {n} persistent entries under {args.dir}")
        s = disk.stats()
        print(f"disk[{args.dir}]: entries={s['entries']} "
              f"bytes={s['bytes']} max_bytes={s['max_bytes']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the partitioning daemon until SIGINT/SIGTERM (or POST /shutdown)."""
    import signal

    from repro.serve.server import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        cache_bytes=args.cache_mb * 1024 * 1024,
        memory_entries=args.memory_entries,
        n_jobs=args.jobs,
    )
    # the first line is machine-readable: harnesses parse the port from it
    print(f"repro serve listening on http://{server.host}:{server.port}",
          flush=True)
    if server.disk is not None:
        print(f"persistent cache: {args.cache_dir} "
              f"({args.cache_mb} MiB budget)", flush=True)
    if server.pool_workers:
        print(f"warm worker pool: {server.pool_workers} processes",
              flush=True)

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    old_term = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, old_term)
        server.close()
    print("repro serve: shut down cleanly", flush=True)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Validate a trace file and print its aggregated profile."""
    try:
        doc = json.loads(Path(args.trace).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read trace {args.trace}: {exc}") from exc
    try:
        n_events = _obs.validate_chrome_trace(doc)
    except ValueError as exc:
        raise ReproError(
            f"{args.trace} is not a valid Chrome trace: {exc}"
        ) from exc
    repro_data = doc.get("otherData", {}).get("repro", {})
    print(f"{args.trace}: {n_events} trace events")
    print(_obs.format_profile(
        repro_data.get("spans", []), repro_data.get("metrics"),
        mem=True if args.mem else None,
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench`` — run a suite, write BENCH JSON, gate regressions.

    Exit codes: 0 ok, 1 usage/suite error, 3 regression past tolerance
    (distinct from 1 so CI can tell "the gate tripped" from "the tool
    broke").  ``--compare`` with ``--current`` judges two stored files
    without running anything — the noise-free mode CI stage 10 uses.
    """
    from repro.obs import benchdb
    import repro.bench.suites  # noqa: F401  (registers the suites)

    if args.list:
        for name, desc in benchdb.list_suites().items():
            print(f"  {name:<14} {desc}")
        return 0

    tolerances: dict[str, float] = {}
    for spec in args.tolerance:
        pattern, eq, frac = spec.partition("=")
        try:
            if not eq:
                raise ValueError
            tolerances[pattern] = float(frac)
        except ValueError:
            raise ReproError(
                f"bad --tolerance {spec!r}; expected PATTERN=FRACTION "
                f"like '*.runtime=0.3'"
            ) from None

    if args.current:
        if not args.compare:
            raise ReproError("--current needs --compare BASELINE")
        try:
            current = benchdb.load_bench(args.current)
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
    else:
        if not args.suite:
            raise ReproError("--suite NAME is required (or --list)")
        try:
            result = benchdb.run_suite(args.suite, seed=args.seed)
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        out = args.out or f"benchmarks/artifacts/BENCH_{args.suite}.json"
        current = benchdb.write_bench(out, result)
        print(f"{current['suite']}: {len(current['metrics'])} metrics "
              f"-> {out} (rev {current['git_rev'][:12]})")

    if not args.compare:
        return 0
    try:
        baseline = benchdb.load_bench(args.compare)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    deltas, only_b, only_c = benchdb.compare_results(
        baseline, current, tolerances
    )
    print(f"compare vs {args.compare} "
          f"(baseline rev {baseline['git_rev'][:12]}):")
    print(benchdb.format_compare(deltas, only_b, only_c))
    if not deltas:
        raise ReproError(
            "baseline and current share no metrics; nothing was gated"
        )
    return 3 if any(d.regressed for d in deltas) else 0


_COMMANDS = {
    "partition": _cmd_partition,
    "tables": _cmd_tables,
    "figures": _cmd_figures,
    "generate": _cmd_generate,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - `python -m repro.cli`
    sys.exit(main())
