"""Regeneration of the paper's Figures 2-13.

Per experiment, the paper shows four views of the same graph:

1. the un-partitioned graph "before weighting" (plain topology),
2. the same graph "after weighting and resource allocation" (node radius
   proportional to weight, edge bandwidth labels),
3. the GP partitioning (both constraints met),
4. the METIS partitioning (constraint violations visible).

Figure numbering: experiment 1 → Figures 2-5, experiment 2 → 6-9,
experiment 3 → 10-13.  Each view is emitted as ``.dot``, ``.svg`` and
``.txt`` (ASCII), all byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.bench.experiments import ExperimentOutcome, run_paper_experiment
from repro.viz.ascii_art import render_ascii
from repro.viz.dot import to_dot
from repro.viz.layout import force_layout
from repro.viz.svg import render_svg

__all__ = ["figure_artifacts", "write_figure_artifacts", "FIGURE_BASE"]

#: first figure number of each experiment's block of four
FIGURE_BASE = {1: 2, 2: 6, 3: 10}


@dataclass
class FigureArtifact:
    """One generated figure in all three formats."""

    figure: int
    name: str
    dot: str
    svg: str
    text: str


def figure_artifacts(experiment: int) -> list[FigureArtifact]:
    """The four figures of one experiment, in paper order."""
    outcome: ExperimentOutcome = run_paper_experiment(experiment)
    g = outcome.graph
    spec = outcome.spec
    base = FIGURE_BASE[experiment]
    pos = force_layout(g, seed=experiment)
    cons = outcome.constraints

    def make(fig, name, title, assign, k, constraints):
        unweighted = fig == base
        return FigureArtifact(
            figure=fig,
            name=name,
            dot=to_dot(
                g, assign=assign, k=k, title=title, show_weights=not unweighted
            ),
            svg=render_svg(
                g, assign=assign, k=k, pos=pos, title=title
            ),
            text=render_ascii(
                g, assign=assign, k=k, title=title, constraints=constraints
            ),
        )

    views = [
        (
            base,
            "unpartitioned_plain",
            f"Fig. {base}: sample graph {experiment} before weighting",
            None,
            None,
            None,
        ),
        (
            base + 1,
            "unpartitioned_weighted",
            f"Fig. {base + 1}: sample graph {experiment} after weighting "
            f"and resource allocation",
            None,
            None,
            None,
        ),
        (
            base + 2,
            "gp_partitioning",
            f"Fig. {base + 2}: partitioning with GP "
            f"(Bmax={spec.bmax:g}, Rmax={spec.rmax:g})",
            outcome.gp.assign,
            spec.k,
            cons,
        ),
        (
            base + 3,
            "mlkp_partitioning",
            f"Fig. {base + 3}: partitioning with MLKP/METIS-like "
            f"(Bmax={spec.bmax:g}, Rmax={spec.rmax:g})",
            outcome.mlkp.assign,
            spec.k,
            cons,
        ),
    ]
    return [make(*v) for v in views]


def write_figure_artifacts(
    out_dir: str | Path, experiments: tuple[int, ...] = (1, 2, 3)
) -> list[Path]:
    """Write every figure of *experiments* under *out_dir*; returns paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for exp in experiments:
        for art in figure_artifacts(exp):
            stem = f"fig{art.figure:02d}_{art.name}"
            for suffix, payload in (
                (".dot", art.dot),
                (".svg", art.svg),
                (".txt", art.text),
            ):
                path = out / (stem + suffix)
                path.write_text(payload)
                written.append(path)
    return written
