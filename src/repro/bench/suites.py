"""Extended evaluation suites (studies X1-X5 in DESIGN.md).

These go beyond the paper's three 12-node experiments, probing the regime
the paper motivates but does not measure ("graphs with potentially thousands
nodes", Section I): scaling, matching-strategy ablations, restart ablations,
constraint-tightness sweeps and the exact-optimality gap.

Importing this module also registers the ``repro bench`` suites (see
:mod:`repro.obs.benchdb`): ``smoke`` — the fast everything-touched run CI
gates on — plus thin wrappers around the X9/X11/X13/X14 study workloads
(``x9_refine``, ``x11_portfolio``, ``x13_multires``, ``x14_flow``) that
emit the same structured BENCH metrics at benchmark-driver scale, and
``x15_scale`` — the million-node-scale track (sparse connectivity store
footprint and localized-refinement time at k=64; the full 1M-node
acceptance driver lives in ``benchmarks/bench_scale_sparse.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.generators import multicast_network, random_process_network
from repro.graph.wgraph import WGraph
from repro.obs.benchdb import BenchMetric, register_suite
from repro.partition.exact import exact_partition
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.mlkp import mlkp_partition
from repro.partition.spectral import spectral_partition
from repro.util.errors import InfeasibleError

__all__ = [
    "SweepRow",
    "scaling_suite",
    "matching_ablation",
    "restart_ablation",
    "constraint_sweep",
    "exact_gap_suite",
    "tight_instance",
    "smoke_suite",
]


@dataclass
class SweepRow:
    """One measurement of a sweep; ``extra`` holds study-specific fields."""

    study: str
    params: dict
    algorithm: str
    cut: float
    runtime: float
    max_resource: float
    max_bandwidth: float
    feasible: bool
    extra: dict = field(default_factory=dict)

    def as_list(self) -> list:
        return [
            self.study,
            str(self.params),
            self.algorithm,
            self.cut,
            round(self.runtime, 4),
            self.max_resource,
            self.max_bandwidth,
            self.feasible,
        ]


def tight_instance(
    n: int, k: int, seed: int, slack: float = 1.15, bw_factor: float = 1.3
) -> tuple[WGraph, ConstraintSpec]:
    """A PN-shaped instance with constraints tight enough to matter:
    ``Rmax = slack * total/k``; ``Bmax = bw_factor * (random 4-way cut) / pairs``."""
    m = int(2.2 * n)
    g = random_process_network(n, m, seed=seed, node_weight_range=(4, 40))
    rmax = slack * g.total_node_weight / k
    rng = np.random.default_rng(seed)
    a = rng.integers(0, k, size=n)
    from repro.partition.metrics import bandwidth_matrix

    bw = bandwidth_matrix(g, a, k)
    pairs = k * (k - 1) / 2
    bmax = bw_factor * float(np.triu(bw, 1).sum()) / pairs
    return g, ConstraintSpec(bmax=float(np.ceil(bmax)), rmax=float(np.ceil(rmax)))


def scaling_suite(
    sizes: tuple[int, ...] = (50, 100, 200, 400, 800),
    k: int = 4,
    seed: int = 0,
    include_spectral: bool = True,
) -> list[SweepRow]:
    """X1 — runtime/cut scaling of GP vs MLKP (vs spectral) with n."""
    rows: list[SweepRow] = []
    for n in sizes:
        g, cons = tight_instance(n, k, seed=seed + n)
        runs = [
            ("GP", lambda: gp_partition(
                g, k, cons, GPConfig(max_cycles=5, restarts=5), seed=seed)),
            ("MLKP", lambda: mlkp_partition(g, k, seed=seed, constraints=cons)),
        ]
        if include_spectral:
            runs.append(
                ("spectral", lambda: spectral_partition(g, k, constraints=cons))
            )
        for name, fn in runs:
            res = fn()
            rows.append(
                SweepRow(
                    study="scaling",
                    params={"n": n, "k": k},
                    algorithm=name,
                    cut=res.metrics.cut,
                    runtime=res.runtime,
                    max_resource=res.metrics.max_resource,
                    max_bandwidth=res.metrics.max_local_bandwidth,
                    feasible=res.feasible,
                )
            )
    return rows


def matching_ablation(
    n: int = 150,
    k: int = 4,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> list[SweepRow]:
    """X2 — coarsening matching strategy ablation.

    GP's Section IV.A races three matchings per level; this measures each
    alone versus the best-of-three default.
    """
    variants = {
        "random-only": ("random",),
        "hem-only": ("hem",),
        "kmeans-only": ("kmeans",),
        "best-of-3": ("random", "hem", "kmeans"),
    }
    rows: list[SweepRow] = []
    for seed in seeds:
        g, cons = tight_instance(n, k, seed=100 + seed)
        for name, methods in variants.items():
            cfg = GPConfig(
                max_cycles=4, restarts=5, matchings=methods, coarsen_to=30
            )
            res = gp_partition(g, k, cons, cfg, seed=seed)
            rows.append(
                SweepRow(
                    study="matching_ablation",
                    params={"n": n, "k": k, "seed": seed},
                    algorithm=name,
                    cut=res.metrics.cut,
                    runtime=res.runtime,
                    max_resource=res.metrics.max_resource,
                    max_bandwidth=res.metrics.max_local_bandwidth,
                    feasible=res.feasible,
                    extra={"cycles": res.info["cycles"]},
                )
            )
    return rows


def restart_ablation(
    restarts_grid: tuple[int, ...] = (1, 5, 10, 20),
    n: int = 120,
    k: int = 4,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> list[SweepRow]:
    """X3 — initial-partitioning restart count ablation (paper default 10)."""
    rows: list[SweepRow] = []
    for seed in seeds:
        g, cons = tight_instance(n, k, seed=200 + seed)
        for restarts in restarts_grid:
            cfg = GPConfig(max_cycles=3, restarts=restarts, coarsen_to=30)
            res = gp_partition(g, k, cons, cfg, seed=seed)
            rows.append(
                SweepRow(
                    study="restart_ablation",
                    params={"restarts": restarts, "seed": seed},
                    algorithm=f"GP(r={restarts})",
                    cut=res.metrics.cut,
                    runtime=res.runtime,
                    max_resource=res.metrics.max_resource,
                    max_bandwidth=res.metrics.max_local_bandwidth,
                    feasible=res.feasible,
                )
            )
    return rows


def constraint_sweep(
    n: int = 60,
    k: int = 4,
    seed: int = 0,
    tightness_grid: tuple[float, ...] = (2.0, 1.6, 1.3, 1.15, 1.05),
) -> list[SweepRow]:
    """X4 — feasibility frontier: tighten Rmax/Bmax and watch GP keep
    satisfying while MLKP's violations grow."""
    rows: list[SweepRow] = []
    for tight in tightness_grid:
        g, cons = tight_instance(n, k, seed=seed, slack=tight, bw_factor=tight)
        for name, fn in (
            ("GP", lambda: gp_partition(
                g, k, cons, GPConfig(max_cycles=8, restarts=8), seed=seed)),
            ("MLKP", lambda: mlkp_partition(g, k, seed=seed, constraints=cons)),
        ):
            res = fn()
            m = res.metrics
            rows.append(
                SweepRow(
                    study="constraint_sweep",
                    params={"tightness": tight},
                    algorithm=name,
                    cut=m.cut,
                    runtime=res.runtime,
                    max_resource=m.max_resource,
                    max_bandwidth=m.max_local_bandwidth,
                    feasible=res.feasible,
                    extra={
                        "bw_violation": m.bandwidth_violation,
                        "res_violation": m.resource_violation,
                    },
                )
            )
    return rows


def exact_gap_suite(
    n: int = 11,
    k: int = 3,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> list[SweepRow]:
    """X5 — GP's optimality gap against the exact constrained optimum."""
    rows: list[SweepRow] = []
    for seed in seeds:
        g, cons = tight_instance(n, k, seed=300 + seed, slack=1.4, bw_factor=1.6)
        try:
            opt = exact_partition(g, k, cons, enforce=True)
        except InfeasibleError:
            continue
        gp = gp_partition(g, k, cons, GPConfig(max_cycles=10), seed=seed)
        gap = (gp.cut - opt.cut) / opt.cut if opt.cut else 0.0
        for res, tag in ((opt, "exact"), (gp, "GP")):
            rows.append(
                SweepRow(
                    study="exact_gap",
                    params={"seed": seed, "n": n, "k": k},
                    algorithm=tag,
                    cut=res.metrics.cut,
                    runtime=res.runtime,
                    max_resource=res.metrics.max_resource,
                    max_bandwidth=res.metrics.max_local_bandwidth,
                    feasible=res.feasible,
                    extra={"gap": gap if tag == "GP" else 0.0},
                )
            )
    return rows


# --------------------------------------------------------------------- #
# registered BENCH suites (`repro bench`; see repro.obs.benchdb)
# --------------------------------------------------------------------- #
def _run_metrics(name: str, fn, params: dict, seed: int) -> list[BenchMetric]:
    """Time *fn* and emit the standard (runtime, cut, feasible) triple.

    The cut and feasibility metrics are exact — the partitioners are
    deterministic at fixed seeds, so any drift there is a real behaviour
    change, not noise; only the runtime gets a tolerance band.
    """
    t0 = time.perf_counter()
    res = fn()
    elapsed = time.perf_counter() - t0
    return [
        BenchMetric(f"{name}.runtime", elapsed, "s", dict(params), seed),
        BenchMetric(f"{name}.cut", float(res.metrics.cut), "", dict(params),
                    seed),
        BenchMetric(f"{name}.feasible", float(res.feasible), "",
                    dict(params), seed, better="higher"),
    ]


@register_suite(
    "smoke",
    description="fast cross-method run (gp/mlkp/hyper/portfolio/multires) "
                "— the suite CI stage 10 gates on",
)
def smoke_suite(seed: int = 0) -> list[BenchMetric]:
    """Every major partitioning path once, at a size that stays seconds.

    Small on purpose: the value of the smoke suite is the *trajectory*
    (the same metrics across revisions under ``repro bench --compare``),
    not the absolute load, so it must be cheap enough to run in CI and
    as part of the test suite.
    """
    from repro.hypergraph.partition import hyper_partition
    from repro.partition.multires import mr_gp_partition
    from repro.partition.portfolio import portfolio_partition
    from repro.fpga.resources import random_device_matrix
    from repro.partition.vector_state import VectorConstraints

    out: list[BenchMetric] = []
    g, cons = tight_instance(60, 3, seed=seed)
    p = {"instance": "pn", "n": 60, "k": 3}
    out += _run_metrics(
        "gp", lambda: gp_partition(
            g, 3, cons, GPConfig(max_cycles=3, restarts=3), seed=seed
        ), p, seed,
    )
    out += _run_metrics(
        "mlkp", lambda: mlkp_partition(g, 3, seed=seed, constraints=cons),
        p, seed,
    )
    out += _run_metrics(
        "portfolio", lambda: portfolio_partition(
            g, 3, cons, seed=seed, cache=False
        ), p, seed,
    )
    hg = multicast_network(40, seed=seed, fanout=4)
    out += _run_metrics(
        "hyper", lambda: hyper_partition(hg, 3, seed=seed),
        {"instance": "multicast", "n": 40, "k": 3}, seed,
    )
    gv = random_process_network(50, 120, seed=seed)
    w, names = random_device_matrix(50, seed=seed, n_resources=3)
    caps = tuple(1.3 * float(c) / 3 for c in w.sum(axis=0))
    vcons = VectorConstraints(bmax=float("inf"), rmax=caps, names=names)
    out += _run_metrics(
        "multires", lambda: mr_gp_partition(
            gv, w, 3, vcons, coarsen_to=20, restarts=3, max_cycles=3,
            seed=seed, cache=False,
        ), {"instance": "device", "n": 50, "k": 3, "resources": 3}, seed,
    )
    return out


@register_suite(
    "x9_refine",
    description="study X9 workload: the vectorized refinement engine "
                "inside gp/mlkp at 1k-2k nodes",
)
def _x9_suite(seed: int = 0) -> list[BenchMetric]:
    out: list[BenchMetric] = []
    for n in (1000, 2000):
        g, cons = tight_instance(n, 8, seed=seed + n)
        p = {"instance": "pn", "n": n, "k": 8}
        out += _run_metrics(
            "x9.gp", lambda: gp_partition(
                g, 8, cons, GPConfig(max_cycles=3, restarts=3), seed=seed
            ), p, seed,
        )
        out += _run_metrics(
            "x9.mlkp",
            lambda: mlkp_partition(g, 8, seed=seed, constraints=cons),
            p, seed,
        )
    return out


@register_suite(
    "x11_portfolio",
    description="study X11 workload: the GP config portfolio, cold run "
                "plus the memo-cache hit",
)
def _x11_suite(seed: int = 0) -> list[BenchMetric]:
    from repro.partition.portfolio import (
        clear_portfolio_cache,
        portfolio_partition,
    )

    g, cons = tight_instance(180, 4, seed=seed)
    p = {"instance": "pn", "n": 180, "k": 4}
    clear_portfolio_cache()
    out = _run_metrics(
        "x11.portfolio",
        lambda: portfolio_partition(g, 4, cons, seed=seed), p, seed,
    )
    t0 = time.perf_counter()
    portfolio_partition(g, 4, cons, seed=seed)
    out.append(BenchMetric(
        "x11.cache_hit", time.perf_counter() - t0, "s", dict(p), seed,
    ))
    return out


@register_suite(
    "x13_multires",
    description="study X13 workload: vector-resource multilevel GP on a "
                "device-shaped matrix",
)
def _x13_suite(seed: int = 0) -> list[BenchMetric]:
    from repro.fpga.resources import random_device_matrix
    from repro.partition.multires import mr_gp_partition
    from repro.partition.vector_state import VectorConstraints

    out: list[BenchMetric] = []
    for n in (200, 400):
        g = random_process_network(n, int(2.4 * n), seed=seed + n)
        w, names = random_device_matrix(n, seed=seed + n)
        caps = tuple(1.25 * float(c) / 4 for c in w.sum(axis=0))
        vcons = VectorConstraints(bmax=float("inf"), rmax=caps, names=names)
        out += _run_metrics(
            "x13.multires", lambda: mr_gp_partition(
                g, w, 4, vcons, coarsen_to=50, restarts=5, max_cycles=4,
                seed=seed, cache=False,
            ), {"instance": "device", "n": n, "k": 4}, seed,
        )
    return out


@register_suite(
    "x14_flow",
    description="study X14 workload: corridor max-flow refinement "
                "(flow / fm+flow) against plain fm",
)
def _x14_suite(seed: int = 0) -> list[BenchMetric]:
    out: list[BenchMetric] = []
    g, cons = tight_instance(300, 4, seed=seed)
    for mode in ("fm", "flow", "fm+flow"):
        p = {"instance": "pn", "n": 300, "k": 4, "refine": mode}
        out += _run_metrics(
            f"x14.{mode}", lambda mode=mode: gp_partition(
                g, 4, cons,
                GPConfig(max_cycles=3, restarts=3, refine=mode), seed=seed,
            ), p, seed,
        )
    return out


def bounded_degree_graph(n: int, strides: tuple = (7, 101)) -> WGraph:
    """Ring + chord graph with degree ``2·(1+len(strides))`` — the
    bounded-degree shape where the sparse connectivity store shines.

    Built through ``WGraph._from_canonical`` so construction is O(m)
    numpy; the X15 suite and the 1M-node acceptance driver
    (``benchmarks/bench_scale_sparse.py``) both need sizes where the
    edge-list ``__init__`` path would dominate the measurement.
    """
    base = np.arange(n, dtype=np.int64)
    u = np.concatenate([base] * (1 + len(strides)))
    v = np.concatenate([(base + 1) % n] + [(base + s) % n for s in strides])
    eu, ev = np.minimum(u, v), np.maximum(u, v)
    order = np.lexsort((ev, eu))
    eu, ev = eu[order], ev[order]
    keep = np.ones(eu.size, dtype=bool)
    keep[1:] = (eu[1:] != eu[:-1]) | (ev[1:] != ev[:-1])
    eu, ev = eu[keep], ev[keep]
    return WGraph._from_canonical(
        n, eu, ev, np.ones(eu.size), np.ones(n)
    )


@register_suite(
    "x15_scale",
    description="million-node-scale track: sparse vs dense connectivity "
                "store footprint and localized refinement at k=64",
)
def _x15_suite(seed: int = 0) -> list[BenchMetric]:
    """Sparse-engine scale telemetry on a bounded-degree 80k-node graph.

    ``k·n`` sits above the auto-sparse threshold, so this measures the
    representation large instances actually get: per-format store bytes
    and build peaks, the dense/sparse footprint ratio (gated
    ``better="higher"``), and constrained-FM wall clock both global and
    localized to a just-uncontracted-style seed set.  The assignment is
    contiguous blocks with 2% random perturbation — the post-projection
    shape uncoarsening hands to refinement.
    """
    import tracemalloc

    from repro.partition.kway_refine import constrained_kway_fm
    from repro.partition.refine_state import RefinementState

    n, k = 80_000, 64
    g = bounded_degree_graph(n)
    rng = np.random.default_rng(seed)
    a = (np.arange(n) * k // n).astype(np.int64)
    perturbed = rng.choice(n, size=n // 50, replace=False)
    a[perturbed] = rng.integers(0, k, size=perturbed.size)
    p = {"instance": "ring", "n": n, "k": k}

    out: list[BenchMetric] = []
    nbytes = {}
    for fmt in ("dense", "sparse"):
        tracing = tracemalloc.is_tracing()
        if not tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        t0 = time.perf_counter()
        st = RefinementState(g, a.copy(), k, conn_format=fmt)
        elapsed = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
        if not tracing:
            tracemalloc.stop()
        nbytes[fmt] = st._store.nbytes
        pf = {**p, "format": fmt}
        out.append(BenchMetric(
            f"x15.state_build.{fmt}.runtime", elapsed, "s", pf, seed,
        ))
        out.append(BenchMetric(
            f"x15.conn_bytes.{fmt}", float(st._store.nbytes), "bytes",
            pf, seed,
        ))
        out.append(BenchMetric(
            f"x15.state_build.{fmt}.peak_bytes", float(peak), "bytes",
            pf, seed,
        ))
        del st
    out.append(BenchMetric(
        "x15.conn_ratio", nbytes["dense"] / nbytes["sparse"], "",
        dict(p), seed, better="higher",
    ))

    cons = ConstraintSpec(rmax=float(np.ceil(1.03 * g.total_node_weight / k)))
    for tag, seeds in (("local", perturbed), ("global", None)):
        t0 = time.perf_counter()
        res = constrained_kway_fm(
            g, a.copy(), k, cons, max_passes=2, seed=seed, seed_nodes=seeds,
        )
        elapsed = time.perf_counter() - t0
        from repro.partition.metrics import evaluate_partition

        m = evaluate_partition(g, res, k, cons)
        pf = {**p, "frontier": tag}
        out.append(BenchMetric(
            f"x15.fm.{tag}.runtime", elapsed, "s", pf, seed,
        ))
        out.append(BenchMetric(
            f"x15.fm.{tag}.cut", float(m.cut), "", pf, seed,
        ))
        out.append(BenchMetric(
            f"x15.fm.{tag}.feasible", float(m.feasible), "", pf, seed,
            better="higher",
        ))
    return out
