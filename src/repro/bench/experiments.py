"""The three paper experiments (Section V, Tables I-III).

Each experiment compares the METIS-like baseline ("MLKP", standing in for
METIS 5.1.0 — see DESIGN.md, Substitutions) against GP on one reconstructed
12-node process network, reporting the paper's four quantities.  Seeds are
pinned: rerunning yields identical tables.

The paper's published values, kept here for EXPERIMENTS.md and the bench
output's paper-vs-measured column:

=============  ======  =====  ====  =======  =====
experiment     tool    cut    time  max res  max bw
=============  ======  =====  ====  =======  =====
I  (B16/R165)  METIS   58     0.02  172      20
I              GP      70     0.33  163      16
II (B25/R130)  METIS   77     0.02  137      25
II             GP      62     0.25  127      18
III (B20/R78)  METIS   90     0.02  78       38
III            GP      96     7.76  76       19
=============  ======  =====  ====  =======  =====
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.paper_values import PAPER_TABLES, PaperRow
from repro.core.report import comparison_report
from repro.graph.generators import PaperExperimentSpec, paper_graph
from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.mlkp import mlkp_partition

__all__ = ["ExperimentOutcome", "run_paper_experiment", "paper_experiment_table"]

#: pinned algorithm seeds — the tables are regenerated bit-identically
MLKP_SEED = 0
GP_SEED = 0
GP_MAX_CYCLES = 20


@dataclass
class ExperimentOutcome:
    """Everything one paper experiment produced."""

    experiment: int
    spec: PaperExperimentSpec
    graph: WGraph
    constraints: ConstraintSpec
    mlkp: PartitionResult
    gp: PartitionResult
    paper: list[PaperRow]

    @property
    def results(self) -> list[PartitionResult]:
        return [self.mlkp, self.gp]

    def reproduces_paper_shape(self) -> dict[str, bool]:
        """The qualitative claims of Section V, checked on this run."""
        checks = {
            # "GP can always partition ... while respecting resource and
            # bandwidth constraints"
            "gp_feasible": self.gp.feasible,
            # "METIS always partitions, regardless of said constraints"
            "mlkp_violates_some_constraint": not self.mlkp.feasible,
            # runtime ordering: "METIS ... 0.02s" vs GP 0.25-7.76s
            "gp_slower_than_mlkp": self.gp.runtime > self.mlkp.runtime,
        }
        paper_mlkp = next(r for r in self.paper if r.tool == "METIS")
        paper_gp = next(r for r in self.paper if r.tool == "GP")
        # sign of the cut difference (GP premium vs incidental win)
        paper_gp_worse = paper_gp.cut >= paper_mlkp.cut
        ours_gp_worse = self.gp.cut >= self.mlkp.cut
        checks["cut_difference_same_sign"] = paper_gp_worse == ours_gp_worse
        return checks

    def report(self) -> str:
        return comparison_report(
            self.results,
            self.constraints,
            title=(
                f"{self.spec.name}: n={self.graph.n}, m={self.graph.m}, "
                f"K={self.spec.k}, Bmax={self.spec.bmax:g}, "
                f"Rmax={self.spec.rmax:g}"
            ),
        )


def run_paper_experiment(experiment: int) -> ExperimentOutcome:
    """Run experiment 1, 2 or 3 exactly as the benchmarks do."""
    g, spec = paper_graph(experiment)
    constraints = ConstraintSpec(bmax=spec.bmax, rmax=spec.rmax)
    mlkp = mlkp_partition(g, spec.k, seed=MLKP_SEED, constraints=constraints)
    mlkp.algorithm = "MLKP (METIS-like)"
    gp = gp_partition(
        g, spec.k, constraints, GPConfig(max_cycles=GP_MAX_CYCLES), seed=GP_SEED
    )
    return ExperimentOutcome(
        experiment=experiment,
        spec=spec,
        graph=g,
        constraints=constraints,
        mlkp=mlkp,
        gp=gp,
        paper=PAPER_TABLES[experiment],
    )


def paper_experiment_table(experiment: int) -> str:
    """The paper-format table plus paper-vs-measured lines."""
    outcome = run_paper_experiment(experiment)
    lines = [outcome.report(), "", "paper reported:"]
    for row in outcome.paper:
        lines.append(
            f"  {row.tool:6s} cut={row.cut:g} time={row.time_s:g}s "
            f"max_res={row.max_resource:g} max_bw={row.max_bandwidth:g}"
        )
    return "\n".join(lines)
