"""The paper's published table values (Tables EXPERIMENT I-III).

Kept as data so benchmarks and EXPERIMENTS.md compare measured-vs-paper
mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperRow", "PAPER_TABLES"]


@dataclass(frozen=True)
class PaperRow:
    """One row of a published experiment table."""

    tool: str
    cut: float
    time_s: float
    max_resource: float
    max_bandwidth: float


PAPER_TABLES: dict[int, list[PaperRow]] = {
    1: [
        PaperRow("METIS", cut=58, time_s=0.02, max_resource=172, max_bandwidth=20),
        PaperRow("GP", cut=70, time_s=0.33, max_resource=163, max_bandwidth=16),
    ],
    2: [
        PaperRow("METIS", cut=77, time_s=0.02, max_resource=137, max_bandwidth=25),
        PaperRow("GP", cut=62, time_s=0.25, max_resource=127, max_bandwidth=18),
    ],
    3: [
        PaperRow("METIS", cut=90, time_s=0.02, max_resource=78, max_bandwidth=38),
        PaperRow("GP", cut=96, time_s=7.76, max_resource=76, max_bandwidth=19),
    ],
}
