"""Experiment harness (system S10 in DESIGN.md).

The library-side machinery behind the ``benchmarks/`` drivers: the three
paper experiments (Tables I-III + Figures 2-13), the extended random
suites (scaling, ablations, constraint sweeps) and artefact generation.
"""

from repro.bench.experiments import (
    ExperimentOutcome,
    paper_experiment_table,
    run_paper_experiment,
)
from repro.bench.figures import figure_artifacts, write_figure_artifacts

__all__ = [
    "ExperimentOutcome",
    "run_paper_experiment",
    "paper_experiment_table",
    "figure_artifacts",
    "write_figure_artifacts",
]
