"""repro — reproduction of *K-Ways Partitioning of Polyhedral Process
Networks: A Multi-Level Approach* (Cattaneo et al., IPDPSW 2015).

Public API highlights
---------------------
* :class:`repro.graph.WGraph` — weighted process-network graph.
* :func:`repro.partition.gp.gp_partition` — the paper's constrained
  multi-level K-way partitioner ("GP").
* :func:`repro.partition.mlkp.mlkp_partition` — METIS-like unconstrained
  multilevel baseline.
* :func:`repro.evolve.evolve_partition` — memetic population search with
  V-cycle recombination over the graph and hypergraph engines.
* :mod:`repro.polyhedral` — SANLP → Polyhedral Process Network derivation.
* :mod:`repro.kpn` — process-network simulator (bandwidth measurement).
* :mod:`repro.fpga` — multi-FPGA platform model and mapping validator.
* :mod:`repro.core` — one-call high-level API (`partition_graph`,
  `partition_ppn`, `map_to_fpgas`).
"""

__version__ = "1.0.0"

from repro.graph import WGraph  # noqa: F401  (re-export)

__all__ = ["WGraph", "__version__"]
