"""Gallery of canned SANLPs — the classic PPN workloads.

These are the applications the Compaan/Daedalus literature (and the paper's
introduction) motivates: streaming filters, stencils and linear algebra.
Each builder returns a fully-bound :class:`~repro.polyhedral.program.SANLP`
whose PPN exercises a distinct topology:

========================  ===========================================
``producer_consumer``     2-process pipeline (the hello-world PPN)
``chain``                 N-stage pipeline
``fir_filter``            FIR with tapped delay line (fan-in)
``jacobi1d``              1-D stencil over time (diamond dependences)
``matmul``                blocked matrix multiply (reduction chains)
``sobel``                 3x3 edge detection (multi-producer fan-in)
``split_merge``           fork-join (task parallel split/merge)
========================  ===========================================
"""

from __future__ import annotations

from repro.polyhedral.domain import domain
from repro.polyhedral.program import SANLP, Statement, read, write
from repro.util.errors import ReproError

__all__ = [
    "producer_consumer",
    "chain",
    "fir_filter",
    "jacobi1d",
    "matmul",
    "sobel",
    "split_merge",
    "lu",
    "GALLERY",
]


def producer_consumer(n: int = 64) -> SANLP:
    """Producer -> consumer over an ``n``-element stream."""
    prog = SANLP("producer_consumer", params={"N": n})
    prog.add_statement(
        Statement(
            "produce",
            domain(("i", 0, "N - 1"), N=n),
            writes=[write("a", "i")],
            work=3,
        )
    )
    prog.add_statement(
        Statement(
            "consume",
            domain(("i", 0, "N - 1"), N=n),
            reads=[read("a", "i")],
            writes=[write("b", "i")],
            work=5,
        )
    )
    return prog


def chain(stages: int = 8, n: int = 64) -> SANLP:
    """A ``stages``-deep pipeline: s0 -> s1 -> ... over an n-stream."""
    if stages < 2:
        raise ReproError("chain needs at least 2 stages")
    prog = SANLP(f"chain{stages}", params={"N": n})
    prog.add_statement(
        Statement(
            "s0",
            domain(("i", 0, "N - 1"), N=n),
            writes=[write("t0", "i")],
            work=2,
        )
    )
    for s in range(1, stages):
        prog.add_statement(
            Statement(
                f"s{s}",
                domain(("i", 0, "N - 1"), N=n),
                reads=[read(f"t{s - 1}", "i")],
                writes=[write(f"t{s}", "i")],
                work=2 + (s % 3),
            )
        )
    return prog


def fir_filter(taps: int = 4, n: int = 64) -> SANLP:
    """FIR filter: src feeds *taps* multiply stages folded by an adder tree
    (modelled as one accumulate process reading all tap outputs)."""
    if taps < 1:
        raise ReproError("fir needs at least one tap")
    prog = SANLP(f"fir{taps}", params={"N": n, "T": taps})
    prog.add_statement(
        Statement(
            "src",
            domain(("i", 0, "N - 1"), N=n),
            writes=[write("x", "i")],
            work=1,
        )
    )
    for t in range(taps):
        prog.add_statement(
            Statement(
                f"mul{t}",
                domain(("i", t, "N - 1"), N=n),
                reads=[read("x", f"i - {t}")],
                writes=[write(f"p{t}", "i")],
                work=4,
            )
        )
    prog.add_statement(
        Statement(
            "acc",
            domain(("i", taps - 1, "N - 1"), N=n),
            reads=[read(f"p{t}", "i") for t in range(taps)],
            writes=[write("y", "i")],
            work=2 * taps,
        )
    )
    return prog


def jacobi1d(timesteps: int = 8, n: int = 32) -> SANLP:
    """1-D Jacobi stencil: ``A[t][i] = f(A[t-1][i-1..i+1])``.

    Boundary columns are carried forward by two halo-copy processes (affine
    guards express the two-point boundary union poorly, so it is split into
    explicit statements, as PPN front-ends do)."""
    prog = SANLP("jacobi1d", params={"T": timesteps, "N": n})
    prog.add_statement(
        Statement(
            "init",
            domain(("i", 0, "N - 1"), N=n),
            writes=[write("A", 0, "i")],
            work=1,
        )
    )
    prog.add_statement(
        Statement(
            "halo_left",
            domain(("t", 1, "T"), T=timesteps, N=n),
            reads=[read("A", "t - 1", 0)],
            writes=[write("A", "t", 0)],
            work=1,
        )
    )
    prog.add_statement(
        Statement(
            "halo_right",
            domain(("t", 1, "T"), T=timesteps, N=n),
            reads=[read("A", "t - 1", "N - 1")],
            writes=[write("A", "t", "N - 1")],
            work=1,
        )
    )
    prog.add_statement(
        Statement(
            "step",
            domain(("t", 1, "T"), ("i", 1, "N - 2"), T=timesteps, N=n),
            reads=[
                read("A", "t - 1", "i - 1"),
                read("A", "t - 1", "i"),
                read("A", "t - 1", "i + 1"),
            ],
            writes=[write("A", "t", "i")],
            work=5,
        )
    )
    prog.add_statement(
        Statement(
            "sink",
            domain(("i", 1, "N - 2"), T=timesteps, N=n),
            reads=[read("A", "T", "i")],
            work=1,
        )
    )
    return prog


def matmul(n: int = 6) -> SANLP:
    """Dense matmul C = A*B with explicit reduction chain over k."""
    prog = SANLP("matmul", params={"N": n})
    prog.add_statement(
        Statement(
            "loadA",
            domain(("i", 0, "N - 1"), ("k", 0, "N - 1"), N=n),
            writes=[write("A", "i", "k")],
            work=1,
        )
    )
    prog.add_statement(
        Statement(
            "loadB",
            domain(("k", 0, "N - 1"), ("j", 0, "N - 1"), N=n),
            writes=[write("B", "k", "j")],
            work=1,
        )
    )
    prog.add_statement(
        Statement(
            "zero",
            domain(("i", 0, "N - 1"), ("j", 0, "N - 1"), N=n),
            writes=[write("C", "i", "j", 0)],
            work=1,
        )
    )
    prog.add_statement(
        Statement(
            "mac",
            domain(("i", 0, "N - 1"), ("j", 0, "N - 1"), ("k", 0, "N - 1"), N=n),
            reads=[
                read("A", "i", "k"),
                read("B", "k", "j"),
                read("C", "i", "j", "k"),
            ],
            writes=[write("C", "i", "j", "k + 1")],
            work=6,
        )
    )
    prog.add_statement(
        Statement(
            "store",
            domain(("i", 0, "N - 1"), ("j", 0, "N - 1"), N=n),
            reads=[read("C", "i", "j", "N")],
            work=1,
        )
    )
    return prog


def sobel(rows: int = 10, cols: int = 10) -> SANLP:
    """Sobel edge detection: image source, two 3x3 gradient stages, merge."""
    prog = SANLP("sobel", params={"R": rows, "C": cols})
    prog.add_statement(
        Statement(
            "pixel",
            domain(("r", 0, "R - 1"), ("c", 0, "C - 1"), R=rows, C=cols),
            writes=[write("img", "r", "c")],
            work=1,
        )
    )
    window = [
        read("img", f"r + {dr}", f"c + {dc}")
        for dr in (-1, 0, 1)
        for dc in (-1, 0, 1)
        if not (dr == 0 and dc == 0)
    ]
    inner = domain(
        ("r", 1, "R - 2"), ("c", 1, "C - 2"), R=rows, C=cols
    )
    prog.add_statement(
        Statement("gx", inner, reads=list(window), writes=[write("GX", "r", "c")], work=8)
    )
    inner2 = domain(
        ("r", 1, "R - 2"), ("c", 1, "C - 2"), R=rows, C=cols
    )
    prog.add_statement(
        Statement("gy", inner2, reads=list(window), writes=[write("GY", "r", "c")], work=8)
    )
    prog.add_statement(
        Statement(
            "mag",
            domain(("r", 1, "R - 2"), ("c", 1, "C - 2"), R=rows, C=cols),
            reads=[read("GX", "r", "c"), read("GY", "r", "c")],
            writes=[write("out", "r", "c")],
            work=6,
        )
    )
    return prog


def split_merge(branches: int = 4, n: int = 64) -> SANLP:
    """Fork-join: a splitter feeds *branches* parallel workers, one merger."""
    if branches < 2:
        raise ReproError("split_merge needs at least 2 branches")
    prog = SANLP(f"split_merge{branches}", params={"N": n, "B": branches})
    prog.add_statement(
        Statement(
            "split",
            domain(("i", 0, "N - 1"), N=n),
            writes=[write("s", "i")],
            work=1,
        )
    )
    # worker b handles the strided slice i ≡ b (mod B); strided domains are
    # expressed with a scaled iterator: i = B*q + b.
    per = n // branches
    for b in range(branches):
        prog.add_statement(
            Statement(
                f"work{b}",
                domain(("q", 0, per - 1), N=n),
                reads=[read("s", f"{branches}*q + {b}")],
                writes=[write(f"w{b}", "q")],
                work=6,
            )
        )
    prog.add_statement(
        Statement(
            "merge",
            domain(("q", 0, per - 1), N=n),
            reads=[read(f"w{b}", "q") for b in range(branches)],
            writes=[write("out", "q")],
            work=branches,
        )
    )
    return prog


def lu(n: int = 6) -> SANLP:
    """LU factorisation without pivoting — triangular domains throughout.

    Arrays are indexed by elimination step *k* for single assignment:
    ``A[k][i][j]`` is the working matrix entering step *k*; step *k*
    produces the multipliers ``L[k][i] = A[k][i][k] / A[k][k][k]`` (the
    pivot read is a *broadcast* — one value consumed by every row, an
    IOM+/OOM+ channel) and the trailing update ``A[k+1][i][j]``.
    """
    if n < 2:
        raise ReproError("lu needs at least a 2x2 matrix")
    prog = SANLP("lu", params={"N": n})
    prog.add_statement(
        Statement(
            "init",
            domain(("i", 0, "N - 1"), ("j", 0, "N - 1"), N=n),
            writes=[write("A", 0, "i", "j")],
            work=1,
        )
    )
    prog.add_statement(
        Statement(
            "div",
            domain(("k", 0, "N - 2"), ("i", "k + 1", "N - 1"), N=n),
            reads=[read("A", "k", "i", "k"), read("A", "k", "k", "k")],
            writes=[write("L", "k", "i")],
            work=4,
        )
    )
    prog.add_statement(
        Statement(
            "update",
            domain(
                ("k", 0, "N - 2"),
                ("i", "k + 1", "N - 1"),
                ("j", "k + 1", "N - 1"),
                N=n,
            ),
            reads=[
                read("A", "k", "i", "j"),
                read("L", "k", "i"),
                read("A", "k", "k", "j"),
            ],
            writes=[write("A", "k + 1", "i", "j")],
            work=6,
        )
    )
    prog.add_statement(
        Statement(
            "sink_u",
            domain(("i", 0, "N - 1"), ("j", "i", "N - 1"), N=n),
            reads=[read("A", "i", "i", "j")],
            work=1,
        )
    )
    return prog


#: name -> zero-argument builder with defaults (used by benchmarks/examples)
GALLERY = {
    "producer_consumer": producer_consumer,
    "chain": chain,
    "fir_filter": fir_filter,
    "jacobi1d": jacobi1d,
    "matmul": matmul,
    "sobel": sobel,
    "split_merge": split_merge,
    "lu": lu,
}
