"""Polyhedral front-end (system S6 in DESIGN.md).

The paper partitions *Polyhedral Process Networks* — process networks derived
from Static Affine Nested Loop Programs (SANLPs) by tools in the
Compaan/Daedalus lineage ("graphs represent Process Networks generated via
suitable tools", Section V).  This subpackage supplies that front-end:

* :mod:`repro.polyhedral.affine` — affine expressions over loop iterators,
  with a small parser ("i - 1", "2*i + j").
* :mod:`repro.polyhedral.domain` — rectangular/triangular integer iteration
  domains with exact enumeration and counting.
* :mod:`repro.polyhedral.program` — statements, array accesses and SANLPs.
* :mod:`repro.polyhedral.dependence` — exact (enumeration-based) dataflow
  analysis computing last-writer flow dependences.
* :mod:`repro.polyhedral.ppn` — PPN derivation: one process per statement,
  one FIFO channel per (producer, consumer, array) dependence, annotated
  with firing counts, token counts and resource estimates; exported to the
  partitioner as a :class:`~repro.graph.wgraph.WGraph`.
* :mod:`repro.polyhedral.gallery` — canned SANLPs (stencils, matmul, FIR,
  Sobel, producer/consumer chains) used by examples and benchmarks.
"""

from repro.polyhedral.affine import AffineExpr, parse_affine
from repro.polyhedral.domain import IterationDomain, domain
from repro.polyhedral.dependence import Dependence, find_dependences
from repro.polyhedral.ppn import PPN, Channel, Process, derive_ppn
from repro.polyhedral.program import SANLP, ArrayAccess, Statement, read, write

__all__ = [
    "AffineExpr",
    "parse_affine",
    "IterationDomain",
    "domain",
    "SANLP",
    "Statement",
    "ArrayAccess",
    "read",
    "write",
    "Dependence",
    "find_dependences",
    "PPN",
    "Process",
    "Channel",
    "derive_ppn",
]
