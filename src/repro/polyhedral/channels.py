"""PPN channel classification (after Turjan/Kienhuis/Deprettere).

The PPN derivation literature classifies each flow dependence by *how* its
tokens can be transported, because the hardware cost differs sharply:

``IOM`` (in-order, multiplicity 1)
    A plain FIFO: tokens leave in production order, each consumed once.

``IOM+`` (in-order, with multiplicity)
    FIFO plus a controller that re-reads the head token (a value consumed
    several times in a row).

``OOM`` (out-of-order, multiplicity 1)
    Needs a *reordering* channel — addressable memory sized to the maximum
    reordering window, far costlier than a FIFO.

``OOM+`` (out-of-order with multiplicity)
    Reordering memory plus multiplicity control — the most expensive kind.

``classify_channel`` derives the class from the dependence's exact
(producer firing, consumer firing) pairs; ``channel_cost_model`` turns the
class into a resource surcharge, which :func:`annotate_ppn_costs` folds
into process resource estimates (the consumer hosts the channel controller,
matching how PPN backends place them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.polyhedral.dependence import Dependence
from repro.polyhedral.ppn import PPN
from repro.util.errors import ReproError

__all__ = [
    "ChannelClass",
    "classify_channel",
    "classify_ppn",
    "channel_cost_model",
    "annotate_ppn_costs",
]


@dataclass(frozen=True)
class ChannelClass:
    """Classification of one channel."""

    in_order: bool
    has_multiplicity: bool
    #: longest reordering window (max distance a token waits past its turn);
    #: 0 for in-order channels
    reorder_window: int

    @property
    def name(self) -> str:
        base = "IOM" if self.in_order else "OOM"
        return base + ("+" if self.has_multiplicity else "")


def classify_channel(dep: Dependence) -> ChannelClass:
    """Classify a dependence from its exact firing pairs."""
    # multiplicity: some producer firing feeds more than one consumer firing
    has_mult = any(int(c) > 1 for c in dep.production) or any(
        int(c) > 1 for c in dep.consumption
    )
    # pairs are stored in production order; consumption order of those
    # tokens is the sequence of consumer firings
    consumer_seq = [rf for _, rf in dep.pairs]
    in_order = consumer_seq == sorted(consumer_seq)
    window = 0
    if not in_order:
        # how far out of place a token can be: for each position, the
        # number of later-produced tokens that must be consumed first
        seen_min = []
        running_min = float("inf")
        for rf in reversed(consumer_seq):
            running_min = min(running_min, rf)
            seen_min.append(running_min)
        seen_min.reverse()
        for i, rf in enumerate(consumer_seq):
            if i + 1 < len(consumer_seq) and seen_min[i + 1] < rf:
                # tokens after position i with earlier consumption
                ahead = sum(1 for later in consumer_seq[i + 1 :] if later < rf)
                window = max(window, ahead)
    return ChannelClass(
        in_order=in_order,
        has_multiplicity=has_mult,
        reorder_window=window,
    )


def classify_ppn(ppn: PPN) -> dict[tuple[str, str, str], ChannelClass]:
    """Classify every channel, keyed ``(src, dst, array)``."""
    return {
        (ch.src, ch.dst, ch.array): classify_channel(ch.dependence)
        for ch in ppn.channels
    }


def channel_cost_model(
    cls: ChannelClass,
    fifo_cost: float = 2.0,
    multiplicity_cost: float = 3.0,
    reorder_base: float = 8.0,
    reorder_per_slot: float = 0.5,
) -> float:
    """Resource surcharge of one channel controller.

    FIFO channels cost ``fifo_cost``; multiplicity adds a re-read
    controller; out-of-order channels replace the FIFO with addressable
    reordering memory sized to the window.
    """
    if cls.in_order:
        cost = fifo_cost
    else:
        cost = reorder_base + reorder_per_slot * cls.reorder_window
    if cls.has_multiplicity:
        cost += multiplicity_cost
    return cost


def annotate_ppn_costs(ppn: PPN, **cost_kwargs) -> PPN:
    """New PPN whose process resources include channel-controller costs.

    The *consumer* process hosts each channel's read controller (the PPN
    backend convention), so its resource estimate absorbs the surcharge.
    """
    classes = classify_ppn(ppn)
    surcharge: dict[str, float] = {p.name: 0.0 for p in ppn.processes}
    for (src, dst, array), cls in classes.items():
        if dst not in surcharge:
            raise ReproError(f"channel consumer {dst!r} unknown")
        surcharge[dst] += channel_cost_model(cls, **cost_kwargs)
    from repro.polyhedral.ppn import Process

    processes = [
        Process(
            name=p.name,
            statement=p.statement,
            firings=p.firings,
            resources=p.resources + surcharge[p.name],
            work=p.work,
        )
        for p in ppn.processes
    ]
    return PPN(
        ppn.name,
        processes,
        list(ppn.channels),
        external_inputs=list(ppn.external_inputs),
    )
