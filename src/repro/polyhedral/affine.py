"""Affine expressions over loop iterators and parameters.

An :class:`AffineExpr` is ``sum_i c_i * x_i + c0`` with integer coefficients
over named variables.  It is the index/bound language of the polyhedral
model: loop bounds, array subscripts and domain guards are all affine.

A small parser accepts the usual textual form so programs read naturally::

    parse_affine("2*i + j - 1")
    parse_affine("N - i")
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from repro.util.errors import ReproError

__all__ = ["AffineExpr", "parse_affine", "AffineParseError"]


class AffineParseError(ReproError):
    """Raised for text that is not an affine expression."""


class AffineExpr:
    """Immutable integer-affine expression ``sum c_i * var_i + const``."""

    __slots__ = ("_coeffs", "_const")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        clean = {}
        for var, c in (coeffs or {}).items():
            if not isinstance(var, str) or not var:
                raise AffineParseError(f"bad variable name {var!r}")
            c = int(c)
            if c != 0:
                clean[var] = c
        self._coeffs: dict[str, int] = clean
        self._const = int(const)

    # -- constructors ---------------------------------------------------- #
    @staticmethod
    def var(name: str) -> "AffineExpr":
        return AffineExpr({name: 1})

    @staticmethod
    def const_expr(value: int) -> "AffineExpr":
        return AffineExpr({}, value)

    # -- accessors -------------------------------------------------------- #
    @property
    def coeffs(self) -> dict[str, int]:
        return dict(self._coeffs)

    @property
    def const(self) -> int:
        return self._const

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self._coeffs)

    @property
    def is_constant(self) -> bool:
        return not self._coeffs

    def coeff(self, var: str) -> int:
        return self._coeffs.get(var, 0)

    # -- algebra ----------------------------------------------------------- #
    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        other = _as_expr(other)
        coeffs = dict(self._coeffs)
        for var, c in other._coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + c
        return AffineExpr(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({v: -c for v, c in self._coeffs.items()}, -self._const)

    def __sub__(self, other: "AffineExpr | int") -> "AffineExpr":
        return self + (-_as_expr(other))

    def __rsub__(self, other: int) -> "AffineExpr":
        return _as_expr(other) - self

    def __mul__(self, scalar: int) -> "AffineExpr":
        if isinstance(scalar, AffineExpr):
            if scalar.is_constant:
                scalar = scalar.const
            elif self.is_constant:
                return scalar * self._const
            else:
                raise AffineParseError("product of two non-constant expressions")
        scalar = int(scalar)
        return AffineExpr(
            {v: c * scalar for v, c in self._coeffs.items()}, self._const * scalar
        )

    __rmul__ = __mul__

    # -- evaluation -------------------------------------------------------- #
    def eval(self, env: Mapping[str, int]) -> int:
        """Evaluate under a full variable binding."""
        total = self._const
        for var, c in self._coeffs.items():
            try:
                total += c * int(env[var])
            except KeyError:
                raise AffineParseError(
                    f"unbound variable {var!r} in {self}"
                ) from None
        return total

    def substitute(self, env: Mapping[str, "AffineExpr | int"]) -> "AffineExpr":
        """Replace variables by expressions (partial substitution allowed)."""
        out = AffineExpr({}, self._const)
        for var, c in self._coeffs.items():
            if var in env:
                out = out + _as_expr(env[var]) * c
            else:
                out = out + AffineExpr({var: c})
        return out

    # -- misc ---------------------------------------------------------------- #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = AffineExpr.const_expr(other)
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        return hash((frozenset(self._coeffs.items()), self._const))

    def __repr__(self) -> str:
        return f"AffineExpr({self})"

    def __str__(self) -> str:
        parts = []
        for var in sorted(self._coeffs):
            c = self._coeffs[var]
            if c == 1:
                term = var
            elif c == -1:
                term = f"-{var}"
            else:
                term = f"{c}*{var}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._const or not parts:
            if parts:
                sign = "+" if self._const >= 0 else "-"
                parts.append(f"{sign} {abs(self._const)}")
            else:
                parts.append(str(self._const))
        return " ".join(parts)


def _as_expr(x: "AffineExpr | int | str") -> AffineExpr:
    if isinstance(x, AffineExpr):
        return x
    if isinstance(x, int):
        return AffineExpr.const_expr(x)
    if isinstance(x, str):
        return parse_affine(x)
    raise AffineParseError(f"cannot coerce {x!r} to an affine expression")


_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<var>[A-Za-z_][A-Za-z_0-9]*)|(?P<op>[+\-*()]))"
)


def parse_affine(text: str | int | AffineExpr) -> AffineExpr:
    """Parse ``"2*i + j - 1"`` style affine expressions.

    Grammar: terms joined by ``+``/``-``; a term is ``[int *] var``, ``int``,
    or a parenthesised expression optionally scaled by an integer.
    """
    if isinstance(text, AffineExpr):
        return text
    if isinstance(text, int):
        return AffineExpr.const_expr(text)
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise AffineParseError(
                    f"unexpected character {text[pos]!r} in {text!r}"
                )
            break
        tokens.append(m.group(m.lastgroup))
        pos = m.end()

    idx = 0

    def peek() -> str | None:
        return tokens[idx] if idx < len(tokens) else None

    def take() -> str:
        nonlocal idx
        tok = tokens[idx]
        idx += 1
        return tok

    def parse_expr() -> AffineExpr:
        out = parse_term()
        while peek() in ("+", "-"):
            op = take()
            rhs = parse_term()
            out = out + rhs if op == "+" else out - rhs
        return out

    def parse_term() -> AffineExpr:
        sign = 1
        while peek() in ("+", "-"):
            if take() == "-":
                sign = -sign
        out = parse_factor()
        while peek() == "*":
            take()
            rhs = parse_factor()
            out = out * rhs
        return out * sign

    def parse_factor() -> AffineExpr:
        tok = peek()
        if tok is None:
            raise AffineParseError(f"unexpected end of expression in {text!r}")
        if tok == "(":
            take()
            out = parse_expr()
            if peek() != ")":
                raise AffineParseError(f"missing ')' in {text!r}")
            take()
            return out
        take()
        if tok.isdigit():
            return AffineExpr.const_expr(int(tok))
        if tok in ("+", "-", "*", ")"):
            raise AffineParseError(f"unexpected {tok!r} in {text!r}")
        return AffineExpr.var(tok)

    if not tokens:
        raise AffineParseError("empty affine expression")
    out = parse_expr()
    if idx != len(tokens):
        raise AffineParseError(f"trailing tokens in {text!r}")
    return out
