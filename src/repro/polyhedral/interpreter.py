"""Reference interpreter for SANLPs — functional execution with real values.

The dependence analysis and the KPN simulator reason about token *counts*;
this interpreter executes the program's *values*: each statement gets a
kernel ``f(env, *read_values) -> value`` and arrays are real stores.  It is
the executable semantics everything else is validated against:

* a PPN computes the same function as the sequential program (Kahn
  determinacy) — tested by comparing interpreter output against a dataflow
  replay of the derived network;
* dependence analysis is exactly the last-writer relation the interpreter
  realises.

Kernels default to a tagging function that records provenance
(``("stmt", point, reads...)`` tuples), which makes equality checks between
execution strategies exact without floating-point noise.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.polyhedral.program import SANLP
from repro.util.errors import ReproError

__all__ = ["interpret", "InterpreterError", "provenance_kernel"]

Kernel = Callable[..., object]


class InterpreterError(ReproError):
    """Execution failure (read of an undefined element, missing kernel)."""


def provenance_kernel(stmt_name: str) -> Kernel:
    """Default kernel: returns a provenance tuple of its inputs."""

    def kernel(env: Mapping[str, int], *reads: object) -> object:
        point = tuple(sorted((k, v) for k, v in env.items()))
        return (stmt_name, point, tuple(reads))

    return kernel


def interpret(
    prog: SANLP,
    kernels: Mapping[str, Kernel] | None = None,
    inputs: Mapping[tuple[str, tuple[int, ...]], object] | None = None,
    strict: bool = True,
) -> dict[tuple[str, tuple[int, ...]], object]:
    """Execute *prog* sequentially; return the final array store.

    Parameters
    ----------
    kernels:
        ``statement name -> kernel``; missing entries get the provenance
        kernel.  A kernel receives the iteration environment and the read
        values (in the statement's read-access order) and returns one value
        written to every write access of that execution.
    inputs:
        Initial store contents ``(array, indices) -> value`` for elements
        read before any write (external inputs).
    strict:
        When True, reading an element that is neither written nor provided
        raises; when False such reads yield ``None``.

    Returns
    -------
    The final store: ``(array, indices) -> value``.
    """
    kernels = dict(kernels or {})
    store: dict[tuple[str, tuple[int, ...]], object] = dict(inputs or {})

    for si, _point, env in prog.execution_trace():
        stmt = prog.statements[si]
        kernel = kernels.get(stmt.name) or provenance_kernel(stmt.name)
        reads = []
        for acc in stmt.reads:
            elem = acc.element(env)
            if elem not in store:
                if strict:
                    raise InterpreterError(
                        f"{stmt.name} reads undefined element "
                        f"{elem[0]}{list(elem[1])} at {dict(env)}"
                    )
                reads.append(None)
            else:
                reads.append(store[elem])
        try:
            value = kernel(env, *reads)
        except Exception as exc:  # surface kernel bugs with context
            raise InterpreterError(
                f"kernel of {stmt.name} failed at {dict(env)}: {exc}"
            ) from exc
        for acc in stmt.writes:
            store[acc.element(env)] = value
    return store
