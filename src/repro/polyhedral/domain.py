"""Integer iteration domains of affine loop nests.

An :class:`IterationDomain` is an ordered nest of loops, each with affine
lower/upper bounds in the *outer* iterators and program parameters, plus
optional affine guard constraints (``expr >= 0``).  This is the polyhedral
sets subset SANLPs need — triangular/trapezoidal nests and guarded bodies —
with **exact** point enumeration and counting (the role Barvinok/isl play in
the full-strength toolchains).

Points enumerate in lexicographic order, which is the sequential execution
order of the loop nest and therefore the order dependence analysis needs.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.polyhedral.affine import AffineExpr, parse_affine
from repro.util.errors import ReproError

__all__ = ["LoopSpec", "IterationDomain", "domain"]

_ENUM_LIMIT = 2_000_000  # safety valve against runaway enumerations


class DomainError(ReproError):
    """Malformed iteration domain."""


@dataclass(frozen=True)
class LoopSpec:
    """One loop level: ``for var in [lower, upper]`` (inclusive bounds)."""

    var: str
    lower: AffineExpr
    upper: AffineExpr


class IterationDomain:
    """Ordered affine loop nest with optional guards.

    Parameters
    ----------
    loops:
        Sequence of ``(var, lower, upper)`` with bounds affine in outer
        iterators and parameters; inclusive on both ends.
    guards:
        Extra affine constraints ``expr >= 0`` filtering the box.
    params:
        Parameter bindings (``{"N": 16}``); every free variable in bounds
        and guards must be an outer iterator or a bound parameter.
    """

    def __init__(
        self,
        loops: Sequence[tuple[str, AffineExpr | int | str, AffineExpr | int | str]],
        guards: Sequence[AffineExpr | str] = (),
        params: Mapping[str, int] | None = None,
    ) -> None:
        self.params: dict[str, int] = {k: int(v) for k, v in (params or {}).items()}
        self.loops: list[LoopSpec] = []
        seen: set[str] = set(self.params)
        for var, lo, hi in loops:
            if not isinstance(var, str) or not var:
                raise DomainError(f"bad iterator name {var!r}")
            if var in seen:
                raise DomainError(f"iterator {var!r} shadows an outer name")
            lo_e, hi_e = parse_affine(lo), parse_affine(hi)
            for e in (lo_e, hi_e):
                free = e.variables - seen
                if free:
                    raise DomainError(
                        f"bound {e} of loop {var!r} uses unbound names {sorted(free)}"
                    )
            self.loops.append(LoopSpec(var, lo_e, hi_e))
            seen.add(var)
        self.guards: list[AffineExpr] = [parse_affine(c) for c in guards]
        for c in self.guards:
            free = c.variables - seen
            if free:
                raise DomainError(f"guard {c} uses unbound names {sorted(free)}")
        self._cached_count: int | None = None

    # ------------------------------------------------------------------ #
    @property
    def iterators(self) -> tuple[str, ...]:
        return tuple(spec.var for spec in self.loops)

    @property
    def dim(self) -> int:
        return len(self.loops)

    def points(self) -> Iterator[tuple[int, ...]]:
        """Enumerate integer points in lexicographic (execution) order."""
        env = dict(self.params)
        yield from self._enumerate(0, env, [])

    def _enumerate(
        self, level: int, env: dict[str, int], prefix: list[int]
    ) -> Iterator[tuple[int, ...]]:
        if level == len(self.loops):
            if all(c.eval(env) >= 0 for c in self.guards):
                yield tuple(prefix)
            return
        spec = self.loops[level]
        lo = spec.lower.eval(env)
        hi = spec.upper.eval(env)
        for value in range(lo, hi + 1):
            env[spec.var] = value
            prefix.append(value)
            yield from self._enumerate(level + 1, env, prefix)
            prefix.pop()
            del env[spec.var]

    def count(self) -> int:
        """Exact number of integer points (cached)."""
        if self._cached_count is None:
            n = 0
            for _ in self.points():
                n += 1
                if n > _ENUM_LIMIT:
                    raise DomainError(
                        f"domain larger than enumeration limit {_ENUM_LIMIT}"
                    )
            self._cached_count = n
        return self._cached_count

    def contains(self, point: Sequence[int]) -> bool:
        """Membership test (bounds + guards) without enumeration."""
        if len(point) != self.dim:
            return False
        env = dict(self.params)
        for spec, value in zip(self.loops, point):
            lo = spec.lower.eval(env)
            hi = spec.upper.eval(env)
            if not lo <= value <= hi:
                return False
            env[spec.var] = int(value)
        return all(c.eval(env) >= 0 for c in self.guards)

    def env_at(self, point: Sequence[int]) -> dict[str, int]:
        """Full binding (params + iterators) at *point*."""
        if len(point) != self.dim:
            raise DomainError(
                f"point arity {len(point)} != domain dim {self.dim}"
            )
        env = dict(self.params)
        env.update({spec.var: int(v) for spec, v in zip(self.loops, point)})
        return env

    def is_empty(self) -> bool:
        for _ in self.points():
            return False
        return True

    def __repr__(self) -> str:
        loops = ", ".join(
            f"{s.var}=[{s.lower}..{s.upper}]" for s in self.loops
        )
        guards = f" if {', '.join(map(str, self.guards))}" if self.guards else ""
        return f"IterationDomain({loops}{guards})"


def domain(
    *loops: tuple[str, AffineExpr | int | str, AffineExpr | int | str],
    guards: Sequence[AffineExpr | str] = (),
    **params: int,
) -> IterationDomain:
    """Convenience constructor::

        domain(("i", 0, "N - 1"), ("j", 0, "i"), N=8)
    """
    return IterationDomain(loops, guards=guards, params=params)
