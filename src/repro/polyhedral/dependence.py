"""Exact dataflow (flow-dependence) analysis for SANLPs.

PPN derivation needs, for every read access, the identity of the statement
instance that produced the value — the *last write* to that array element
preceding the read in sequential execution order (Feautrier's dataflow
analysis).  Full-strength toolchains solve this with parametric integer
programming; for the bounded domains this library targets we compute it
**exactly by enumeration** of the sequential trace, which doubles as the
ground-truth oracle the property tests compare against.

The result is aggregated per (producer statement, consumer statement, array)
triple into :class:`Dependence` records carrying:

* ``token_count`` — number of (write instance, read instance) pairs, i.e.
  the data volume the corresponding FIFO channel transports;
* ``production`` / ``consumption`` — per-firing token counts for producer
  and consumer (indexed by firing order), which drive the KPN simulator;
* ``in_order`` — whether tokens are consumed in production order (a plain
  FIFO suffices; otherwise a reordering channel would be needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.polyhedral.program import SANLP
from repro.util.errors import ReproError

__all__ = ["Dependence", "ExternalInput", "find_dependences", "DependenceError"]


class DependenceError(ReproError):
    """Dataflow analysis failure (e.g. read of a never-written element)."""


@dataclass
class Dependence:
    """Aggregated flow dependence (one FIFO channel of the PPN)."""

    producer: str
    consumer: str
    array: str
    token_count: int
    #: tokens produced by the i-th firing of the producer on this channel
    production: np.ndarray = field(repr=False)
    #: tokens consumed by the j-th firing of the consumer on this channel
    consumption: np.ndarray = field(repr=False)
    #: (producer_firing, consumer_firing) pairs, production order
    pairs: list[tuple[int, int]] = field(repr=False, default_factory=list)
    in_order: bool = True

    @property
    def is_selfloop(self) -> bool:
        return self.producer == self.consumer


@dataclass
class ExternalInput:
    """Reads of array elements no statement wrote (program inputs)."""

    consumer: str
    array: str
    token_count: int


def find_dependences(
    prog: SANLP, allow_external_inputs: bool = True
) -> tuple[list[Dependence], list[ExternalInput]]:
    """Compute all flow dependences of *prog* by exact trace enumeration.

    Returns ``(dependences, external_inputs)``.  With
    ``allow_external_inputs=False``, a read of a never-written element
    raises :class:`DependenceError` (single-assignment checking).
    """
    # last_writer: element -> (stmt_index, firing_index)
    last_writer: dict[tuple[str, tuple[int, ...]], tuple[int, int]] = {}
    firing_counter = [0] * len(prog.statements)
    # channel key -> list of (producer_firing, consumer_firing)
    channel_pairs: dict[tuple[int, int, str], list[tuple[int, int]]] = {}
    external: dict[tuple[int, str], int] = {}

    for si, point, env in prog.execution_trace():
        stmt = prog.statements[si]
        firing = firing_counter[si]
        # reads happen before the statement's own writes (RHS before LHS)
        for acc in stmt.reads:
            elem = acc.element(env)
            writer = last_writer.get(elem)
            if writer is None:
                if not allow_external_inputs:
                    raise DependenceError(
                        f"{stmt.name} reads {acc.array}{list(elem[1])} "
                        f"which no statement wrote"
                    )
                key_ext = (si, acc.array)
                external[key_ext] = external.get(key_ext, 0) + 1
                continue
            wi, wf = writer
            key = (wi, si, acc.array)
            channel_pairs.setdefault(key, []).append((wf, firing))
        for acc in stmt.writes:
            last_writer[acc.element(env)] = (si, firing)
        firing_counter[si] = firing + 1

    deps: list[Dependence] = []
    for (wi, ri, array), pairs in sorted(channel_pairs.items()):
        producer = prog.statements[wi]
        consumer = prog.statements[ri]
        production = np.zeros(producer.firings, dtype=np.int64)
        consumption = np.zeros(consumer.firings, dtype=np.int64)
        for wf, rf in pairs:
            production[wf] += 1
            consumption[rf] += 1
        # tokens depart in production order; FIFO works iff the consumer
        # needs them in that same order.
        by_production = sorted(pairs, key=lambda p: (p[0], p[1]))
        consumer_order = [rf for _, rf in by_production]
        in_order = consumer_order == sorted(consumer_order)
        deps.append(
            Dependence(
                producer=producer.name,
                consumer=consumer.name,
                array=array,
                token_count=len(pairs),
                production=production,
                consumption=consumption,
                pairs=by_production,
                in_order=in_order,
            )
        )
    externals = [
        ExternalInput(
            consumer=prog.statements[si].name, array=array, token_count=count
        )
        for (si, array), count in sorted(external.items())
    ]
    return deps, externals
