"""Polyhedral Process Network derivation.

From a SANLP we derive the PPN exactly the way the Compaan/pn lineage does:

* one **process** per statement, firing once per domain point,
* one **FIFO channel** per (producer, consumer, array) flow dependence,
  carrying ``token_count`` tokens over the program execution,
* per-process **resource estimates** (the ``R_p`` node weights of the
  paper's mapping problem) from a simple operator-cost model, and
* per-channel **bandwidth weights** — tokens scaled to a common execution
  window, the "amount of sustained data transferred" of Section I.

``PPN.to_wgraph()`` exports the network in the exact shape the partitioners
consume: undirected (bandwidth is full-duplex symmetric in the paper's
model), parallel channels between the same pair merged by summing, self
loops dropped (intra-process traffic never crosses an FPGA boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.wgraph import WGraph
from repro.polyhedral.dependence import Dependence, ExternalInput, find_dependences
from repro.polyhedral.program import SANLP
from repro.util.errors import ReproError

__all__ = ["Process", "Channel", "PPN", "ResourceModel", "derive_ppn"]


class PPNError(ReproError):
    """Malformed process network."""


@dataclass(frozen=True)
class ResourceModel:
    """Linear FPGA-area model for a process.

    ``resources = base + work_cost * work + port_cost * (#reads + #writes)``

    The defaults give LUT-flavoured numbers in the range the paper's
    experiment graphs use (tens of units per process).  Only one resource
    kind is modelled, matching "only one resource is considered at this
    time, for example LUTs" (Section V); :mod:`repro.fpga.resources`
    generalises to vectors.
    """

    base: float = 8.0
    work_cost: float = 4.0
    port_cost: float = 2.0

    def estimate(self, work: float, n_ports: int) -> float:
        return self.base + self.work_cost * work + self.port_cost * n_ports


@dataclass
class Process:
    """A PPN process: a statement plus its firing count and resources."""

    name: str
    statement: str
    firings: int
    resources: float
    work: float

    def __post_init__(self) -> None:
        if self.firings < 0:
            raise PPNError(f"negative firing count on {self.name}")
        if self.resources < 0:
            raise PPNError(f"negative resources on {self.name}")


@dataclass
class Channel:
    """A PPN FIFO channel (one flow dependence)."""

    src: str
    dst: str
    array: str
    token_count: int
    dependence: Dependence = field(repr=False)

    @property
    def is_selfloop(self) -> bool:
        return self.src == self.dst


class PPN:
    """Polyhedral Process Network: processes + FIFO channels."""

    def __init__(
        self,
        name: str,
        processes: list[Process],
        channels: list[Channel],
        external_inputs: list[ExternalInput] | None = None,
    ) -> None:
        self.name = name
        self.processes = list(processes)
        self.channels = list(channels)
        self.external_inputs = list(external_inputs or [])
        names = [p.name for p in self.processes]
        if len(set(names)) != len(names):
            raise PPNError("duplicate process names")
        known = set(names)
        for ch in self.channels:
            if ch.src not in known or ch.dst not in known:
                raise PPNError(f"channel {ch.src}->{ch.dst} references unknown process")

    # ------------------------------------------------------------------ #
    @property
    def n_processes(self) -> int:
        return len(self.processes)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def process(self, name: str) -> Process:
        for p in self.processes:
            if p.name == name:
                return p
        raise PPNError(f"no process named {name!r}")

    def process_index(self) -> dict[str, int]:
        return {p.name: i for i, p in enumerate(self.processes)}

    def total_tokens(self) -> int:
        return sum(ch.token_count for ch in self.channels)

    def to_wgraph(
        self,
        bandwidth_scale: float = 1.0,
        include_selfloops: bool = False,
    ) -> tuple[WGraph, list[str]]:
        """Export as the partitioners' weighted graph.

        Returns ``(graph, names)`` where ``names[i]`` is the process name of
        node *i*.  Edge weight = summed token counts of all channels between
        the pair, times *bandwidth_scale*.  Self-loop channels are dropped
        unless *include_selfloops* (they would be rejected by
        :class:`WGraph` — intra-process traffic is free in the paper model);
        asking to include them is therefore an error kept for explicitness.
        """
        if include_selfloops:
            raise PPNError(
                "self-loop channels cannot be represented in the mapping "
                "graph; intra-process traffic never crosses FPGAs"
            )
        index = self.process_index()
        merged: dict[tuple[int, int], float] = {}
        for ch in self.channels:
            if ch.is_selfloop:
                continue
            u, v = index[ch.src], index[ch.dst]
            key = (min(u, v), max(u, v))
            merged[key] = merged.get(key, 0.0) + ch.token_count * bandwidth_scale
        edges = [(u, v, w) for (u, v), w in sorted(merged.items())]
        node_weights = [p.resources for p in self.processes]
        g = WGraph(self.n_processes, edges, node_weights=node_weights)
        return g, [p.name for p in self.processes]

    def to_hypergraph(self, bandwidth_scale: float = 1.0):
        """Export as a hypergraph: one net per producer **token set**.

        The graph export flattens a multicast (one value read by several
        consumers, e.g. the LU pivot-row broadcast) into one 2-pin edge per
        consumer, over-counting inter-FPGA traffic.  Here the channels of
        each ``(producer, array)`` group become **one hyperedge** whose
        pins are the producer (the net's root) and its consumers, weighted
        by the number of *distinct values* produced — under the (λ−1)
        connectivity metric a value is then charged once per extra
        partition it reaches, not once per consumer.

        Groups whose consumers read pairwise-disjoint token sets (scatter,
        e.g. a split/merge distributor) carry no shared data and stay as
        2-pin nets, as do single-consumer channels; channels without
        recorded dependence pairs fall back to ``token_count`` weights.
        Self-loop traffic is dropped as in :meth:`to_wgraph`.

        Returns ``(hgraph, names)`` with ``names[i]`` the process name of
        node *i*.  Weights are scaled by *bandwidth_scale* and ceiled to
        integers (the paper's integral bandwidth units).
        """
        import math

        from repro.hypergraph.hgraph import HGraph

        index = self.process_index()
        groups: dict[tuple[str, str], list[Channel]] = {}
        for ch in self.channels:
            groups.setdefault((ch.src, ch.array), []).append(ch)

        def scaled(w: float) -> float:
            return float(math.ceil(w * bandwidth_scale))

        nets: list[tuple[list[int], float]] = []
        for (src, _array), chans in sorted(groups.items()):
            root = index[src]
            # self-loop channels never cross FPGAs: drop them before the
            # value-set union, or intra-process-only values would inflate
            # multicast weights and mask genuine scatters
            chans = [ch for ch in chans if ch.dst != ch.src]
            if not chans:
                continue
            # per-consumer value sets (a consumer may own several parallel
            # channels; sharing is judged *between* consumers, never within
            # one, or intra-consumer overlap would fake a multicast)
            consumer_values: dict[int, set[int] | None] = {}
            consumer_tokens: dict[int, int] = {}
            for ch in chans:
                dst = index[ch.dst]
                consumer_tokens[dst] = (
                    consumer_tokens.get(dst, 0) + ch.token_count
                )
                vals = (
                    {wf for wf, _ in ch.dependence.pairs}
                    if ch.dependence is not None and ch.dependence.pairs
                    else None
                )
                if vals is None or consumer_values.get(dst, set()) is None:
                    consumer_values[dst] = None
                elif dst in consumer_values:
                    consumer_values[dst] |= vals
                else:
                    consumer_values[dst] = vals
            consumers = sorted(consumer_values)
            have_pairs = all(s is not None for s in consumer_values.values())
            if have_pairs:
                union = set().union(*consumer_values.values())
                disjoint = len(union) == sum(
                    len(s) for s in consumer_values.values()
                )
            else:
                union, disjoint = set(), True
            if len(consumers) >= 2 and have_pairs and not disjoint:
                # genuine multicast: one net, root first
                w = scaled(len(union))
                if w > 0:
                    nets.append(([root] + consumers, w))
                continue
            # scatter / single consumer / no dependence info: 2-pin nets
            for dst in consumers:
                vals = consumer_values[dst]
                volume = len(vals) if vals is not None else consumer_tokens[dst]
                w = scaled(volume)
                if w > 0:
                    nets.append(([root, dst], w))
        node_weights = [p.resources for p in self.processes]
        hg = HGraph(self.n_processes, nets, node_weights=node_weights)
        return hg, [p.name for p in self.processes]

    def __repr__(self) -> str:
        return (
            f"PPN({self.name!r}, processes={self.n_processes}, "
            f"channels={self.n_channels}, tokens={self.total_tokens()})"
        )


def derive_ppn(
    prog: SANLP,
    resource_model: ResourceModel | None = None,
) -> PPN:
    """Derive the PPN of *prog* (exact dependence analysis + cost model)."""
    model = resource_model or ResourceModel()
    deps, externals = find_dependences(prog)
    processes = [
        Process(
            name=s.name,
            statement=s.name,
            firings=s.firings,
            resources=model.estimate(s.work, len(s.reads) + len(s.writes)),
            work=s.work,
        )
        for s in prog.statements
    ]
    channels = [
        Channel(
            src=d.producer,
            dst=d.consumer,
            array=d.array,
            token_count=d.token_count,
            dependence=d,
        )
        for d in deps
    ]
    return PPN(prog.name, processes, channels, external_inputs=externals)
