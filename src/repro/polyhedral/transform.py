"""SANLP transformations that reshape the derived process network.

The paper's premise is that "the number of nodes is usually proportional
with the parallel portions of computation" — PPN tools control that number
with source-level transformations before derivation.  Two are provided:

``unroll_statement``
    Partial unrolling of a statement's *outermost* loop by factor *f*:
    the statement becomes *f* statements, each covering the residue class
    ``i ≡ r (mod f)`` via the substitution ``i = f*q + r``.  The derived
    PPN gains processes (more parallelism, more channels) while computing
    the same function — the knob benchmark X9 sweeps.

``fuse_statements``
    The inverse direction for two statements over identical domains with
    disjoint writes: a single statement performing both (process merging).

Both return *new* programs; the originals are untouched.  Correctness is
checked in tests by interpreting the transformed and original programs and
comparing stores (the interpreter is the executable semantics).
"""

from __future__ import annotations

from repro.polyhedral.affine import AffineExpr, parse_affine
from repro.polyhedral.domain import IterationDomain
from repro.polyhedral.program import SANLP, ArrayAccess, Statement
from repro.util.errors import ReproError

__all__ = ["unroll_statement", "fuse_statements"]


class TransformError(ReproError):
    """Transformation precondition violated."""


def _substitute_access(acc: ArrayAccess, env: dict[str, AffineExpr]) -> ArrayAccess:
    return ArrayAccess(
        acc.array,
        tuple(s.substitute(env) for s in acc.subscripts),
        acc.kind,
    )


def unroll_statement(prog: SANLP, name: str, factor: int) -> SANLP:
    """Unroll *name*'s outermost loop by *factor*.

    Preconditions: the outermost loop must have **constant** bounds (after
    parameter substitution) and its trip count must be divisible by
    *factor* — the standard full-residue unrolling PPN front-ends apply.
    """
    if factor < 1:
        raise TransformError(f"factor must be >= 1, got {factor}")
    stmt = prog.statement(name)
    if factor == 1:
        return prog
    if stmt.domain.dim == 0:
        raise TransformError(f"{name!r} has no loops to unroll")
    outer = stmt.domain.loops[0]
    params = dict(stmt.domain.params)
    lo_free = outer.lower.variables - set(params)
    hi_free = outer.upper.variables - set(params)
    if lo_free or hi_free:
        raise TransformError(
            f"outermost bound of {name!r} must be constant after parameter "
            f"substitution (free: {sorted(lo_free | hi_free)})"
        )
    lo = outer.lower.eval(params)
    hi = outer.upper.eval(params)
    trip = hi - lo + 1
    if trip % factor:
        raise TransformError(
            f"trip count {trip} of {name!r} not divisible by factor {factor}"
        )
    per = trip // factor

    out = SANLP(prog.name, params=dict(prog.params))
    for s in prog.statements:
        if s.name != name:
            out.add_statement(s)
            continue
        q = f"{outer.var}_q"
        for r in range(factor):
            # i = factor*q + (lo + r), q in [0, per-1]
            repl = {
                outer.var: parse_affine(f"{factor}*{q} + {lo + r}")
            }
            inner_loops = [
                (
                    spec.var,
                    spec.lower.substitute(repl),
                    spec.upper.substitute(repl),
                )
                for spec in s.domain.loops[1:]
            ]
            new_domain = IterationDomain(
                [(q, 0, per - 1), *inner_loops],
                guards=[c.substitute(repl) for c in s.domain.guards],
                params=params,
            )
            out.add_statement(
                Statement(
                    f"{s.name}_u{r}",
                    new_domain,
                    writes=[_substitute_access(a, repl) for a in s.writes],
                    reads=[_substitute_access(a, repl) for a in s.reads],
                    work=s.work,
                )
            )
    return out


def fuse_statements(prog: SANLP, first: str, second: str, fused_name: str | None = None) -> SANLP:
    """Fuse two adjacent statements over identical domains (process merge).

    Preconditions: *first* and *second* are textually adjacent (no statement
    between them), have structurally identical domains, write disjoint
    arrays, and *second* does not read anything *first* writes at a
    *different* iteration point (only the aligned flow ``first[i] ->
    second[i]`` survives fusion; misaligned reads would change semantics).
    """
    idx1 = next(
        (i for i, s in enumerate(prog.statements) if s.name == first), None
    )
    idx2 = next(
        (i for i, s in enumerate(prog.statements) if s.name == second), None
    )
    if idx1 is None or idx2 is None:
        raise TransformError(f"unknown statement in fuse({first!r}, {second!r})")
    if idx2 != idx1 + 1:
        raise TransformError(f"{first!r} and {second!r} are not adjacent")
    s1, s2 = prog.statements[idx1], prog.statements[idx2]

    d1, d2 = s1.domain, s2.domain
    same_domain = (
        d1.iterators == d2.iterators
        and d1.params == d2.params
        and len(d1.loops) == len(d2.loops)
        and all(
            a.lower == b.lower and a.upper == b.upper
            for a, b in zip(d1.loops, d2.loops)
        )
        and d1.guards == d2.guards
    )
    if not same_domain:
        raise TransformError(
            f"domains of {first!r} and {second!r} differ; cannot fuse"
        )
    w1 = {a.array for a in s1.writes}
    w2 = {a.array for a in s2.writes}
    if w1 & w2:
        raise TransformError(f"fused statements both write {sorted(w1 & w2)}")
    identity = {v: AffineExpr.var(v) for v in d1.iterators}
    aligned_writes = {
        (a.array, tuple(str(s) for s in a.subscripts)) for a in s1.writes
    }
    for acc in s2.reads:
        if acc.array in w1:
            key = (acc.array, tuple(str(s) for s in acc.subscripts))
            if key not in aligned_writes:
                raise TransformError(
                    f"{second!r} reads {acc} produced at a different point "
                    f"by {first!r}; fusion would reorder it"
                )
    del identity  # alignment established structurally

    # second's aligned reads of first's writes become internal: drop them
    internal = {a.array for a in s1.writes}
    fused_reads = list(s1.reads) + [
        a for a in s2.reads if a.array not in internal
    ]
    fused = Statement(
        fused_name or f"{first}__{second}",
        d1,
        writes=list(s1.writes) + list(s2.writes),
        reads=fused_reads,
        work=s1.work + s2.work,
    )
    out = SANLP(prog.name, params=dict(prog.params))
    for i, s in enumerate(prog.statements):
        if i == idx1:
            out.add_statement(fused)
        elif i == idx2:
            continue
        else:
            out.add_statement(s)
    return out
