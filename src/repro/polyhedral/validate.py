"""Static validation of SANLPs.

PPN derivation (Compaan/pn) requires programs in *single-assignment* form —
every array element written exactly once — otherwise the last-writer
relation silently drops dataflow.  ``check_single_assignment`` verifies
that property exactly (by trace enumeration, like the dependence analysis);
``program_report`` bundles the full static health check front-ends run
before derivation:

* duplicate writes (single-assignment violations),
* reads of never-written elements (external inputs — fine, but listed),
* statements with empty domains (dead code),
* arrays written but never read (dead stores / program outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.polyhedral.program import SANLP
from repro.util.errors import ReproError

__all__ = [
    "SingleAssignmentError",
    "check_single_assignment",
    "ProgramReport",
    "program_report",
]


class SingleAssignmentError(ReproError):
    """An array element is written more than once."""


def check_single_assignment(prog: SANLP) -> None:
    """Raise :class:`SingleAssignmentError` on the first duplicate write."""
    writers: dict[tuple[str, tuple[int, ...]], tuple[str, tuple[int, ...]]] = {}
    for si, point, env in prog.execution_trace():
        stmt = prog.statements[si]
        for acc in stmt.writes:
            elem = acc.element(env)
            prev = writers.get(elem)
            if prev is not None:
                raise SingleAssignmentError(
                    f"{elem[0]}{list(elem[1])} written by {prev[0]} at "
                    f"{list(prev[1])} and again by {stmt.name} at {list(point)}"
                )
            writers[elem] = (stmt.name, point)


@dataclass
class ProgramReport:
    """Outcome of :func:`program_report`."""

    single_assignment: bool
    #: first duplicate write, if any: (array, indices, first writer, second)
    duplicate_write: tuple | None
    #: statement name -> firing count, for empty-domain detection
    firings: dict[str, int] = field(default_factory=dict)
    empty_statements: list[str] = field(default_factory=list)
    #: arrays read before/without any write, with read counts
    external_arrays: dict[str, int] = field(default_factory=dict)
    #: arrays written but never read (outputs or dead stores)
    unread_arrays: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.single_assignment and not self.empty_statements

    def summary(self) -> str:
        lines = [
            f"single assignment: {'ok' if self.single_assignment else 'VIOLATED'}"
        ]
        if self.duplicate_write:
            arr, idx, w1, w2 = self.duplicate_write
            lines.append(f"  duplicate write: {arr}{list(idx)} by {w1} then {w2}")
        if self.empty_statements:
            lines.append(f"empty statements: {self.empty_statements}")
        if self.external_arrays:
            lines.append(f"external inputs: {self.external_arrays}")
        if self.unread_arrays:
            lines.append(f"unread arrays (outputs): {self.unread_arrays}")
        return "\n".join(lines)


def program_report(prog: SANLP) -> ProgramReport:
    """Run every static check; never raises (findings are reported)."""
    writers: dict[tuple[str, tuple[int, ...]], str] = {}
    duplicate: tuple | None = None
    external: dict[str, int] = {}
    read_arrays: set[str] = set()
    written_arrays: set[str] = set()

    for si, _point, env in prog.execution_trace():
        stmt = prog.statements[si]
        for acc in stmt.reads:
            elem = acc.element(env)
            read_arrays.add(acc.array)
            if elem not in writers:
                external[acc.array] = external.get(acc.array, 0) + 1
        for acc in stmt.writes:
            elem = acc.element(env)
            written_arrays.add(acc.array)
            if elem in writers and duplicate is None:
                duplicate = (elem[0], elem[1], writers[elem], stmt.name)
            writers[elem] = stmt.name

    firings = {s.name: s.firings for s in prog.statements}
    return ProgramReport(
        single_assignment=duplicate is None,
        duplicate_write=duplicate,
        firings=firings,
        empty_statements=[n for n, f in firings.items() if f == 0],
        external_arrays=external,
        unread_arrays=sorted(written_arrays - read_arrays),
    )
