"""Static Affine Nested Loop Programs (SANLPs).

A SANLP is the input language of PPN derivation tools (Compaan, pn,
Daedalus): a sequence of statements, each executing over an affine iteration
domain, reading and writing array elements through affine subscripts.  The
statements execute in textual order, each sweeping its own domain in
lexicographic order — the classic sequence-of-loop-nests form.

Example (a producer/consumer pair)::

    prog = SANLP("pc", params={"N": 64})
    prog.add_statement(Statement(
        "produce", domain(("i", 0, "N - 1"), N=64),
        writes=[write("a", "i")],
        work=4,
    ))
    prog.add_statement(Statement(
        "consume", domain(("i", 0, "N - 1"), N=64),
        reads=[read("a", "i")],
        work=7,
    ))
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.polyhedral.affine import AffineExpr, parse_affine
from repro.polyhedral.domain import IterationDomain
from repro.util.errors import ReproError

__all__ = ["ArrayAccess", "Statement", "SANLP", "read", "write"]


class ProgramError(ReproError):
    """Malformed SANLP."""


@dataclass(frozen=True)
class ArrayAccess:
    """One affine array reference, e.g. ``A[i, j-1]``.

    ``kind`` is ``"read"`` or ``"write"``; subscripts are affine in the
    enclosing statement's iterators and the program parameters.
    """

    array: str
    subscripts: tuple[AffineExpr, ...]
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ProgramError(f"access kind must be read/write, got {self.kind!r}")
        if not self.array:
            raise ProgramError("array name must be non-empty")

    def element(self, env) -> tuple[str, tuple[int, ...]]:
        """Concrete array element referenced under binding *env*."""
        return self.array, tuple(s.eval(env) for s in self.subscripts)

    def __str__(self) -> str:
        subs = ", ".join(map(str, self.subscripts))
        return f"{self.array}[{subs}]"


def read(array: str, *subscripts: AffineExpr | int | str) -> ArrayAccess:
    """Shorthand for a read access: ``read("a", "i-1", "j")``."""
    return ArrayAccess(array, tuple(parse_affine(s) for s in subscripts), "read")


def write(array: str, *subscripts: AffineExpr | int | str) -> ArrayAccess:
    """Shorthand for a write access."""
    return ArrayAccess(array, tuple(parse_affine(s) for s in subscripts), "write")


@dataclass
class Statement:
    """One statement of a SANLP.

    Attributes
    ----------
    name:
        Unique statement label (becomes the PPN process name).
    domain:
        Iteration domain (execution count = ``domain.count()``).
    writes / reads:
        Affine array accesses performed each execution.
    work:
        Abstract operation count per execution — feeds the FPGA resource
        estimator (Section V's "amount of resources required to implement
        such process", e.g. LUTs).
    """

    name: str
    domain: IterationDomain
    writes: Sequence[ArrayAccess] = field(default_factory=tuple)
    reads: Sequence[ArrayAccess] = field(default_factory=tuple)
    work: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("statement name must be non-empty")
        self.writes = tuple(self.writes)
        self.reads = tuple(self.reads)
        for acc in self.writes:
            if acc.kind != "write":
                raise ProgramError(f"{acc} listed in writes but is a {acc.kind}")
        for acc in self.reads:
            if acc.kind != "read":
                raise ProgramError(f"{acc} listed in reads but is a {acc.kind}")
        if self.work < 0:
            raise ProgramError(f"work must be >= 0, got {self.work}")
        bound = set(self.domain.iterators) | set(self.domain.params)
        for acc in (*self.writes, *self.reads):
            for sub in acc.subscripts:
                free = sub.variables - bound
                if free:
                    raise ProgramError(
                        f"subscript {sub} of {acc} in {self.name!r} uses "
                        f"unbound names {sorted(free)}"
                    )

    @property
    def firings(self) -> int:
        """Number of executions (domain cardinality)."""
        return self.domain.count()


class SANLP:
    """A static affine nested loop program: ordered statements + parameters."""

    def __init__(self, name: str, params: dict[str, int] | None = None) -> None:
        if not name:
            raise ProgramError("program name must be non-empty")
        self.name = name
        self.params = {k: int(v) for k, v in (params or {}).items()}
        self.statements: list[Statement] = []

    def add_statement(self, stmt: Statement) -> "SANLP":
        if any(s.name == stmt.name for s in self.statements):
            raise ProgramError(f"duplicate statement name {stmt.name!r}")
        self.statements.append(stmt)
        return self

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise ProgramError(f"no statement named {name!r}")

    @property
    def arrays(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.statements:
            for acc in (*s.writes, *s.reads):
                seen.setdefault(acc.array, None)
        return list(seen)

    def total_firings(self) -> int:
        return sum(s.firings for s in self.statements)

    def execution_trace(self):
        """Yield ``(stmt_index, point, env)`` in sequential execution order.

        Statements run in textual order, each sweeping its domain in
        lexicographic order — the reference semantics dependence analysis
        is defined against.
        """
        for si, stmt in enumerate(self.statements):
            for point in stmt.domain.points():
                yield si, point, stmt.domain.env_at(point)

    def __repr__(self) -> str:
        return (
            f"SANLP({self.name!r}, statements={[s.name for s in self.statements]})"
        )
