"""Hypergraph partitioning subsystem (connectivity-metric multilevel k-way).

The paper's mapping graph flattens every PPN multicast/broadcast channel
into 2-pin edges, over-counting inter-FPGA traffic: a value sent once to
consumers spread over λ parts is charged per *consumer* instead of per
*extra part*.  This subpackage models such channels as hyperedges and
partitions under the **(λ−1) connectivity metric** (Schlag et al.), which
charges each net ``w_e · (λ(e) − 1)`` — the traffic a multicast actually
generates.

* :mod:`repro.hypergraph.hgraph` — CSR pins/incidence data structure with
  node/net weights and rooted nets (:class:`HGraph`).
* :mod:`repro.hypergraph.metrics` — Φ pin-count matrix, connectivity
  objective, root-attributed pairwise traffic, constraint evaluation.
* :mod:`repro.hypergraph.refine_state` — the incremental Φ engine
  (:class:`HyperRefinementState`), a generalization of the graph
  refinement engine; 2-pin-only hypergraphs reduce to it exactly.
* :mod:`repro.hypergraph.refine` — constrained FM on the shared driver.
* :mod:`repro.hypergraph.coarsen` — heavy-edge contraction with
  identical-net detection.
* :mod:`repro.hypergraph.partition` — the multilevel k-way driver
  (:func:`hyper_partition`).

Entry points: ``PPN.to_hypergraph()``, ``partition_ppn(...,
model="hypergraph")``, ``partition_graph(..., method="hyper")``, the CLI's
``--model hypergraph``, and hMETIS ``.hgr`` I/O in
:mod:`repro.graph.metisio`.  See ``docs/hypergraph.md``.
"""

from repro.hypergraph.coarsen import (
    build_hyper_hierarchy,
    coarsen_hyper_once,
    contract_hyper,
    heavy_pin_matching,
)
from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.metrics import (
    connectivity_objective,
    evaluate_hyper_partition,
    hyper_bandwidth_matrix,
    net_lambdas,
    pin_count_matrix,
)
from repro.hypergraph.partition import HyperConfig, hyper_partition
from repro.hypergraph.refine import constrained_hyper_fm
from repro.hypergraph.refine_state import HyperRefinementState

__all__ = [
    "HGraph",
    "HyperRefinementState",
    "HyperConfig",
    "hyper_partition",
    "constrained_hyper_fm",
    "pin_count_matrix",
    "net_lambdas",
    "connectivity_objective",
    "hyper_bandwidth_matrix",
    "evaluate_hyper_partition",
    "heavy_pin_matching",
    "contract_hyper",
    "coarsen_hyper_once",
    "build_hyper_hierarchy",
]
