"""Constrained k-way refinement under the (λ−1) connectivity objective.

``constrained_hyper_fm`` is the hypergraph counterpart of
:func:`~repro.partition.kway_refine.constrained_kway_fm`: the *same*
engine-agnostic FM driver (gain buckets on ``(violation_delta,
cut_delta)``, lazy revalidation, best-prefix rollback, lexicographic
move selection) running on the Φ pin-count engine instead of the graph
connectivity engine.  On a 2-pin-only hypergraph the two are move-for-move
identical (``tests/test_hyper_differential.py``).
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.metrics import check_hyper_assignment
from repro.hypergraph.refine_state import HyperRefinementState
from repro.partition.kway_refine import run_constrained_fm
from repro.partition.metrics import ConstraintSpec
from repro.util.errors import PartitionError

__all__ = ["constrained_hyper_fm"]


def _as_state(
    hg: HGraph, assign: np.ndarray, k: int, state: HyperRefinementState | None
) -> HyperRefinementState:
    """Validate/adopt a caller-provided Φ engine, or build a fresh one."""
    if state is None:
        return HyperRefinementState(hg, assign, k)
    if state.hg is not hg or state.k != k:
        raise PartitionError("provided state does not match hypergraph/k")
    if not np.array_equal(state.assign, assign):
        raise PartitionError(
            "provided state holds a different assignment than the one passed"
        )
    return state


def constrained_hyper_fm(
    hg: HGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    max_passes: int = 6,
    seed=None,
    abort_after: int | None = None,
    state: HyperRefinementState | None = None,
) -> np.ndarray:
    """Constraint-driven FM refinement of a k-way hypergraph partition.

    Move selection is lexicographic — first reduce constraint violation
    (pairwise root-attributed traffic over ``Bmax``, resources over
    ``Rmax``), then reduce the (λ−1) connectivity objective.  When *state*
    is given the Φ engine is reused and left holding the returned
    assignment, so callers can read ``state.metrics()`` for free.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_hyper_assignment(hg, assign, k)
    st = _as_state(hg, a, k, state)
    return run_constrained_fm(
        st, hg.n, hg.adjacent_nodes, constraints,
        max_passes=max_passes, seed=seed, abort_after=abort_after,
    )
