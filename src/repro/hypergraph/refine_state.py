"""Vectorized incremental state for connectivity-metric refinement.

:class:`HyperRefinementState` generalises
:class:`~repro.partition.refine_state.RefinementState` from graphs to
hypergraphs.  In place of the per-node part-connectivity matrix it keeps
the **pin-count matrix** ``Φ`` of shape ``(k, n_nets)``: ``Φ[p, e]`` is the
number of net *e*'s pins currently assigned to part *p* — the KaHyPar-style
state from which every connectivity quantity is one comparison away:

* net connectivity ``λ(e) = |{p : Φ[p, e] > 0}|`` (tracked incrementally),
* the (λ−1) objective ``Σ w_e (λ(e) − 1)``,
* gain of moving *u* to *d*: a net contributes ``+w_e`` iff *u* is its last
  pin in the source part, ``−w_e`` iff part *d* holds none of its pins yet,
* the pairwise traffic matrix ``bw`` under root attribution (the net's
  value travels from the root's part to each other connected part), whose
  upper triangle sums to the objective — exactly the ``bw``/cut relation
  the graph engine has, so the paper's ``Bmax`` cap carries over.

A move costs **O(pins(u) + k)** amortised: each incident net updates two
``Φ`` entries and at most two ``bw`` pairs, except when the *root* pin
itself moves, which re-attributes that net's ≤ λ pairs.  The move trail,
rollback, epoch counter and lexicographic ``(violation, cut, dest)`` move
selection mirror the graph engine bit for bit — on a 2-pin-only hypergraph
every tracked quantity and every chosen move is identical to
``RefinementState`` (pinned by ``tests/test_hyper_differential.py``).

Data-structure invariants are documented in ``docs/hypergraph.md``.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.metrics import check_hyper_assignment
from repro.partition.metrics import ConstraintSpec, PartitionMetrics
from repro.partition.refine_state import (
    constrained_key,
    metrics_from_matrices,
    select_best_move,
)
from repro.util.errors import PartitionError

__all__ = ["HyperRefinementState"]


class HyperRefinementState:
    """Mutable k-way assignment over a hypergraph with incremental Φ/bw.

    Parameters
    ----------
    hg, assign, k:
        Hypergraph, initial node→part assignment (validated, copied),
        part count.

    Notes
    -----
    All tracked quantities are exact under integer-valued weights; the
    invariant suite (``tests/test_hyper_refine_invariants.py``) checks them
    against from-scratch recomputation after every pass.
    """

    __slots__ = (
        "hg",
        "k",
        "assign",
        "phi",
        "lam",
        "part_weight",
        "part_size",
        "bw",
        "_trail",
        "_iu",
        "_epoch",
    )

    def __init__(self, hg: HGraph, assign: np.ndarray, k: int) -> None:
        self.hg = hg
        self.k = int(k)
        a = check_hyper_assignment(hg, assign, k).copy()
        self.assign = a

        pins, net_ids = hg.pin_arrays
        phi = np.zeros((self.k, hg.n_nets), dtype=np.int64)
        np.add.at(phi, (a[pins], net_ids), 1)
        self.phi = phi
        self.lam = (phi > 0).sum(axis=0)

        pw = np.zeros(self.k, dtype=np.float64)
        np.add.at(pw, a, hg.node_weights)
        self.part_weight = pw
        self.part_size = np.bincount(a, minlength=self.k)

        bw = np.zeros((self.k, self.k), dtype=np.float64)
        w = hg.net_weights
        root_parts = a[hg.roots] if hg.n_nets else np.empty(0, dtype=np.int64)
        for e in np.nonzero(self.lam > 1)[0]:
            rp = int(root_parts[e])
            we = float(w[e])
            for p in np.nonzero(phi[:, e])[0]:
                p = int(p)
                if p != rp:
                    bw[rp, p] += we
                    bw[p, rp] += we
        self.bw = bw

        self._trail: list[tuple[int, int]] = []
        self._iu = np.triu_indices(self.k, k=1)
        self._epoch = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def cut(self) -> float:
        """The (λ−1) connectivity objective (== triu of ``bw``)."""
        return float(self.bw[self._iu].sum())

    @property
    def epoch(self) -> int:
        """Monotone move counter (same caching contract as the graph engine)."""
        return self._epoch

    def connection_vector(self, u: int) -> np.ndarray:
        """Summed weight of *u*'s nets with another pin in each part,
        shape ``(k,)``.  Equals the graph engine's ``conn[:, u]`` on a
        2-pin-only hypergraph."""
        nets = self.hg.nets_of(u)
        src = int(self.assign[u])
        cu = np.zeros(self.k, dtype=np.float64)
        if nets.size == 0:
            return cu
        phi_e = self.phi[:, nets]
        mask = phi_e > 0
        mask[src] = phi_e[src] > 1  # discount u's own pin
        return mask @ self.hg.net_weights[nets]

    def boundary_mask(self) -> np.ndarray:
        """Boolean mask of nodes incident to at least one cut net (λ > 1)."""
        out = np.zeros(self.hg.n, dtype=bool)
        pins, net_ids = self.hg.pin_arrays
        out[pins[self.lam[net_ids] > 1]] = True
        return out

    def boundary_nodes(self) -> np.ndarray:
        """Sorted array of boundary-node ids."""
        return np.nonzero(self.boundary_mask())[0]

    def key(self, constraints: ConstraintSpec) -> tuple[float, float]:
        """``(total violation, connectivity objective)`` — the FM key,
        computed by the exact function the graph engine uses."""
        return constrained_key(self.bw, self.part_weight, self._iu, constraints)

    def metrics(self, constraints: ConstraintSpec | None = None) -> PartitionMetrics:
        """:class:`PartitionMetrics` from the tracked matrices (no rescan)."""
        constraints = constraints or ConstraintSpec()
        return metrics_from_matrices(
            self.bw, self.part_weight, self.k, constraints
        )

    def overloaded_mask(self, constraints: ConstraintSpec) -> np.ndarray:
        """Boolean ``(k,)`` mask of parts over the resource cap (the FM
        escape/seed hook — same semantics as the graph engine's)."""
        if np.isfinite(constraints.rmax):
            return self.part_weight > constraints.rmax
        return np.zeros(self.k, dtype=bool)

    def overloaded_nodes(self, constraints: ConstraintSpec) -> np.ndarray:
        """Sorted ids of nodes living in an over-cap part (FM extra seeds)."""
        return np.nonzero(self.overloaded_mask(constraints)[self.assign])[0]

    # ------------------------------------------------------------------ #
    # flow-refinement hooks (see repro.partition.flow_refine)
    # ------------------------------------------------------------------ #
    def flow_adjacency(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Weighted adjacency of *u* by **clique expansion** of its nets:
        every net *e* with ≥ 2 pins contributes ``w_e / (|pins(e)| − 1)``
        to each of *u*'s co-pins.  Exact on 2-pin nets (where it equals
        the graph edge weight) and the standard conservative approximation
        on larger ones — cutting all arcs of the expansion costs at least
        as much as cutting the net once, so flow corridors built on it
        never undercount a candidate cut."""
        hg = self.hg
        acc: dict[int, float] = {}
        for e in hg.nets_of(u):
            e = int(e)
            size = hg.net_size(e)
            if size < 2:
                continue
            w = float(hg.net_weights[e]) / (size - 1)
            for v in hg.pins_of(e):
                v = int(v)
                if v != u:
                    acc[v] = acc.get(v, 0.0) + w
        if not acc:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        nbrs = np.array(sorted(acc), dtype=np.int64)
        ws = np.array([acc[int(v)] for v in nbrs], dtype=np.float64)
        return nbrs, ws

    def pair_boundary(self, a: int, b: int) -> np.ndarray:
        """Sorted ids of part-*a*/*b* pins of nets touching both parts —
        the seed set of a flow corridor."""
        pins, net_ids = self.hg.pin_arrays
        cut = (self.phi[a] > 0) & (self.phi[b] > 0)
        nodes = np.unique(pins[cut[net_ids]])
        sides = self.assign[nodes]
        return nodes[(sides == a) | (sides == b)]

    def flow_node_weights(self) -> np.ndarray:
        """Per-node weights for the most-balanced min-cut heuristic."""
        return self.hg.node_weights

    # ------------------------------------------------------------------ #
    # moves and rollback
    # ------------------------------------------------------------------ #
    def move(self, u: int, dest: int) -> None:
        """Move node *u* to part *dest*, logging the move on the trail."""
        src = self._move(u, dest)
        if src >= 0:
            self._trail.append((u, src))

    def _move(self, u: int, dest: int) -> int:
        """Unlogged move; returns the source part, or -1 for a no-op."""
        src = int(self.assign[u])
        dest = int(dest)
        if not (0 <= dest < self.k):
            raise PartitionError(f"destination part {dest} out of range")
        if dest == src:
            return -1
        hg = self.hg
        phi, bw, lam = self.phi, self.bw, self.lam
        a = self.assign
        w = hg.net_weights
        roots = hg.roots
        for e in hg.nets_of(u):
            e = int(e)
            we = float(w[e])
            r = int(roots[e])
            if r == u:
                # the root moves with u: re-attribute every pair of this net
                for p in np.nonzero(phi[:, e])[0]:
                    p = int(p)
                    if p != src:
                        bw[src, p] -= we
                        bw[p, src] -= we
                phi[src, e] -= 1
                phi[dest, e] += 1
                if phi[src, e] == 0:
                    lam[e] -= 1
                if phi[dest, e] == 1:
                    lam[e] += 1
                for p in np.nonzero(phi[:, e])[0]:
                    p = int(p)
                    if p != dest:
                        bw[dest, p] += we
                        bw[p, dest] += we
            else:
                rp = int(a[r])
                if phi[src, e] == 1 and src != rp:
                    bw[src, rp] -= we
                    bw[rp, src] -= we
                if phi[dest, e] == 0 and dest != rp:
                    bw[dest, rp] += we
                    bw[rp, dest] += we
                phi[src, e] -= 1
                phi[dest, e] += 1
                if phi[src, e] == 0:
                    lam[e] -= 1
                if phi[dest, e] == 1:
                    lam[e] += 1
        w_u = float(hg.node_weights[u])
        self.part_weight[src] -= w_u
        self.part_weight[dest] += w_u
        self.part_size[src] -= 1
        self.part_size[dest] += 1
        a[u] = dest
        self._epoch += 1
        return src

    def snapshot(self) -> int:
        """Opaque mark of the current move-trail position."""
        return len(self._trail)

    def rollback(self, mark: int) -> None:
        """Rewind to :meth:`snapshot` mark *mark*, undoing moves in reverse."""
        if not (0 <= mark <= len(self._trail)):
            raise PartitionError(
                f"rollback mark {mark} outside trail of {len(self._trail)}"
            )
        while len(self._trail) > mark:
            u, src = self._trail.pop()
            self._move(u, src)

    def clear_trail(self) -> None:
        """Drop rollback history (call when a prefix is committed for good)."""
        self._trail.clear()

    def copy(self) -> "HyperRefinementState":
        """Independent copy sharing only the immutable hypergraph."""
        out = object.__new__(HyperRefinementState)
        out.hg = self.hg
        out.k = self.k
        out.assign = self.assign.copy()
        out.phi = self.phi.copy()
        out.lam = self.lam.copy()
        out.part_weight = self.part_weight.copy()
        out.part_size = self.part_size.copy()
        out.bw = self.bw.copy()
        out._trail = list(self._trail)
        out._iu = self._iu
        out._epoch = 0
        return out

    # ------------------------------------------------------------------ #
    # move evaluation
    # ------------------------------------------------------------------ #
    def move_deltas(
        self, u: int, constraints: ConstraintSpec
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(violation_delta, cut_delta)`` of moving *u* to every part.

        Shape ``(k,)`` each; entries at ``assign[u]`` are zero, negative
        values are improvements.  The connectivity deltas are one masked
        matrix-vector product; the bandwidth-violation deltas accumulate
        the exact per-pair ``bw`` changes net by net and apply the
        ``relu(· − Bmax)`` difference once per touched pair — the same
        per-entry arithmetic as the graph engine, so the two agree exactly
        on 2-pin-only hypergraphs with integer weights.
        """
        hg = self.hg
        src = int(self.assign[u])
        k = self.k
        nets = hg.nets_of(u)
        w = hg.net_weights[nets]
        phi_e = self.phi[:, nets]  # (k, nE) gather
        dv = np.zeros(k, dtype=np.float64)
        # connectivity (cut) deltas: +w_e when dest holds no pin of e yet,
        # -w_e when u is the last pin of e in src
        leaves = float(w[phi_e[src] == 1].sum()) if nets.size else 0.0
        dc = (phi_e == 0).astype(np.float64) @ w - leaves if nets.size else (
            np.zeros(k, dtype=np.float64)
        )
        rmax, bmax = constraints.rmax, constraints.bmax
        pw = self.part_weight
        if np.isfinite(rmax):
            w_u = float(hg.node_weights[u])
            shed = max(0.0, pw[src] - w_u - rmax) - max(0.0, pw[src] - rmax)
            dv += shed + (
                np.maximum(pw + w_u - rmax, 0.0) - np.maximum(pw - rmax, 0.0)
            )
        if np.isfinite(bmax) and nets.size:
            bw = self.bw
            roots = hg.roots[nets]
            root_parts = self.assign[roots]
            # per net: the parts it currently touches (computed once)
            touched = [np.nonzero(phi_e[:, j])[0] for j in range(nets.size)]
            for dest in range(k):
                if dest == src:
                    continue
                acc: dict[tuple[int, int], float] = {}
                for j in range(nets.size):
                    we = float(w[j])
                    if int(roots[j]) == u:
                        # root moves: pairs (src, p) die, pairs (dest, p) rise
                        stays = phi_e[src, j] > 1
                        for p in touched[j]:
                            p = int(p)
                            if p != src:
                                key = (p, src) if p < src else (src, p)
                                acc[key] = acc.get(key, 0.0) - we
                            if (p != src or stays) and p != dest:
                                key = (p, dest) if p < dest else (dest, p)
                                acc[key] = acc.get(key, 0.0) + we
                    else:
                        rp = int(root_parts[j])
                        if phi_e[src, j] == 1 and src != rp:
                            key = (src, rp) if src < rp else (rp, src)
                            acc[key] = acc.get(key, 0.0) - we
                        if phi_e[dest, j] == 0 and dest != rp:
                            key = (dest, rp) if dest < rp else (rp, dest)
                            acc[key] = acc.get(key, 0.0) + we
                v = 0.0
                for (p, q), d in acc.items():
                    if d != 0.0:
                        old = bw[p, q]
                        v += max(old + d - bmax, 0.0) - max(old - bmax, 0.0)
                dv[dest] += v
        dv[src] = 0.0
        dc[src] = 0.0
        return dv, dc

    def best_move(
        self, u: int, constraints: ConstraintSpec
    ) -> tuple[float, float, int] | None:
        """Best ``(violation_delta, cut_delta, dest)`` for node *u* under
        the graph engine's candidate and tie-breaking rules."""
        src = int(self.assign[u])
        cu = self.connection_vector(u)
        escape = bool(self.overloaded_mask(constraints)[src])
        dv, dc = self.move_deltas(u, constraints)
        return select_best_move(
            self.k, dv.tolist(), dc.tolist(), cu.tolist(), src, escape
        )

    def best_moves(
        self, nodes: np.ndarray, constraints: ConstraintSpec
    ) -> list[tuple[float, float, int] | None]:
        """:meth:`best_move` over *nodes* (order preserved)."""
        return [self.best_move(int(u), constraints) for u in np.asarray(nodes)]

    def recompute(self) -> None:
        """Rebuild everything from scratch (tests/debugging only)."""
        fresh = HyperRefinementState(self.hg, self.assign, self.k)
        self.phi = fresh.phi
        self.lam = fresh.lam
        self.part_weight = fresh.part_weight
        self.part_size = fresh.part_size
        self.bw = fresh.bw
        self._epoch += 1
        self._trail.clear()

    def __repr__(self) -> str:
        return (
            f"HyperRefinementState(n={self.hg.n}, nets={self.hg.n_nets}, "
            f"k={self.k}, connectivity={self.cut:g}, "
            f"boundary={int(self.boundary_mask().sum())})"
        )
