"""Core weighted hypergraph used by the connectivity-metric partitioners.

Design notes
------------
* Nodes are dense integer ids ``0 .. n-1`` with float64 resource weights,
  exactly like :class:`~repro.graph.wgraph.WGraph`.
* A **net** (hyperedge) is a set of ≥1 pins (node ids) with a float64
  weight.  The first pin given is the net's **root** — for PPN-derived
  hypergraphs the producer process — used to attribute the net's traffic
  to part *pairs* (the value travels from the root's part to each other
  part the net touches).  The (λ−1) connectivity objective itself is
  root-independent.
* Storage is CSR both ways: ``net_indptr``/``pins`` lists each net's pins,
  and the transposed incidence ``inc_indptr``/``inc_nets`` lists each
  node's nets — the same layout hMETIS/KaHyPar use for cache-friendly
  traversal.
* The structure is immutable after construction; contraction builds a new
  :class:`HGraph`.
* Nets with identical pin *sets* are merged at construction by summing
  weights (the "identical-net detection" of n-level coarsening); the
  merged net keeps the root of the first occurrence.  Duplicate pins
  within one net are rejected.
* A net with a single pin is legal (it can arise from contraction or from
  external ``.hgr`` instances) and never contributes to any objective.
* Every 2-pin-only hypergraph is exactly a weighted graph:
  :meth:`from_wgraph` / :meth:`to_wgraph` convert losslessly, which the
  differential test suite leans on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.graph.wgraph import WGraph
from repro.obs.memory import note_bytes
from repro.util.errors import GraphError

__all__ = ["HGraph"]


class HGraph:
    """Undirected weighted hypergraph with weighted nodes and rooted nets.

    Parameters
    ----------
    n:
        Number of nodes (ids ``0..n-1``).
    nets:
        Iterable of ``(pins, weight)`` pairs; *pins* is a sequence of
        distinct node ids whose **first entry is the net's root**.
    node_weights:
        Per-node resource weights; defaults to all ones.

    Raises
    ------
    GraphError
        On out-of-range pins, duplicate pins within a net, empty nets,
        negative or non-finite weights, or a negative node count.
    """

    __slots__ = (
        "_n",
        "_node_weights",
        "_net_weights",
        "_net_indptr",
        "_pins",
        "_roots",
        "_inc_indptr",
        "_inc_nets",
        "_pin_net_ids",
        "_adj_cache",
        "_digest",
    )

    def __init__(
        self,
        n: int,
        nets: Iterable[tuple[Sequence[int], float]] = (),
        node_weights: Iterable[float] | None = None,
    ) -> None:
        if n < 0:
            raise GraphError(f"node count must be >= 0, got {n}")
        self._n = int(n)

        if node_weights is None:
            nw = np.ones(self._n, dtype=np.float64)
        else:
            nw = np.asarray(list(node_weights), dtype=np.float64)
            if nw.shape != (self._n,):
                raise GraphError(f"expected {self._n} node weights, got {nw.shape}")
            if not np.all(np.isfinite(nw)):
                raise GraphError("node weights must be finite")
            if np.any(nw < 0):
                raise GraphError("node weights must be non-negative")
        self._node_weights = nw
        self._node_weights.setflags(write=False)

        # identical-net detection: merge nets with equal pin sets, summing
        # weights; the first occurrence's root wins.  Canonical net order is
        # by sorted pin tuple (mirrors WGraph's sorted edge list).
        merged: dict[tuple[int, ...], tuple[float, int]] = {}
        for item in nets:
            try:
                pins, w = item
            except (TypeError, ValueError) as exc:
                raise GraphError(f"net {item!r} is not a (pins, weight) pair") from exc
            pin_list = [int(p) for p in pins]
            if not pin_list:
                raise GraphError("a net needs at least one pin")
            for p in pin_list:
                if not 0 <= p < self._n:
                    raise GraphError(f"pin {p} out of range for n={self._n}")
            key = tuple(sorted(pin_list))
            if len(set(key)) != len(key):
                raise GraphError(f"net {pin_list} has duplicate pins")
            w = float(w)
            if not np.isfinite(w):
                raise GraphError(f"net {pin_list} has non-finite weight {w}")
            if w < 0:
                raise GraphError(f"net {pin_list} has negative weight {w}")
            if key in merged:
                w_old, root = merged[key]
                merged[key] = (w_old + w, root)
            else:
                merged[key] = (w, pin_list[0])

        items = sorted(merged.items())
        n_nets = len(items)
        net_indptr = np.zeros(n_nets + 1, dtype=np.int64)
        net_w = np.empty(n_nets, dtype=np.float64)
        roots = np.empty(n_nets, dtype=np.int64)
        pin_chunks: list[tuple[int, ...]] = []
        for e, (key, (w, root)) in enumerate(items):
            net_indptr[e + 1] = net_indptr[e] + len(key)
            net_w[e] = w
            roots[e] = root
            pin_chunks.append(key)
        pins = (
            np.concatenate([np.asarray(c, dtype=np.int64) for c in pin_chunks])
            if pin_chunks
            else np.empty(0, dtype=np.int64)
        )
        # net id of every pin slot (the transpose key, reused by Φ builds)
        pin_net_ids = np.repeat(np.arange(n_nets, dtype=np.int64),
                                np.diff(net_indptr))
        self._net_indptr, self._pins = net_indptr, pins
        self._net_weights, self._roots = net_w, roots
        self._pin_net_ids = pin_net_ids

        # transposed incidence: nets of each node, ascending net id per node
        deg = np.zeros(self._n, dtype=np.int64)
        np.add.at(deg, pins, 1)
        inc_indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(deg, out=inc_indptr[1:])
        order = np.argsort(pins, kind="stable")
        self._inc_indptr = inc_indptr
        self._inc_nets = pin_net_ids[order]
        for a in (net_indptr, pins, net_w, roots, pin_net_ids,
                  inc_indptr, self._inc_nets):
            a.setflags(write=False)
        self._adj_cache: dict[int, np.ndarray] = {}
        self._digest: str | None = None
        note_bytes(
            "hgraph.csr",
            net_indptr.nbytes + pins.nbytes + net_w.nbytes + roots.nbytes
            + pin_net_ids.nbytes + inc_indptr.nbytes + self._inc_nets.nbytes,
            n=self._n, nets=n_nets,
        )

    def content_digest(self) -> str:
        """Stable hex digest of the full hypergraph content.

        Two hypergraphs compare ``==`` iff their digests agree (structure,
        both weight kinds, and roots all participate), so the digest is a
        safe dictionary key for memoising partitioning results — the
        hypergraph counterpart of :meth:`WGraph.content_digest
        <repro.graph.wgraph.WGraph.content_digest>`.  Computed lazily,
        cached.
        """
        if self._digest is None:
            import hashlib

            h = hashlib.sha256()
            h.update(str(self._n).encode())
            for a in (
                self._node_weights,
                self._net_indptr,
                self._pins,
                self._net_weights,
                self._roots,
            ):
                h.update(np.ascontiguousarray(a).tobytes())
            self._digest = h.hexdigest()
        return self._digest

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def n_nets(self) -> int:
        """Number of (merged) nets."""
        return len(self._net_weights)

    @property
    def n_pins(self) -> int:
        """Total pin count over all nets."""
        return len(self._pins)

    @property
    def node_weights(self) -> np.ndarray:
        """Read-only float64 node resource weights, shape ``(n,)``."""
        return self._node_weights

    @property
    def net_weights(self) -> np.ndarray:
        """Read-only float64 net weights, shape ``(n_nets,)``."""
        return self._net_weights

    @property
    def roots(self) -> np.ndarray:
        """Read-only root pin (producer node id) per net, shape ``(n_nets,)``."""
        return self._roots

    @property
    def pin_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only ``(pins, net_ids)`` — parallel arrays over all pin slots
        (the COO form of the incidence matrix, for vectorized Φ builds)."""
        return self._pins, self._pin_net_ids

    def pins_of(self, e: int) -> np.ndarray:
        """Read-only sorted array of net *e*'s pins."""
        self._check_net(e)
        lo, hi = self._net_indptr[e], self._net_indptr[e + 1]
        return self._pins[lo:hi]

    def net_size(self, e: int) -> int:
        """Number of pins of net *e*."""
        self._check_net(e)
        return int(self._net_indptr[e + 1] - self._net_indptr[e])

    def nets_of(self, u: int) -> np.ndarray:
        """Read-only ascending array of net ids incident to node *u*."""
        self._check_node(u)
        lo, hi = self._inc_indptr[u], self._inc_indptr[u + 1]
        return self._inc_nets[lo:hi]

    def degree(self, u: int) -> int:
        """Number of nets incident to *u*."""
        self._check_node(u)
        return int(self._inc_indptr[u + 1] - self._inc_indptr[u])

    def adjacent_nodes(self, u: int) -> np.ndarray:
        """Sorted distinct nodes sharing at least one net with *u* (sans *u*).

        The hypergraph analogue of a graph neighbour list; for a 2-pin-only
        hypergraph it equals ``WGraph.neighbors`` exactly (sorted ids).
        Cached per node — the structure is immutable, and the FM driver
        asks for the same neighbourhood after every move of *u*.
        """
        cached = self._adj_cache.get(u)
        if cached is not None:
            return cached
        nets = self.nets_of(u)
        if nets.size == 0:
            out = np.empty(0, dtype=np.int64)
        else:
            chunks = [self.pins_of(int(e)) for e in nets]
            out = np.unique(np.concatenate(chunks))
            out = out[out != u]
        out.setflags(write=False)
        self._adj_cache[u] = out
        return out

    @property
    def total_node_weight(self) -> float:
        return float(self._node_weights.sum())

    @property
    def total_net_weight(self) -> float:
        return float(self._net_weights.sum())

    def nets(self) -> list[tuple[list[int], float]]:
        """All nets as ``(sorted pins, weight)`` in canonical order."""
        return [
            (self.pins_of(e).tolist(), float(self._net_weights[e]))
            for e in range(self.n_nets)
        ]

    # ------------------------------------------------------------------ #
    # graph conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_wgraph(cls, g: WGraph) -> "HGraph":
        """Lossless lift of a weighted graph: one 2-pin net per edge
        (root = the smaller endpoint, matching the canonical edge order)."""
        eu, ev, ew = g.edge_array
        nets = [
            ((int(u), int(v)), float(w)) for u, v, w in zip(eu, ev, ew)
        ]
        return cls(g.n, nets, node_weights=g.node_weights)

    def to_wgraph(self) -> WGraph:
        """Exact inverse of :meth:`from_wgraph` for 2-pin-only hypergraphs.

        Raises :class:`GraphError` when any net has ≠2 pins — flattening a
        genuine multicast into edges is the modelling error this subsystem
        exists to avoid, so it never happens silently.
        """
        sizes = np.diff(self._net_indptr)
        if np.any(sizes != 2):
            bad = int(np.nonzero(sizes != 2)[0][0])
            raise GraphError(
                f"net {bad} has {int(sizes[bad])} pins; only 2-pin-only "
                f"hypergraphs convert to a WGraph losslessly — use "
                f"clique_expansion() for an approximate flattening"
            )
        edges = [
            (int(self._pins[self._net_indptr[e]]),
             int(self._pins[self._net_indptr[e] + 1]),
             float(self._net_weights[e]))
            for e in range(self.n_nets)
        ]
        return WGraph(self._n, edges, node_weights=self._node_weights)

    def star_expansion(self) -> WGraph:
        """The 2-pin **edge-cut model** of this hypergraph: net *e* becomes
        one edge ``(root, p)`` of full weight ``w_e`` per non-root pin *p* —
        exactly the flattening a per-consumer FIFO view produces, which
        charges a multicast once per consumer instead of once per extra
        part.  2-pin nets map to their edge unchanged.  This is the
        baseline the connectivity metric is benchmarked against.
        """
        edges: dict[tuple[int, int], float] = {}
        for e in range(self.n_nets):
            root = int(self._roots[e])
            w = float(self._net_weights[e])
            for p in self.pins_of(e):
                p = int(p)
                if p == root:
                    continue
                key = (p, root) if p < root else (root, p)
                edges[key] = edges.get(key, 0.0) + w
        return WGraph(
            self._n,
            [(u, v, w) for (u, v), w in edges.items()],
            node_weights=self._node_weights,
        )

    def clique_expansion(self) -> WGraph:
        """Standard clique expansion: net *e* becomes a clique over its pins
        with per-edge weight ``w_e / (|e| - 1)``.

        For a 2-pin net the single edge keeps weight ``w_e`` exactly, so the
        expansion of a 2-pin-only hypergraph *is* its graph.  Used to seed
        initial partitioning with the existing graph machinery; single-pin
        nets vanish.
        """
        edges: dict[tuple[int, int], float] = {}
        for e in range(self.n_nets):
            ps = self.pins_of(e)
            if ps.size < 2:
                continue
            w = float(self._net_weights[e]) / (ps.size - 1)
            for i in range(ps.size):
                for j in range(i + 1, ps.size):
                    key = (int(ps[i]), int(ps[j]))
                    edges[key] = edges.get(key, 0.0) + w
        return WGraph(
            self._n,
            [(u, v, w) for (u, v), w in edges.items()],
            node_weights=self._node_weights,
        )

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise GraphError(f"node {u} out of range for n={self._n}")

    def _check_net(self, e: int) -> None:
        if not (0 <= e < self.n_nets):
            raise GraphError(f"net {e} out of range for n_nets={self.n_nets}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._node_weights, other._node_weights)
            and np.array_equal(self._net_indptr, other._net_indptr)
            and np.array_equal(self._pins, other._pins)
            and np.array_equal(self._net_weights, other._net_weights)
            # roots drive the pairwise-traffic attribution, so two
            # hypergraphs differing only in roots are NOT equal
            and np.array_equal(self._roots, other._roots)
        )

    def __hash__(self) -> int:  # pragma: no cover - HGraph is unhashable
        raise TypeError("HGraph is unhashable")

    def __repr__(self) -> str:
        return (
            f"HGraph(n={self._n}, nets={self.n_nets}, pins={self.n_pins}, "
            f"node_weight={self.total_node_weight:g}, "
            f"net_weight={self.total_net_weight:g})"
        )
