"""Multilevel hypergraph coarsening (heavy-edge contraction, n-level style).

Follows the multilevel recipe of Schlag et al.'s recursive-bisection and
n-level partitioners, adapted to the matching-based level structure the
rest of this library uses:

* **Heavy-edge rating** — pair rating ``r(u, v) = Σ_{e ⊇ {u,v}} w_e /
  (|e| − 1)``: nets almost contracted away count most, big nets are
  discounted (for 2-pin-only hypergraphs this is exactly the edge weight,
  so the coarsening degenerates to graph HEM).
* **Matching** — visit nodes in random order, match each unmatched node
  with the unmatched partner of highest rating (ties: smaller id).
* **Contraction** — matched pairs merge; node weights sum; each net maps
  its pins through the node map and drops duplicates; nets left with a
  single pin disappear (they can never be cut again); nets whose pin sets
  become identical are merged with summed weights — the *identical-net
  detection* that keeps coarse hypergraphs small.  (The last two rules are
  byproducts of :class:`~repro.hypergraph.hgraph.HGraph` construction.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hypergraph.hgraph import HGraph
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = [
    "heavy_pin_matching",
    "contract_hyper",
    "coarsen_hyper_once",
    "HyperLevel",
    "HyperHierarchy",
    "build_hyper_hierarchy",
]


def heavy_pin_matching(hg: HGraph, seed=None) -> np.ndarray:
    """Heavy-edge matching by pair rating: ``match[u] == v`` iff paired."""
    rng = as_rng(seed)
    match = np.arange(hg.n, dtype=np.int64)
    matched = np.zeros(hg.n, dtype=bool)
    w = hg.net_weights
    for u in rng.permutation(hg.n):
        u = int(u)
        if matched[u]:
            continue
        rating: dict[int, float] = {}
        for e in hg.nets_of(u):
            e = int(e)
            pins = hg.pins_of(e)
            if pins.size < 2:
                continue
            r = float(w[e]) / (pins.size - 1)
            for v in pins:
                v = int(v)
                if v != u and not matched[v]:
                    rating[v] = rating.get(v, 0.0) + r
        if not rating:
            continue
        # highest rating first, smallest id breaks ties
        v = min(rating, key=lambda x: (-rating[x], x))
        match[u], match[v] = v, u
        matched[u] = matched[v] = True
    return match


def _validate_matching(hg: HGraph, match: np.ndarray) -> None:
    if match.shape != (hg.n,):
        raise PartitionError(
            f"matching has shape {match.shape}, expected ({hg.n},)"
        )
    for u in range(hg.n):
        v = int(match[u])
        if not 0 <= v < hg.n:
            raise PartitionError(f"match[{u}]={v} out of range")
        if v != u and int(match[v]) != u:
            raise PartitionError(f"matching not symmetric at ({u}, {v})")


def contract_hyper(hg: HGraph, match: np.ndarray) -> tuple[HGraph, np.ndarray]:
    """Contract matched pairs into coarse nodes.

    Returns ``(coarse, node_map)`` with ``node_map[u]`` the coarse id of
    fine node *u*.  Pin dedup, single-pin-net removal and identical-net
    merging all happen here (the latter two via HGraph construction).
    """
    _validate_matching(hg, match)
    node_map = np.full(hg.n, -1, dtype=np.int64)
    next_id = 0
    for u in range(hg.n):
        if node_map[u] >= 0:
            continue
        v = int(match[u])
        node_map[u] = next_id
        if v != u:
            node_map[v] = next_id
        next_id += 1
    coarse_w = np.zeros(next_id, dtype=np.float64)
    np.add.at(coarse_w, node_map, hg.node_weights)

    nets: list[tuple[list[int], float]] = []
    w = hg.net_weights
    roots = hg.roots
    for e in range(hg.n_nets):
        coarse_root = int(node_map[roots[e]])
        seen = {coarse_root}
        pins = [coarse_root]  # root first: HGraph keeps pins[0] as root
        for p in hg.pins_of(e):
            cp = int(node_map[p])
            if cp not in seen:
                seen.add(cp)
                pins.append(cp)
        if len(pins) >= 2:  # single-pin nets can never be cut again
            nets.append((pins, float(w[e])))
    return HGraph(next_id, nets, node_weights=coarse_w), node_map


def coarsen_hyper_once(hg: HGraph, seed=None) -> tuple[HGraph, np.ndarray]:
    """One coarsening step: heavy-edge matching + contraction."""
    match = heavy_pin_matching(hg, seed=seed)
    return contract_hyper(hg, match)


@dataclass
class HyperLevel:
    """One level of the multilevel hierarchy."""

    hgraph: HGraph
    #: fine-node -> coarse-node map *into this level* (None for the original).
    node_map: np.ndarray | None


@dataclass
class HyperHierarchy:
    """Coarsening hierarchy; ``levels[0]`` is the input hypergraph."""

    levels: list[HyperLevel] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> HGraph:
        return self.levels[-1].hgraph

    def project(self, assign_coarse: np.ndarray, level: int) -> np.ndarray:
        """Project an assignment on ``levels[level]`` down to
        ``levels[level-1]`` through the stored node map."""
        if not 1 <= level < self.depth:
            raise PartitionError(f"cannot project from level {level}")
        node_map = self.levels[level].node_map
        return np.asarray(assign_coarse, dtype=np.int64)[node_map]


def build_hyper_hierarchy(
    hg: HGraph,
    coarsen_to: int = 100,
    seed=None,
    min_shrink: float = 0.02,
) -> HyperHierarchy:
    """Coarsen *hg* until it has at most *coarsen_to* nodes.

    Stops early when a step shrinks the node count by less than
    *min_shrink* (no useful matching left, e.g. one giant net).
    """
    if coarsen_to < 1:
        raise PartitionError(f"coarsen_to must be >= 1, got {coarsen_to}")
    rng = as_rng(seed)
    hier = HyperHierarchy(levels=[HyperLevel(hgraph=hg, node_map=None)])
    current = hg
    while current.n > coarsen_to:
        coarse, node_map = coarsen_hyper_once(current, seed=rng)
        if coarse.n >= current.n * (1 - min_shrink):
            break
        hier.levels.append(HyperLevel(hgraph=coarse, node_map=node_map))
        current = coarse
    return hier
