"""Multilevel hypergraph coarsening (heavy-edge contraction, n-level style).

Follows the multilevel recipe of Schlag et al.'s recursive-bisection and
n-level partitioners, adapted to the matching-based level structure the
rest of this library uses:

* **Heavy-edge rating** — pair rating ``r(u, v) = Σ_{e ⊇ {u,v}} w_e /
  (|e| − 1)``: nets almost contracted away count most, big nets are
  discounted (for 2-pin-only hypergraphs this is exactly the edge weight,
  so the coarsening degenerates to graph HEM).
* **Matching** — visit nodes in random order, match each unmatched node
  with the unmatched partner of highest rating (ties: smaller id).
* **Contraction** — matched pairs merge; node weights sum; each net maps
  its pins through the node map and drops duplicates; nets left with a
  single pin disappear (they can never be cut again); nets whose pin sets
  become identical are merged with summed weights — the *identical-net
  detection* that keeps coarse hypergraphs small.  (The last two rules are
  byproducts of :class:`~repro.hypergraph.hgraph.HGraph` construction.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hypergraph.hgraph import HGraph
from repro.partition.coarsen import greedy_match_by_rank
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = [
    "heavy_pin_matching",
    "contract_hyper",
    "coarsen_hyper_once",
    "HyperLevel",
    "HyperHierarchy",
    "build_hyper_hierarchy",
]

#: The vectorized matching materialises every ordered pin pair, Σ|e|²
#: entries at once, across roughly eight int64/float64 arrays (~64 bytes
#: per pair at peak, so this bound caps the transient at a few hundred
#: MB); past it the exact per-node loop runs instead (identical output,
#: O(max net) working memory — giant broadcast nets must not OOM the
#: machine the legacy loop handled).
_MAX_PAIR_ENTRIES = 5_000_000


def _heavy_pin_matching_loop(hg: HGraph, rng) -> np.ndarray:
    """Sequential form of :func:`heavy_pin_matching` (same output).

    Bounded-memory fallback for pathological Σ|e|² instances; the
    vectorized kernel is pinned to this process by the differential
    suite, so dispatching between them can never change a matching.
    """
    match = np.arange(hg.n, dtype=np.int64)
    matched = np.zeros(hg.n, dtype=bool)
    w = hg.net_weights
    for u in rng.permutation(hg.n):
        u = int(u)
        if matched[u]:
            continue
        rating: dict[int, float] = {}
        for e in hg.nets_of(u):
            e = int(e)
            pins = hg.pins_of(e)
            if pins.size < 2:
                continue
            r = float(w[e]) / (pins.size - 1)
            for v in pins:
                v = int(v)
                if v != u and not matched[v]:
                    rating[v] = rating.get(v, 0.0) + r
        if not rating:
            continue
        v = min(rating, key=lambda x: (-rating[x], x))
        match[u], match[v] = v, u
        matched[u] = matched[v] = True
    return match


def heavy_pin_matching(hg: HGraph, seed=None) -> np.ndarray:
    """Heavy-edge matching by pair rating: ``match[u] == v`` iff paired.

    The pair rating ``r(u, v)`` is *static* — it never depends on which
    nodes are already matched — so the sequential process (visit nodes in
    a seeded random order; pair each unmatched node with its best-rated
    unmatched partner, ties to the smaller id) is a greedy over a fixed
    priority order and vectorizes via the locally-dominant rounds kernel
    (:func:`repro.partition.coarsen.greedy_match_by_rank`).  Ratings are
    accumulated in ascending-net order per pair, reproducing the float
    sums of the per-node dict reference exactly
    (``benchmarks._legacy_coarsen.heavy_pin_matching_legacy``).

    The array formulation holds all Σ|e|² ordered pin pairs at once;
    instances past ``_MAX_PAIR_ENTRIES`` (a few giant broadcast nets)
    take the bounded-memory sequential path instead — same matching
    either way.
    """
    rng = as_rng(seed)
    match = np.arange(hg.n, dtype=np.int64)
    if hg.n == 0:
        return match
    pins, net_ids = hg.pin_arrays
    sizes_all = np.bincount(net_ids, minlength=hg.n_nets)
    big = sizes_all[sizes_all >= 2]
    if float((big.astype(np.float64) ** 2).sum()) > _MAX_PAIR_ENTRIES:
        return _heavy_pin_matching_loop(hg, rng)
    visit = rng.permutation(hg.n)
    if pins.size == 0:
        return match
    keep = sizes_all[net_ids] >= 2  # single-pin nets rate nothing
    p, e = pins[keep], net_ids[keep]
    if p.size == 0:
        return match
    kept_nets = np.unique(e)  # ascending net ids
    s = sizes_all[kept_nets]
    b = np.zeros(s.size, dtype=np.int64)
    np.cumsum(s[:-1], out=b[1:])
    # all ordered pin pairs per net (diagonal filtered below); per-pair
    # rating contribution w_e / (|e| - 1)
    s2 = s * s
    tot = int(s2.sum())
    net_of_pair = np.repeat(np.arange(s.size), s2)
    c2 = np.zeros(s.size, dtype=np.int64)
    np.cumsum(s2[:-1], out=c2[1:])
    q = np.arange(tot) - c2[net_of_pair]
    U = np.repeat(p, np.repeat(s, s))
    V = p[b[net_of_pair] + q % s[net_of_pair]]
    r = np.repeat(hg.net_weights[kept_nets] / (s - 1.0), s2)
    off = U != V
    U, V, r = U[off], V[off], r[off]
    # aggregate per ordered pair; a *stable* sort on the composite key
    # keeps ascending-net order within each pair so float sums match the
    # dict reference (node ids < 2**31 fit the composite)
    order = np.argsort((U << np.int64(32)) | V, kind="stable")
    U, V, r = U[order], V[order], r[order]
    new_group = np.empty(U.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = (U[1:] != U[:-1]) | (V[1:] != V[:-1])
    seg = np.cumsum(new_group) - 1
    rating = np.zeros(int(seg[-1]) + 1, dtype=np.float64)
    np.add.at(rating, seg, r)
    Uu, Vu = U[new_group], V[new_group]
    # priority: visit position of u, then descending rating, then smaller v
    # — realised as chained stable sorts, least-significant key first
    # (radix for the int keys beats a multi-key lexsort here)
    pos = np.empty(hg.n, dtype=np.int64)
    pos[visit] = np.arange(hg.n)
    pair_order = np.argsort(Vu, kind="stable")
    pair_order = pair_order[np.argsort(-rating[pair_order], kind="stable")]
    pair_order = pair_order[np.argsort(pos[Uu[pair_order]], kind="stable")]
    return greedy_match_by_rank(hg.n, Uu[pair_order], Vu[pair_order])


def _validate_matching(hg: HGraph, match: np.ndarray) -> None:
    if match.shape != (hg.n,):
        raise PartitionError(
            f"matching has shape {match.shape}, expected ({hg.n},)"
        )
    for u in range(hg.n):
        v = int(match[u])
        if not 0 <= v < hg.n:
            raise PartitionError(f"match[{u}]={v} out of range")
        if v != u and int(match[v]) != u:
            raise PartitionError(f"matching not symmetric at ({u}, {v})")


def contract_hyper(hg: HGraph, match: np.ndarray) -> tuple[HGraph, np.ndarray]:
    """Contract matched pairs into coarse nodes.

    Returns ``(coarse, node_map)`` with ``node_map[u]`` the coarse id of
    fine node *u*.  Pin dedup, single-pin-net removal and identical-net
    merging all happen here (the latter two via HGraph construction).
    """
    _validate_matching(hg, match)
    node_map = np.full(hg.n, -1, dtype=np.int64)
    next_id = 0
    for u in range(hg.n):
        if node_map[u] >= 0:
            continue
        v = int(match[u])
        node_map[u] = next_id
        if v != u:
            node_map[v] = next_id
        next_id += 1
    coarse_w = np.zeros(next_id, dtype=np.float64)
    np.add.at(coarse_w, node_map, hg.node_weights)

    nets: list[tuple[list[int], float]] = []
    w = hg.net_weights
    roots = hg.roots
    for e in range(hg.n_nets):
        coarse_root = int(node_map[roots[e]])
        seen = {coarse_root}
        pins = [coarse_root]  # root first: HGraph keeps pins[0] as root
        for p in hg.pins_of(e):
            cp = int(node_map[p])
            if cp not in seen:
                seen.add(cp)
                pins.append(cp)
        if len(pins) >= 2:  # single-pin nets can never be cut again
            nets.append((pins, float(w[e])))
    return HGraph(next_id, nets, node_weights=coarse_w), node_map


def coarsen_hyper_once(hg: HGraph, seed=None) -> tuple[HGraph, np.ndarray]:
    """One coarsening step: heavy-edge matching + contraction."""
    match = heavy_pin_matching(hg, seed=seed)
    return contract_hyper(hg, match)


@dataclass
class HyperLevel:
    """One level of the multilevel hierarchy."""

    hgraph: HGraph
    #: fine-node -> coarse-node map *into this level* (None for the original).
    node_map: np.ndarray | None


@dataclass
class HyperHierarchy:
    """Coarsening hierarchy; ``levels[0]`` is the input hypergraph."""

    levels: list[HyperLevel] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> HGraph:
        return self.levels[-1].hgraph

    def project(self, assign_coarse: np.ndarray, level: int) -> np.ndarray:
        """Project an assignment on ``levels[level]`` down to
        ``levels[level-1]`` through the stored node map."""
        if not 1 <= level < self.depth:
            raise PartitionError(f"cannot project from level {level}")
        node_map = self.levels[level].node_map
        return np.asarray(assign_coarse, dtype=np.int64)[node_map]


def build_hyper_hierarchy(
    hg: HGraph,
    coarsen_to: int = 100,
    seed=None,
    min_shrink: float = 0.02,
) -> HyperHierarchy:
    """Coarsen *hg* until it has at most *coarsen_to* nodes.

    Stops early when a step shrinks the node count by less than
    *min_shrink* (no useful matching left, e.g. one giant net).
    """
    if coarsen_to < 1:
        raise PartitionError(f"coarsen_to must be >= 1, got {coarsen_to}")
    rng = as_rng(seed)
    hier = HyperHierarchy(levels=[HyperLevel(hgraph=hg, node_map=None)])
    current = hg
    while current.n > coarsen_to:
        coarse, node_map = coarsen_hyper_once(current, seed=rng)
        if coarse.n >= current.n * (1 - min_shrink):
            break
        hier.levels.append(HyperLevel(hgraph=coarse, node_map=node_map))
        current = coarse
    return hier
