"""Multilevel k-way hypergraph partitioning under the paper's constraints.

The pipeline mirrors :func:`~repro.partition.gp.gp_partition` phase for
phase, with the connectivity objective in place of the edge cut:

1. **Coarsening** — heavy-edge contraction with identical-net detection
   down to ``coarsen_to`` nodes (:mod:`repro.hypergraph.coarsen`).
2. **Initial partitioning** — the existing resource-aware greedy growing
   with restarts runs on the coarsest hypergraph's *clique expansion*
   (exact for 2-pin nets, standard ``w/(|e|−1)`` split otherwise), then a
   constrained Φ-engine FM pass polishes it against the real objective.
3. **Un-coarsening** — project level by level; per level several
   refinement candidates race and the goodness function picks the one
   nearest to meeting the constraints, exactly as in GP.
4. **Cyclic retry** — re-coarsen/re-partition randomly up to
   ``max_cycles`` times until feasible, else report the least-violating
   result (or raise, caller's choice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.coarsen import HyperHierarchy, build_hyper_hierarchy
from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.metrics import evaluate_hyper_partition
from repro.hypergraph.refine import constrained_hyper_fm
from repro.hypergraph.refine_state import HyperRefinementState
from repro.partition.base import PartitionResult
from repro.partition.goodness import goodness_key
from repro.partition.initial import greedy_initial_partition
from repro.partition.metrics import ConstraintSpec
import repro.obs as _obs
from repro.util.errors import InfeasibleError, PartitionError
from repro.util.rng import as_rng, spawn_seeds

__all__ = ["HyperConfig", "hyper_partition"]


@dataclass(frozen=True)
class HyperConfig:
    """Tuning knobs of the multilevel hypergraph partitioner.

    The knobs (and their defaults) track :class:`~repro.partition.gp.GPConfig`
    so graph-vs-hypergraph races compare models, not budgets; ``max_cycles``
    defaults lower because connectivity refinement converges in fewer
    cycles on the PN instances this library targets.
    """

    coarsen_to: int = 100
    restarts: int = 10
    max_cycles: int = 10
    level_candidates: int = 3
    refine_passes: int = 6
    on_infeasible: str = "return"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.coarsen_to < 1:
            raise PartitionError("coarsen_to must be >= 1")
        if self.restarts < 1:
            raise PartitionError("restarts must be >= 1")
        if self.max_cycles < 1:
            raise PartitionError("max_cycles must be >= 1")
        if self.level_candidates < 1:
            raise PartitionError("level_candidates must be >= 1")
        if self.refine_passes < 1:
            raise PartitionError("refine_passes must be >= 1")
        if self.on_infeasible not in ("return", "raise"):
            raise PartitionError(
                f"on_infeasible must be 'return' or 'raise', "
                f"got {self.on_infeasible!r}"
            )


def _refine_best(
    hg: HGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    config: HyperConfig,
    rng,
) -> np.ndarray:
    """Race ``level_candidates`` Φ-engine FM runs; goodness picks the winner."""
    cand_seeds = spawn_seeds(rng, config.level_candidates)
    with _obs.trace_span(
        "hyper.refine_level", nodes=hg.n, nets=hg.n_nets
    ) as sp:
        base = HyperRefinementState(hg, assign, k)
        if _obs.tracing_on():
            sp.set(cut_before=base.metrics(constraints).cut)
        best, best_key, best_cut = None, None, None
        for s in cand_seeds:
            st = base.copy()
            cand = constrained_hyper_fm(
                hg, assign, k, constraints,
                max_passes=config.refine_passes, seed=s, state=st,
            )
            m = st.metrics(constraints)
            key = goodness_key(m, constraints)
            if best_key is None or key < best_key:
                best, best_key, best_cut = cand, key, m.cut
        sp.set(cut_after=best_cut)
    return best


def _uncoarsen(
    hier: HyperHierarchy,
    assign_coarsest: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    config: HyperConfig,
    seed,
) -> np.ndarray:
    """Refine at the coarsest level, then project + refine down to level 0."""
    rng = as_rng(seed)
    assign = _refine_best(
        hier.coarsest, np.asarray(assign_coarsest, dtype=np.int64),
        k, constraints, config, rng,
    )
    for level in range(hier.depth - 1, 0, -1):
        assign = hier.project(assign, level)
        assign = _refine_best(
            hier.levels[level - 1].hgraph, assign, k, constraints, config, rng
        )
    return assign


def hyper_partition(
    hg: HGraph,
    k: int,
    constraints: ConstraintSpec | None = None,
    config: HyperConfig | None = None,
    seed=None,
) -> PartitionResult:
    """Partition *hg* into *k* parts minimising (λ−1) connectivity under
    the paper's ``Bmax``/``Rmax`` constraints.

    Returns a :class:`~repro.partition.base.PartitionResult` whose
    ``metrics.cut`` is the connectivity objective (== edge cut when every
    net has 2 pins) and whose ``info`` carries ``cycles``, ``levels`` and
    ``model="hypergraph"``.

    Raises
    ------
    InfeasibleError
        If no feasible partitioning is found within ``max_cycles`` and
        ``config.on_infeasible == "raise"`` (least-violating result in
        ``.best``).
    """
    constraints = constraints or ConstraintSpec()
    config = config or HyperConfig()
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > hg.n:
        raise PartitionError(f"k={k} exceeds node count {hg.n}")
    rng = as_rng(seed if seed is not None else config.seed)

    with _obs.timed_span("hyper", nodes=hg.n, nets=hg.n_nets, k=k) as sw:
        best_assign: np.ndarray | None = None
        best_key = None
        cycles_used = 0
        levels_last = 1

        for cycle in range(config.max_cycles):
            cycles_used = cycle + 1
            s_hier, s_init, s_unc = spawn_seeds(rng, 3)
            with _obs.trace_span("hyper.cycle", cycle=cycle, k=k) as csp:
                hier = build_hyper_hierarchy(
                    hg, coarsen_to=max(config.coarsen_to, 2 * k), seed=s_hier
                )
                levels_last = hier.depth
                # seed the coarsest level with the graph machinery on the
                # clique expansion (exact on 2-pin nets), then refine
                # against Φ
                with _obs.trace_span("hyper.initial",
                                     nodes=hier.coarsest.n):
                    assign_c = greedy_initial_partition(
                        hier.coarsest.clique_expansion(), k, constraints,
                        restarts=config.restarts, seed=s_init,
                    )
                assign = _uncoarsen(
                    hier, assign_c, k, constraints, config, s_unc
                )
                metrics = evaluate_hyper_partition(hg, assign, k, constraints)
                csp.set(levels=hier.depth, cut=metrics.cut,
                        feasible=metrics.feasible)
            key = goodness_key(metrics, constraints)
            if best_key is None or key < best_key:
                best_key = key
                best_assign = assign
            if metrics.feasible:
                break

    assert best_assign is not None
    metrics = evaluate_hyper_partition(hg, best_assign, k, constraints)
    result = PartitionResult(
        assign=best_assign,
        k=k,
        metrics=metrics,
        algorithm="GP-hyper",
        runtime=sw.elapsed,
        constraints=constraints,
        info={
            "cycles": cycles_used,
            "levels": levels_last,
            "max_cycles": config.max_cycles,
            "model": "hypergraph",
        },
    )
    if not metrics.feasible and config.on_infeasible == "raise":
        raise InfeasibleError(
            f"no partitioning met Bmax={constraints.bmax}, "
            f"Rmax={constraints.rmax} within {config.max_cycles} cycles "
            f"(best violation: bandwidth {metrics.bandwidth_violation:g}, "
            f"resource {metrics.resource_violation:g})",
            best=result,
        )
    return result
