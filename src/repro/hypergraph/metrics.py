"""Connectivity-metric evaluation for k-way hypergraph partitions.

The objective generalising the paper's edge cut is the **(λ−1) connectivity
metric** (Schlag et al., n-level hypergraph partitioning): for a net *e*
touching ``λ(e)`` parts, the cost is ``w_e · (λ(e) − 1)`` — a value produced
once is charged once per *additional* part it must reach, not once per
consumer.  For a 2-pin-only hypergraph this is exactly the weighted edge
cut, which the differential suite pins.

Pairwise traffic attribution uses each net's **root** (the producer pin):
the net's value travels from the root's part to each other part in the
net's connectivity set, adding ``w_e`` to that unordered part pair.  The
upper triangle of the resulting symmetric matrix therefore sums to the
connectivity objective — the same relationship the graph engine has
between ``bw`` and the cut — and the paper's ``Bmax`` pairwise-bandwidth
cap carries over unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hgraph import HGraph
from repro.partition.metrics import ConstraintSpec, PartitionMetrics
from repro.util.errors import PartitionError

__all__ = [
    "check_hyper_assignment",
    "pin_count_matrix",
    "net_lambdas",
    "connectivity_objective",
    "hyper_bandwidth_matrix",
    "hyper_part_weights",
    "evaluate_hyper_partition",
]


def check_hyper_assignment(hg: HGraph, assign: np.ndarray, k: int) -> np.ndarray:
    """Validate an assignment vector; return it as an int64 array."""
    a = np.asarray(assign, dtype=np.int64)
    if a.shape != (hg.n,):
        raise PartitionError(f"assignment has shape {a.shape}, expected ({hg.n},)")
    if k <= 0:
        raise PartitionError(f"k must be positive, got {k}")
    if hg.n and (a.min() < 0 or a.max() >= k):
        raise PartitionError(
            f"assignment values outside [0, {k}): min={a.min()}, max={a.max()}"
        )
    return a


def pin_count_matrix(hg: HGraph, assign: np.ndarray, k: int) -> np.ndarray:
    """The Φ matrix, shape ``(k, n_nets)``: ``Φ[p, e]`` = number of net
    *e*'s pins currently in part *p*."""
    a = check_hyper_assignment(hg, assign, k)
    pins, net_ids = hg.pin_arrays
    phi = np.zeros((k, hg.n_nets), dtype=np.int64)
    np.add.at(phi, (a[pins], net_ids), 1)
    return phi


def net_lambdas(phi: np.ndarray) -> np.ndarray:
    """Per-net connectivity ``λ(e)`` — number of parts with ≥1 pin."""
    return (phi > 0).sum(axis=0)


def connectivity_objective(hg: HGraph, assign: np.ndarray, k: int) -> float:
    """``Σ_e w_e · (λ(e) − 1)`` — the modelled inter-partition traffic."""
    lam = net_lambdas(pin_count_matrix(hg, assign, k))
    return float((hg.net_weights * np.maximum(lam - 1, 0)).sum())


def hyper_bandwidth_matrix(hg: HGraph, assign: np.ndarray, k: int) -> np.ndarray:
    """Symmetric ``(k, k)`` pairwise traffic matrix under root attribution.

    Net *e* adds ``w_e`` to the unordered pair ``(part(root_e), p)`` for
    every other part *p* in its connectivity set; the diagonal stays zero.
    ``triu(B).sum() == connectivity_objective`` by construction, and for a
    2-pin-only hypergraph ``B`` equals the graph engine's bandwidth matrix.
    """
    a = check_hyper_assignment(hg, assign, k)
    phi = pin_count_matrix(hg, assign, k)
    bw = np.zeros((k, k), dtype=np.float64)
    root_parts = a[hg.roots]
    w = hg.net_weights
    for e in range(hg.n_nets):
        rp = int(root_parts[e])
        parts = np.nonzero(phi[:, e])[0]
        for p in parts:
            p = int(p)
            if p != rp:
                bw[rp, p] += w[e]
                bw[p, rp] += w[e]
    return bw


def hyper_part_weights(hg: HGraph, assign: np.ndarray, k: int) -> np.ndarray:
    """Per-partition sums of node resource weights, shape ``(k,)``."""
    a = check_hyper_assignment(hg, assign, k)
    w = np.zeros(k, dtype=np.float64)
    np.add.at(w, a, hg.node_weights)
    return w


def evaluate_hyper_partition(
    hg: HGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec | None = None,
) -> PartitionMetrics:
    """All paper metrics for one assignment, with ``cut`` meaning the
    connectivity objective (== edge cut on 2-pin-only instances)."""
    constraints = constraints or ConstraintSpec()
    b = hyper_bandwidth_matrix(hg, assign, k)
    w = hyper_part_weights(hg, assign, k)
    cut = float(np.triu(b, k=1).sum())
    max_bw = float(b.max()) if k > 1 else 0.0
    max_res = float(w.max()) if k > 0 else 0.0
    if np.isfinite(constraints.bmax):
        bw_violation = float(
            np.triu(np.maximum(b - constraints.bmax, 0.0), k=1).sum()
        )
    else:
        bw_violation = 0.0
    if np.isfinite(constraints.rmax):
        res_violation = float(np.maximum(w - constraints.rmax, 0.0).sum())
    else:
        res_violation = 0.0
    return PartitionMetrics(
        k=k,
        cut=cut,
        max_local_bandwidth=max_bw,
        max_resource=max_res,
        bandwidth_violation=bw_violation,
        resource_violation=res_violation,
    )
