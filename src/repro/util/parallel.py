"""Deterministic process-pool racing and result memoisation.

The paper's GP partitioner is a race of randomized attempts: portfolio
configurations, coarsen/partition retry cycles, per-level refinement
candidates.  Every attempt is independent given its seed, and all seeds
are derived up front with :func:`repro.util.rng.spawn_seeds` — so racing
attempts across worker processes cannot change any result, only the
wall-clock.  This module supplies the primitives the partitioning layer
builds on (see ``docs/parallel.md``):

``parallel_map``
    An order-preserving map over picklable tasks with an optional
    early-stop predicate.  Its contract is the determinism guarantee:
    **the returned list is identical for every ``n_jobs``**, because
    results are collected in submission order and the stop predicate is
    applied in that order, exactly as a serial loop would.  With
    ``n_jobs=1`` (or an unavailable pool) no processes are spawned at
    all, which doubles as the fallback path on platforms without a
    usable ``fork``/``spawn``.

``KeyedCache``
    A small LRU used to memoise full partitioning runs keyed by
    ``(graph digest, k, constraints, configs, seed, ...)`` — see
    :func:`repro.partition.portfolio.portfolio_partition`.  It can be
    layered over a persistent backend (``repro.util.diskcache.DiskCache``)
    so memoised results survive the process — the seam ``repro serve``
    builds on (see ``docs/serve.md``).

``start_warm_pool`` / ``stop_warm_pool``
    A long-lived shared worker pool that ``parallel_map`` reuses across
    calls instead of forking a fresh pool per call — the daemon keeps one
    warm across requests.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

from repro.util.errors import ReproError

__all__ = [
    "resolve_jobs",
    "parallel_map",
    "KeyedCache",
    "start_warm_pool",
    "stop_warm_pool",
    "warm_pool_size",
]


def _visible_cpus() -> int:
    """CPUs genuinely available to this process.

    ``os.cpu_count()`` reports the machine, not the process: under a
    cgroup CPU quota or an affinity mask (containers, ``taskset``,
    batch schedulers) it overcounts and ``-1`` would oversubscribe the
    pool.  Prefer ``os.process_cpu_count()`` (3.13+), then the
    affinity mask, and fall back to ``os.cpu_count()`` last.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        n = process_cpu_count()
        if n:
            return n
    sched_getaffinity = getattr(os, "sched_getaffinity", None)
    if sched_getaffinity is not None:
        try:
            n = len(sched_getaffinity(0))
        except OSError:  # pragma: no cover - platform-dependent
            n = 0
        if n:
            return n
    return os.cpu_count() or 1


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` knob to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU
    *available to this process* (cgroup/affinity aware — see
    :func:`_visible_cpus`); any other positive integer is taken as
    given.  Raises :class:`~repro.util.errors.ReproError` on zero or
    other negatives.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(1, _visible_cpus())
    if n_jobs < 1:
        raise ReproError(f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}")
    return n_jobs


_NO_CONTEXT = object()
_WORKER_CONTEXT: Any = _NO_CONTEXT


def _set_worker_context(ctx) -> None:
    """Pool initializer: stash the shared per-call payload in the worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ctx


def _apply_with_context(fn, task):
    return fn(_WORKER_CONTEXT, task)


def _apply_with_payload(fn, ctx, task):
    """Warm-pool variant: the payload travels with the task, not the pool."""
    return fn(ctx, task)


def _serial_map(fn, tasks, stop, context=_NO_CONTEXT):
    call = fn if context is _NO_CONTEXT else (lambda t: fn(context, t))
    out = []
    for task in tasks:
        res = call(task)
        out.append(res)
        if stop is not None and stop(res):
            break
    return out


# --------------------------------------------------------------------- #
# warm pool: a shared long-lived executor for daemon-style callers
# --------------------------------------------------------------------- #
_WARM_POOL = None
_WARM_POOL_JOBS = 0


def start_warm_pool(n_jobs: int | None = -1) -> int:
    """Install a long-lived worker pool that :func:`parallel_map` reuses.

    Every subsequent ``parallel_map`` call with ``n_jobs > 1`` submits to
    this shared pool instead of forking a fresh ``ProcessPoolExecutor``
    per call — the per-call fork/teardown cost disappears, which is what
    makes a long-running daemon (``repro serve``) answer warm.  Shared
    *context* payloads then ship with every task rather than once per
    worker (a long-lived pool cannot take a per-call initializer); the
    determinism contract is unaffected because submission order and
    result order are unchanged.  Returns the worker count, or ``0`` when
    no pool could be created (serial platforms).  Replaces any previous
    warm pool.
    """
    global _WARM_POOL, _WARM_POOL_JOBS
    stop_warm_pool()
    n = resolve_jobs(n_jobs)
    if n <= 1:
        return 0
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=n)
    except Exception:  # pragma: no cover - platform-dependent
        return 0
    _WARM_POOL, _WARM_POOL_JOBS = pool, n
    return n


def stop_warm_pool() -> None:
    """Shut down the shared warm pool (no-op when none is installed)."""
    global _WARM_POOL, _WARM_POOL_JOBS
    pool, _WARM_POOL, _WARM_POOL_JOBS = _WARM_POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def warm_pool_size() -> int:
    """Worker count of the installed warm pool (``0`` when none)."""
    return _WARM_POOL_JOBS if _WARM_POOL is not None else 0


def _discard_broken_warm_pool() -> None:
    global _WARM_POOL, _WARM_POOL_JOBS
    pool, _WARM_POOL, _WARM_POOL_JOBS = _WARM_POOL, None, 0
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass


def _get_executor(fn, context, n_jobs, n_tasks):
    """Per-call pool — or the shared warm pool when one is installed.

    Returns ``(executor, submit, owned)``; only an *owned* (per-call)
    executor may be shut down by the caller.
    """
    from concurrent.futures import ProcessPoolExecutor

    shared = _WARM_POOL
    if shared is not None:
        if context is _NO_CONTEXT:
            submit = lambda t: shared.submit(fn, t)  # noqa: E731
        else:
            submit = lambda t: shared.submit(  # noqa: E731
                _apply_with_payload, fn, context, t
            )
        return shared, submit, False
    if context is _NO_CONTEXT:
        executor = ProcessPoolExecutor(max_workers=min(n_jobs, n_tasks))
        submit = lambda t: executor.submit(fn, t)  # noqa: E731
    else:
        executor = ProcessPoolExecutor(
            max_workers=min(n_jobs, n_tasks),
            initializer=_set_worker_context,
            initargs=(context,),
        )
        submit = lambda t: executor.submit(  # noqa: E731
            _apply_with_context, fn, t
        )
    return executor, submit, True


def parallel_map(
    fn: Callable[..., Any],
    tasks: Sequence[Any],
    n_jobs: int | None = 1,
    stop: Callable[[Any], bool] | None = None,
    context: Any = _NO_CONTEXT,
) -> list[Any]:
    """Map *fn* over *tasks*, racing up to *n_jobs* worker processes.

    Returns ``[fn(t) for t in tasks]`` truncated — when *stop* is given —
    right after the first result (in **task order**) for which
    ``stop(result)`` is true.  The output is bit-identical for every
    ``n_jobs``: parallel execution only reorders *work*, never results.
    Tasks and results must be picklable and *fn* must be a module-level
    callable when ``n_jobs > 1``.

    *context* carries a payload shared by every task — typically the
    graph and constraints, which dwarf the per-task seeds.  When given,
    *fn* is called as ``fn(context, task)`` and the payload is shipped
    **once per worker** (through the pool initializer) instead of once
    per task — except on a warm pool, where it travels with each task.

    With a *stop* predicate, workers run in submission waves of
    ``n_jobs`` so an early stop cancels everything not yet needed;
    without one, all tasks are submitted up front (no wave barrier).  A
    pool that cannot be created (restricted platforms, missing
    semaphores) or that breaks mid-flight because a worker died
    (``BrokenProcessPool``) degrades silently to the serial path, which
    is also taken for ``n_jobs=1`` or single tasks.  Exceptions *raised
    by fn* propagate to the caller exactly like serial ones — pending
    tasks are cancelled first (``cancel_futures``), so one failing task
    never blocks on the rest of the batch.
    """
    n_jobs = resolve_jobs(n_jobs)
    tasks = list(tasks)
    if n_jobs == 1 or len(tasks) <= 1:
        return _serial_map(fn, tasks, stop, context)
    from concurrent.futures import BrokenExecutor

    try:
        executor, submit, owned = _get_executor(fn, context, n_jobs, len(tasks))
    except Exception:  # pragma: no cover - platform-dependent
        return _serial_map(fn, tasks, stop, context)

    def _fail_fast(futures) -> None:
        # a task raised: drop everything not yet running before the
        # re-raise, so the failure doesn't block on the rest of the batch
        if owned:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            for fut in futures:
                fut.cancel()

    out: list[Any] = []
    try:
        try:
            if stop is None:
                # no early exit possible: submit everything up front so no
                # worker idles at a wave boundary
                futures = [submit(t) for t in tasks]
                try:
                    for fut in futures:
                        out.append(fut.result())
                except BrokenExecutor:
                    raise
                except BaseException:
                    _fail_fast(futures)
                    raise
                return out
            # waves of n_jobs bound the speculation an early stop discards
            for wave_start in range(0, len(tasks), n_jobs):
                wave = tasks[wave_start : wave_start + n_jobs]
                futures = [submit(t) for t in wave]
                stopped = False
                try:
                    for fut in futures:
                        res = fut.result()
                        out.append(res)
                        if stop(res):
                            stopped = True
                            break
                except BrokenExecutor:
                    raise
                except BaseException:
                    _fail_fast(futures)
                    raise
                if stopped:
                    for fut in futures:
                        fut.cancel()
                    break
            return out
        except BrokenExecutor:
            # the pool itself died (worker OOM-killed, pipes torn down) — an
            # infrastructure failure, not a task failure: recompute serially.
            # Exceptions raised by fn inside a live pool re-raise above as-is.
            if not owned:
                _discard_broken_warm_pool()
            return _serial_map(fn, tasks, stop, context)
    finally:
        if owned:
            executor.shutdown(wait=True)


class KeyedCache:
    """Bounded LRU cache for partitioning results (or anything hashable-keyed).

    ``lookup`` returns ``(hit, value)`` so a legitimately cached ``None``
    (or other falsy value) is distinguishable from a miss; ``get``
    returns *default* on a miss and refreshes recency on a hit; ``put``
    inserts/overwrites and evicts the least-recently-used entry beyond
    *maxsize*.  ``stats()`` reports hits/misses/size for benchmarks and
    tests.

    A *backend* (any object with ``lookup(key) -> (hit, value)`` and
    ``put(key, value)`` — canonically
    :class:`repro.util.diskcache.DiskCache`) layers a persistent second
    level underneath: in-memory misses consult it (hits are promoted
    into memory and counted under ``backend_hits``), and every ``put``
    writes through.  ``clear()`` drops the in-memory level only — the
    backend is shared, persistent state; clear it explicitly.

    Not thread-safe beyond the backend's own locking (the library races
    *processes*, and each process owns its cache); the serve daemon
    wraps lookups in its single-flight layer.
    """

    def __init__(self, maxsize: int = 128, backend=None) -> None:
        if maxsize < 1:
            raise ReproError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.backend = backend
        self.hits = 0
        self.misses = 0
        self.backend_hits = 0

    def set_backend(self, backend) -> None:
        """Attach (or with ``None`` detach) the persistent second level."""
        self.backend = backend

    def lookup(self, key) -> tuple[bool, Any]:
        """Return ``(True, value)`` on a hit, ``(False, None)`` on a miss.

        The two-tuple spelling is the one the memoisation call sites use:
        it keeps a cached ``None``/falsy result a *hit* instead of
        recomputing it forever while inflating ``misses``.
        """
        try:
            value = self._data[key]
        except KeyError:
            pass
        else:
            self._data.move_to_end(key)
            self.hits += 1
            return True, value
        if self.backend is not None:
            found, value = self.backend.lookup(key)
            if found:
                self._insert(key, value)
                self.hits += 1
                self.backend_hits += 1
                return True, value
        self.misses += 1
        return False, None

    def get(self, key, default=None):
        """Value for *key*, or *default* on a miss (pass a private
        sentinel as *default* to disambiguate cached falsy values, or use
        :meth:`lookup` directly)."""
        found, value = self.lookup(key)
        return value if found else default

    def _insert(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def put(self, key, value) -> None:
        self._insert(key, value)
        if self.backend is not None:
            self.backend.put(key, value)

    def clear(self) -> None:
        """Drop the in-memory level and reset counters (backend untouched)."""
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.backend_hits = 0

    def stats(self) -> dict:
        out = {"size": len(self._data), "hits": self.hits, "misses": self.misses}
        if self.backend is not None:
            out["backend_hits"] = self.backend_hits
            out["backend"] = self.backend.stats()
        return out

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data or (
            self.backend is not None and key in self.backend
        )
