"""Deterministic process-pool racing and result memoisation.

The paper's GP partitioner is a race of randomized attempts: portfolio
configurations, coarsen/partition retry cycles, per-level refinement
candidates.  Every attempt is independent given its seed, and all seeds
are derived up front with :func:`repro.util.rng.spawn_seeds` — so racing
attempts across worker processes cannot change any result, only the
wall-clock.  This module supplies the two primitives the partitioning
layer builds on (see ``docs/parallel.md``):

``parallel_map``
    An order-preserving map over picklable tasks with an optional
    early-stop predicate.  Its contract is the determinism guarantee:
    **the returned list is identical for every ``n_jobs``**, because
    results are collected in submission order and the stop predicate is
    applied in that order, exactly as a serial loop would.  With
    ``n_jobs=1`` (or an unavailable pool) no processes are spawned at
    all, which doubles as the fallback path on platforms without a
    usable ``fork``/``spawn``.

``KeyedCache``
    A small LRU used to memoise full partitioning runs keyed by
    ``(graph digest, k, constraints, configs, seed, ...)`` — see
    :func:`repro.partition.portfolio.portfolio_partition`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

from repro.util.errors import ReproError

__all__ = ["resolve_jobs", "parallel_map", "KeyedCache"]


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` knob to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per visible
    CPU; any other positive integer is taken as given.  Raises
    :class:`~repro.util.errors.ReproError` on zero or other negatives.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ReproError(f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}")
    return n_jobs


_NO_CONTEXT = object()
_WORKER_CONTEXT: Any = _NO_CONTEXT


def _set_worker_context(ctx) -> None:
    """Pool initializer: stash the shared per-call payload in the worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ctx


def _apply_with_context(fn, task):
    return fn(_WORKER_CONTEXT, task)


def _serial_map(fn, tasks, stop, context=_NO_CONTEXT):
    call = fn if context is _NO_CONTEXT else (lambda t: fn(context, t))
    out = []
    for task in tasks:
        res = call(task)
        out.append(res)
        if stop is not None and stop(res):
            break
    return out


def parallel_map(
    fn: Callable[..., Any],
    tasks: Sequence[Any],
    n_jobs: int | None = 1,
    stop: Callable[[Any], bool] | None = None,
    context: Any = _NO_CONTEXT,
) -> list[Any]:
    """Map *fn* over *tasks*, racing up to *n_jobs* worker processes.

    Returns ``[fn(t) for t in tasks]`` truncated — when *stop* is given —
    right after the first result (in **task order**) for which
    ``stop(result)`` is true.  The output is bit-identical for every
    ``n_jobs``: parallel execution only reorders *work*, never results.
    Tasks and results must be picklable and *fn* must be a module-level
    callable when ``n_jobs > 1``.

    *context* carries a payload shared by every task — typically the
    graph and constraints, which dwarf the per-task seeds.  When given,
    *fn* is called as ``fn(context, task)`` and the payload is shipped
    **once per worker** (through the pool initializer) instead of once
    per task.

    With a *stop* predicate, workers run in submission waves of
    ``n_jobs`` so an early stop cancels everything not yet needed;
    without one, all tasks are submitted up front (no wave barrier).  A
    pool that cannot be created (restricted platforms, missing
    semaphores) or that breaks mid-flight because a worker died
    (``BrokenProcessPool``) degrades silently to the serial path, which
    is also taken for ``n_jobs=1`` or single tasks.  Exceptions *raised
    by fn* propagate to the caller exactly like serial ones.
    """
    n_jobs = resolve_jobs(n_jobs)
    tasks = list(tasks)
    if n_jobs == 1 or len(tasks) <= 1:
        return _serial_map(fn, tasks, stop, context)
    try:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        if context is _NO_CONTEXT:
            executor = ProcessPoolExecutor(
                max_workers=min(n_jobs, len(tasks))
            )
            submit = lambda t: executor.submit(fn, t)  # noqa: E731
        else:
            executor = ProcessPoolExecutor(
                max_workers=min(n_jobs, len(tasks)),
                initializer=_set_worker_context,
                initargs=(context,),
            )
            submit = lambda t: executor.submit(  # noqa: E731
                _apply_with_context, fn, t
            )
    except Exception:  # pragma: no cover - platform-dependent
        return _serial_map(fn, tasks, stop, context)
    out: list[Any] = []
    try:
        with executor:
            if stop is None:
                # no early exit possible: submit everything up front so no
                # worker idles at a wave boundary
                futures = [submit(t) for t in tasks]
                for fut in futures:
                    out.append(fut.result())
                return out
            # waves of n_jobs bound the speculation an early stop discards
            for wave_start in range(0, len(tasks), n_jobs):
                wave = tasks[wave_start : wave_start + n_jobs]
                futures = [submit(t) for t in wave]
                stopped = False
                for fut in futures:
                    res = fut.result()
                    out.append(res)
                    if stop(res):
                        stopped = True
                        break
                if stopped:
                    for fut in futures:
                        fut.cancel()
                    break
    except BrokenExecutor:
        # the pool itself died (worker OOM-killed, pipes torn down) — an
        # infrastructure failure, not a task failure: recompute serially.
        # Exceptions raised by fn inside a live pool re-raise above as-is.
        return _serial_map(fn, tasks, stop, context)
    return out


class KeyedCache:
    """Bounded LRU cache for partitioning results (or anything hashable-keyed).

    ``get`` returns ``None`` on a miss and refreshes recency on a hit;
    ``put`` inserts/overwrites and evicts the least-recently-used entry
    beyond *maxsize*.  ``stats()`` reports hits/misses/size for
    benchmarks and tests.  Not thread-safe (the library races *processes*,
    and each process owns its cache).
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ReproError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {"size": len(self._data), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data
