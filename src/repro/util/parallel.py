"""Deterministic process-pool racing and result memoisation.

The paper's GP partitioner is a race of randomized attempts: portfolio
configurations, coarsen/partition retry cycles, per-level refinement
candidates.  Every attempt is independent given its seed, and all seeds
are derived up front with :func:`repro.util.rng.spawn_seeds` — so racing
attempts across worker processes cannot change any result, only the
wall-clock.  This module supplies the primitives the partitioning layer
builds on (see ``docs/parallel.md``):

``parallel_map``
    An order-preserving map over picklable tasks with an optional
    early-stop predicate.  Its contract is the determinism guarantee:
    **the returned list is identical for every ``n_jobs``**, because
    results are collected in submission order and the stop predicate is
    applied in that order, exactly as a serial loop would.  With
    ``n_jobs=1`` (or an unavailable pool) no processes are spawned at
    all, which doubles as the fallback path on platforms without a
    usable ``fork``/``spawn``.

``KeyedCache``
    A small LRU used to memoise full partitioning runs keyed by
    ``(graph digest, k, constraints, configs, seed, ...)`` — see
    :func:`repro.partition.portfolio.portfolio_partition`.  It can be
    layered over a persistent backend (``repro.util.diskcache.DiskCache``)
    so memoised results survive the process — the seam ``repro serve``
    builds on (see ``docs/serve.md``).

``start_warm_pool`` / ``stop_warm_pool``
    A long-lived shared worker pool that ``parallel_map`` reuses across
    calls instead of forking a fresh pool per call — the daemon keeps one
    warm across requests.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

import repro.obs as _obs
from repro.util.errors import ReproError

__all__ = [
    "resolve_jobs",
    "parallel_map",
    "KeyedCache",
    "start_warm_pool",
    "stop_warm_pool",
    "warm_pool_size",
]


def _visible_cpus() -> int:
    """CPUs genuinely available to this process.

    ``os.cpu_count()`` reports the machine, not the process: under a
    cgroup CPU quota or an affinity mask (containers, ``taskset``,
    batch schedulers) it overcounts and ``-1`` would oversubscribe the
    pool.  Prefer ``os.process_cpu_count()`` (3.13+), then the
    affinity mask, and fall back to ``os.cpu_count()`` last.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        n = process_cpu_count()
        if n:
            return n
    sched_getaffinity = getattr(os, "sched_getaffinity", None)
    if sched_getaffinity is not None:
        try:
            n = len(sched_getaffinity(0))
        except OSError:  # pragma: no cover - platform-dependent
            n = 0
        if n:
            return n
    return os.cpu_count() or 1


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` knob to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU
    *available to this process* (cgroup/affinity aware — see
    :func:`_visible_cpus`); any other positive integer is taken as
    given.  Raises :class:`~repro.util.errors.ReproError` on zero or
    other negatives.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(1, _visible_cpus())
    if n_jobs < 1:
        raise ReproError(f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}")
    return n_jobs


_NO_CONTEXT = object()
_WORKER_CONTEXT: Any = _NO_CONTEXT


def _set_worker_context(ctx) -> None:
    """Pool initializer: stash the shared per-call payload in the worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ctx


def _apply_with_context(fn, task):
    return fn(_WORKER_CONTEXT, task)


def _apply_with_payload(fn, ctx, task):
    """Warm-pool variant: the payload travels with the task, not the pool."""
    return fn(ctx, task)


class _ObsResult:
    """A worker result plus the child-process observability capture.

    When the parent has instrumentation on, workers run each task inside
    their own :func:`repro.obs.capture` and ship the picklable payload
    (span trees + metric deltas) back alongside the value.  The parent
    unwraps in submission order — so merged metrics are deterministic at
    any ``n_jobs`` — before the stop predicate ever sees the value.
    """

    __slots__ = ("value", "payload")

    def __init__(self, value, payload) -> None:
        self.value = value
        self.payload = payload


def _obs_reset_worker() -> None:
    # A fork-started worker inherits the parent's registry contents; a
    # gauge write equal to the inherited value would then vanish from
    # the task delta, making the merge depend on fork timing.  A worker
    # registry exists only to compute per-task deltas, so start clean.
    _obs.REGISTRY.reset()


def _obs_apply(fn, task, trace):
    _obs_reset_worker()
    with _obs.capture(tracing=trace) as cap:
        res = fn(task)
    return _ObsResult(res, cap.payload())


def _obs_apply_with_context(fn, task, trace):
    _obs_reset_worker()
    with _obs.capture(tracing=trace) as cap:
        res = fn(_WORKER_CONTEXT, task)
    return _ObsResult(res, cap.payload())


def _obs_apply_with_payload(fn, ctx, task, trace):
    _obs_reset_worker()
    with _obs.capture(tracing=trace) as cap:
        res = fn(ctx, task)
    return _ObsResult(res, cap.payload())


def _unwrap(res):
    """Absorb a shipped child capture (if any) and return the bare value."""
    if isinstance(res, _ObsResult):
        _obs.absorb_payload(res.payload)
        return res.value
    return res


def _serial_map(fn, tasks, stop, context=_NO_CONTEXT):
    call = fn if context is _NO_CONTEXT else (lambda t: fn(context, t))
    out = []
    for task in tasks:
        res = call(task)
        out.append(res)
        if stop is not None and stop(res):
            break
    return out


# --------------------------------------------------------------------- #
# warm pool: a shared long-lived executor for daemon-style callers
# --------------------------------------------------------------------- #
_WARM_POOL = None
_WARM_POOL_JOBS = 0


def start_warm_pool(n_jobs: int | None = -1) -> int:
    """Install a long-lived worker pool that :func:`parallel_map` reuses.

    Every subsequent ``parallel_map`` call with ``n_jobs > 1`` submits to
    this shared pool instead of forking a fresh ``ProcessPoolExecutor``
    per call — the per-call fork/teardown cost disappears, which is what
    makes a long-running daemon (``repro serve``) answer warm.  Shared
    *context* payloads then ship with every task rather than once per
    worker (a long-lived pool cannot take a per-call initializer); the
    determinism contract is unaffected because submission order and
    result order are unchanged.  Returns the worker count, or ``0`` when
    no pool could be created (serial platforms).  Replaces any previous
    warm pool.
    """
    global _WARM_POOL, _WARM_POOL_JOBS
    stop_warm_pool()
    n = resolve_jobs(n_jobs)
    if n <= 1:
        return 0
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=n)
    except Exception:  # pragma: no cover - platform-dependent
        return 0
    _WARM_POOL, _WARM_POOL_JOBS = pool, n
    return n


def stop_warm_pool() -> None:
    """Shut down the shared warm pool (no-op when none is installed)."""
    global _WARM_POOL, _WARM_POOL_JOBS
    pool, _WARM_POOL, _WARM_POOL_JOBS = _WARM_POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def warm_pool_size() -> int:
    """Worker count of the installed warm pool (``0`` when none)."""
    return _WARM_POOL_JOBS if _WARM_POOL is not None else 0


def _discard_broken_warm_pool() -> None:
    global _WARM_POOL, _WARM_POOL_JOBS
    pool, _WARM_POOL, _WARM_POOL_JOBS = _WARM_POOL, None, 0
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass


def _get_executor(fn, context, n_jobs, n_tasks, trace=None):
    """Per-call pool — or the shared warm pool when one is installed.

    Returns ``(executor, submit, owned)``; only an *owned* (per-call)
    executor may be shut down by the caller.  When *trace* is not
    ``None`` instrumentation is on: tasks run inside a child-process
    observability capture (tracing spans included iff *trace* is true)
    and futures resolve to :class:`_ObsResult` wrappers.
    """
    from concurrent.futures import ProcessPoolExecutor

    shared = _WARM_POOL
    if shared is not None:
        if trace is None:
            if context is _NO_CONTEXT:
                submit = lambda t: shared.submit(fn, t)  # noqa: E731
            else:
                submit = lambda t: shared.submit(  # noqa: E731
                    _apply_with_payload, fn, context, t
                )
        elif context is _NO_CONTEXT:
            submit = lambda t: shared.submit(  # noqa: E731
                _obs_apply, fn, t, trace
            )
        else:
            submit = lambda t: shared.submit(  # noqa: E731
                _obs_apply_with_payload, fn, context, t, trace
            )
        return shared, submit, False
    if context is _NO_CONTEXT:
        executor = ProcessPoolExecutor(max_workers=min(n_jobs, n_tasks))
        if trace is None:
            submit = lambda t: executor.submit(fn, t)  # noqa: E731
        else:
            submit = lambda t: executor.submit(  # noqa: E731
                _obs_apply, fn, t, trace
            )
    else:
        executor = ProcessPoolExecutor(
            max_workers=min(n_jobs, n_tasks),
            initializer=_set_worker_context,
            initargs=(context,),
        )
        if trace is None:
            submit = lambda t: executor.submit(  # noqa: E731
                _apply_with_context, fn, t
            )
        else:
            submit = lambda t: executor.submit(  # noqa: E731
                _obs_apply_with_context, fn, t, trace
            )
    return executor, submit, True


def parallel_map(
    fn: Callable[..., Any],
    tasks: Sequence[Any],
    n_jobs: int | None = 1,
    stop: Callable[[Any], bool] | None = None,
    context: Any = _NO_CONTEXT,
) -> list[Any]:
    """Map *fn* over *tasks*, racing up to *n_jobs* worker processes.

    Returns ``[fn(t) for t in tasks]`` truncated — when *stop* is given —
    right after the first result (in **task order**) for which
    ``stop(result)`` is true.  The output is bit-identical for every
    ``n_jobs``: parallel execution only reorders *work*, never results.
    Tasks and results must be picklable and *fn* must be a module-level
    callable when ``n_jobs > 1``.

    *context* carries a payload shared by every task — typically the
    graph and constraints, which dwarf the per-task seeds.  When given,
    *fn* is called as ``fn(context, task)`` and the payload is shipped
    **once per worker** (through the pool initializer) instead of once
    per task — except on a warm pool, where it travels with each task.

    With a *stop* predicate, workers run in submission waves of
    ``n_jobs`` so an early stop cancels everything not yet needed;
    without one, all tasks are submitted up front (no wave barrier).  A
    pool that cannot be created (restricted platforms, missing
    semaphores) or that breaks mid-flight because a worker died
    (``BrokenProcessPool``) degrades silently to the serial path, which
    is also taken for ``n_jobs=1`` or single tasks.  Exceptions *raised
    by fn* propagate to the caller exactly like serial ones — pending
    tasks are cancelled first (``cancel_futures``), so one failing task
    never blocks on the rest of the batch.

    When observability is on (:func:`repro.obs.active`), every call is
    wrapped in a ``parallel_map`` span (waves get child spans) and each
    worker task runs inside its own child-process capture whose spans
    and metric deltas ship back with the result and are absorbed **in
    submission order** — merged series are therefore identical for
    every ``n_jobs``.  (The one wrinkle: a mid-flight
    ``BrokenProcessPool`` falls back to serial recomputation, so
    metrics from tasks absorbed before the break count twice; results
    are unaffected.)  When off, this function is byte-for-byte the
    uninstrumented path plus one branch.
    """
    n_jobs = resolve_jobs(n_jobs)
    tasks = list(tasks)
    obs_on = _obs.active()
    if n_jobs == 1 or len(tasks) <= 1:
        if not obs_on:
            return _serial_map(fn, tasks, stop, context)
        with _obs.trace_span(
            "parallel_map", tasks=len(tasks), jobs=1, mode="serial"
        ):
            res = _serial_map(fn, tasks, stop, context)
            _obs.add("pool.tasks", len(res), mode="serial")
            return res
    from concurrent.futures import BrokenExecutor

    trace = _obs.tracing_on() if obs_on else None
    outer = _obs.trace_span("parallel_map", tasks=len(tasks), jobs=n_jobs)
    with outer:
        try:
            executor, submit, owned = _get_executor(
                fn, context, n_jobs, len(tasks), trace
            )
        except Exception:  # pragma: no cover - platform-dependent
            outer.set(mode="serial")
            res = _serial_map(fn, tasks, stop, context)
            if obs_on:
                _obs.add("pool.tasks", len(res), mode="serial")
            return res
        mode = "pool" if owned else "warm"
        outer.set(mode=mode)
        if obs_on:
            _obs.gauge_set(
                "pool.workers",
                min(n_jobs, len(tasks)) if owned else _WARM_POOL_JOBS,
            )

        def _fail_fast(futures) -> None:
            # a task raised: drop everything not yet running before the
            # re-raise, so the failure doesn't block on the rest of the batch
            if owned:
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                for fut in futures:
                    fut.cancel()

        out: list[Any] = []
        try:
            try:
                if stop is None:
                    # no early exit possible: submit everything up front so no
                    # worker idles at a wave boundary
                    futures = [submit(t) for t in tasks]
                    try:
                        for fut in futures:
                            out.append(_unwrap(fut.result()))
                    except BrokenExecutor:
                        raise
                    except BaseException:
                        _fail_fast(futures)
                        raise
                    if obs_on:
                        _obs.add("pool.tasks", len(out), mode=mode)
                    return out
                # waves of n_jobs bound the speculation an early stop discards
                for wave_start in range(0, len(tasks), n_jobs):
                    wave = tasks[wave_start : wave_start + n_jobs]
                    if obs_on:
                        _obs.add("pool.waves", mode=mode)
                    with _obs.trace_span(
                        "parallel_map.wave",
                        wave=wave_start // n_jobs,
                        size=len(wave),
                    ):
                        futures = [submit(t) for t in wave]
                        stopped = False
                        try:
                            for fut in futures:
                                res = _unwrap(fut.result())
                                out.append(res)
                                if stop(res):
                                    stopped = True
                                    break
                        except BrokenExecutor:
                            raise
                        except BaseException:
                            _fail_fast(futures)
                            raise
                    if stopped:
                        for fut in futures:
                            fut.cancel()
                        break
                if obs_on:
                    _obs.add("pool.tasks", len(out), mode=mode)
                return out
            except BrokenExecutor:
                # the pool itself died (worker OOM-killed, pipes torn down) —
                # an infrastructure failure, not a task failure: recompute
                # serially.  Exceptions raised by fn inside a live pool
                # re-raise above as-is.
                if not owned:
                    _discard_broken_warm_pool()
                res = _serial_map(fn, tasks, stop, context)
                if obs_on:
                    _obs.add("pool.serial_fallbacks")
                    _obs.add("pool.tasks", len(res), mode="serial")
                return res
        finally:
            if owned:
                executor.shutdown(wait=True)


class KeyedCache:
    """Bounded LRU cache for partitioning results (or anything hashable-keyed).

    ``lookup`` returns ``(hit, value)`` so a legitimately cached ``None``
    (or other falsy value) is distinguishable from a miss; ``get``
    returns *default* on a miss and refreshes recency on a hit; ``put``
    inserts/overwrites and evicts the least-recently-used entry beyond
    *maxsize*.  ``stats()`` reports hits/misses/size for benchmarks and
    tests.

    A *backend* (any object with ``lookup(key) -> (hit, value)`` and
    ``put(key, value)`` — canonically
    :class:`repro.util.diskcache.DiskCache`) layers a persistent second
    level underneath: in-memory misses consult it (hits are promoted
    into memory and counted under ``backend_hits``), and every ``put``
    writes through.  ``clear()`` drops the in-memory level only — the
    backend is shared, persistent state; clear it explicitly.

    Not thread-safe beyond the backend's own locking (the library races
    *processes*, and each process owns its cache); the serve daemon
    wraps lookups in its single-flight layer.

    *name* labels this cache's series in the unified observability
    registry (``cache.lookups{cache=<name>, outcome=hit|backend_hit|miss}``
    and ``cache.puts{cache=<name>}``); the local ``hits``/``misses``
    counters remain for ``stats()`` compatibility.
    """

    def __init__(self, maxsize: int = 128, backend=None,
                 name: str = "keyed") -> None:
        if maxsize < 1:
            raise ReproError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.name = name
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.backend = backend
        self.hits = 0
        self.misses = 0
        self.backend_hits = 0

    def set_backend(self, backend) -> None:
        """Attach (or with ``None`` detach) the persistent second level."""
        self.backend = backend

    def lookup(self, key) -> tuple[bool, Any]:
        """Return ``(True, value)`` on a hit, ``(False, None)`` on a miss.

        The two-tuple spelling is the one the memoisation call sites use:
        it keeps a cached ``None``/falsy result a *hit* instead of
        recomputing it forever while inflating ``misses``.
        """
        try:
            value = self._data[key]
        except KeyError:
            pass
        else:
            self._data.move_to_end(key)
            self.hits += 1
            _obs.cache_event(self.name, "hit")
            return True, value
        if self.backend is not None:
            found, value = self.backend.lookup(key)
            if found:
                self._insert(key, value)
                self.hits += 1
                self.backend_hits += 1
                _obs.cache_event(self.name, "backend_hit")
                return True, value
        self.misses += 1
        _obs.cache_event(self.name, "miss")
        return False, None

    def get(self, key, default=None):
        """Value for *key*, or *default* on a miss (pass a private
        sentinel as *default* to disambiguate cached falsy values, or use
        :meth:`lookup` directly)."""
        found, value = self.lookup(key)
        return value if found else default

    def _insert(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def put(self, key, value) -> None:
        self._insert(key, value)
        _obs.add("cache.puts", cache=self.name)
        if self.backend is not None:
            self.backend.put(key, value)

    def clear(self) -> None:
        """Drop the in-memory level and reset counters (backend untouched)."""
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.backend_hits = 0

    def stats(self) -> dict:
        out = {"size": len(self._data), "hits": self.hits, "misses": self.misses}
        if self.backend is not None:
            out["backend_hits"] = self.backend_hits
            out["backend"] = self.backend.stats()
        return out

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data or (
            self.backend is not None and key in self.backend
        )
