"""Persistent, digest-sharded, size-bounded on-disk cache.

:class:`DiskCache` is the durable second level under the in-process
:class:`~repro.util.parallel.KeyedCache` memos: partitioning results are
keyed by content digests (``docs/parallel.md``), so a result computed
once is valid for every later process — and for every *user* — that
presents the same key.  The ``repro serve`` daemon leans on this store
for warm restarts (``docs/serve.md``); ``repro cache --dir`` inspects it.

Design:

* **One file per entry, sharded by digest prefix.**  The entry key is
  hashed (SHA-256) together with a *version tag* (library version +
  store schema version + optional salt) and lands in
  ``root/<hh>/<hash>.pkl`` — 256 shard directories keep any single
  directory small at millions of entries.
* **Versioned keys.**  Because the version tag participates in the
  hash, a library upgrade simply stops *seeing* old entries (they age
  out through eviction) instead of deserialising stale results.  The
  full key ``repr`` is stored inside each entry and verified on read,
  so even a hash collision degrades to a miss, never a wrong value.
* **Atomic writes.**  Entries are written to a temporary file in the
  shard directory and ``os.replace``-d into place; readers never see a
  torn write.  Unreadable/corrupt entries are deleted and reported as
  misses.
* **LRU-ish size-bounded eviction.**  Hits touch the entry's mtime;
  when the store's total size passes *max_bytes* after a put, the
  oldest-mtime entries are removed until it fits again.  The total is
  tracked as a running byte counter (seeded by one directory scan on
  the first put, adjusted per put/unlink) so a put under budget costs
  O(1) stats, not an O(entries) rescan; the full scan only happens when
  the budget is actually crossed, which also re-synchronises the
  counter against anything other processes did to the directory.
* **Thread-safe** within a process (one lock around mutations — the
  serve daemon's request threads share one store).  Cross-*process*
  safety relies on the atomic replace plus key verification: concurrent
  writers of the same key write identical content (results are
  deterministic given the key), so last-writer-wins is harmless.

Values travel by pickle: the store is a **local, trusted** cache
directory, not an interchange format — do not point it at files from
untrusted sources.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path

import repro.obs as _obs
from repro import __version__
from repro.util.errors import ReproError

__all__ = ["DiskCache", "SCHEMA_VERSION"]

#: Bump when the on-disk entry layout changes; participates in the key
#: hash, so older stores are silently invisible rather than misread.
SCHEMA_VERSION = 1

_SUFFIX = ".pkl"


class DiskCache:
    """Persistent key→value store with the :class:`KeyedCache` backend
    protocol (``lookup`` / ``put`` / ``stats`` / ``__contains__``).

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).  Safe to share
        between the portfolio/evolve/multires memos and the serve
        results cache — keys are namespaced tuples.
    max_bytes:
        Soft cap on the store's total size; crossing it after a put
        evicts oldest-mtime entries until the store fits (the entry just
        written has the newest mtime, so it survives).  Default 256 MiB.
    salt:
        Extra string mixed into every key hash — lets tests (and
        deliberate cache-busting deployments) isolate stores sharing a
        directory.
    name:
        Label for this store's series in the unified observability
        registry (``cache.lookups{cache=<name>, ...}``).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int = 256 * 1024 * 1024,
        salt: str = "",
        name: str = "disk",
    ) -> None:
        if max_bytes < 1:
            raise ReproError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.name = name
        self._version_tag = f"repro/{__version__}/schema/{SCHEMA_VERSION}/{salt}"
        self._lock = threading.Lock()
        # running store size in bytes; None until the first put seeds it
        # with a directory scan (later puts adjust it incrementally)
        self._total_bytes: int | None = None
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def _locate(self, key) -> tuple[Path, str]:
        """Shard path and canonical key repr for *key*."""
        key_repr = repr(key)
        h = hashlib.sha256(
            (self._version_tag + "\x00" + key_repr).encode()
        ).hexdigest()
        return self.root / h[:2] / (h + _SUFFIX), key_repr

    def lookup(self, key) -> tuple[bool, object]:
        """``(True, value)`` if *key* is stored, else ``(False, None)``."""
        path, key_repr = self._locate(key)
        with self._lock:
            try:
                blob = path.read_bytes()
            except OSError:
                self.misses += 1
                _obs.cache_event(self.name, "miss")
                return False, None
            try:
                doc = pickle.loads(blob)
                stored_repr = doc["key"]
                value = doc["value"]
            except Exception:
                # torn/corrupt/foreign entry: drop it, report a miss
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - defensive
                    pass
                else:
                    if self._total_bytes is not None:
                        self._total_bytes -= len(blob)
                self.misses += 1
                _obs.cache_event(self.name, "miss")
                return False, None
            if stored_repr != key_repr:
                # hash collision — astronomically unlikely, but the cost
                # of verifying is one string compare and the cost of not
                # verifying would be a *wrong result*
                self.misses += 1
                _obs.cache_event(self.name, "miss")
                return False, None
            try:
                os.utime(path)  # refresh recency for LRU-ish eviction
            except OSError:  # pragma: no cover - defensive
                pass
            self.hits += 1
            _obs.cache_event(self.name, "hit")
            return True, value

    def get(self, key, default=None):
        found, value = self.lookup(key)
        return value if found else default

    def put(self, key, value) -> None:
        """Store *value* under *key* atomically; evict if over budget."""
        path, key_repr = self._locate(key)
        blob = pickle.dumps(
            {"key": key_repr, "value": value},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with self._lock:
            if self._total_bytes is None:
                # seed the running total once; adjusted incrementally below
                self._total_bytes = sum(
                    size for _, size, _ in self._entries()
                )
            try:
                old_size = path.stat().st_size  # overwrite replaces this
            except OSError:
                old_size = 0
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=_SUFFIX, dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._total_bytes += len(blob) - old_size
            self.puts += 1
            _obs.add("cache.puts", cache=self.name)
            if self._total_bytes > self.max_bytes:
                self._evict_over_budget()

    # ------------------------------------------------------------------ #
    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) for every live entry (lock held)."""
        out = []
        for p in self.root.glob(f"??/*{_SUFFIX}"):
            try:
                st = p.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, p))
        return out

    def _evict_over_budget(self) -> None:
        # the full scan also re-seeds the running total, correcting any
        # drift (foreign writers, failed unlinks) accumulated since the
        # last crossing
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total > self.max_bytes:
            for _, size, p in sorted(entries):  # oldest mtime first
                try:
                    p.unlink()
                except OSError:  # pragma: no cover - defensive
                    continue
                self.evictions += 1
                _obs.add("cache.evictions", cache=self.name)
                total -= size
                if total <= self.max_bytes:
                    break
        self._total_bytes = total

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Remove every stored entry (counters reset too)."""
        with self._lock:
            for _, _, p in self._entries():
                try:
                    p.unlink()
                except OSError:  # pragma: no cover - defensive
                    pass
            self.hits = 0
            self.misses = 0
            self.puts = 0
            self.evictions = 0
            self._total_bytes = None  # re-seeded on the next put

    def stats(self) -> dict:
        with self._lock:
            entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }

    def __contains__(self, key) -> bool:
        """True iff *key* is stored with a *verified* key repr.

        A pure query: unlike :meth:`lookup` it never touches the
        hit/miss counters, the entry's mtime, or corrupt files — so
        probing membership does not skew stats or eviction order.
        Verification matters: a hash collision or torn write answers
        ``False`` here exactly as it would miss in :meth:`lookup`.
        """
        path, key_repr = self._locate(key)
        try:
            doc = pickle.loads(path.read_bytes())
            return doc["key"] == key_repr
        except Exception:
            return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries())
