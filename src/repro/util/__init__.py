"""Small shared utilities: RNG handling, timing, errors, table formatting."""

from repro.util.diskcache import DiskCache
from repro.util.errors import (
    GraphError,
    InfeasibleError,
    PartitionError,
    ReproError,
    ValidationError,
)
from repro.util.parallel import (
    KeyedCache,
    parallel_map,
    resolve_jobs,
    start_warm_pool,
    stop_warm_pool,
    warm_pool_size,
)
from repro.util.rng import as_rng, spawn_seeds
from repro.util.stopwatch import Stopwatch
from repro.util.tables import format_table

__all__ = [
    "ReproError",
    "GraphError",
    "PartitionError",
    "InfeasibleError",
    "ValidationError",
    "as_rng",
    "spawn_seeds",
    "Stopwatch",
    "format_table",
    "KeyedCache",
    "DiskCache",
    "parallel_map",
    "resolve_jobs",
    "start_warm_pool",
    "stop_warm_pool",
    "warm_pool_size",
]
