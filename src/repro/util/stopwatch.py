"""Wall-clock stopwatch used by the experiment runner.

The paper reports "Total Time(S)" per algorithm; :class:`Stopwatch` provides
the measurement primitive with a context-manager interface::

    with Stopwatch() as sw:
        run()
    print(sw.elapsed)
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating wall-clock timer (perf_counter based)."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        if self._start is not None:
            raise RuntimeError(
                "stopwatch is running; stop() before reset()"
            )
        self.elapsed = 0.0

    def split(self) -> float:
        """Elapsed time so far without stopping (lap read).

        Works on a running or stopped watch; the span tracer uses it to
        timestamp instant events at their offset into the open span.
        """
        if self._start is None:
            return self.elapsed
        return self.elapsed + (time.perf_counter() - self._start)

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
