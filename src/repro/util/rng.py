"""Deterministic random-number plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be an ``int``, a :class:`numpy.random.Generator`, or ``None``.  ``as_rng``
normalises all three into a Generator; ``spawn_seeds`` derives independent
child seeds so that sub-algorithms (e.g. the ten greedy restarts of the
initial-partitioning phase) are reproducible yet decorrelated.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_seeds"]

_DEFAULT_SEED = 0xC0FFEE


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` maps to a fixed library-default seed (the library is fully
    deterministic unless the caller opts into entropy explicitly).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | np.random.Generator | None, n: int) -> list[int]:
    """Derive *n* independent 63-bit child seeds from *seed*."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    rng = as_rng(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]
