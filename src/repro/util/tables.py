"""Plain-text table formatting for experiment reports.

Produces the fixed-width tables printed by the benchmark harness, matching the
column set of the paper's EXPERIMENT I-III tables.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of rows; each row must have ``len(headers)`` entries.
    title:
        Optional caption rendered above the table.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
