"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """Malformed graph input: bad node ids, negative weights, self loops, ..."""


class ValidationError(ReproError):
    """An internal invariant check failed (see :mod:`repro.graph.validation`)."""


class PartitionError(ReproError):
    """Invalid partitioning request (e.g. K larger than the node count)."""


class InfeasibleError(ReproError):
    """No partitioning satisfying the requested constraints was found.

    Mirrors the paper's terminal condition: "a message will signal that
    partitioning with these constraints is either impossible or we have to
    give the tool more time (i.e.: iterations)".

    Attributes
    ----------
    best:
        The best (least-violating) partition found before giving up, or
        ``None``.  Kept so callers can inspect how close the search came.
    """

    def __init__(self, message: str, best=None):
        super().__init__(message)
        self.best = best
