"""Mapping of a partitioned process network onto a multi-FPGA system.

A :class:`Mapping` binds a partition assignment to system slots and audits
the paper's two constraint families:

* every device's resource load within its capacity, and
* every pair's inter-partition bandwidth within the link capacity.

Violations are reported individually (device/link, load, capacity) so tools
and tests can assert on the exact failure, not just a boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fpga.resources import ResourceVector
from repro.fpga.system import MultiFPGASystem
from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.metrics import bandwidth_matrix, check_assignment
from repro.util.errors import ReproError

__all__ = ["Mapping", "MappingReport", "mapping_from_result"]


@dataclass(frozen=True)
class Violation:
    """One broken constraint."""

    kind: str  # "resource" | "bandwidth"
    where: str  # device name or "dev_i<->dev_j"
    load: float
    capacity: float

    @property
    def excess(self) -> float:
        return self.load - self.capacity

    def __str__(self) -> str:
        return (
            f"{self.kind} violation at {self.where}: "
            f"load {self.load:g} > capacity {self.capacity:g}"
        )


@dataclass
class MappingReport:
    """Outcome of :meth:`Mapping.validate`."""

    valid: bool
    violations: list[Violation] = field(default_factory=list)
    device_loads: list[ResourceVector] = field(default_factory=list)
    link_loads: dict[tuple[int, int], float] = field(default_factory=dict)

    def summary(self) -> str:
        if self.valid:
            return "mapping valid: all resource and bandwidth constraints met"
        lines = [f"mapping INVALID ({len(self.violations)} violations):"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


class Mapping:
    """Assignment of graph nodes (processes) to system device slots."""

    def __init__(
        self,
        graph: WGraph,
        assign: np.ndarray,
        system: MultiFPGASystem,
        node_resources: list[ResourceVector] | None = None,
        names: list[str] | None = None,
    ) -> None:
        self.graph = graph
        self.system = system
        self.assign = check_assignment(graph, assign, system.k)
        if node_resources is None:
            # paper model: node weight = scalar resource
            node_resources = [
                ResourceVector.scalar(float(w)) for w in graph.node_weights
            ]
        if len(node_resources) != graph.n:
            raise ReproError(
                f"expected {graph.n} node resources, got {len(node_resources)}"
            )
        self.node_resources = list(node_resources)
        if names is not None and len(names) != graph.n:
            raise ReproError(f"expected {graph.n} names, got {len(names)}")
        self.names = list(names) if names is not None else None

    # ------------------------------------------------------------------ #
    def device_load(self, slot: int) -> ResourceVector:
        load = ResourceVector.zero()
        for u in np.nonzero(self.assign == slot)[0]:
            load = load + self.node_resources[int(u)]
        return load

    def processes_on(self, slot: int) -> list[str]:
        nodes = np.nonzero(self.assign == slot)[0]
        if self.names is None:
            return [str(int(u)) for u in nodes]
        return [self.names[int(u)] for u in nodes]

    def validate(self) -> MappingReport:
        sys_ = self.system
        violations: list[Violation] = []
        device_loads = [self.device_load(c) for c in range(sys_.k)]
        for c, load in enumerate(device_loads):
            cap = sys_.devices[c].capacity
            if not load.fits_in(cap):
                violations.append(
                    Violation(
                        kind="resource",
                        where=sys_.devices[c].name,
                        load=load.total,
                        capacity=cap.total,
                    )
                )
        bw = bandwidth_matrix(self.graph, self.assign, sys_.k)
        link_loads: dict[tuple[int, int], float] = {}
        for i in range(sys_.k):
            for j in range(i + 1, sys_.k):
                load = float(bw[i, j])
                if load == 0.0:
                    continue
                link_loads[(i, j)] = load
                cap = sys_.link_capacity(i, j)
                if load > cap:
                    violations.append(
                        Violation(
                            kind="bandwidth",
                            where=(
                                f"{sys_.devices[i].name}<->{sys_.devices[j].name}"
                            ),
                            load=load,
                            capacity=cap,
                        )
                    )
        return MappingReport(
            valid=not violations,
            violations=violations,
            device_loads=device_loads,
            link_loads=link_loads,
        )

    @property
    def is_valid(self) -> bool:
        return self.validate().valid

    def __repr__(self) -> str:
        return (
            f"Mapping(n={self.graph.n} processes -> {self.system.k} FPGAs, "
            f"valid={self.is_valid})"
        )


def mapping_from_result(
    result: PartitionResult,
    graph: WGraph,
    system: MultiFPGASystem,
    names: list[str] | None = None,
) -> Mapping:
    """Bind a :class:`PartitionResult` to a system (partition c -> slot c)."""
    if result.k != system.k:
        raise ReproError(
            f"partition has k={result.k} but system has {system.k} devices"
        )
    return Mapping(graph, result.assign, system, names=names)
