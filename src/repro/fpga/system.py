"""Multi-FPGA system: devices plus the inter-FPGA interconnect.

The paper's platform is homogeneous and fully connected: every pair of
FPGAs shares a link of capacity ``Bmax``.  The model generalises to
heterogeneous devices and restricted topologies (ring/mesh/custom), where a
missing link means *no* direct traffic is allowed between that pair — the
validator treats absent links as zero-capacity.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.fpga.device import FPGADevice
from repro.fpga.resources import ResourceVector
from repro.util.errors import ReproError

__all__ = ["MultiFPGASystem"]


class MultiFPGASystem:
    """*k* FPGAs with pairwise link capacities.

    Parameters
    ----------
    devices:
        The FPGAs, in slot order (partition *c* maps to ``devices[c]``).
    bmax:
        Default pairwise link capacity (the paper's ``Bmax``).
    links:
        Optional explicit topology: iterable of ``(i, j)`` or
        ``(i, j, capacity)``.  When given, only listed pairs have links
        (capacity defaults to *bmax*); when omitted the system is
        all-to-all at *bmax*.
    """

    def __init__(
        self,
        devices: list[FPGADevice],
        bmax: float,
        links: Iterable[tuple] | None = None,
    ) -> None:
        if not devices:
            raise ReproError("a multi-FPGA system needs at least one device")
        if bmax < 0:
            raise ReproError(f"bmax must be >= 0, got {bmax}")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate device names: {names}")
        self.devices = list(devices)
        self.bmax = float(bmax)
        self._links: dict[tuple[int, int], float] | None = None
        if links is not None:
            self._links = {}
            for item in links:
                if len(item) == 2:
                    i, j = item
                    cap = bmax
                elif len(item) == 3:
                    i, j, cap = item
                else:
                    raise ReproError(f"bad link spec {item!r}")
                i, j = int(i), int(j)
                if i == j or not (0 <= i < len(devices) and 0 <= j < len(devices)):
                    raise ReproError(f"bad link endpoints ({i}, {j})")
                if cap < 0:
                    raise ReproError(f"negative link capacity on ({i}, {j})")
                self._links[(min(i, j), max(i, j))] = float(cap)

    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        return len(self.devices)

    @staticmethod
    def homogeneous(
        k: int, rmax: float, bmax: float, prefix: str = "fpga"
    ) -> "MultiFPGASystem":
        """The paper's platform: *k* identical FPGAs, all-to-all ``Bmax``."""
        if k < 1:
            raise ReproError(f"k must be >= 1, got {k}")
        devices = [
            FPGADevice(f"{prefix}{i}", ResourceVector.scalar(rmax))
            for i in range(k)
        ]
        return MultiFPGASystem(devices, bmax)

    @staticmethod
    def ring(k: int, rmax: float, bmax: float) -> "MultiFPGASystem":
        """Ring topology: device *i* links only to *i±1 (mod k)*."""
        if k < 2:
            raise ReproError("a ring needs at least 2 devices")
        devices = [
            FPGADevice(f"fpga{i}", ResourceVector.scalar(rmax)) for i in range(k)
        ]
        links = [(i, (i + 1) % k) for i in range(k)] if k > 2 else [(0, 1)]
        return MultiFPGASystem(devices, bmax, links=links)

    def link_capacity(self, i: int, j: int) -> float:
        """Capacity of the direct link between slots *i* and *j* (0 if none)."""
        if i == j:
            return float("inf")  # on-chip traffic is free (Section V)
        if not (0 <= i < self.k and 0 <= j < self.k):
            raise ReproError(f"bad device slots ({i}, {j})")
        if self._links is None:
            return self.bmax
        return self._links.get((min(i, j), max(i, j)), 0.0)

    def has_link(self, i: int, j: int) -> bool:
        return i != j and self.link_capacity(i, j) > 0

    def __repr__(self) -> str:
        topo = "all-to-all" if self._links is None else f"{len(self._links)} links"
        return f"MultiFPGASystem(k={self.k}, bmax={self.bmax:g}, {topo})"
