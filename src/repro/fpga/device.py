"""FPGA device model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.resources import ResourceVector
from repro.util.errors import ReproError

__all__ = ["FPGADevice", "KNOWN_DEVICES"]


@dataclass(frozen=True)
class FPGADevice:
    """One FPGA: a named resource capacity.

    ``capacity`` may be the paper's scalar model
    (``ResourceVector.scalar(Rmax)``) or a full vector.
    """

    name: str
    capacity: ResourceVector = field(
        default_factory=lambda: ResourceVector.scalar(1.0)
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("device name must be non-empty")
        if self.capacity.total <= 0:
            raise ReproError(f"device {self.name!r} has no capacity")

    def fits(self, load: ResourceVector) -> bool:
        return load.fits_in(self.capacity)


#: A few recognisable device envelopes for examples (coarse public figures).
KNOWN_DEVICES = {
    "xc7z020": FPGADevice(
        "xc7z020", ResourceVector(luts=53_200, ffs=106_400, brams=140, dsps=220)
    ),
    "xc7vx485t": FPGADevice(
        "xc7vx485t",
        ResourceVector(luts=303_600, ffs=607_200, brams=1_030, dsps=2_800),
    ),
    "xcku115": FPGADevice(
        "xcku115",
        ResourceVector(luts=663_360, ffs=1_326_720, brams=2_160, dsps=5_520),
    ),
}
