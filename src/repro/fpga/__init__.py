"""Multi-FPGA platform model (system S8 in DESIGN.md).

The paper's target: "between each FPGA involved in the system, only Bmax
data can be transferred each unit of time, and each FPGA has an amount of
resource Rmax" (Section I).  This package models that platform — resource
vectors, devices, inter-FPGA links — and validates mappings against it.
"""

from repro.fpga.device import FPGADevice
from repro.fpga.mapping import Mapping, MappingReport, mapping_from_result
from repro.fpga.resources import ResourceVector
from repro.fpga.system import MultiFPGASystem

__all__ = [
    "ResourceVector",
    "FPGADevice",
    "MultiFPGASystem",
    "Mapping",
    "MappingReport",
    "mapping_from_result",
]
