"""FPGA resource vectors.

The paper tracks a single resource ("only one resource is considered at
this time, for example LUTs") — :meth:`ResourceVector.scalar` covers that —
but real devices budget LUTs, flip-flops, BRAMs and DSPs independently, so
the vector form is supported throughout the platform model (a documented
extension, exercised by the multi-resource example and tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ReproError

__all__ = ["ResourceVector"]


@dataclass(frozen=True)
class ResourceVector:
    """Immutable (luts, ffs, brams, dsps) resource bundle."""

    luts: float = 0.0
    ffs: float = 0.0
    brams: float = 0.0
    dsps: float = 0.0

    FIELDS = ("luts", "ffs", "brams", "dsps")

    def __post_init__(self) -> None:
        for f in self.FIELDS:
            v = getattr(self, f)
            if v < 0:
                raise ReproError(f"resource {f} must be >= 0, got {v}")

    # -- constructors --------------------------------------------------- #
    @staticmethod
    def scalar(amount: float) -> "ResourceVector":
        """Single-resource (LUT) bundle, the paper's model."""
        return ResourceVector(luts=float(amount))

    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector()

    # -- algebra ---------------------------------------------------------- #
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            *(getattr(self, f) + getattr(other, f) for f in self.FIELDS)
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        vals = [getattr(self, f) - getattr(other, f) for f in self.FIELDS]
        if any(v < 0 for v in vals):
            raise ReproError(f"resource subtraction underflow: {self} - {other}")
        return ResourceVector(*vals)

    def scale(self, factor: float) -> "ResourceVector":
        if factor < 0:
            raise ReproError(f"scale factor must be >= 0, got {factor}")
        return ResourceVector(
            *(getattr(self, f) * factor for f in self.FIELDS)
        )

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """Component-wise ``<=``."""
        return all(
            getattr(self, f) <= getattr(capacity, f) for f in self.FIELDS
        )

    def headroom(self, capacity: "ResourceVector") -> float:
        """Smallest per-component slack (negative if any overflows)."""
        return min(
            getattr(capacity, f) - getattr(self, f) for f in self.FIELDS
        )

    def overflow(self, capacity: "ResourceVector") -> float:
        """Summed component-wise excess over *capacity* (0 when it fits)."""
        return sum(
            max(0.0, getattr(self, f) - getattr(capacity, f))
            for f in self.FIELDS
        )

    @property
    def total(self) -> float:
        return sum(getattr(self, f) for f in self.FIELDS)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.luts, self.ffs, self.brams, self.dsps)
