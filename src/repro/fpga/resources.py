"""FPGA resource vectors.

The paper tracks a single resource ("only one resource is considered at
this time, for example LUTs") — :meth:`ResourceVector.scalar` covers that —
but real devices budget LUTs, flip-flops, BRAMs and DSPs independently, so
the vector form is supported throughout the platform model (a documented
extension, exercised by the multi-resource example and tests).

:func:`resource_matrix` turns per-process bundles into the ``(n, R)``
weight matrix the vector-resource partitioner
(:mod:`repro.partition.multires`) consumes, and
:func:`random_device_matrix` synthesises a device-shaped one (smooth
LUT/FF columns, lumpy BRAMs, rare DSPs) for benchmarks, generators and
the pinned differential corpus.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ReproError

__all__ = ["ResourceVector", "resource_matrix", "random_device_matrix"]


@dataclass(frozen=True)
class ResourceVector:
    """Immutable (luts, ffs, brams, dsps) resource bundle."""

    luts: float = 0.0
    ffs: float = 0.0
    brams: float = 0.0
    dsps: float = 0.0

    FIELDS = ("luts", "ffs", "brams", "dsps")

    def __post_init__(self) -> None:
        for f in self.FIELDS:
            v = getattr(self, f)
            if v < 0:
                raise ReproError(f"resource {f} must be >= 0, got {v}")

    # -- constructors --------------------------------------------------- #
    @staticmethod
    def scalar(amount: float) -> "ResourceVector":
        """Single-resource (LUT) bundle, the paper's model."""
        return ResourceVector(luts=float(amount))

    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector()

    # -- algebra ---------------------------------------------------------- #
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            *(getattr(self, f) + getattr(other, f) for f in self.FIELDS)
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        vals = [getattr(self, f) - getattr(other, f) for f in self.FIELDS]
        if any(v < 0 for v in vals):
            raise ReproError(f"resource subtraction underflow: {self} - {other}")
        return ResourceVector(*vals)

    def scale(self, factor: float) -> "ResourceVector":
        if factor < 0:
            raise ReproError(f"scale factor must be >= 0, got {factor}")
        return ResourceVector(
            *(getattr(self, f) * factor for f in self.FIELDS)
        )

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """Component-wise ``<=``."""
        return all(
            getattr(self, f) <= getattr(capacity, f) for f in self.FIELDS
        )

    def headroom(self, capacity: "ResourceVector") -> float:
        """Smallest per-component slack (negative if any overflows)."""
        return min(
            getattr(capacity, f) - getattr(self, f) for f in self.FIELDS
        )

    def overflow(self, capacity: "ResourceVector") -> float:
        """Summed component-wise excess over *capacity* (0 when it fits)."""
        return sum(
            max(0.0, getattr(self, f) - getattr(capacity, f))
            for f in self.FIELDS
        )

    @property
    def total(self) -> float:
        return sum(getattr(self, f) for f in self.FIELDS)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.luts, self.ffs, self.brams, self.dsps)


def resource_matrix(
    vectors: Iterable["ResourceVector"] | Mapping[str, "ResourceVector"],
    names: Sequence[str] | None = None,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Stack per-process :class:`ResourceVector` bundles into ``(W, names)``.

    *vectors* is either a sequence (rows in node order) or a mapping from
    process name to bundle — the mapping form needs *names*, the node →
    process-name list the mapping layer already carries, and every name
    must be present.  Returns the ``(n, 4)`` float matrix in
    :attr:`ResourceVector.FIELDS` column order plus the column names —
    exactly what :func:`repro.partition.multires.mr_gp_partition` and
    :class:`repro.partition.vector_state.VectorGraph` consume.
    """
    if isinstance(vectors, Mapping):
        if names is None:
            raise ReproError(
                "a mapping of ResourceVectors needs the node-order name list"
            )
        missing = [n for n in names if n not in vectors]
        if missing:
            raise ReproError(
                f"no resource vector for process(es): {', '.join(missing)}"
            )
        rows = [vectors[n] for n in names]
    else:
        rows = list(vectors)
    for rv in rows:
        if not isinstance(rv, ResourceVector):
            raise ReproError(
                f"expected ResourceVector entries, got {type(rv).__name__}"
            )
    w = np.array([rv.as_tuple() for rv in rows], dtype=np.float64)
    w = w.reshape(len(rows), len(ResourceVector.FIELDS))
    return w, ResourceVector.FIELDS


def random_device_matrix(
    n: int, seed=None, n_resources: int = 4
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Synthesise a device-shaped ``(n, n_resources)`` weight matrix.

    Column distributions mirror how real designs consume a device —
    smooth LUT and FF counts, lumpy BRAM usage (most processes none, a
    few several), rare DSP usage — so benchmarks and the differential
    corpus exercise the regime the vector partitioner exists for.
    ``n_resources`` (1–4) truncates the column set in
    :attr:`ResourceVector.FIELDS` order; integer-valued entries keep the
    pinned float comparisons exact.
    """
    if n < 0:
        raise ReproError(f"n must be >= 0, got {n}")
    if not 1 <= n_resources <= len(ResourceVector.FIELDS):
        raise ReproError(
            f"n_resources must be in 1..{len(ResourceVector.FIELDS)}, "
            f"got {n_resources}"
        )
    rng = np.random.default_rng(seed)
    cols = [
        rng.integers(20, 80, n).astype(np.float64),          # luts: smooth
        rng.integers(30, 120, n).astype(np.float64),         # ffs: smooth
        rng.choice([0, 0, 0, 4, 8, 12], n).astype(np.float64),  # brams: lumpy
        rng.choice([0, 0, 0, 1, 2, 6], n).astype(np.float64),   # dsps: rare
    ]
    w = np.stack(cols[:n_resources], axis=1)
    return w, ResourceVector.FIELDS[:n_resources]
