"""Visualisation (system S9 in DESIGN.md).

Regenerates the paper's Figures 2-13 without matplotlib: a deterministic
force-directed layout (:mod:`repro.viz.layout`), Graphviz DOT export
(:mod:`repro.viz.dot`), a minimal standalone SVG writer
(:mod:`repro.viz.svg`) and an ASCII rendering (:mod:`repro.viz.ascii_art`)
for terminals and logs.

Figure conventions follow the paper: node radius proportional to resource
weight, edge labels carrying bandwidth weights, one colour per partition.
"""

from repro.viz.ascii_art import render_ascii
from repro.viz.dot import to_dot
from repro.viz.layout import force_layout
from repro.viz.svg import render_svg

__all__ = ["force_layout", "to_dot", "render_svg", "render_ascii"]
# repro.viz.html_report is imported lazily (it pulls in the bench harness)
