"""Deterministic force-directed graph layout (Fruchterman-Reingold).

Pure-numpy implementation: O(n^2) per iteration, ample for the paper-sized
figures; seeded initial placement makes the generated figures byte-stable
across runs (asserted by the artefact tests).
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.util.rng import as_rng

__all__ = ["force_layout"]


def force_layout(
    g: WGraph,
    iterations: int = 150,
    seed=0,
    weight_attraction: bool = True,
) -> np.ndarray:
    """Coordinates in the unit square, shape ``(n, 2)``.

    *weight_attraction* scales attraction by edge weight so heavy channels
    pull their endpoints together — partition structure becomes visible, as
    in the paper's weighted drawings (Figures 3/7/11).
    """
    n = g.n
    if n == 0:
        return np.zeros((0, 2))
    if n == 1:
        return np.array([[0.5, 0.5]])
    rng = as_rng(seed)
    pos = rng.random((n, 2))
    k = np.sqrt(1.0 / n)  # ideal pairwise distance
    eu, ev, ew = g.edge_array
    if len(ew) and weight_attraction:
        w_norm = ew / ew.max()
    else:
        w_norm = np.ones_like(ew)
    temperature = 0.1
    cooling = temperature / max(iterations, 1)

    for _ in range(iterations):
        delta = pos[:, None, :] - pos[None, :, :]  # (n, n, 2)
        dist = np.sqrt((delta**2).sum(axis=2))
        np.fill_diagonal(dist, 1.0)
        # repulsion: k^2 / d
        rep = (k * k) / dist
        disp = (delta / dist[:, :, None]) * rep[:, :, None]
        force = disp.sum(axis=1)
        # attraction along edges: d^2 / k, scaled by weight
        if len(ew):
            dvec = pos[eu] - pos[ev]
            d = np.sqrt((dvec**2).sum(axis=1))
            d[d == 0] = 1e-9
            att = (d * d / k) * w_norm
            f = (dvec / d[:, None]) * att[:, None]
            np.add.at(force, eu, -f)
            np.add.at(force, ev, f)
        flen = np.sqrt((force**2).sum(axis=1))
        flen[flen == 0] = 1e-9
        step = np.minimum(flen, temperature)
        pos += (force / flen[:, None]) * step[:, None]
        temperature = max(temperature - cooling, 1e-3)

    # normalise into [0.05, 0.95]^2
    mins = pos.min(axis=0)
    spans = pos.max(axis=0) - mins
    spans[spans == 0] = 1.0
    return 0.05 + 0.9 * (pos - mins) / spans
