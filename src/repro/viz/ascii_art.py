"""ASCII rendering of partitioned process networks.

Terminal/log-friendly counterpart of the paper's figures: per-partition
member lists with resource totals, the pairwise bandwidth matrix, and the
crossing-edge list — everything the figures convey, as text.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.metrics import (
    ConstraintSpec,
    bandwidth_matrix,
    check_assignment,
    part_weights,
)
from repro.util.tables import format_table

__all__ = ["render_ascii"]


def render_ascii(
    g: WGraph,
    assign: np.ndarray | None = None,
    k: int | None = None,
    names: list[str] | None = None,
    constraints: ConstraintSpec | None = None,
    title: str | None = None,
) -> str:
    """Text rendering; with *assign*, includes the partition breakdown."""
    label = (lambda u: names[u]) if names else (lambda u: f"p{u}")
    out: list[str] = []
    if title:
        out += [title, "=" * len(title)]
    out.append(
        f"graph: {g.n} nodes, {g.m} edges, "
        f"total resources {g.total_node_weight:g}, "
        f"total bandwidth {g.total_edge_weight:g}"
    )
    if assign is None:
        rows = [
            [label(u), f"{g.node_weights[u]:g}",
             " ".join(f"{label(int(v))}:{w:g}"
                      for v, w in zip(*g.neighbor_weights(u)))]
            for u in range(g.n)
        ]
        out.append(format_table(["node", "res", "channels"], rows))
        return "\n".join(out) + "\n"

    if k is None:
        k = int(np.max(assign)) + 1 if g.n else 1
    a = check_assignment(g, assign, k)
    weights = part_weights(g, a, k)
    bw = bandwidth_matrix(g, a, k)
    rmax = constraints.rmax if constraints else float("inf")
    bmax = constraints.bmax if constraints else float("inf")

    rows = []
    for c in range(k):
        members = " ".join(label(int(u)) for u in np.nonzero(a == c)[0])
        flag = " (!)" if weights[c] > rmax else ""
        rows.append([f"P{c}", f"{weights[c]:g}{flag}", members])
    out.append(format_table(["part", "resources", "processes"], rows))

    header = ["bw"] + [f"P{c}" for c in range(k)]
    mat_rows = []
    for c in range(k):
        row = [f"P{c}"]
        for d in range(k):
            if c == d:
                row.append("-")
            else:
                flag = "!" if bw[c, d] > bmax else ""
                row.append(f"{bw[c, d]:g}{flag}")
        mat_rows.append(row)
    out.append(format_table(header, mat_rows))

    crossing = [
        f"{label(u)}--{label(v)} ({w:g})"
        for u, v, w in g.edges()
        if a[u] != a[v]
    ]
    out.append(f"crossing edges ({len(crossing)}): " + ", ".join(crossing))
    if constraints:
        ok_r = bool(np.all(weights <= rmax))
        ok_b = bool(bw.max() <= bmax) if k > 1 else True
        out.append(
            f"constraints: Rmax={rmax:g} {'met' if ok_r else 'VIOLATED'}, "
            f"Bmax={bmax:g} {'met' if ok_b else 'VIOLATED'}"
        )
    return "\n".join(out) + "\n"
