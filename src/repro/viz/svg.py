"""Minimal standalone SVG renderer (no external dependencies).

Produces self-contained ``.svg`` figures in the paper's style from a graph,
an optional partition assignment, and layout coordinates.  Used by the
figure-regeneration benchmark to emit ``artifacts/fig*.svg``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.metrics import check_assignment
from repro.util.errors import ReproError
from repro.viz.dot import PALETTE
from repro.viz.layout import force_layout

__all__ = ["render_svg"]


def render_svg(
    g: WGraph,
    assign: np.ndarray | None = None,
    k: int | None = None,
    names: list[str] | None = None,
    pos: np.ndarray | None = None,
    size: int = 640,
    title: str | None = None,
    seed=0,
) -> str:
    """Render *g* to an SVG string.

    Node radius is proportional to resource weight; with *assign*, nodes
    are filled per partition and crossing edges dashed.
    """
    if names is not None and len(names) != g.n:
        raise ReproError(f"expected {g.n} names, got {len(names)}")
    if pos is None:
        pos = force_layout(g, seed=seed)
    pos = np.asarray(pos, dtype=np.float64)
    if pos.shape != (g.n, 2):
        raise ReproError(f"layout has shape {pos.shape}, expected ({g.n}, 2)")
    if assign is not None:
        if k is None:
            k = int(np.max(assign)) + 1 if g.n else 1
        assign = check_assignment(g, assign, k)

    margin = 40
    span = size - 2 * margin

    def xy(u: int) -> tuple[float, float]:
        return (
            margin + float(pos[u, 0]) * span,
            margin + float(pos[u, 1]) * span,
        )

    w_max = float(g.node_weights.max()) if g.n else 1.0

    def radius(u: int) -> float:
        if w_max <= 0:
            return 12.0
        return 10.0 + 18.0 * float(g.node_weights[u]) / w_max

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{size / 2}" y="20" text-anchor="middle" '
            f'font-family="Helvetica" font-size="14">{title}</text>'
        )
    # edges under nodes
    for u, v, w in g.edges():
        x1, y1 = xy(u)
        x2, y2 = xy(v)
        dashed = assign is not None and assign[u] != assign[v]
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        out.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="#888" stroke-width="1.5"{dash}/>'
        )
        mx, my = (x1 + x2) / 2, (y1 + y2) / 2
        out.append(
            f'<text x="{mx:.1f}" y="{my:.1f}" font-family="Helvetica" '
            f'font-size="10" fill="#444">{w:g}</text>'
        )
    for u in range(g.n):
        x, y = xy(u)
        r = radius(u)
        fill = (
            PALETTE[int(assign[u]) % len(PALETTE)]
            if assign is not None
            else "#d9d9d9"
        )
        out.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{fill}" '
            f'stroke="#333" stroke-width="1"/>'
        )
        name = names[u] if names else f"p{u}"
        out.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="middle" dy="3" '
            f'font-family="Helvetica" font-size="11">{name}</text>'
        )
        out.append(
            f'<text x="{x:.1f}" y="{y + r + 11:.1f}" text-anchor="middle" '
            f'font-family="Helvetica" font-size="9" fill="#555">'
            f"{g.node_weights[u]:g}</text>"
        )
    out.append("</svg>")
    return "\n".join(out) + "\n"
