"""Graphviz DOT export in the paper's figure style.

Conventions (Figures 2-13): node radius proportional to resource weight,
node label ``name (weight)``, edge label = bandwidth weight, one fill colour
per partition, dashed edges crossing partitions.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.metrics import check_assignment
from repro.util.errors import ReproError

__all__ = ["to_dot", "PALETTE"]

#: partition fill colours (paper uses 4 clusters; cycle beyond that)
PALETTE = [
    "#e6550d",
    "#3182bd",
    "#31a354",
    "#756bb1",
    "#636363",
    "#fdae6b",
    "#9ecae1",
    "#a1d99b",
]


def _radius(weight: float, w_max: float) -> float:
    """Node radius in inches, proportional to weight (min floor)."""
    if w_max <= 0:
        return 0.3
    return 0.25 + 0.55 * (weight / w_max)


def to_dot(
    g: WGraph,
    assign: np.ndarray | None = None,
    k: int | None = None,
    names: list[str] | None = None,
    title: str | None = None,
    show_weights: bool = True,
) -> str:
    """Render *g* as an undirected DOT graph.

    With *assign*, nodes are coloured per partition and cross-partition
    edges drawn dashed — the paper's partitioned views (Figures 4/5, 8/9,
    12/13).  Without it, the plain weighted view (Figures 2/3, 6/7, 10/11).
    """
    if names is not None and len(names) != g.n:
        raise ReproError(f"expected {g.n} names, got {len(names)}")
    if assign is not None:
        if k is None:
            k = int(np.max(assign)) + 1 if g.n else 1
        assign = check_assignment(g, assign, k)
    w_max = float(g.node_weights.max()) if g.n else 1.0
    lines = ["graph ppn {"]
    if title:
        lines.append(f'  label="{title}";')
        lines.append("  labelloc=t;")
    lines.append("  layout=neato;")
    lines.append("  overlap=false;")
    lines.append('  node [shape=circle, style=filled, fontname="Helvetica"];')
    for u in range(g.n):
        name = names[u] if names else f"p{u}"
        w = float(g.node_weights[u])
        r = _radius(w, w_max)
        label = f"{name}\\n({w:g})" if show_weights else name
        colour = (
            PALETTE[int(assign[u]) % len(PALETTE)]
            if assign is not None
            else "#cccccc"
        )
        lines.append(
            f'  n{u} [label="{label}", width={r:.2f}, height={r:.2f}, '
            f'fillcolor="{colour}"];'
        )
    for u, v, w in g.edges():
        attrs = []
        if show_weights:
            attrs.append(f'label="{w:g}"')
        penwidth = 1.0 + 2.0 * (
            w / g.total_edge_weight * g.m if g.total_edge_weight else 0
        )
        attrs.append(f"penwidth={min(penwidth, 4.0):.2f}")
        if assign is not None and assign[u] != assign[v]:
            attrs.append("style=dashed")
        lines.append(f"  n{u} -- n{v} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines) + "\n"
