"""Self-contained HTML experiment reports.

Bundles one experiment's four figure views (inline SVG), the paper-format
table and the constraint verdicts into a single dependency-free ``.html``
file — the artefact a reviewer actually opens.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.bench.experiments import ExperimentOutcome, run_paper_experiment
from repro.bench.figures import figure_artifacts
from repro.core.report import comparison_report

__all__ = ["experiment_html", "write_experiment_report"]

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 1100px; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto;
      border-left: 3px solid #3182bd; }
.figures { display: grid; grid-template-columns: 1fr 1fr; gap: 1em; }
.figure { border: 1px solid #ddd; padding: 0.5em; }
.figure svg { width: 100%; height: auto; }
.caption { font-size: 0.85em; color: #555; margin-top: 0.4em; }
.verdict-ok { color: #31a354; font-weight: bold; }
.verdict-bad { color: #e6550d; font-weight: bold; }
"""


def experiment_html(experiment: int) -> str:
    """Render experiment 1, 2 or 3 as a standalone HTML document."""
    outcome: ExperimentOutcome = run_paper_experiment(experiment)
    arts = figure_artifacts(experiment)
    report = comparison_report(
        outcome.results,
        outcome.constraints,
        title=outcome.spec.name,
    )
    checks = outcome.reproduces_paper_shape()

    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(outcome.spec.name)} — reproduction</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(outcome.spec.name)} "
        f"(n={outcome.graph.n}, m={outcome.graph.m}, K={outcome.spec.k}, "
        f"Bmax={outcome.spec.bmax:g}, Rmax={outcome.spec.rmax:g})</h1>",
        "<h2>Measured table (paper format)</h2>",
        f"<pre>{html.escape(report)}</pre>",
        "<h2>Paper reported</h2>",
        "<pre>",
    ]
    for row in outcome.paper:
        parts.append(html.escape(
            f"{row.tool:6s} cut={row.cut:g} time={row.time_s:g}s "
            f"max_res={row.max_resource:g} max_bw={row.max_bandwidth:g}"
        ))
    parts.append("</pre>")
    parts.append("<h2>Shape checks</h2><ul>")
    for name, ok in checks.items():
        cls = "verdict-ok" if ok else "verdict-bad"
        word = "holds" if ok else "FAILS"
        parts.append(
            f"<li><span class='{cls}'>{word}</span> — {html.escape(name)}</li>"
        )
    parts.append("</ul>")
    parts.append("<h2>Figures</h2><div class='figures'>")
    for art in arts:
        parts.append("<div class='figure'>")
        parts.append(art.svg)  # standalone <svg> element, inlined as-is
        parts.append(
            f"<div class='caption'>Fig. {art.figure} — "
            f"{html.escape(art.name.replace('_', ' '))}</div></div>"
        )
    parts.append("</div></body></html>")
    return "\n".join(parts)


def write_experiment_report(
    out_dir: str | Path, experiments: tuple[int, ...] = (1, 2, 3)
) -> list[Path]:
    """Write ``experimentN.html`` per experiment; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for exp in experiments:
        path = out / f"experiment{exp}.html"
        path.write_text(experiment_html(exp))
        paths.append(path)
    return paths
