"""Synthetic process-network generators.

The paper evaluates on synthetically generated process networks: each node
carries a resource weight (``R_p``, e.g. LUTs), each channel a bandwidth
weight.  Three families are provided:

``random_connected_graph``
    Uniform connected graph — spanning tree plus random extra edges.

``random_process_network``
    PN-shaped graph: a pipeline backbone (processes derived from a loop nest
    form chains) plus local skip edges and a few long-range feedback edges —
    the topology the polyhedral front-end produces in practice.

``planted_partition_network``
    A graph with a known feasible K-partition baked in (intra-group edges
    heavy, inter-group edges trimmed under ``Bmax``) so constraint-aware
    partitioners have a certificate of feasibility.

``paper_graph``
    The three 12-node experiment graphs (Sections V.A-V.C).  The paper does
    not publish exact edge lists, so these are deterministic reconstructions
    matching the published envelope: node/edge counts, weight regimes and
    constraint tightness (see DESIGN.md, "Figure-weight provenance").

``multicast_network``
    Multicast-heavy synthetic PN as a *hypergraph*: a pipeline backbone of
    2-pin nets plus heavy broadcast nets with a parametrised fan-out —
    the workload family where the (λ−1) connectivity model and the 2-pin
    edge-cut model diverge most (see ``docs/hypergraph.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.wgraph import WGraph
from repro.util.errors import GraphError
from repro.util.rng import as_rng

__all__ = [
    "random_connected_graph",
    "random_process_network",
    "planted_partition_network",
    "multicast_network",
    "paper_graph",
    "PaperExperimentSpec",
    "PAPER_SPECS",
]


def _spanning_tree_edges(n: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Random spanning tree via random attachment (uniform random recursive tree)."""
    order = rng.permutation(n)
    edges = []
    for i in range(1, n):
        j = int(rng.integers(0, i))
        edges.append((int(order[j]), int(order[i])))
    return edges


def _fill_edges(
    n: int,
    m: int,
    base: list[tuple[int, int]],
    rng: np.random.Generator,
    prefer: list[tuple[int, int]] | None = None,
) -> list[tuple[int, int]]:
    """Extend *base* to exactly *m* distinct edges.

    Candidates from *prefer* are used first (shuffled), then uniform pairs.
    """
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise GraphError(f"cannot place {m} edges on {n} nodes (max {max_m})")
    if m < len(base):
        raise GraphError(f"need at least {len(base)} edges, requested {m}")
    chosen = {(min(u, v), max(u, v)) for u, v in base}
    pool = list(prefer or [])
    rng.shuffle(pool)
    for u, v in pool:
        if len(chosen) >= m:
            break
        key = (min(u, v), max(u, v))
        if u != v and key not in chosen:
            chosen.add(key)
    while len(chosen) < m:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        chosen.add((min(u, v), max(u, v)))
    return sorted(chosen)


def _integer_weights_with_sum(
    count: int,
    low: int,
    high: int,
    total: int | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Integer weights in ``[low, high]`` whose sum is adjusted towards *total*.

    Draw uniformly, then nudge random entries by +/-1 (staying inside the
    bounds) until the sum matches.  If *total* is unreachable within the
    bounds it is clamped to the feasible range.
    """
    if low > high:
        raise GraphError(f"invalid weight range [{low}, {high}]")
    w = rng.integers(low, high + 1, size=count).astype(np.int64)
    if total is None:
        return w
    total = int(np.clip(total, low * count, high * count))
    diff = total - int(w.sum())
    guard = 0
    while diff != 0:
        i = int(rng.integers(0, count))
        step = 1 if diff > 0 else -1
        if low <= w[i] + step <= high:
            w[i] += step
            diff -= step
        guard += 1
        if guard > 100_000:  # pragma: no cover - safety net
            raise GraphError("weight adjustment did not converge")
    return w


def random_connected_graph(
    n: int,
    m: int,
    seed=None,
    node_weight_range: tuple[int, int] = (1, 1),
    edge_weight_range: tuple[int, int] = (1, 1),
    total_node_weight: int | None = None,
) -> WGraph:
    """Uniform connected graph with *n* nodes and exactly *m* edges."""
    if n <= 0:
        raise GraphError("need at least one node")
    if m < n - 1:
        raise GraphError(f"{m} edges cannot connect {n} nodes")
    rng = as_rng(seed)
    pairs = _fill_edges(n, m, _spanning_tree_edges(n, rng), rng)
    ew = _integer_weights_with_sum(
        len(pairs), edge_weight_range[0], edge_weight_range[1], None, rng
    )
    nw = _integer_weights_with_sum(
        n, node_weight_range[0], node_weight_range[1], total_node_weight, rng
    )
    edges = [(u, v, float(w)) for (u, v), w in zip(pairs, ew)]
    return WGraph(n, edges, node_weights=nw.astype(np.float64))


def random_process_network(
    n: int,
    m: int,
    seed=None,
    node_weight_range: tuple[int, int] = (10, 60),
    edge_weight_range: tuple[int, int] = (1, 8),
    total_node_weight: int | None = None,
    locality: float = 0.7,
) -> WGraph:
    """PN-shaped connected graph: pipeline backbone + local skips + feedback.

    *locality* is the fraction of extra edges drawn with |u-v| small (skip
    distance 2 or 3 along the pipeline order), modelling the neighbour-coupled
    channel structure polyhedral process networks exhibit.
    """
    if n < 2:
        raise GraphError("a process network needs at least two processes")
    if not 0.0 <= locality <= 1.0:
        raise GraphError(f"locality must be in [0, 1], got {locality}")
    rng = as_rng(seed)
    backbone = [(i, i + 1) for i in range(n - 1)]
    local = [(i, i + d) for d in (2, 3) for i in range(n - d)]
    n_extra = max(m - len(backbone), 0)
    n_local = int(round(locality * n_extra))
    rng.shuffle(local)
    prefer = local[:n_local]
    pairs = _fill_edges(n, m, backbone, rng, prefer=prefer)
    ew = _integer_weights_with_sum(
        len(pairs), edge_weight_range[0], edge_weight_range[1], None, rng
    )
    nw = _integer_weights_with_sum(
        n, node_weight_range[0], node_weight_range[1], total_node_weight, rng
    )
    edges = [(u, v, float(w)) for (u, v), w in zip(pairs, ew)]
    return WGraph(n, edges, node_weights=nw.astype(np.float64))


def planted_partition_network(
    n: int,
    k: int,
    rmax: float,
    bmax: float,
    seed=None,
    fill: float = 0.9,
    intra_edge_weight: tuple[int, int] = (3, 9),
    inter_edge_weight: tuple[int, int] = (1, 3),
    extra_intra: int = 2,
) -> tuple[WGraph, np.ndarray]:
    """Graph with a planted feasible K-partition.

    Nodes are split into *k* groups of near-equal size; each group's node
    weights sum to ``fill * rmax``; each group is internally connected
    (random tree + *extra_intra* extra edges, heavy weights); consecutive
    groups are joined by light edges whose per-pair totals stay ``<= bmax``.

    Returns the graph and the planted assignment array (certificate).
    """
    if k < 2 or n < 2 * k:
        raise GraphError(f"need n >= 2k, got n={n}, k={k}")
    if not 0 < fill <= 1:
        raise GraphError(f"fill must be in (0, 1], got {fill}")
    rng = as_rng(seed)
    assign = np.array([i % k for i in range(n)], dtype=np.int64)
    rng.shuffle(assign)
    groups = [np.nonzero(assign == c)[0] for c in range(k)]

    node_weights = np.zeros(n, dtype=np.float64)
    for g_nodes in groups:
        target = int(fill * rmax)
        size = len(g_nodes)
        lo = max(1, target // (2 * size))
        hi = max(lo + 1, (2 * target) // size)
        w = _integer_weights_with_sum(size, lo, hi, target, rng)
        node_weights[g_nodes] = w

    edges: list[tuple[int, int, float]] = []
    for g_nodes in groups:
        ids = g_nodes.tolist()
        rng.shuffle(ids)
        for i in range(1, len(ids)):
            j = int(rng.integers(0, i))
            w = int(rng.integers(intra_edge_weight[0], intra_edge_weight[1] + 1))
            edges.append((ids[j], ids[i], float(w)))
        placed = {(min(a, b), max(a, b)) for a, b, _ in edges}
        tries = 0
        added = 0
        while added < extra_intra and tries < 50:
            tries += 1
            a, b = rng.choice(ids, size=2, replace=False)
            key = (min(int(a), int(b)), max(int(a), int(b)))
            if key in placed:
                continue
            placed.add(key)
            w = int(rng.integers(intra_edge_weight[0], intra_edge_weight[1] + 1))
            edges.append((key[0], key[1], float(w)))
            added += 1

    # ring of light inter-group edges, respecting bmax per pair
    for c in range(k):
        d = (c + 1) % k
        budget = bmax
        pair_edges = 0
        while budget >= inter_edge_weight[0] and pair_edges < 3:
            u = int(rng.choice(groups[c]))
            v = int(rng.choice(groups[d]))
            w = int(
                rng.integers(
                    inter_edge_weight[0],
                    min(inter_edge_weight[1], int(budget)) + 1,
                )
            )
            edges.append((u, v, float(w)))
            budget -= w
            pair_edges += 1

    return WGraph(n, edges, node_weights=node_weights), assign


def multicast_network(
    n: int,
    seed=None,
    fanout: int = 4,
    n_broadcasts: int | None = None,
    node_weight_range: tuple[int, int] = (10, 60),
    chain_weight_range: tuple[int, int] = (1, 4),
    broadcast_weight_range: tuple[int, int] = (8, 24),
    total_node_weight: int | None = None,
):
    """Multicast-heavy process network as an :class:`~repro.hypergraph.hgraph.HGraph`.

    A pipeline backbone of ``n - 1`` light 2-pin nets carries streaming
    traffic; on top, *n_broadcasts* (default ``max(2, n // 6)``) heavy
    broadcast nets each connect a random producer (the net's root) to
    *fanout* distinct consumers — the pivot-broadcast / tap-fan-out shape
    the polyhedral front-end produces for LU and FIR-like kernels.

    Deterministic for a given *seed*.  Broadcast fan-out is clamped to
    ``n - 1`` consumers.
    """
    from repro.hypergraph.hgraph import HGraph  # local: avoids import cycle

    if n < 3:
        raise GraphError("a multicast network needs at least three processes")
    if fanout < 2:
        raise GraphError(f"fanout must be >= 2, got {fanout}")
    rng = as_rng(seed)
    if n_broadcasts is None:
        n_broadcasts = max(2, n // 6)
    fanout = min(fanout, n - 1)

    nets: list[tuple[list[int], float]] = []
    chain_w = _integer_weights_with_sum(
        n - 1, chain_weight_range[0], chain_weight_range[1], None, rng
    )
    for i in range(n - 1):
        nets.append(([i, i + 1], float(chain_w[i])))
    bcast_w = _integer_weights_with_sum(
        n_broadcasts, broadcast_weight_range[0], broadcast_weight_range[1],
        None, rng,
    )
    for b in range(n_broadcasts):
        root = int(rng.integers(0, n))
        others = np.setdiff1d(np.arange(n), [root])
        consumers = rng.choice(others, size=fanout, replace=False)
        nets.append(([root] + sorted(int(c) for c in consumers),
                     float(bcast_w[b])))
    nw = _integer_weights_with_sum(
        n, node_weight_range[0], node_weight_range[1], total_node_weight, rng
    )
    return HGraph(n, nets, node_weights=nw.astype(np.float64))


@dataclass(frozen=True)
class PaperExperimentSpec:
    """Published envelope of one paper experiment (Section V)."""

    name: str
    n_nodes: int
    n_edges: int
    k: int
    bmax: float
    rmax: float
    node_weight_range: tuple[int, int]
    edge_weight_range: tuple[int, int]
    total_node_weight: int
    seed: int
    locality: float = 0.7


#: Deterministic reconstructions of the three experiment graphs.  Weight
#: regimes are derived from the published tables (see DESIGN.md): total node
#: weight sits just under K*Rmax so the resource constraint is tight, and
#: edge weights make the published Bmax similarly tight.  Seeds were selected
#: by the calibration sweep in ``benchmarks/calibrate_paper_graphs.py`` so the
#: reproduction exhibits the published qualitative behaviour.
PAPER_SPECS: dict[int, PaperExperimentSpec] = {
    1: PaperExperimentSpec(
        name="EXPERIMENT I",
        n_nodes=12,
        n_edges=33,
        k=4,
        bmax=16.0,
        rmax=165.0,
        node_weight_range=(25, 90),
        edge_weight_range=(1, 5),
        total_node_weight=620,
        seed=20150417,
    ),
    2: PaperExperimentSpec(
        name="EXPERIMENT II",
        n_nodes=12,
        n_edges=30,
        k=4,
        bmax=25.0,
        rmax=130.0,
        node_weight_range=(20, 75),
        edge_weight_range=(1, 7),
        total_node_weight=490,
        seed=8,
    ),
    3: PaperExperimentSpec(
        name="EXPERIMENT III",
        n_nodes=12,
        n_edges=32,
        k=4,
        bmax=20.0,
        rmax=78.0,
        node_weight_range=(20, 30),
        edge_weight_range=(1, 8),
        total_node_weight=298,
        seed=29,
        locality=0.85,
    ),
}


def paper_graph(experiment: int) -> tuple[WGraph, PaperExperimentSpec]:
    """Deterministic reconstruction of paper experiment graph 1, 2 or 3.

    Returns the graph and its :class:`PaperExperimentSpec` (constraints and
    provenance).  Raises :class:`GraphError` for unknown experiment ids.
    """
    try:
        spec = PAPER_SPECS[experiment]
    except KeyError:
        raise GraphError(
            f"unknown paper experiment {experiment!r}; valid ids: 1, 2, 3"
        ) from None
    g = random_process_network(
        spec.n_nodes,
        spec.n_edges,
        seed=spec.seed,
        node_weight_range=spec.node_weight_range,
        edge_weight_range=spec.edge_weight_range,
        total_node_weight=spec.total_node_weight,
        locality=spec.locality,
    )
    return g, spec
