"""Incidence-matrix representation and text round-trip.

The paper feeds its tools with graphs "represented as incidence matrices ...
given as inputs to MATLAB" (Section V).  We reproduce that interchange format:
an ``n x m`` matrix ``B`` where column *j* has two non-zero entries, equal to
the weight of edge *j*, at the rows of its two endpoints.  Node weights travel
separately (MATLAB-side they were a companion vector).

``parse_incidence_text`` accepts the whitespace-separated dump MATLAB's
``dlmwrite``/``save -ascii`` produce.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.util.errors import GraphError

__all__ = [
    "incidence_matrix",
    "from_incidence_matrix",
    "render_incidence_text",
    "parse_incidence_text",
]


def incidence_matrix(g: WGraph) -> np.ndarray:
    """Weighted node-edge incidence matrix, shape ``(n, m)``.

    Column *j* holds the weight of edge *j* at both endpoint rows; edge order
    is the graph's canonical (sorted) order.  Zero-weight edges cannot be
    represented (their column would be all-zero) and are rejected.
    """
    eu, ev, ew = g.edge_array
    if np.any(ew == 0):
        raise GraphError(
            "zero-weight edges are unrepresentable in a weighted incidence "
            "matrix; use the JSON format instead"
        )
    b = np.zeros((g.n, g.m), dtype=np.float64)
    b[eu, np.arange(g.m)] = ew
    b[ev, np.arange(g.m)] = ew
    return b


def from_incidence_matrix(
    b: np.ndarray, node_weights=None
) -> WGraph:
    """Rebuild a :class:`WGraph` from a weighted incidence matrix.

    Each column must contain exactly two equal positive entries.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2:
        raise GraphError(f"incidence matrix must be 2-D, got shape {b.shape}")
    n, m = b.shape
    edges = []
    for j in range(m):
        rows = np.nonzero(b[:, j])[0]
        if len(rows) != 2:
            raise GraphError(
                f"incidence column {j} has {len(rows)} non-zeros, expected 2"
            )
        u, v = int(rows[0]), int(rows[1])
        wu, wv = float(b[u, j]), float(b[v, j])
        if wu != wv:
            raise GraphError(
                f"incidence column {j} endpoint weights differ: {wu} vs {wv}"
            )
        edges.append((u, v, wu))
    return WGraph(n, edges, node_weights=node_weights)


def render_incidence_text(g: WGraph, include_node_weights: bool = True) -> str:
    """Serialise as MATLAB-style ASCII: node count, node-weight row
    (optional), then B.  Weights use full ``repr`` precision so the
    round-trip is exact."""
    lines = [f"# nodes {g.n}"]
    if include_node_weights:
        lines.append("# node_weights")
        lines.append(" ".join(repr(float(w)) for w in g.node_weights))
    lines.append("# incidence")
    b = incidence_matrix(g)
    for row in b:
        lines.append(" ".join(repr(float(x)) for x in row))
    return "\n".join(lines) + "\n"


def parse_incidence_text(text: str) -> WGraph:
    """Parse the output of :func:`render_incidence_text`.

    Also accepts a bare matrix dump (no headers, no node weights): node
    weights then default to 1.  The ``# nodes N`` header makes edgeless
    graphs (zero-column matrices) representable.
    """
    node_weights = None
    declared_n: int | None = None
    rows: list[list[float]] = []
    section = "incidence"
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            tag = line.lstrip("#").strip().lower()
            if tag in ("node_weights", "incidence"):
                section = tag
                continue
            if tag.startswith("nodes"):
                try:
                    declared_n = int(tag.split()[1])
                except (IndexError, ValueError) as exc:
                    raise GraphError(f"bad node-count header {line!r}") from exc
                continue
            raise GraphError(f"unknown section header {line!r}")
        values = [float(tok) for tok in line.split()]
        if section == "node_weights":
            node_weights = values
            section = "incidence"
        else:
            rows.append(values)
    if not rows:
        n = declared_n if declared_n is not None else (
            len(node_weights) if node_weights else None
        )
        if n is None:
            raise GraphError("no incidence rows found")
        return WGraph(n, [], node_weights=node_weights)
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise GraphError("ragged incidence matrix")
    if declared_n is not None and declared_n != len(rows):
        raise GraphError(
            f"node-count header says {declared_n}, matrix has {len(rows)} rows"
        )
    return from_incidence_matrix(np.asarray(rows), node_weights=node_weights)
