"""Structural invariant checks for :class:`~repro.graph.wgraph.WGraph`.

``check_graph`` re-derives every redundant view (CSR vs edge list vs dense
adjacency) and cross-checks them.  It is cheap on the paper-sized graphs and
is called from tests and from the experiment runner in strict mode.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.util.errors import ValidationError

__all__ = ["check_graph"]


def check_graph(g: WGraph) -> None:
    """Raise :class:`ValidationError` if any internal invariant is broken."""
    eu, ev, ew = g.edge_array
    if not (len(eu) == len(ev) == len(ew) == g.m):
        raise ValidationError("edge arrays disagree on m")
    if g.m and (eu.min() < 0 or max(eu.max(), ev.max()) >= g.n):
        raise ValidationError("edge endpoint out of range")
    if np.any(eu == ev):
        raise ValidationError("self loop present")
    if np.any(ew < 0) or not np.all(np.isfinite(ew)):
        raise ValidationError("bad edge weight")
    if np.any(g.node_weights < 0) or not np.all(np.isfinite(g.node_weights)):
        raise ValidationError("bad node weight")

    # canonical order and uniqueness
    keys = list(zip(eu.tolist(), ev.tolist()))
    if any(u >= v for u, v in keys):
        raise ValidationError("edge list not canonical (u < v violated)")
    if len(set(keys)) != len(keys):
        raise ValidationError("duplicate edges in canonical list")

    # CSR consistency
    indptr, indices, weights = g.csr
    if indptr[0] != 0 or indptr[-1] != 2 * g.m:
        raise ValidationError("CSR indptr endpoints wrong")
    if np.any(np.diff(indptr) < 0):
        raise ValidationError("CSR indptr not monotone")
    seen: dict[tuple[int, int], float] = {}
    for u in range(g.n):
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        for v, w in zip(indices[lo:hi], weights[lo:hi]):
            key = (min(u, int(v)), max(u, int(v)))
            if key in seen and seen[key] != float(w):
                raise ValidationError(f"CSR weight mismatch on {key}")
            seen[key] = float(w)
    if len(seen) != g.m:
        raise ValidationError("CSR edge set differs from edge list")
    for (u, v), w in seen.items():
        if g.edge_weight(u, v) != w:
            raise ValidationError(f"edge_weight({u},{v}) disagrees with CSR")

    # degree sums
    if g.m:
        total = sum(g.weighted_degree(u) for u in range(g.n))
        if not np.isclose(total, 2 * g.total_edge_weight):
            raise ValidationError("handshake lemma violated")
