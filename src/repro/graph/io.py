"""JSON (de)serialisation of graphs — the library's native on-disk format."""

from __future__ import annotations

import json
from pathlib import Path

from repro.graph.wgraph import WGraph
from repro.util.errors import GraphError

__all__ = ["graph_to_json", "graph_from_json", "save_graph", "load_graph"]

_FORMAT = "repro-wgraph-v1"


def graph_to_json(g: WGraph) -> str:
    """Serialise *g* to a JSON string."""
    doc = {
        "format": _FORMAT,
        "n": g.n,
        "node_weights": [float(w) for w in g.node_weights],
        "edges": [[u, v, w] for u, v, w in g.edges()],
    }
    return json.dumps(doc, indent=1)


def graph_from_json(text: str) -> WGraph:
    """Parse a graph serialised by :func:`graph_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise GraphError(f"not a {_FORMAT} document")
    try:
        return WGraph(
            int(doc["n"]),
            [(int(u), int(v), float(w)) for u, v, w in doc["edges"]],
            node_weights=doc["node_weights"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph document: {exc}") from exc


def save_graph(g: WGraph, path: str | Path) -> None:
    Path(path).write_text(graph_to_json(g))


def load_graph(path: str | Path) -> WGraph:
    return graph_from_json(Path(path).read_text())
