"""Constructors bridging :class:`~repro.graph.wgraph.WGraph` with common inputs."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import networkx as nx
import numpy as np

from repro.graph.wgraph import WGraph
from repro.util.errors import GraphError

__all__ = ["from_edges", "from_adjacency", "from_networkx", "to_networkx"]


def from_edges(
    n: int,
    edges: Iterable[tuple[int, int, float]],
    node_weights: Iterable[float] | None = None,
) -> WGraph:
    """Build a graph from ``(u, v, w)`` triples (thin alias of the constructor)."""
    return WGraph(n, edges, node_weights=node_weights)


def from_adjacency(
    adj: np.ndarray, node_weights: Iterable[float] | None = None
) -> WGraph:
    """Build a graph from a dense symmetric weighted adjacency matrix.

    The matrix must be square and symmetric with a zero diagonal; entry
    ``adj[u, v] > 0`` becomes an edge of that weight.
    """
    a = np.asarray(adj, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise GraphError(f"adjacency matrix must be square, got {a.shape}")
    if not np.allclose(a, a.T):
        raise GraphError("adjacency matrix must be symmetric")
    if np.any(np.diag(a) != 0):
        raise GraphError("adjacency matrix must have a zero diagonal (no self loops)")
    n = a.shape[0]
    iu, iv = np.nonzero(np.triu(a, k=1))
    edges = [(int(u), int(v), float(a[u, v])) for u, v in zip(iu, iv)]
    return WGraph(n, edges, node_weights=node_weights)


def from_networkx(
    g: nx.Graph,
    weight: str = "weight",
    node_weight: str = "weight",
    default_edge_weight: float = 1.0,
    default_node_weight: float = 1.0,
) -> tuple[WGraph, list]:
    """Convert a networkx graph.

    Node labels are relabelled to ``0..n-1`` in sorted order when possible
    (insertion order otherwise).  Returns the graph and the label list such
    that ``labels[i]`` is the original label of node ``i``.
    """
    if g.is_directed():
        raise GraphError("directed graphs are not supported; use .to_undirected()")
    try:
        labels = sorted(g.nodes())
    except TypeError:
        labels = list(g.nodes())
    index: Mapping = {lbl: i for i, lbl in enumerate(labels)}
    node_weights = [
        float(g.nodes[lbl].get(node_weight, default_node_weight)) for lbl in labels
    ]
    edges = [
        (index[u], index[v], float(d.get(weight, default_edge_weight)))
        for u, v, d in g.edges(data=True)
    ]
    return WGraph(len(labels), edges, node_weights=node_weights), labels


def to_networkx(g: WGraph) -> nx.Graph:
    """Convert to a networkx ``Graph`` with ``weight`` node/edge attributes."""
    out = nx.Graph()
    for u in range(g.n):
        out.add_node(u, weight=float(g.node_weights[u]))
    for u, v, w in g.edges():
        out.add_edge(u, v, weight=w)
    return out
