"""METIS ``.graph`` and hMETIS ``.hgr`` file format read/write.

The de-facto interchange formats of the (hyper)graph-partitioning
community.  METIS ``.graph`` (CHACO/METIS):

* header: ``n m [fmt [ncon]]`` — *fmt* is a 3-digit flag string: hundreds =
  vertex sizes (unsupported here), tens = vertex weights, units = edge
  weights.  This library reads/writes ``fmt`` in {"0", "1", "10", "11"}
  with ``ncon = 1``.
* line *i* (1-based): ``[vweight] (neighbour [eweight])*`` — neighbours are
  1-based; every edge appears twice (once per endpoint).
* ``%``-prefixed lines are comments.

hMETIS ``.hgr`` (also consumed by KaHyPar/Mt-KaHyPar):

* header: ``n_nets n [fmt]`` — *fmt* ``1`` = net weights, ``10`` = vertex
  weights, ``11`` = both.
* one line per net: ``[weight] pin pin ...`` — pins are 1-based; this
  library writes each net's **root** (producer) pin first and reads the
  first pin back as the root.
* with vertex weights, ``n`` further lines of one weight each.
* ``%``-prefixed lines are comments.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.graph.wgraph import WGraph
from repro.util.errors import GraphError

if TYPE_CHECKING:  # imported lazily at runtime: this is the low-level I/O
    from repro.hypergraph.hgraph import HGraph  # layer, below the subsystem

__all__ = [
    "render_metis",
    "parse_metis",
    "save_metis",
    "load_metis",
    "render_hmetis",
    "parse_hmetis",
    "save_hmetis",
    "load_hmetis",
]


def render_metis(g: WGraph, comment: str | None = None) -> str:
    """Serialise to METIS .graph text (weights emitted iff non-trivial).

    METIS requires strictly positive integer weights; non-integral or
    zero-valued weights are rejected rather than silently rounded.
    """
    has_vw = not all(w == 1 for w in g.node_weights)
    _, _, ew = g.edge_array
    has_ew = not all(w == 1 for w in ew)

    def as_metis_int(x: float, what: str) -> int:
        if x != int(x) or x < 1:
            raise GraphError(
                f"METIS format needs positive integer {what}, got {x}"
            )
        return int(x)

    fmt = f"{int(has_vw)}{int(has_ew)}"
    lines = []
    if comment:
        for c_line in comment.splitlines():
            lines.append(f"% {c_line}")
    header = f"{g.n} {g.m}"
    if fmt != "00":
        header += f" {fmt.lstrip('0') or '0'}"
    lines.append(header)
    for u in range(g.n):
        parts: list[str] = []
        if has_vw:
            parts.append(str(as_metis_int(g.node_weights[u], "vertex weight")))
        nbrs, ws = g.neighbor_weights(u)
        order = sorted(range(len(nbrs)), key=lambda i: int(nbrs[i]))
        for i in order:
            parts.append(str(int(nbrs[i]) + 1))
            if has_ew:
                parts.append(str(as_metis_int(float(ws[i]), "edge weight")))
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def parse_metis(text: str) -> WGraph:
    """Parse METIS .graph text into a :class:`WGraph`."""
    # keep blank lines after the header: an isolated vertex's adjacency
    # line is legitimately empty (trailing ones may be eaten by editors,
    # so the parser pads the vertex-line count back up to n)
    raw = [ln for ln in text.splitlines() if not ln.lstrip().startswith("%")]
    while raw and not raw[0].strip():
        raw.pop(0)
    lines = [ln.strip() for ln in raw]
    if not lines:
        raise GraphError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError(f"bad METIS header {lines[0]!r}")
    try:
        n, m = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphError(f"bad METIS header {lines[0]!r}") from exc
    fmt = header[2] if len(header) > 2 else "0"
    ncon = int(header[3]) if len(header) > 3 else 1
    if len(fmt) > 3 or any(c not in "01" for c in fmt):
        raise GraphError(f"unsupported METIS fmt {fmt!r}")
    fmt = fmt.zfill(3)
    if fmt[0] == "1":
        raise GraphError("vertex sizes (fmt=1xx) are not supported")
    has_vw = fmt[1] == "1"
    has_ew = fmt[2] == "1"
    if ncon != 1 and has_vw:
        raise GraphError(f"only ncon=1 supported, got {ncon}")
    body = lines[1:]
    if len(body) < n and not any(ln for ln in body[n:]):
        body = body + [""] * (n - len(body))  # restore stripped blank tails
    if len(body) != n:
        raise GraphError(f"expected {n} vertex lines, found {len(body)}")

    node_weights = []
    edges: dict[tuple[int, int], float] = {}
    for u, line in enumerate(body):
        tokens = line.split()
        idx = 0
        if has_vw:
            if not tokens:
                raise GraphError(f"missing vertex weight on line {u + 2}")
            node_weights.append(float(tokens[0]))
            idx = 1
        else:
            node_weights.append(1.0)
        stride = 2 if has_ew else 1
        rest = tokens[idx:]
        if len(rest) % stride:
            raise GraphError(f"ragged adjacency on vertex {u + 1}")
        for j in range(0, len(rest), stride):
            v = int(rest[j]) - 1
            if not 0 <= v < n:
                raise GraphError(f"neighbour {v + 1} out of range on vertex {u + 1}")
            if v == u:
                raise GraphError(f"self loop on vertex {u + 1}")
            w = float(rest[j + 1]) if has_ew else 1.0
            key = (min(u, v), max(u, v))
            if key in edges:
                if edges[key] != w:
                    raise GraphError(
                        f"edge {key} listed with inconsistent weights "
                        f"{edges[key]} vs {w}"
                    )
            else:
                edges[key] = w
    if len(edges) != m:
        raise GraphError(f"header claims {m} edges, found {len(edges)}")
    return WGraph(
        n,
        [(u, v, w) for (u, v), w in edges.items()],
        node_weights=node_weights,
    )


def save_metis(g: WGraph, path: str | Path, comment: str | None = None) -> None:
    Path(path).write_text(render_metis(g, comment=comment))


def load_metis(path: str | Path) -> WGraph:
    return parse_metis(Path(path).read_text())


# --------------------------------------------------------------------- #
# hMETIS .hgr
# --------------------------------------------------------------------- #
def _as_hmetis_int(x: float, what: str) -> int:
    if x != int(x) or x < 1:
        raise GraphError(f"hMETIS format needs positive integer {what}, got {x}")
    return int(x)


def render_hmetis(hg: HGraph, comment: str | None = None) -> str:
    """Serialise to hMETIS .hgr text (weights emitted iff non-trivial).

    Each net line starts with the net's root pin so producer attribution
    survives a round trip; remaining pins follow in ascending order.
    """
    has_vw = not all(w == 1 for w in hg.node_weights)
    has_ew = not all(w == 1 for w in hg.net_weights)
    fmt = f"{int(has_vw)}{int(has_ew)}"
    lines = []
    if comment:
        for c_line in comment.splitlines():
            lines.append(f"% {c_line}")
    header = f"{hg.n_nets} {hg.n}"
    if fmt != "00":
        header += f" {fmt.lstrip('0')}"
    lines.append(header)
    for e in range(hg.n_nets):
        parts: list[str] = []
        if has_ew:
            parts.append(
                str(_as_hmetis_int(float(hg.net_weights[e]), "net weight"))
            )
        root = int(hg.roots[e])
        parts.append(str(root + 1))
        parts.extend(str(int(p) + 1) for p in hg.pins_of(e) if int(p) != root)
        lines.append(" ".join(parts))
    if has_vw:
        for u in range(hg.n):
            lines.append(
                str(_as_hmetis_int(float(hg.node_weights[u]), "vertex weight"))
            )
    return "\n".join(lines) + "\n"


def parse_hmetis(text: str) -> HGraph:
    """Parse hMETIS .hgr text into an :class:`HGraph` (first pin = root)."""
    from repro.hypergraph.hgraph import HGraph

    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith("%")
    ]
    if not lines:
        raise GraphError("empty hMETIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError(f"bad hMETIS header {lines[0]!r}")
    try:
        n_nets, n = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphError(f"bad hMETIS header {lines[0]!r}") from exc
    fmt = header[2] if len(header) > 2 else "0"
    if fmt not in ("0", "1", "10", "11"):
        raise GraphError(f"unsupported hMETIS fmt {fmt!r}")
    has_vw = fmt in ("10", "11")
    has_ew = fmt in ("1", "11")
    body = lines[1:]
    expected = n_nets + (n if has_vw else 0)
    if len(body) != expected:
        raise GraphError(
            f"expected {expected} body lines ({n_nets} nets"
            f"{f' + {n} vertex weights' if has_vw else ''}), found {len(body)}"
        )
    nets: list[tuple[list[int], float]] = []
    for i in range(n_nets):
        tokens = body[i].split()
        if has_ew:
            if len(tokens) < 2:
                raise GraphError(f"net on line {i + 2} has no pins")
            w = float(tokens[0])
            pin_tokens = tokens[1:]
        else:
            if not tokens:
                raise GraphError(f"net on line {i + 2} has no pins")
            w = 1.0
            pin_tokens = tokens
        pins = []
        for t in pin_tokens:
            p = int(t) - 1
            if not 0 <= p < n:
                raise GraphError(f"pin {p + 1} out of range on line {i + 2}")
            pins.append(p)
        nets.append((pins, w))
    if has_vw:
        node_weights = [float(body[n_nets + u]) for u in range(n)]
    else:
        node_weights = None
    return HGraph(n, nets, node_weights=node_weights)


def save_hmetis(hg: HGraph, path: str | Path, comment: str | None = None) -> None:
    Path(path).write_text(render_hmetis(hg, comment=comment))


def load_hmetis(path: str | Path) -> HGraph:
    return parse_hmetis(Path(path).read_text())
