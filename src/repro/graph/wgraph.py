"""Core weighted undirected graph used throughout the library.

Design notes
------------
* Nodes are dense integer ids ``0 .. n-1``.  Node weights model FPGA
  resources (``R_p`` in the paper), edge weights model sustained channel
  bandwidth.  Both are float64 (integer-valued in all paper experiments).
* The structure is immutable after construction.  Algorithms that "modify"
  a graph (contraction, subgraphs) build a new :class:`WGraph`.
* Storage is CSR (``indptr``/``indices``/``weights``) for cache-friendly
  traversal in hot loops, mirroring what a C partitioner (METIS) uses, plus
  a canonical edge list for iteration and I/O.
* Self loops are rejected: a FIFO from a process to itself never crosses a
  partition boundary and carries no mapping cost; the paper's model has none.
* Parallel edges are merged at construction by *summing* their weights —
  exactly the coarsening semantics of Section IV.A of the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.util.errors import GraphError

__all__ = ["WGraph"]


class WGraph:
    """Undirected weighted graph with weighted nodes.

    Parameters
    ----------
    n:
        Number of nodes (ids ``0..n-1``).
    edges:
        Iterable of ``(u, v, weight)`` triples.  ``(u, v)`` and ``(v, u)``
        denote the same edge; duplicates are merged by summing weights.
    node_weights:
        Per-node resource weights; defaults to all ones (the unweighted
        GPP of Section I).

    Raises
    ------
    GraphError
        On out-of-range endpoints, self loops, negative or non-finite
        weights, or a negative node count.
    """

    __slots__ = (
        "_n",
        "_node_weights",
        "_edge_u",
        "_edge_v",
        "_edge_w",
        "_indptr",
        "_indices",
        "_weights",
        "_adj_edge_id",
        "_digest",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int, float]] = (),
        node_weights: Iterable[float] | None = None,
    ) -> None:
        if n < 0:
            raise GraphError(f"node count must be >= 0, got {n}")
        self._n = int(n)

        if node_weights is None:
            nw = np.ones(self._n, dtype=np.float64)
        else:
            nw = np.asarray(list(node_weights), dtype=np.float64)
            if nw.shape != (self._n,):
                raise GraphError(
                    f"expected {self._n} node weights, got {nw.shape}"
                )
            if not np.all(np.isfinite(nw)):
                raise GraphError("node weights must be finite")
            if np.any(nw < 0):
                raise GraphError("node weights must be non-negative")
        self._node_weights = nw
        self._node_weights.setflags(write=False)

        # Merge duplicate / reversed edges by summing weights.
        merged: dict[tuple[int, int], float] = {}
        for item in edges:
            try:
                u, v, w = item
            except (TypeError, ValueError) as exc:
                raise GraphError(f"edge {item!r} is not a (u, v, w) triple") from exc
            u, v = int(u), int(v)
            w = float(w)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise GraphError(
                    f"edge ({u}, {v}) out of range for n={self._n}"
                )
            if u == v:
                raise GraphError(f"self loop on node {u} is not allowed")
            if not np.isfinite(w):
                raise GraphError(f"edge ({u}, {v}) has non-finite weight {w}")
            if w < 0:
                raise GraphError(f"edge ({u}, {v}) has negative weight {w}")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0.0) + w

        m = len(merged)
        eu = np.empty(m, dtype=np.int64)
        ev = np.empty(m, dtype=np.int64)
        ew = np.empty(m, dtype=np.float64)
        for i, ((u, v), w) in enumerate(sorted(merged.items())):
            eu[i], ev[i], ew[i] = u, v, w
        self._edge_u, self._edge_v, self._edge_w = eu, ev, ew
        for a in (eu, ev, ew):
            a.setflags(write=False)

        # CSR adjacency (both directions).
        deg = np.zeros(self._n, dtype=np.int64)
        np.add.at(deg, eu, 1)
        np.add.at(deg, ev, 1)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        indices = np.empty(2 * m, dtype=np.int64)
        weights = np.empty(2 * m, dtype=np.float64)
        adj_edge_id = np.empty(2 * m, dtype=np.int64)
        cursor = indptr[:-1].copy()
        for i in range(m):
            u, v, w = eu[i], ev[i], ew[i]
            indices[cursor[u]] = v
            weights[cursor[u]] = w
            adj_edge_id[cursor[u]] = i
            cursor[u] += 1
            indices[cursor[v]] = u
            weights[cursor[v]] = w
            adj_edge_id[cursor[v]] = i
            cursor[v] += 1
        self._indptr, self._indices, self._weights = indptr, indices, weights
        self._adj_edge_id = adj_edge_id
        for a in (indptr, indices, weights, adj_edge_id):
            a.setflags(write=False)
        self._digest: str | None = None

    @classmethod
    def _from_canonical(
        cls,
        n: int,
        eu: np.ndarray,
        ev: np.ndarray,
        ew: np.ndarray,
        node_weights: np.ndarray,
    ) -> "WGraph":
        """Fast construction from already-canonical edge arrays.

        The caller guarantees what ``__init__`` normally establishes:
        ``eu[i] < ev[i]``, pairs strictly lexicographically sorted and
        unique, endpoints in range, weights finite and non-negative.  The
        CSR layout built here is element-for-element identical to the one
        ``__init__`` builds from the same edges (each node's adjacency is
        ordered by ascending canonical edge id), which the coarsening
        differential tests assert.  Internal use only — contraction and
        other hot paths that produce canonical arrays by construction.
        """
        self = object.__new__(cls)
        self._n = int(n)
        nw = np.ascontiguousarray(node_weights, dtype=np.float64).copy()
        if nw.shape != (self._n,):
            raise GraphError(f"expected {self._n} node weights, got {nw.shape}")
        self._node_weights = nw
        eu = np.ascontiguousarray(eu, dtype=np.int64)
        ev = np.ascontiguousarray(ev, dtype=np.int64)
        ew = np.ascontiguousarray(ew, dtype=np.float64).copy()
        m = eu.size
        self._edge_u, self._edge_v, self._edge_w = eu, ev, ew

        deg = np.bincount(eu, minlength=self._n) + np.bincount(
            ev, minlength=self._n
        )
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        # directed entries: edge i contributes (u -> v) and (v -> u); sorting
        # by (endpoint, edge id) reproduces __init__'s fill order exactly
        ends = np.concatenate([eu, ev])
        partners = np.concatenate([ev, eu])
        eid = np.concatenate([np.arange(m), np.arange(m)])
        order = np.lexsort((eid, ends))
        self._indices = partners[order]
        self._weights = np.concatenate([ew, ew])[order]
        self._adj_edge_id = eid[order]
        self._indptr = indptr
        for a in (
            self._node_weights,
            eu,
            ev,
            ew,
            self._indptr,
            self._indices,
            self._weights,
            self._adj_edge_id,
        ):
            a.setflags(write=False)
        self._digest = None
        return self

    def content_digest(self) -> str:
        """Stable hex digest of the full graph content (structure + weights).

        Two graphs compare ``==`` iff their digests agree, so the digest is
        a safe dictionary key for memoising partitioning results (see
        :class:`repro.util.parallel.KeyedCache`).  Computed lazily, cached.
        """
        if self._digest is None:
            import hashlib

            h = hashlib.sha256()
            h.update(str(self._n).encode())
            for a in (
                self._node_weights,
                self._edge_u,
                self._edge_v,
                self._edge_w,
            ):
                h.update(np.ascontiguousarray(a).tobytes())
            self._digest = h.hexdigest()
        return self._digest

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (merged, undirected) edges."""
        return len(self._edge_w)

    @property
    def node_weights(self) -> np.ndarray:
        """Read-only float64 array of node resource weights, shape ``(n,)``."""
        return self._node_weights

    @property
    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read-only ``(u, v, w)`` arrays in canonical (sorted) edge order."""
        return self._edge_u, self._edge_v, self._edge_w

    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read-only CSR adjacency ``(indptr, indices, weights)``."""
        return self._indptr, self._indices, self._weights

    def degree(self, u: int) -> int:
        """Number of distinct neighbours of *u*."""
        self._check_node(u)
        return int(self._indptr[u + 1] - self._indptr[u])

    def weighted_degree(self, u: int) -> float:
        """Sum of incident edge weights of *u*."""
        self._check_node(u)
        lo, hi = self._indptr[u], self._indptr[u + 1]
        return float(self._weights[lo:hi].sum())

    def neighbors(self, u: int) -> np.ndarray:
        """Read-only array of neighbour ids of *u*."""
        self._check_node(u)
        lo, hi = self._indptr[u], self._indptr[u + 1]
        return self._indices[lo:hi]

    def neighbor_weights(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Neighbour ids and matching edge weights of *u* (read-only views)."""
        self._check_node(u)
        lo, hi = self._indptr[u], self._indptr[u + 1]
        return self._indices[lo:hi], self._weights[lo:hi]

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return v in set(self.neighbors(u).tolist()) if u != v else False

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; 0.0 if absent."""
        self._check_node(u)
        self._check_node(v)
        nbrs, ws = self.neighbor_weights(u)
        hits = np.nonzero(nbrs == v)[0]
        return float(ws[hits[0]]) if hits.size else 0.0

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate canonical ``(u, v, w)`` triples with ``u < v``."""
        for u, v, w in zip(self._edge_u, self._edge_v, self._edge_w):
            yield int(u), int(v), float(w)

    @property
    def total_node_weight(self) -> float:
        return float(self._node_weights.sum())

    @property
    def total_edge_weight(self) -> float:
        return float(self._edge_w.sum())

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """True iff the graph has one connected component (n==0 counts as True)."""
        if self._n == 0:
            return True
        seen = np.zeros(self._n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(int(v))
        return count == self._n

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted lists of node ids."""
        comp = np.full(self._n, -1, dtype=np.int64)
        ncomp = 0
        for s in range(self._n):
            if comp[s] >= 0:
                continue
            comp[s] = ncomp
            stack = [s]
            while stack:
                u = stack.pop()
                for v in self.neighbors(u):
                    if comp[v] < 0:
                        comp[v] = ncomp
                        stack.append(int(v))
            ncomp += 1
        out: list[list[int]] = [[] for _ in range(ncomp)]
        for u in range(self._n):
            out[comp[u]].append(u)
        return out

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric weighted adjacency matrix, shape ``(n, n)``."""
        a = np.zeros((self._n, self._n), dtype=np.float64)
        a[self._edge_u, self._edge_v] = self._edge_w
        a[self._edge_v, self._edge_u] = self._edge_w
        return a

    def subgraph(self, nodes: Iterable[int]) -> tuple["WGraph", np.ndarray]:
        """Induced subgraph on *nodes*.

        Returns
        -------
        (sub, index):
            *sub* — the induced :class:`WGraph` with relabelled ids
            ``0..len(nodes)-1`` (in the order given); *index* — array mapping
            new ids back to the original ids.
        """
        idx = np.asarray(list(nodes), dtype=np.int64)
        if idx.size != len(set(idx.tolist())):
            raise GraphError("subgraph nodes contain duplicates")
        for u in idx:
            self._check_node(int(u))
        old2new = {int(o): i for i, o in enumerate(idx)}
        edges = [
            (old2new[u], old2new[v], w)
            for u, v, w in self.edges()
            if u in old2new and v in old2new
        ]
        sub = WGraph(len(idx), edges, node_weights=self._node_weights[idx])
        return sub, idx

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def with_node_weights(self, node_weights: Iterable[float]) -> "WGraph":
        """Copy of the graph with node weights replaced."""
        return WGraph(self._n, list(self.edges()), node_weights=node_weights)

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise GraphError(f"node {u} out of range for n={self._n}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._node_weights, other._node_weights)
            and np.array_equal(self._edge_u, other._edge_u)
            and np.array_equal(self._edge_v, other._edge_v)
            and np.array_equal(self._edge_w, other._edge_w)
        )

    def __hash__(self) -> int:  # pragma: no cover - WGraph is not hashable
        raise TypeError("WGraph is mutable-adjacent and unhashable")

    def __repr__(self) -> str:
        return (
            f"WGraph(n={self._n}, m={self.m}, "
            f"node_weight={self.total_node_weight:g}, "
            f"edge_weight={self.total_edge_weight:g})"
        )
