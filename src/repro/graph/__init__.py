"""Weighted-graph substrate (system S1 in DESIGN.md).

The paper's object of study is an undirected graph where

* nodes are *processes*, weighted by the FPGA resources ``R_p`` needed to
  implement them, and
* edges are FIFO *channels*, weighted by the sustained bandwidth they carry.

:class:`~repro.graph.wgraph.WGraph` is the shared representation used by every
partitioner, the polyhedral front-end, the KPN simulator and the platform
mapper.
"""

from repro.graph.builders import (
    from_adjacency,
    from_edges,
    from_networkx,
    to_networkx,
)
from repro.graph.generators import (
    multicast_network,
    paper_graph,
    planted_partition_network,
    random_connected_graph,
    random_process_network,
)
from repro.graph.io import graph_from_json, graph_to_json, load_graph, save_graph
from repro.graph.matrixio import (
    from_incidence_matrix,
    incidence_matrix,
    parse_incidence_text,
    render_incidence_text,
)
from repro.graph.validation import check_graph
from repro.graph.wgraph import WGraph

__all__ = [
    "WGraph",
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "to_networkx",
    "incidence_matrix",
    "from_incidence_matrix",
    "parse_incidence_text",
    "render_incidence_text",
    "graph_to_json",
    "graph_from_json",
    "save_graph",
    "load_graph",
    "random_connected_graph",
    "random_process_network",
    "planted_partition_network",
    "multicast_network",
    "paper_graph",
    "check_graph",
]
