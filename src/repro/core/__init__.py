"""High-level one-call API (system S11 in DESIGN.md).

>>> from repro.core import partition_graph
>>> result = partition_graph(g, k=4, bmax=16, rmax=165)
>>> result.feasible
True
"""

from repro.core.api import (
    configure_cache_backend,
    disable_disk_cache,
    enable_disk_cache,
    map_to_fpgas,
    partition_graph,
    partition_ppn,
)
from repro.core.report import comparison_report, result_table
from repro.evolve.ea import EvolveConfig, clear_evolve_cache, evolve_partition
from repro.partition.gp import GPConfig
from repro.partition.metrics import ConstraintSpec
from repro.partition.portfolio import clear_portfolio_cache, portfolio_partition

__all__ = [
    "partition_graph",
    "partition_ppn",
    "map_to_fpgas",
    "result_table",
    "comparison_report",
    "GPConfig",
    "EvolveConfig",
    "ConstraintSpec",
    "evolve_partition",
    "portfolio_partition",
    "clear_evolve_cache",
    "clear_portfolio_cache",
    "configure_cache_backend",
    "enable_disk_cache",
    "disable_disk_cache",
]
