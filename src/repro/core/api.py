"""One-call entry points tying the substrates together.

``partition_graph``
    Graph + constraints → :class:`~repro.partition.base.PartitionResult`
    via any of the partitioners: the paper's constrained ``"gp"``, the
    METIS-like ``"mlkp"``, ``"spectral"``, ``"exact"``, ``"hyper"`` —
    the connectivity-metric multilevel partitioner run on the graph's
    2-pin hypergraph lift (equivalent objective, hypergraph machinery) —
    or ``"evolve"``, the memetic population search over the GP machinery
    (see ``docs/evolve.md``).

``partition_ppn``
    SANLP or derived PPN → mapping model → partition.  Two traffic models:

    * ``model="graph"`` (default) — the paper's 2-pin edge-cut model via
      :func:`~repro.kpn.traffic.ppn_to_mapped_graph` (token or sustained
      bandwidth weights).
    * ``model="hypergraph"`` — one hyperedge per producer token set via
      :meth:`~repro.polyhedral.ppn.PPN.to_hypergraph`, partitioned under
      the (λ−1) connectivity metric, which charges a multicast once per
      extra FPGA instead of once per consumer (see ``docs/hypergraph.md``).

``map_to_fpgas``
    Partition → :class:`~repro.fpga.mapping.Mapping` on a homogeneous
    multi-FPGA system, validated.

``enable_disk_cache`` / ``disable_disk_cache`` / ``configure_cache_backend``
    Inject a persistent :class:`~repro.util.diskcache.DiskCache` under
    the in-process portfolio/evolve/multires memo caches, so memoised
    runs survive the process (the seam ``repro serve`` stands on — see
    ``docs/serve.md``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from collections.abc import Mapping as MappingABC
from collections.abc import Sequence

import repro.obs as _obs
from repro.evolve.ea import EvolveConfig, evolve_partition
from repro.fpga.mapping import Mapping
from repro.fpga.resources import ResourceVector, resource_matrix
from repro.fpga.system import MultiFPGASystem
from repro.graph.wgraph import WGraph
from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.partition import HyperConfig, hyper_partition
from repro.kpn.traffic import ppn_to_mapped_graph
from repro.partition.base import PartitionResult
from repro.partition.conn_store import check_conn_format
from repro.partition.exact import exact_partition
from repro.partition.flow_refine import check_refine_mode
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.mlkp import mlkp_partition
from repro.partition.multires import MultiResResult, mr_gp_partition
from repro.partition.spectral import spectral_partition
from repro.partition.vector_state import (
    VectorConstraints,
    VectorGraph,
    check_weight_matrix,
)
from repro.polyhedral.ppn import PPN, derive_ppn
from repro.polyhedral.program import SANLP
from repro.util.errors import PartitionError

__all__ = [
    "partition_graph",
    "partition_ppn",
    "map_to_fpgas",
    "configure_cache_backend",
    "enable_disk_cache",
    "disable_disk_cache",
]


def _module_caches():
    """The three in-process memo caches, imported lazily (no cycles)."""
    from repro.evolve.ea import evolve_cache
    from repro.partition.multires import multires_cache
    from repro.partition.portfolio import portfolio_cache

    return {
        "portfolio": portfolio_cache,
        "evolve": evolve_cache,
        "multires": multires_cache,
    }


def configure_cache_backend(backend) -> None:
    """Attach *backend* under every module memo cache (``None`` detaches).

    *backend* is any object with the :class:`~repro.util.parallel.
    KeyedCache` backend protocol (``lookup``/``put``/``stats``) —
    canonically a :class:`~repro.util.diskcache.DiskCache`.  One shared
    store is safe: the memo keys are namespaced tuples
    (``"portfolio"``/``"evolve"``/``"mr_gp"``-prefixed).
    """
    for c in _module_caches().values():
        c.set_backend(backend)


def enable_disk_cache(path, max_bytes: int = 256 * 1024 * 1024):
    """Back the portfolio/evolve/multires memos with a persistent store.

    Returns the :class:`~repro.util.diskcache.DiskCache` so callers can
    inspect ``stats()`` or share it (the serve daemon layers its own
    request-level cache on the same store).
    """
    from repro.util.diskcache import DiskCache

    backend = DiskCache(path, max_bytes=max_bytes)
    configure_cache_backend(backend)
    return backend


def disable_disk_cache() -> None:
    """Detach any persistent backend from the module memo caches."""
    configure_cache_backend(None)

_METHODS = ("gp", "mlkp", "spectral", "exact", "hyper", "evolve")
_MODELS = ("graph", "hypergraph")
#: Methods with independent randomized work to race across processes.
_JOBS_METHODS = ("gp", "evolve")
#: Methods that can partition under vector resource budgets.
_VECTOR_METHODS = ("gp", "evolve")
#: Methods with a pluggable refinement stage (refine="flow"/"fm+flow").
_REFINE_METHODS = ("gp", "mlkp", "evolve")
#: Methods whose engine honours an explicit conn_format override.
_CONN_METHODS = ("gp", "mlkp")


def _fold_refine(config, refine: str, ctor):
    """Fold the ``refine=`` argument into the method's config object.

    ``"fm"`` (the default) means "unspecified" — the config's own
    ``refine`` field stands; anything else overrides it (building a
    default config when none was given).
    """
    if refine == "fm":
        return config
    if config is None:
        return ctor(refine=refine)
    return dataclasses.replace(config, refine=refine)


def _fold_conn(config, conn_format: str, ctor):
    """Fold the ``conn_format=`` argument into the method's config object.

    Mirrors :func:`_fold_refine`: ``"auto"`` (the default) leaves the
    config's own ``conn_format`` field standing.
    """
    if conn_format == "auto":
        return config
    if config is None:
        return ctor(conn_format=conn_format)
    return dataclasses.replace(config, conn_format=conn_format)


def _rmax_is_vector(rmax) -> bool:
    return isinstance(rmax, (tuple, list)) or (
        isinstance(rmax, np.ndarray) and rmax.ndim == 1
    )


def _partition_graph_vector(
    g: WGraph,
    k: int,
    bmax,
    rmax,
    method: str,
    seed,
    config,
    n_jobs,
    cache,
    resources,
    refine,
) -> MultiResResult | PartitionResult:
    """The ``resources=W`` branch of :func:`partition_graph`."""
    if method not in _VECTOR_METHODS:
        raise PartitionError(
            f"resources (vector budgets) are supported by methods "
            f"{_VECTOR_METHODS}, got method={method!r}"
        )
    w = check_weight_matrix(g, resources)
    if not _rmax_is_vector(rmax):
        raise PartitionError(
            f"a resources matrix with {w.shape[1]} columns needs a "
            f"per-resource rmax vector, got {rmax!r}"
        )
    cons = VectorConstraints(bmax=bmax, rmax=tuple(float(r) for r in rmax))
    if cons.n_resources != w.shape[1]:
        raise PartitionError(
            f"rmax caps {cons.n_resources} resources, the matrix has "
            f"{w.shape[1]} columns"
        )
    if method == "evolve":
        if config is not None and not isinstance(config, EvolveConfig):
            raise PartitionError(
                f"method='evolve' takes an EvolveConfig, "
                f"got {type(config).__name__}"
            )
        return evolve_partition(
            VectorGraph(g, w), k, cons,
            config=_fold_refine(config, refine, EvolveConfig), seed=seed,
            n_jobs=n_jobs, cache=cache,
        )
    if config is not None and not isinstance(config, GPConfig):
        raise PartitionError(
            f"method='gp' takes a GPConfig, got {type(config).__name__}"
        )
    cfg = _fold_refine(config, refine, GPConfig) or GPConfig(max_cycles=10)
    return mr_gp_partition(
        g, w, k, cons,
        coarsen_to=cfg.coarsen_to, restarts=cfg.restarts,
        max_cycles=cfg.max_cycles, refine_passes=cfg.refine_passes,
        on_infeasible=cfg.on_infeasible,
        seed=seed if seed is not None else cfg.seed,
        n_jobs=n_jobs, cache=cache, refine=cfg.refine,
    )


def partition_graph(
    g: WGraph,
    k: int,
    bmax: float = float("inf"),
    rmax=float("inf"),
    method: str = "gp",
    seed=None,
    config: GPConfig | HyperConfig | EvolveConfig | None = None,
    n_jobs: int | None = 1,
    cache: bool = True,
    resources=None,
    profile: bool | str = False,
    refine: str = "fm",
    conn_format: str = "auto",
) -> PartitionResult | MultiResResult | _obs.ProfileReport:
    """Partition *g* into *k* parts under the paper's two constraints.

    *method*: ``"gp"`` (the paper's constrained partitioner, default),
    ``"mlkp"`` (METIS-like, constraints audited only), ``"spectral"``,
    ``"exact"`` (≤20 nodes, constraints enforced), ``"hyper"`` (the
    connectivity-metric multilevel partitioner on the 2-pin hypergraph
    lift; takes a :class:`~repro.hypergraph.partition.HyperConfig`), or
    ``"evolve"`` (the memetic population search; takes an
    :class:`~repro.evolve.ea.EvolveConfig`, see ``docs/evolve.md``).

    *resources* switches the resource model from scalar to vector
    (``docs/multires.md``): pass the ``(n, R)`` weight matrix and a
    per-resource *rmax* sequence, and the constraint becomes
    componentwise (``VectorConstraints``).  Supported by ``"gp"`` (the
    multi-resource multilevel partitioner, returning a
    :class:`~repro.partition.multires.MultiResResult`; a
    :class:`~repro.partition.gp.GPConfig`'s shared knobs are honoured)
    and ``"evolve"`` (the memetic search on the vector engine) — other
    methods reject it, as does a vector *rmax* without the matrix.

    *n_jobs* races the method's independent randomized work across worker
    processes (``-1`` = all CPUs): GP's retry cycles (scalar or vector),
    or evolve's seeding members and offspring batches; results are
    bit-identical for every value (see ``docs/parallel.md``).  It is
    honoured by ``"gp"`` and ``"evolve"`` — the other methods are
    deterministic single-pass algorithms with nothing independent to
    race — and rejected with any other method to keep the knob honest.
    *cache* belongs to the memoised methods — ``"evolve"``, and ``"gp"``
    with *resources* (the multires cache) — and is rejected elsewhere.

    *refine* selects the refinement stage of the multilevel methods
    (``docs/refinement.md``): ``"fm"`` — each method's native local
    search (default); ``"flow"`` — corridor max-flow passes replace it;
    ``"fm+flow"`` — native refinement plus a guarded flow polish that is
    never worse than ``"fm"`` at equal seeds.  Honoured by ``"gp"``
    (scalar and vector), ``"mlkp"`` and ``"evolve"``; rejected elsewhere
    (the single-pass methods have no refinement stage to swap).  A
    non-default *refine* overrides the config's own ``refine`` field.

    *conn_format* selects the refinement engine's connectivity
    representation (``docs/refinement.md``): ``"auto"`` — dense below
    the ``k·n`` threshold, sparse above (default); ``"dense"`` /
    ``"sparse"`` force a format.  The partition is bit-identical either
    way — only memory and speed change.  Honoured by ``"gp"`` and
    ``"mlkp"`` (scalar constraints); rejected elsewhere and on the
    *resources* path (those engines pick their format via ``"auto"``).
    A non-default value overrides a ``GPConfig``'s own ``conn_format``.

    *profile* runs the call under an observability capture
    (:func:`repro.obs.capture`) and returns a
    :class:`~repro.obs.ProfileReport` instead: the same result plus the
    span tree, the metrics delta, and the wall-clock — exportable as a
    Chrome trace (``report.write_trace(path)``) or a text summary
    (``report.summary()``).  ``profile="mem"`` additionally turns on
    memory instrumentation: every span carries ``peak_bytes`` /
    ``alloc_delta`` attrs (tracemalloc) and the big-array allocation
    gauges (``mem.alloc_bytes``) land in the metrics delta.  The
    partition itself is bit-identical to the unprofiled call (see
    ``docs/observability.md``).
    """
    if profile:
        with _obs.capture(memory=(profile == "mem")) as cap:
            result = partition_graph(
                g, k, bmax=bmax, rmax=rmax, method=method, seed=seed,
                config=config, n_jobs=n_jobs, cache=cache,
                resources=resources, refine=refine, conn_format=conn_format,
            )
        return _obs.ProfileReport(
            result=result,
            spans=[s.to_dict() for s in cap.spans],
            metrics=cap.metrics,
            wall_s=cap.wall_s,
        )
    check_refine_mode(refine)
    if refine != "fm" and method not in _REFINE_METHODS:
        raise PartitionError(
            f"refine={refine!r} is only supported by methods "
            f"{_REFINE_METHODS}, got method={method!r}"
        )
    check_conn_format(conn_format)
    if conn_format != "auto" and (
        method not in _CONN_METHODS or resources is not None
    ):
        raise PartitionError(
            f"conn_format={conn_format!r} is only supported by methods "
            f"{_CONN_METHODS} with scalar constraints, got "
            f"method={method!r}"
            + (" with resources" if resources is not None else "")
        )
    if n_jobs not in (None, 1) and method not in _JOBS_METHODS:
        raise PartitionError(
            f"n_jobs is only supported by methods {_JOBS_METHODS}, "
            f"got method={method!r}"
        )
    if cache is not True and method != "evolve" and not (
        resources is not None and method == "gp"
    ):
        raise PartitionError(
            f"cache is only supported by method='evolve' (and method='gp' "
            f"with resources), got method={method!r}"
        )
    if resources is not None:
        return _partition_graph_vector(
            g, k, bmax, rmax, method, seed, config, n_jobs, cache,
            resources, refine,
        )
    if _rmax_is_vector(rmax):
        raise PartitionError(
            "a vector rmax needs the per-node resources matrix "
            "(resources=W); pass a scalar rmax otherwise"
        )
    constraints = ConstraintSpec(bmax=bmax, rmax=rmax)
    if method == "evolve":
        if config is not None and not isinstance(config, EvolveConfig):
            raise PartitionError(
                f"method='evolve' takes an EvolveConfig, "
                f"got {type(config).__name__}"
            )
        return evolve_partition(
            g, k, constraints,
            config=_fold_refine(config, refine, EvolveConfig), seed=seed,
            n_jobs=n_jobs, cache=cache,
        )
    if method == "gp":
        if config is not None and not isinstance(config, GPConfig):
            raise PartitionError(
                f"method='gp' takes a GPConfig, got {type(config).__name__}"
            )
        return gp_partition(
            g, k, constraints,
            config=_fold_conn(
                _fold_refine(config, refine, GPConfig), conn_format, GPConfig
            ),
            seed=seed,
            n_jobs=n_jobs,
        )
    if method == "mlkp":
        return mlkp_partition(
            g, k, seed=seed, constraints=constraints, refine=refine,
            conn_format=conn_format,
        )
    if method == "spectral":
        return spectral_partition(g, k, constraints=constraints)
    if method == "exact":
        return exact_partition(g, k, constraints, enforce=not constraints.unconstrained)
    if method == "hyper":
        if config is not None and not isinstance(config, HyperConfig):
            raise PartitionError(
                "method='hyper' takes a HyperConfig, got "
                f"{type(config).__name__}"
            )
        return hyper_partition(
            HGraph.from_wgraph(g), k, constraints, config=config, seed=seed
        )
    raise PartitionError(
        f"unknown method {method!r}; valid methods: {_METHODS}"
    )


def _ppn_resource_matrix(resources, names: list[str]) -> np.ndarray:
    """Per-process resources → ``(n, R)`` matrix in node order.

    Accepts the three natural spellings: a ready ``(n, R)`` array, a
    mapping from process name to :class:`~repro.fpga.resources.
    ResourceVector` (looked up through *names*), or a sequence of
    bundles already in node order.
    """
    if isinstance(resources, np.ndarray):
        return resources
    if isinstance(resources, MappingABC):
        w, _ = resource_matrix(resources, names=names)
        return w
    if isinstance(resources, Sequence):
        if all(isinstance(r, ResourceVector) for r in resources):
            w, _ = resource_matrix(resources)
            return w
        try:
            # plain nested rows — the same spelling partition_graph takes
            return np.asarray(resources, dtype=np.float64)
        except (TypeError, ValueError):
            pass
    raise PartitionError(
        "resources must be an (n, R) array (or nested rows), a "
        "{process name: ResourceVector} mapping, or a node-ordered "
        f"ResourceVector sequence, got {type(resources).__name__}"
    )


def partition_ppn(
    program_or_ppn: SANLP | PPN,
    k: int,
    bmax: float = float("inf"),
    rmax=float("inf"),
    method: str = "gp",
    model: str = "graph",
    bandwidth_mode: str = "tokens",
    bandwidth_scale: float = 1.0,
    seed=None,
    config: GPConfig | HyperConfig | EvolveConfig | None = None,
    n_jobs: int | None = 1,
    cache: bool = True,
    resources=None,
    refine: str = "fm",
) -> tuple[PartitionResult | MultiResResult, WGraph | HGraph, list[str]]:
    """Derive (if needed), weight, and partition a process network.

    With ``model="graph"`` the PPN is flattened to the paper's 2-pin
    mapping graph and *method* picks the graph partitioner.  With
    ``model="hypergraph"`` multicast channels stay hyperedges and a
    connectivity-metric partitioner runs (*method* must be ``"gp"``,
    ``"hyper"`` or ``"evolve"`` — the latter is the memetic search on the
    hypergraph engine; only ``bandwidth_mode="tokens"`` weights exist for
    nets).

    *resources* assigns every process a resource **vector** (LUTs, FFs,
    BRAMs, DSPs — :mod:`repro.fpga.resources`) and *rmax* the matching
    per-resource budget sequence; the partition is then computed under
    componentwise constraints by the vector path of
    :func:`partition_graph` (``model="graph"`` with method ``"gp"`` /
    ``"evolve"`` only).  Accepted spellings: a ``{process name:
    ResourceVector}`` mapping, a node-ordered ``ResourceVector``
    sequence, or a ready ``(n, R)`` matrix.

    *n_jobs* and *cache* are forwarded to the partitioner under
    :func:`partition_graph`'s rules — ``n_jobs`` needs a method with
    independent randomized work (``"gp"`` / ``"evolve"``), ``cache``
    belongs to the memoised methods; both are rejected elsewhere to keep
    the knobs honest.  *refine* follows the same discipline
    (``docs/refinement.md``): with ``model="graph"`` it is forwarded to
    :func:`partition_graph` (methods ``"gp"``/``"mlkp"``/``"evolve"``);
    with ``model="hypergraph"`` only ``method="evolve"`` has a
    refinement stage to swap, so anything but ``"fm"`` is rejected for
    ``"gp"``/``"hyper"``.

    Returns ``(result, mapping_structure, names)`` — the second element is
    the :class:`WGraph` or :class:`HGraph` that was partitioned, and
    *names[i]* is the process mapped to node *i*.
    """
    if model not in _MODELS:
        raise PartitionError(f"unknown model {model!r}; valid models: {_MODELS}")
    check_refine_mode(refine)
    if refine != "fm" and model == "hypergraph" and method != "evolve":
        raise PartitionError(
            f"refine={refine!r} with model='hypergraph' is supported by "
            f"method='evolve' only (gp/hyper have no pluggable refinement "
            f"stage there), got method={method!r}"
        )
    if resources is not None and model != "graph":
        raise PartitionError(
            "resources (vector budgets) are supported with model='graph' "
            f"only, got model={model!r}"
        )
    ppn = (
        program_or_ppn
        if isinstance(program_or_ppn, PPN)
        else derive_ppn(program_or_ppn)
    )
    if model == "hypergraph":
        if method not in ("gp", "hyper", "evolve"):
            raise PartitionError(
                f"model='hypergraph' supports methods 'gp'/'hyper'/'evolve', "
                f"got {method!r}"
            )
        if bandwidth_mode != "tokens":
            raise PartitionError(
                "model='hypergraph' supports only bandwidth_mode='tokens' "
                f"(net weights are token-set sizes), got {bandwidth_mode!r}"
            )
        constraints = ConstraintSpec(bmax=bmax, rmax=rmax)
        # argument validation strictly before the PPN → hypergraph
        # conversion: a bad knob must not cost the conversion first
        if method == "evolve":
            if config is not None and not isinstance(config, EvolveConfig):
                raise PartitionError(
                    "method='evolve' takes an EvolveConfig, got "
                    f"{type(config).__name__}"
                )
            hg, names = ppn.to_hypergraph(bandwidth_scale=bandwidth_scale)
            result = evolve_partition(
                hg, k, constraints,
                config=_fold_refine(config, refine, EvolveConfig),
                seed=seed, n_jobs=n_jobs, cache=cache,
            )
            return result, hg, names
        if config is not None and not isinstance(config, HyperConfig):
            raise PartitionError(
                "model='hypergraph' takes a HyperConfig, got "
                f"{type(config).__name__}"
            )
        if n_jobs not in (None, 1):
            raise PartitionError(
                "n_jobs needs a method with independent randomized work; "
                "with model='hypergraph' that is method='evolve'"
            )
        if cache is not True:
            raise PartitionError(
                "cache is only supported by method='evolve', "
                f"got method={method!r}"
            )
        hg, names = ppn.to_hypergraph(bandwidth_scale=bandwidth_scale)
        result = hyper_partition(hg, k, constraints, config=config, seed=seed)
        return result, hg, names
    g, names = ppn_to_mapped_graph(
        ppn, mode=bandwidth_mode, scale=bandwidth_scale
    )
    result = partition_graph(
        g, k, bmax=bmax, rmax=rmax, method=method, seed=seed, config=config,
        n_jobs=n_jobs, cache=cache,
        resources=(
            None if resources is None
            else _ppn_resource_matrix(resources, names)
        ),
        refine=refine,
    )
    return result, g, names


def map_to_fpgas(
    g: WGraph,
    result: PartitionResult,
    bmax: float,
    rmax: float,
    names: list[str] | None = None,
    system: MultiFPGASystem | None = None,
) -> Mapping:
    """Bind a partition to a (default: homogeneous all-to-all) platform."""
    if system is None:
        system = MultiFPGASystem.homogeneous(result.k, rmax=rmax, bmax=bmax)
    if system.k != result.k:
        raise PartitionError(
            f"system has {system.k} devices but partition has k={result.k}"
        )
    return Mapping(g, np.asarray(result.assign), system, names=names)
