"""One-call entry points tying the substrates together.

``partition_graph``
    Graph + constraints → :class:`~repro.partition.base.PartitionResult`
    via any of the four partitioners.

``partition_ppn``
    SANLP or derived PPN → mapping graph (token or sustained-bandwidth
    weights) → partition.

``map_to_fpgas``
    Partition → :class:`~repro.fpga.mapping.Mapping` on a homogeneous
    multi-FPGA system, validated.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.mapping import Mapping
from repro.fpga.system import MultiFPGASystem
from repro.graph.wgraph import WGraph
from repro.kpn.traffic import ppn_to_mapped_graph
from repro.partition.base import PartitionResult
from repro.partition.exact import exact_partition
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.mlkp import mlkp_partition
from repro.partition.spectral import spectral_partition
from repro.polyhedral.ppn import PPN, derive_ppn
from repro.polyhedral.program import SANLP
from repro.util.errors import PartitionError

__all__ = ["partition_graph", "partition_ppn", "map_to_fpgas"]

_METHODS = ("gp", "mlkp", "spectral", "exact")


def partition_graph(
    g: WGraph,
    k: int,
    bmax: float = float("inf"),
    rmax: float = float("inf"),
    method: str = "gp",
    seed=None,
    config: GPConfig | None = None,
) -> PartitionResult:
    """Partition *g* into *k* parts under the paper's two constraints.

    *method*: ``"gp"`` (the paper's constrained partitioner, default),
    ``"mlkp"`` (METIS-like, constraints audited only), ``"spectral"``,
    or ``"exact"`` (≤20 nodes, constraints enforced).
    """
    constraints = ConstraintSpec(bmax=bmax, rmax=rmax)
    if method == "gp":
        return gp_partition(g, k, constraints, config=config, seed=seed)
    if method == "mlkp":
        return mlkp_partition(g, k, seed=seed, constraints=constraints)
    if method == "spectral":
        return spectral_partition(g, k, constraints=constraints)
    if method == "exact":
        return exact_partition(g, k, constraints, enforce=not constraints.unconstrained)
    raise PartitionError(
        f"unknown method {method!r}; valid methods: {_METHODS}"
    )


def partition_ppn(
    program_or_ppn: SANLP | PPN,
    k: int,
    bmax: float = float("inf"),
    rmax: float = float("inf"),
    method: str = "gp",
    bandwidth_mode: str = "tokens",
    bandwidth_scale: float = 1.0,
    seed=None,
    config: GPConfig | None = None,
) -> tuple[PartitionResult, WGraph, list[str]]:
    """Derive (if needed), weight, and partition a process network.

    Returns ``(result, graph, names)`` — *names[i]* is the process mapped
    to node *i*, so ``names[j] for j where assign[j]==c`` lists FPGA *c*'s
    processes.
    """
    ppn = (
        program_or_ppn
        if isinstance(program_or_ppn, PPN)
        else derive_ppn(program_or_ppn)
    )
    g, names = ppn_to_mapped_graph(
        ppn, mode=bandwidth_mode, scale=bandwidth_scale
    )
    result = partition_graph(
        g, k, bmax=bmax, rmax=rmax, method=method, seed=seed, config=config
    )
    return result, g, names


def map_to_fpgas(
    g: WGraph,
    result: PartitionResult,
    bmax: float,
    rmax: float,
    names: list[str] | None = None,
    system: MultiFPGASystem | None = None,
) -> Mapping:
    """Bind a partition to a (default: homogeneous all-to-all) platform."""
    if system is None:
        system = MultiFPGASystem.homogeneous(result.k, rmax=rmax, bmax=bmax)
    if system.k != result.k:
        raise PartitionError(
            f"system has {system.k} devices but partition has k={result.k}"
        )
    return Mapping(g, np.asarray(result.assign), system, names=names)
