"""One-call entry points tying the substrates together.

``partition_graph``
    Graph + constraints → :class:`~repro.partition.base.PartitionResult`
    via any of the partitioners: the paper's constrained ``"gp"``, the
    METIS-like ``"mlkp"``, ``"spectral"``, ``"exact"``, ``"hyper"`` —
    the connectivity-metric multilevel partitioner run on the graph's
    2-pin hypergraph lift (equivalent objective, hypergraph machinery) —
    or ``"evolve"``, the memetic population search over the GP machinery
    (see ``docs/evolve.md``).

``partition_ppn``
    SANLP or derived PPN → mapping model → partition.  Two traffic models:

    * ``model="graph"`` (default) — the paper's 2-pin edge-cut model via
      :func:`~repro.kpn.traffic.ppn_to_mapped_graph` (token or sustained
      bandwidth weights).
    * ``model="hypergraph"`` — one hyperedge per producer token set via
      :meth:`~repro.polyhedral.ppn.PPN.to_hypergraph`, partitioned under
      the (λ−1) connectivity metric, which charges a multicast once per
      extra FPGA instead of once per consumer (see ``docs/hypergraph.md``).

``map_to_fpgas``
    Partition → :class:`~repro.fpga.mapping.Mapping` on a homogeneous
    multi-FPGA system, validated.
"""

from __future__ import annotations

import numpy as np

from repro.evolve.ea import EvolveConfig, evolve_partition
from repro.fpga.mapping import Mapping
from repro.fpga.system import MultiFPGASystem
from repro.graph.wgraph import WGraph
from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.partition import HyperConfig, hyper_partition
from repro.kpn.traffic import ppn_to_mapped_graph
from repro.partition.base import PartitionResult
from repro.partition.exact import exact_partition
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.mlkp import mlkp_partition
from repro.partition.spectral import spectral_partition
from repro.polyhedral.ppn import PPN, derive_ppn
from repro.polyhedral.program import SANLP
from repro.util.errors import PartitionError

__all__ = ["partition_graph", "partition_ppn", "map_to_fpgas"]

_METHODS = ("gp", "mlkp", "spectral", "exact", "hyper", "evolve")
_MODELS = ("graph", "hypergraph")
#: Methods with independent randomized work to race across processes.
_JOBS_METHODS = ("gp", "evolve")


def partition_graph(
    g: WGraph,
    k: int,
    bmax: float = float("inf"),
    rmax: float = float("inf"),
    method: str = "gp",
    seed=None,
    config: GPConfig | HyperConfig | EvolveConfig | None = None,
    n_jobs: int | None = 1,
    cache: bool = True,
) -> PartitionResult:
    """Partition *g* into *k* parts under the paper's two constraints.

    *method*: ``"gp"`` (the paper's constrained partitioner, default),
    ``"mlkp"`` (METIS-like, constraints audited only), ``"spectral"``,
    ``"exact"`` (≤20 nodes, constraints enforced), ``"hyper"`` (the
    connectivity-metric multilevel partitioner on the 2-pin hypergraph
    lift; takes a :class:`~repro.hypergraph.partition.HyperConfig`), or
    ``"evolve"`` (the memetic population search; takes an
    :class:`~repro.evolve.ea.EvolveConfig`, see ``docs/evolve.md``).

    *n_jobs* races the method's independent randomized work across worker
    processes (``-1`` = all CPUs): GP's retry cycles, or evolve's seeding
    members and offspring batches; results are bit-identical for every
    value (see ``docs/parallel.md``).  It is honoured by ``"gp"`` and
    ``"evolve"`` — the other methods are deterministic single-pass
    algorithms with nothing independent to race — and rejected with any
    other method to keep the knob honest.  *cache* likewise belongs to
    ``"evolve"`` only (the sole memoised method here; ``cache=False``
    forces a cold run) and is rejected elsewhere.
    """
    constraints = ConstraintSpec(bmax=bmax, rmax=rmax)
    if n_jobs not in (None, 1) and method not in _JOBS_METHODS:
        raise PartitionError(
            f"n_jobs is only supported by methods {_JOBS_METHODS}, "
            f"got method={method!r}"
        )
    if cache is not True and method != "evolve":
        raise PartitionError(
            f"cache is only supported by method='evolve', got method={method!r}"
        )
    if method == "evolve":
        if config is not None and not isinstance(config, EvolveConfig):
            raise PartitionError(
                f"method='evolve' takes an EvolveConfig, "
                f"got {type(config).__name__}"
            )
        return evolve_partition(
            g, k, constraints, config=config, seed=seed, n_jobs=n_jobs,
            cache=cache,
        )
    if method == "gp":
        if config is not None and not isinstance(config, GPConfig):
            raise PartitionError(
                f"method='gp' takes a GPConfig, got {type(config).__name__}"
            )
        return gp_partition(
            g, k, constraints, config=config, seed=seed, n_jobs=n_jobs
        )
    if method == "mlkp":
        return mlkp_partition(g, k, seed=seed, constraints=constraints)
    if method == "spectral":
        return spectral_partition(g, k, constraints=constraints)
    if method == "exact":
        return exact_partition(g, k, constraints, enforce=not constraints.unconstrained)
    if method == "hyper":
        if config is not None and not isinstance(config, HyperConfig):
            raise PartitionError(
                "method='hyper' takes a HyperConfig, got "
                f"{type(config).__name__}"
            )
        return hyper_partition(
            HGraph.from_wgraph(g), k, constraints, config=config, seed=seed
        )
    raise PartitionError(
        f"unknown method {method!r}; valid methods: {_METHODS}"
    )


def partition_ppn(
    program_or_ppn: SANLP | PPN,
    k: int,
    bmax: float = float("inf"),
    rmax: float = float("inf"),
    method: str = "gp",
    model: str = "graph",
    bandwidth_mode: str = "tokens",
    bandwidth_scale: float = 1.0,
    seed=None,
    config: GPConfig | HyperConfig | EvolveConfig | None = None,
    n_jobs: int | None = 1,
    cache: bool = True,
) -> tuple[PartitionResult, WGraph | HGraph, list[str]]:
    """Derive (if needed), weight, and partition a process network.

    With ``model="graph"`` the PPN is flattened to the paper's 2-pin
    mapping graph and *method* picks the graph partitioner.  With
    ``model="hypergraph"`` multicast channels stay hyperedges and a
    connectivity-metric partitioner runs (*method* must be ``"gp"``,
    ``"hyper"`` or ``"evolve"`` — the latter is the memetic search on the
    hypergraph engine; only ``bandwidth_mode="tokens"`` weights exist for
    nets).

    *n_jobs* and *cache* are forwarded to the partitioner under
    :func:`partition_graph`'s rules — ``n_jobs`` needs a method with
    independent randomized work (``"gp"`` / ``"evolve"``), ``cache``
    belongs to ``"evolve"``; both are rejected elsewhere to keep the
    knobs honest.

    Returns ``(result, mapping_structure, names)`` — the second element is
    the :class:`WGraph` or :class:`HGraph` that was partitioned, and
    *names[i]* is the process mapped to node *i*.
    """
    if model not in _MODELS:
        raise PartitionError(f"unknown model {model!r}; valid models: {_MODELS}")
    ppn = (
        program_or_ppn
        if isinstance(program_or_ppn, PPN)
        else derive_ppn(program_or_ppn)
    )
    if model == "hypergraph":
        if method not in ("gp", "hyper", "evolve"):
            raise PartitionError(
                f"model='hypergraph' supports methods 'gp'/'hyper'/'evolve', "
                f"got {method!r}"
            )
        if bandwidth_mode != "tokens":
            raise PartitionError(
                "model='hypergraph' supports only bandwidth_mode='tokens' "
                f"(net weights are token-set sizes), got {bandwidth_mode!r}"
            )
        constraints = ConstraintSpec(bmax=bmax, rmax=rmax)
        # argument validation strictly before the PPN → hypergraph
        # conversion: a bad knob must not cost the conversion first
        if method == "evolve":
            if config is not None and not isinstance(config, EvolveConfig):
                raise PartitionError(
                    "method='evolve' takes an EvolveConfig, got "
                    f"{type(config).__name__}"
                )
            hg, names = ppn.to_hypergraph(bandwidth_scale=bandwidth_scale)
            result = evolve_partition(
                hg, k, constraints, config=config, seed=seed, n_jobs=n_jobs,
                cache=cache,
            )
            return result, hg, names
        if config is not None and not isinstance(config, HyperConfig):
            raise PartitionError(
                "model='hypergraph' takes a HyperConfig, got "
                f"{type(config).__name__}"
            )
        if n_jobs not in (None, 1):
            raise PartitionError(
                "n_jobs needs a method with independent randomized work; "
                "with model='hypergraph' that is method='evolve'"
            )
        if cache is not True:
            raise PartitionError(
                "cache is only supported by method='evolve', "
                f"got method={method!r}"
            )
        hg, names = ppn.to_hypergraph(bandwidth_scale=bandwidth_scale)
        result = hyper_partition(hg, k, constraints, config=config, seed=seed)
        return result, hg, names
    g, names = ppn_to_mapped_graph(
        ppn, mode=bandwidth_mode, scale=bandwidth_scale
    )
    result = partition_graph(
        g, k, bmax=bmax, rmax=rmax, method=method, seed=seed, config=config,
        n_jobs=n_jobs, cache=cache,
    )
    return result, g, names


def map_to_fpgas(
    g: WGraph,
    result: PartitionResult,
    bmax: float,
    rmax: float,
    names: list[str] | None = None,
    system: MultiFPGASystem | None = None,
) -> Mapping:
    """Bind a partition to a (default: homogeneous all-to-all) platform."""
    if system is None:
        system = MultiFPGASystem.homogeneous(result.k, rmax=rmax, bmax=bmax)
    if system.k != result.k:
        raise PartitionError(
            f"system has {system.k} devices but partition has k={result.k}"
        )
    return Mapping(g, np.asarray(result.assign), system, names=names)
