"""Experiment report formatting in the paper's table layout.

The paper's tables (EXPERIMENT I-III) have columns: Algorithms, Total
Edge-Cuts, Total Time(S), Maximum Resource Allocation, Maximum Local
bandwidth.  :func:`result_table` renders any set of
:class:`~repro.partition.base.PartitionResult` that way;
:func:`comparison_report` adds the constraint verdict lines the captions
carry ("both constraints are met", "resource is violated ...").
"""

from __future__ import annotations

from repro.partition.base import PartitionResult
from repro.partition.metrics import ConstraintSpec
from repro.util.tables import format_table

__all__ = [
    "result_table",
    "comparison_report",
    "multires_report",
    "PAPER_COLUMNS",
]

PAPER_COLUMNS = [
    "Algorithms",
    "Total Edge-Cuts",
    "Total Time(S)",
    "Maximum Resource Allocation",
    "Maximum Local bandwidth",
]


def result_table(results: list[PartitionResult], title: str | None = None) -> str:
    """Fixed-width table in the paper's column order."""
    rows = [r.table_row() for r in results]
    return format_table(PAPER_COLUMNS, rows, title=title)


def _verdict(r: PartitionResult, constraints: ConstraintSpec) -> str:
    bw_ok = r.metrics.bandwidth_violation == 0.0
    res_ok = r.metrics.resource_violation == 0.0
    if bw_ok and res_ok:
        return "both constraints are met"
    if not bw_ok and not res_ok:
        return "both constraints are violated"
    if not bw_ok:
        return "bandwidth is violated but resource is met"
    return "resource is violated but bandwidth is met"


def comparison_report(
    results: list[PartitionResult],
    constraints: ConstraintSpec,
    title: str | None = None,
) -> str:
    """Paper-style table plus per-algorithm constraint verdicts."""
    lines = [result_table(results, title=title)]
    lines.append(
        f"constraints: Bmax = {constraints.bmax:g}, Rmax = {constraints.rmax:g}"
    )
    for r in results:
        lines.append(f"  {r.algorithm}: {_verdict(r, constraints)}")
    return "\n".join(lines)


def multires_report(results, constraints, title: str | None = None) -> str:
    """Paper-style table for **vector-resource** runs.

    *results* carry :class:`~repro.partition.vector_state.MultiResMetrics`
    (``MultiResResult`` or an ``EA-vector`` ``PartitionResult``);
    *constraints* is a :class:`~repro.partition.vector_state.
    VectorConstraints`.  The single "Maximum Resource Allocation" column
    becomes one max-load column per resource, and the caption line lists
    every componentwise budget.
    """
    names = constraints.names or tuple(
        f"r{i}" for i in range(constraints.n_resources)
    )
    cols = (
        ["Algorithms", "Total Edge-Cuts", "Total Time(S)"]
        + [f"Max {n}" for n in names]
        + ["Maximum Local bandwidth"]
    )
    rows = [
        [
            r.algorithm,
            r.metrics.cut,
            round(r.runtime, 4),
            *r.metrics.max_loads,
            r.metrics.max_local_bandwidth,
        ]
        for r in results
    ]
    lines = [format_table(cols, rows, title=title)]
    caps = ", ".join(
        f"{n} <= {c:g}" for n, c in zip(names, constraints.rmax)
    )
    lines.append(f"constraints: Bmax = {constraints.bmax:g}; {caps}")
    for r in results:
        lines.append(f"  {r.algorithm}: {_verdict(r, constraints)}")
    return "\n".join(lines)
