"""Fiduccia-Mattheyses two-way refinement (paper Section II.A.2).

The FM discipline implemented here is the classic one the paper relies on:

1. one node moves at a time (never pairs),
2. every node moves at most once per pass ("locked" after moving),
3. moves may be *negative-gain* — the pass continues past local minima and
   the best prefix of the move sequence is kept,
4. a gain priority structure gives near-linear passes.

Balance is a *constraint*, not part of the objective: the best prefix is
selected lexicographically by ``(weight-cap violation, cut)``, so a pass
first restores the side-weight caps, then minimises the cut among compliant
prefixes.  Without caps the caller gets a sensible default — each side is
capped at half the total weight plus one node's worth of slack — because an
unconstrained "bisection" would degenerate to moving every node to one side.

Gains are tracked with a lazy max-heap instead of the original bucket array:
edge weights here are floats (bandwidths), so the O(1) bucket indexing trick
does not apply directly; the heap keeps the pass at O(m log n).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionState
from repro.partition.metrics import check_assignment, cut_value, part_weights
from repro.util.errors import PartitionError

__all__ = ["fm_pass_bisection", "fm_refine_bisection", "default_side_caps"]


def default_side_caps(g: WGraph) -> tuple[float, float]:
    """Default side-weight caps: half the total plus one max-node of slack."""
    slack = float(g.node_weights.max()) if g.n else 0.0
    cap = g.total_node_weight / 2.0 + slack
    return (cap, cap)


def _side_limits(
    g: WGraph, max_weight: tuple[float, float] | None
) -> tuple[float, float]:
    if max_weight is None:
        return default_side_caps(g)
    lo, hi = max_weight
    if lo < 0 or hi < 0:
        raise PartitionError(f"side weight limits must be >= 0, got {max_weight}")
    return (float(lo), float(hi))


def _cap_violation(part_weight: np.ndarray, limits: tuple[float, float]) -> float:
    return max(0.0, part_weight[0] - limits[0]) + max(
        0.0, part_weight[1] - limits[1]
    )


def fm_pass_bisection(
    g: WGraph,
    assign: np.ndarray,
    max_weight: tuple[float, float] | None = None,
) -> tuple[np.ndarray, float]:
    """One FM pass over a bisection.

    Parameters
    ----------
    g, assign:
        Graph and 0/1 assignment.
    max_weight:
        ``(limit_side0, limit_side1)`` caps on the node-weight sum of each
        side; ``None`` uses :func:`default_side_caps`.  Moves into a side
        that would exceed its cap are skipped, except that an over-cap side
        may always shed weight.

    Returns
    -------
    (new_assign, new_cut):
        The prefix with the lexicographically best ``(cap violation, cut)``,
        never worse than the input under that order.
    """
    a = check_assignment(g, assign, 2)
    limits = _side_limits(g, max_weight)
    state = PartitionState(g, a, 2)

    heap: list[tuple[float, int, int]] = []  # (-gain, tiebreak, node)
    for u in range(g.n):
        heap.append((-state.gain(u, 1 - int(state.assign[u])), u, u))
    heapq.heapify(heap)
    locked = np.zeros(g.n, dtype=bool)

    best_assign = state.assign.copy()
    best_key = (_cap_violation(state.part_weight, limits), state.cut)
    current_cut = state.cut
    moved = 0

    while heap:
        neg_gain, _, u = heapq.heappop(heap)
        if locked[u]:
            continue
        src = int(state.assign[u])
        dest = 1 - src
        true_gain = state.gain(u, dest)
        if -neg_gain != true_gain:  # stale entry: reinsert with fresh gain
            heapq.heappush(heap, (-true_gain, u + g.n * (moved + 1), u))
            continue
        w_u = float(g.node_weights[u])
        dest_ok = state.part_weight[dest] + w_u <= limits[dest]
        src_over = state.part_weight[src] > limits[src]
        if not dest_ok and not src_over:
            locked[u] = True  # cannot legally move this pass
            continue
        state.move(u, dest)
        locked[u] = True
        moved += 1
        current_cut -= true_gain
        key = (_cap_violation(state.part_weight, limits), current_cut)
        if key < best_key:
            best_key = key
            best_assign = state.assign.copy()
        # refresh neighbours' gains lazily
        for v in state.g.neighbors(u):
            v = int(v)
            if not locked[v]:
                gv = state.gain(v, 1 - int(state.assign[v]))
                heapq.heappush(heap, (-gv, v + g.n * (moved + 1), v))

    return best_assign, best_key[1]


def fm_refine_bisection(
    g: WGraph,
    assign: np.ndarray,
    max_weight: tuple[float, float] | None = None,
    max_passes: int = 10,
) -> np.ndarray:
    """Run FM passes until no pass improves ``(cap violation, cut)``.

    "The best bi-section observed during an iteration is used as input for
    the next iteration" (Section II.A.2).
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, 2).copy()
    limits = _side_limits(g, max_weight)
    key = (
        _cap_violation(part_weights(g, a, 2), limits),
        cut_value(g, a),
    )
    for _ in range(max_passes):
        new_a, _ = fm_pass_bisection(g, a, max_weight=limits)
        new_key = (
            _cap_violation(part_weights(g, new_a, 2), limits),
            cut_value(g, new_a),
        )
        if new_key >= key:
            break
        a, key = new_a, new_key
    return a
