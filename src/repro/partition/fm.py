"""Fiduccia-Mattheyses two-way refinement (paper Section II.A.2).

The FM discipline implemented here is the classic one the paper relies on:

1. one node moves at a time (never pairs),
2. every node moves at most once per pass ("locked" after moving),
3. moves may be *negative-gain* — the pass continues past local minima and
   the best prefix of the move sequence is kept,
4. a gain priority structure gives near-linear passes.

Balance is a *constraint*, not part of the objective: the best prefix is
selected lexicographically by ``(weight-cap violation, cut)``, so a pass
first restores the side-weight caps, then minimises the cut among compliant
prefixes.  Without caps the caller gets a sensible default — each side is
capped at half the total weight plus one node's worth of slack — because an
unconstrained "bisection" would degenerate to moving every node to one side.

Gains are tracked with the shared
:class:`~repro.partition.refine_state.BucketQueue`: edge weights here are
floats (bandwidths), so the O(1) dense-bucket indexing trick does not apply
directly, but gain values repeat heavily and the bucket queue pays one heap
operation per *distinct* gain instead of one per pending move.  Gains
themselves are O(1) reads from the engine's connectivity matrix, and the
best prefix is recovered by rewinding the move trail instead of copying the
assignment on every improvement.  See ``docs/refinement.md`` for the
invariants and tie-breaking rules.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.metrics import check_assignment
from repro.partition.refine_state import BucketQueue, RefinementState
from repro.util.errors import PartitionError

__all__ = ["fm_pass_bisection", "fm_refine_bisection", "default_side_caps"]


def default_side_caps(g: WGraph) -> tuple[float, float]:
    """Default side-weight caps: half the total plus one max-node of slack."""
    slack = float(g.node_weights.max()) if g.n else 0.0
    cap = g.total_node_weight / 2.0 + slack
    return (cap, cap)


def _side_limits(
    g: WGraph, max_weight: tuple[float, float] | None
) -> tuple[float, float]:
    if max_weight is None:
        return default_side_caps(g)
    lo, hi = max_weight
    if lo < 0 or hi < 0:
        raise PartitionError(f"side weight limits must be >= 0, got {max_weight}")
    return (float(lo), float(hi))


def _cap_violation(part_weight: np.ndarray, limits: tuple[float, float]) -> float:
    return max(0.0, part_weight[0] - limits[0]) + max(
        0.0, part_weight[1] - limits[1]
    )


def _fm_pass(
    st: RefinementState, limits: tuple[float, float]
) -> tuple[float, float]:
    """One FM pass on an engine state holding a bisection.

    Runs the move sequence, then rewinds the state to the prefix with the
    lexicographically best ``(cap violation, cut)``; returns that key.
    """
    g = st.g
    queue = BucketQueue()
    flip = 1 - st.assign
    gains = st.conn_at(flip) - st.conn_at(st.assign)
    for u in range(g.n):  # ascending id = deterministic equal-gain order
        queue.push(-float(gains[u]), u)
    locked = np.zeros(g.n, dtype=bool)

    st.clear_trail()
    best_key = (_cap_violation(st.part_weight, limits), st.cut)
    best_mark = st.snapshot()
    current_cut = st.cut

    while queue:
        neg_gain, u = queue.pop()
        if locked[u]:
            continue
        src = int(st.assign[u])
        dest = 1 - src
        true_gain = st.gain(u, dest)
        if -neg_gain != true_gain:  # stale entry: reinsert with fresh gain
            queue.push(-true_gain, u)
            continue
        w_u = float(g.node_weights[u])
        dest_ok = st.part_weight[dest] + w_u <= limits[dest]
        src_over = st.part_weight[src] > limits[src]
        if not dest_ok and not src_over:
            locked[u] = True  # cannot legally move this pass
            continue
        st.move(u, dest)
        locked[u] = True
        current_cut -= true_gain
        key = (_cap_violation(st.part_weight, limits), current_cut)
        if key < best_key:
            best_key = key
            best_mark = st.snapshot()
        # refresh neighbours' gains lazily, in ascending id order (CSR
        # adjacency rows are strictly ascending by construction)
        for v in g.neighbors(u):
            v = int(v)
            if not locked[v]:
                queue.push(-st.gain(v, 1 - int(st.assign[v])), v)

    st.rollback(best_mark)
    st.clear_trail()
    return best_key


def fm_pass_bisection(
    g: WGraph,
    assign: np.ndarray,
    max_weight: tuple[float, float] | None = None,
) -> tuple[np.ndarray, float]:
    """One FM pass over a bisection.

    Parameters
    ----------
    g, assign:
        Graph and 0/1 assignment.
    max_weight:
        ``(limit_side0, limit_side1)`` caps on the node-weight sum of each
        side; ``None`` uses :func:`default_side_caps`.  Moves into a side
        that would exceed its cap are skipped, except that an over-cap side
        may always shed weight.

    Returns
    -------
    (new_assign, new_cut):
        The prefix with the lexicographically best ``(cap violation, cut)``,
        never worse than the input under that order.
    """
    a = check_assignment(g, assign, 2)
    limits = _side_limits(g, max_weight)
    st = RefinementState(g, a, 2)
    key = _fm_pass(st, limits)
    return st.assign.copy(), key[1]


def fm_refine_bisection(
    g: WGraph,
    assign: np.ndarray,
    max_weight: tuple[float, float] | None = None,
    max_passes: int = 10,
) -> np.ndarray:
    """Run FM passes until no pass improves ``(cap violation, cut)``.

    "The best bi-section observed during an iteration is used as input for
    the next iteration" (Section II.A.2).  The engine state is built once
    and carried across passes — each pass ends rewound to its best prefix,
    so the next pass starts exactly from "the best bi-section observed".
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, 2)
    limits = _side_limits(g, max_weight)
    st = RefinementState(g, a, 2)
    key = (_cap_violation(st.part_weight, limits), st.cut)
    for _ in range(max_passes):
        new_key = _fm_pass(st, limits)
        if new_key >= key:
            break
        key = new_key
    return st.assign.copy()
