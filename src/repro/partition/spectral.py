"""Spectral partitioning baseline (paper Section II.B).

Classic spectral bisection: split on the Fiedler vector (second-smallest
eigenvector of the weighted graph Laplacian), weight-balanced at the
splitting threshold; k parts by recursive bisection.  Serves as the
global-method comparator the related-work section discusses, and as the
"costly other algorithm" option for coarsest-level initial partitioning.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.fm import fm_refine_bisection
from repro.partition.metrics import ConstraintSpec, evaluate_partition
import repro.obs as _obs
from repro.util.errors import PartitionError

__all__ = ["fiedler_vector", "spectral_bisection", "spectral_partition"]

_DENSE_CUTOVER = 64  # below this, dense eigensolve is faster and more robust


def laplacian(g: WGraph) -> scipy.sparse.csr_matrix:
    """Weighted combinatorial Laplacian L = D - A as sparse CSR."""
    eu, ev, ew = g.edge_array
    n = g.n
    rows = np.concatenate([eu, ev])
    cols = np.concatenate([ev, eu])
    vals = np.concatenate([-ew, -ew])
    a = scipy.sparse.coo_matrix((vals, (rows, cols)), shape=(n, n))
    deg = np.zeros(n)
    np.add.at(deg, eu, ew)
    np.add.at(deg, ev, ew)
    return (a + scipy.sparse.diags(deg)).tocsr()


def fiedler_vector(g: WGraph) -> np.ndarray:
    """Eigenvector of the second-smallest Laplacian eigenvalue.

    Requires a connected graph with at least 2 nodes.
    """
    if g.n < 2:
        raise PartitionError("Fiedler vector needs at least 2 nodes")
    if not g.is_connected():
        raise PartitionError("spectral bisection requires a connected graph")
    lap = laplacian(g)
    if g.n <= _DENSE_CUTOVER:
        vals, vecs = scipy.linalg.eigh(lap.toarray())
        return vecs[:, 1]
    vals, vecs = scipy.sparse.linalg.eigsh(lap, k=2, sigma=-1e-8, which="LM")
    order = np.argsort(vals)
    return vecs[:, order[1]]


def spectral_bisection(g: WGraph, refine: bool = True) -> np.ndarray:
    """Bisect by thresholding the Fiedler vector at the weighted median.

    The threshold is placed so both sides carry ~half the node weight
    (weighted-median split), then optionally polished with one FM run.
    """
    f = fiedler_vector(g)
    order = np.argsort(f, kind="stable")
    cum = np.cumsum(g.node_weights[order])
    half = g.total_node_weight / 2.0
    split = int(np.searchsorted(cum, half)) + 1
    split = min(max(split, 1), g.n - 1)
    assign = np.zeros(g.n, dtype=np.int64)
    assign[order[split:]] = 1
    if refine:
        cap = 0.6 * g.total_node_weight  # generous balance envelope
        assign = fm_refine_bisection(g, assign, max_weight=(cap, cap))
    return assign


def spectral_partition(
    g: WGraph,
    k: int,
    refine: bool = True,
    constraints: ConstraintSpec | None = None,
) -> PartitionResult:
    """Recursive spectral bisection into *k* parts.

    Like the METIS baseline, any *constraints* are only audited afterwards,
    never enforced.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > g.n:
        raise PartitionError(f"k={k} exceeds node count {g.n}")
    sw = _obs.timed_span("spectral", nodes=g.n, k=k)
    assign = np.zeros(g.n, dtype=np.int64)

    def rec(nodes: np.ndarray, k_sub: int, first_label: int) -> None:
        if k_sub == 1:
            assign[nodes] = first_label
            return
        sub, idx = g.subgraph(nodes)
        if sub.n < 2:
            assign[nodes] = first_label
            return
        if not sub.is_connected():
            # split off components round-robin instead of spectrally
            comps = sub.connected_components()
            halves: list[list[int]] = [[], []]
            weights = [0.0, 0.0]
            for comp in sorted(comps, key=lambda c: -sub.node_weights[c].sum()):
                side = int(weights[1] < weights[0])
                halves[side].extend(comp)
                weights[side] += float(sub.node_weights[comp].sum())
            a = np.zeros(sub.n, dtype=np.int64)
            a[halves[1]] = 1
        else:
            a = spectral_bisection(sub, refine=refine)
            if len(set(a.tolist())) < 2:  # degenerate split: force one node off
                a[:] = 0
                a[int(np.argmax(sub.node_weights))] = 1
        k0 = k_sub // 2
        rec(idx[a == 0], k0, first_label)
        rec(idx[a == 1], k_sub - k0, first_label + k0)

    with sw:
        rec(np.arange(g.n, dtype=np.int64), k, 0)
    return PartitionResult(
        assign=assign,
        k=k,
        metrics=evaluate_partition(g, assign, k, constraints),
        algorithm="spectral",
        runtime=sw.elapsed,
        constraints=constraints or ConstraintSpec(),
    )
