"""Partitioning toolkit (systems S2-S5 in DESIGN.md).

Contents
--------
* :mod:`repro.partition.base` — partition containers and results.
* :mod:`repro.partition.refine_state` — the shared vectorized refinement
  engine (incremental connectivity/bandwidth/boundary state + gain buckets)
  every refinement pass runs on; see ``docs/refinement.md``.
* :mod:`repro.partition.metrics` — cut / pairwise-bandwidth / resource metrics
  and the paper's two mapping constraints.
* :mod:`repro.partition.coarsen` — the three matchings (random maximal, heavy
  edge, K-means) and graph contraction (Section IV.A).
* :mod:`repro.partition.initial` — greedy resource-aware initial partitioning
  with restarts (Section IV.B).
* :mod:`repro.partition.fm` / :mod:`repro.partition.kl` — local refinement.
* :mod:`repro.partition.kway_refine` — k-way boundary refinement, both
  cut-driven (METIS style) and constraint-driven (GP style).
* :mod:`repro.partition.flow_refine` — corridor max-flow refinement on the
  same engine seam (``refine="flow"/"fm+flow"``; ``docs/refinement.md``).
* :mod:`repro.partition.mlkp` — METIS-like unconstrained multilevel k-way
  baseline.
* :mod:`repro.partition.gp` — the paper's constrained partitioner.
* :mod:`repro.partition.spectral`, :mod:`repro.partition.exact` — extra
  baselines (spectral recursive bisection; exact branch & bound).
* :mod:`repro.partition.vector_state` / :mod:`repro.partition.multires`
  — componentwise multi-resource budgets on the same engine seam
  (``docs/multires.md``).
"""

from repro.partition.base import PartitionResult
from repro.partition.flow_refine import (
    REFINE_MODES,
    FlowConfig,
    check_refine_mode,
    constrained_flow_pass,
    run_flow_refine,
)
from repro.partition.refine_state import BucketQueue, RefinementState
from repro.partition.metrics import (
    ConstraintSpec,
    PartitionMetrics,
    bandwidth_matrix,
    cut_value,
    evaluate_partition,
    part_weights,
)
from repro.partition.vector_state import (
    MultiResMetrics,
    VectorConstraints,
    VectorGraph,
    VectorRefinementState,
)

__all__ = [
    "PartitionResult",
    "RefinementState",
    "BucketQueue",
    "ConstraintSpec",
    "PartitionMetrics",
    "cut_value",
    "bandwidth_matrix",
    "part_weights",
    "evaluate_partition",
    "VectorConstraints",
    "MultiResMetrics",
    "VectorGraph",
    "VectorRefinementState",
    "REFINE_MODES",
    "FlowConfig",
    "check_refine_mode",
    "constrained_flow_pass",
    "run_flow_refine",
]
