"""Portfolio partitioning: race configurations, keep the goodness winner.

GP's quality depends on its knobs (matchings, restarts, V-cycles, seeds).
The cheapest robust strategy — and what practitioners actually run — is a
small portfolio: several configurations on the same instance, best result
by the goodness order wins.  The portfolio never returns anything worse
than its best member, so it safely wraps GP in pipelines that must not
regress (at the cost of portfolio-size × runtime).

Execution layer (see ``docs/parallel.md``):

* **Racing** — members are independent given their ``spawn_seeds``-derived
  seeds, so ``n_jobs>1`` races them across worker processes through
  :func:`repro.util.parallel.parallel_map` with results consumed in
  member order: the winner (assignment, metrics, goodness key, ``info``
  except measured runtime) is **bit-identical for every** ``n_jobs``.
* **Early cancel** — ``stop_on_feasible`` truncates at the first feasible
  member in portfolio order, serial and parallel alike.
* **Memoisation** — completed portfolio runs are cached in-process keyed
  by ``(graph digest, k, constraints, configs, seed, stop_on_feasible)``;
  repeated calls (parameter sweeps, notebook re-runs) are free.  Only
  reproducible seeds (``int`` / ``None``) are cached — a live Generator
  is consumed by the call and cannot key anything.

``race_models`` extends the idea across *traffic models*: the same PPN is
partitioned once through the 2-pin edge-cut flattening and once through
the multicast-preserving hypergraph model, both candidates are scored on
the hypergraph's connectivity metrics (the common currency — what the
multicasts actually cost on the wire), and the goodness order picks the
winner.
"""

from __future__ import annotations

import copy
import dataclasses
from collections.abc import Sequence

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.goodness import goodness_key
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.util.errors import InfeasibleError, PartitionError
import repro.obs as _obs
from repro.util.parallel import KeyedCache, parallel_map
from repro.util.rng import spawn_seeds

__all__ = [
    "default_portfolio",
    "portfolio_partition",
    "race_models",
    "portfolio_cache",
    "clear_portfolio_cache",
]

#: In-process memo of completed portfolio runs (see module docstring).
portfolio_cache = KeyedCache(maxsize=64, name="portfolio")


def clear_portfolio_cache() -> None:
    """Drop every memoised portfolio result (and reset hit/miss stats)."""
    portfolio_cache.clear()


def default_portfolio() -> list[GPConfig]:
    """A spread of four complementary GP configurations."""
    return [
        GPConfig(),  # paper defaults
        GPConfig(restarts=20, level_candidates=4),  # wider initial search
        GPConfig(vcycles=2),  # deeper refinement
        GPConfig(matchings=("hem",), restarts=5, max_cycles=30),  # many cheap cycles
    ]


def _run_member(context, task) -> PartitionResult:
    """Run one portfolio member (a parallel_map worker).

    The instance travels in the shared *context* (shipped once per
    worker); only the member's config and seed are per-task.
    """
    g, k, constraints = context
    cfg, s = task
    return gp_partition(g, k, constraints, cfg, seed=s)


def _cached_copy(result: PartitionResult) -> PartitionResult:
    """Deliver a cached result without aliasing the stored arrays/info."""
    return dataclasses.replace(
        result,
        assign=result.assign.copy(),
        info={**copy.deepcopy(result.info), "cache_hit": True},
    )


def portfolio_partition(
    g: WGraph,
    k: int,
    constraints: ConstraintSpec,
    configs: Sequence[GPConfig] | None = None,
    seed=None,
    on_infeasible: str = "return",
    stop_on_feasible: bool = False,
    n_jobs: int | None = 1,
    cache: bool = True,
) -> PartitionResult:
    """Run every configuration; return the goodness-best result.

    Parameters
    ----------
    g:
        Process-network graph (node weights = resources, edge weights =
        bandwidth).
    k:
        Number of partitions (FPGAs).
    constraints:
        ``Bmax`` / ``Rmax`` caps; either may be ``inf``.
    configs:
        The portfolio; :func:`default_portfolio` when omitted.
    seed:
        Reproducible member seeds are derived from this with
        :func:`~repro.util.rng.spawn_seeds` (member *i* always gets the
        same seed regardless of execution order or ``n_jobs``).
    on_infeasible:
        ``"return"`` or ``"raise"`` — applied to the portfolio outcome,
        regardless of member configs' own settings.
    stop_on_feasible:
        Return the best result among members up to and including the
        first feasible one in portfolio order, instead of racing the full
        portfolio (latency over quality).
    n_jobs:
        Worker processes racing the members (``1`` = serial in-process,
        ``-1`` = all CPUs).  The result is bit-identical for every value;
        see the module docstring.
    cache:
        Memoise the outcome in :data:`portfolio_cache` and reuse it for
        identical ``(graph, k, constraints, configs, seed,
        stop_on_feasible)`` calls.  Hits return a fresh copy flagged with
        ``info["cache_hit"]=True``; only ``int``/``None`` seeds
        participate.

    Returns
    -------
    PartitionResult
        Algorithm ``"GP-portfolio"``, with per-member summaries in
        ``info["runs"]`` and the winner's own ``info`` under
        ``info["winner"]``.
    """
    if on_infeasible not in ("return", "raise"):
        raise PartitionError(
            f"on_infeasible must be return/raise, got {on_infeasible!r}"
        )
    configs = list(configs) if configs is not None else default_portfolio()
    if not configs:
        raise PartitionError("portfolio must contain at least one config")
    # members never raise; the portfolio applies its own policy at the end
    members = [
        cfg
        if cfg.on_infeasible == "return"
        else dataclasses.replace(cfg, on_infeasible="return")
        for cfg in configs
    ]

    cacheable = cache and (seed is None or isinstance(seed, int))
    key = None
    found, hit = False, None
    if cacheable:
        key = (
            "portfolio",
            g.content_digest(),
            k,
            constraints,
            tuple(members),
            seed,
            stop_on_feasible,
        )
        try:
            # lookup (not get): a cached falsy value must stay a hit
            found, hit = portfolio_cache.lookup(key)
        except TypeError:
            # a config subclass smuggled in an unhashable field: run
            # uncached rather than refuse the call
            cacheable, key = False, None
        if found:
            result = _cached_copy(hit)
            if not result.feasible and on_infeasible == "raise":
                raise InfeasibleError(
                    f"no portfolio member found a feasible partitioning "
                    f"({result.info['members']} configurations tried)",
                    best=result,
                )
            return result

    seeds = spawn_seeds(seed, len(members))
    with _obs.timed_span("portfolio", members=len(members), k=k) as sw:
        results = parallel_map(
            _run_member,
            list(zip(members, seeds)),
            n_jobs=n_jobs,
            stop=(lambda r: r.feasible) if stop_on_feasible else None,
            context=(g, k, constraints),
        )

    best: PartitionResult | None = None
    best_key = None
    runs = []
    for cfg, res in zip(members, results):
        runs.append(
            {"config": cfg, "feasible": res.feasible, "cut": res.metrics.cut}
        )
        gkey = goodness_key(res.metrics, constraints)
        if best_key is None or gkey < best_key:
            best, best_key = res, gkey

    assert best is not None
    result = PartitionResult(
        assign=best.assign,
        k=k,
        metrics=best.metrics,
        algorithm="GP-portfolio",
        runtime=sw.elapsed,
        constraints=constraints,
        info={"members": len(runs), "runs": runs, "winner": best.info},
    )
    if cacheable:
        portfolio_cache.put(
            key,
            dataclasses.replace(
                result,
                assign=result.assign.copy(),
                info=copy.deepcopy(result.info),
            ),
        )
    if not result.feasible and on_infeasible == "raise":
        raise InfeasibleError(
            f"no portfolio member found a feasible partitioning "
            f"({len(runs)} configurations tried)",
            best=result,
        )
    return result


def _run_race_member(task) -> PartitionResult:
    """Run one traffic-model candidate (a parallel_map worker).

    Imports of the hypergraph substrate are deferred so the partition
    package stays importable on its own.
    """
    kind, payload = task
    if kind == "graph":
        g, k, constraints, cfg, s = payload
        return gp_partition(g, k, constraints, cfg, seed=s)
    from repro.hypergraph.partition import hyper_partition

    hg, k, constraints, cfg, s = payload
    return hyper_partition(hg, k, constraints, config=cfg, seed=s)


def race_models(
    program_or_ppn,
    k: int,
    constraints: ConstraintSpec,
    seed=None,
    gp_config: GPConfig | None = None,
    hyper_config=None,
    bandwidth_scale: float = 1.0,
    n_jobs: int | None = 1,
) -> PartitionResult:
    """Race the 2-pin edge-cut model against the hypergraph model on a PPN.

    Both partitions are evaluated on the **hypergraph connectivity
    metrics** — the (λ−1) traffic a multicast really generates — so the
    goodness order compares like with like; the edge-cut candidate's own
    (over-counted) metrics are kept in ``info["graph"]["edge_cut_metrics"]``
    for reference.  The winner is returned with ``algorithm
    "model-portfolio"`` and per-model summaries in ``info``.

    ``n_jobs=2`` runs the two models in separate worker processes; each
    model's seed is derived up front, so the winner is identical to a
    serial race.  Imports of the polyhedral/KPN substrates are deferred
    so the partition package stays importable on its own.
    """
    from repro.kpn.traffic import ppn_to_mapped_graph
    from repro.polyhedral.ppn import PPN, derive_ppn

    ppn = (
        program_or_ppn
        if isinstance(program_or_ppn, PPN)
        else derive_ppn(program_or_ppn)
    )
    s_graph, s_hyper = spawn_seeds(seed, 2)
    hg, _names = ppn.to_hypergraph(bandwidth_scale=bandwidth_scale)

    with _obs.timed_span("race_models", k=k) as sw:
        g, _ = ppn_to_mapped_graph(ppn, mode="tokens", scale=bandwidth_scale)
        member_cfg = gp_config or GPConfig()
        if member_cfg.on_infeasible != "return":
            member_cfg = dataclasses.replace(member_cfg, on_infeasible="return")
        # members never raise: an infeasible model must still lose the race,
        # not abort it
        if hyper_config is not None and hyper_config.on_infeasible != "return":
            hyper_config = dataclasses.replace(
                hyper_config, on_infeasible="return"
            )
        res_graph, res_hyper = parallel_map(
            _run_race_member,
            [
                ("graph", (g, k, constraints, member_cfg, s_graph)),
                ("hyper", (hg, k, constraints, hyper_config, s_hyper)),
            ],
            n_jobs=n_jobs,
        )

    from repro.hypergraph.metrics import evaluate_hyper_partition

    # common currency: both assignments priced on the hypergraph
    candidates = {
        "graph": (
            res_graph,
            evaluate_hyper_partition(hg, res_graph.assign, k, constraints),
        ),
        "hypergraph": (res_hyper, res_hyper.metrics),
    }
    winner_name, (winner, winner_metrics) = min(
        candidates.items(), key=lambda kv: goodness_key(kv[1][1], constraints)
    )
    info = {
        "winner": winner_name,
        "graph": {
            "connectivity": candidates["graph"][1].cut,
            "feasible": candidates["graph"][1].feasible,
            "edge_cut_metrics": res_graph.metrics,
        },
        "hypergraph": {
            "connectivity": candidates["hypergraph"][1].cut,
            "feasible": candidates["hypergraph"][1].feasible,
        },
    }
    return PartitionResult(
        assign=winner.assign,
        k=k,
        metrics=winner_metrics,
        algorithm="model-portfolio",
        runtime=sw.elapsed,
        constraints=constraints,
        info=info,
    )
