"""Portfolio partitioning: race configurations, keep the goodness winner.

GP's quality depends on its knobs (matchings, restarts, V-cycles, seeds).
The cheapest robust strategy — and what practitioners actually run — is a
small portfolio: several configurations on the same instance, best result
by the goodness order wins.  The portfolio never returns anything worse
than its best member, so it safely wraps GP in pipelines that must not
regress (at the cost of portfolio-size × runtime).

``race_models`` extends the idea across *traffic models*: the same PPN is
partitioned once through the 2-pin edge-cut flattening and once through
the multicast-preserving hypergraph model, both candidates are scored on
the hypergraph's connectivity metrics (the common currency — what the
multicasts actually cost on the wire), and the goodness order picks the
winner.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.goodness import goodness_key
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.util.errors import InfeasibleError, PartitionError
from repro.util.rng import spawn_seeds
from repro.util.stopwatch import Stopwatch

__all__ = ["default_portfolio", "portfolio_partition", "race_models"]


def default_portfolio() -> list[GPConfig]:
    """A spread of four complementary GP configurations."""
    return [
        GPConfig(),  # paper defaults
        GPConfig(restarts=20, level_candidates=4),  # wider initial search
        GPConfig(vcycles=2),  # deeper refinement
        GPConfig(matchings=("hem",), restarts=5, max_cycles=30),  # many cheap cycles
    ]


def portfolio_partition(
    g: WGraph,
    k: int,
    constraints: ConstraintSpec,
    configs: Sequence[GPConfig] | None = None,
    seed=None,
    on_infeasible: str = "return",
    stop_on_feasible: bool = False,
) -> PartitionResult:
    """Run every configuration; return the goodness-best result.

    Parameters
    ----------
    configs:
        The portfolio; :func:`default_portfolio` when omitted.
    stop_on_feasible:
        Return the first feasible result instead of racing the full
        portfolio (latency over quality).
    on_infeasible:
        ``"return"`` or ``"raise"`` — applied to the portfolio outcome,
        regardless of member configs' own settings.
    """
    if on_infeasible not in ("return", "raise"):
        raise PartitionError(
            f"on_infeasible must be return/raise, got {on_infeasible!r}"
        )
    configs = list(configs) if configs is not None else default_portfolio()
    if not configs:
        raise PartitionError("portfolio must contain at least one config")
    seeds = spawn_seeds(seed, len(configs))

    sw = Stopwatch().start()
    best: PartitionResult | None = None
    best_key = None
    runs = []
    for cfg, s in zip(configs, seeds):
        # members never raise; the portfolio applies its own policy at the end
        member_cfg = (
            cfg
            if cfg.on_infeasible == "return"
            else dataclasses.replace(cfg, on_infeasible="return")
        )
        res = gp_partition(g, k, constraints, member_cfg, seed=s)
        runs.append(
            {
                "config": member_cfg,
                "feasible": res.feasible,
                "cut": res.metrics.cut,
            }
        )
        key = goodness_key(res.metrics, constraints)
        if best_key is None or key < best_key:
            best, best_key = res, key
        if stop_on_feasible and res.feasible:
            break
    sw.stop()

    assert best is not None
    result = PartitionResult(
        assign=best.assign,
        k=k,
        metrics=best.metrics,
        algorithm="GP-portfolio",
        runtime=sw.elapsed,
        constraints=constraints,
        info={"members": len(runs), "runs": runs, "winner": best.info},
    )
    if not result.feasible and on_infeasible == "raise":
        raise InfeasibleError(
            f"no portfolio member found a feasible partitioning "
            f"({len(runs)} configurations tried)",
            best=result,
        )
    return result


def race_models(
    program_or_ppn,
    k: int,
    constraints: ConstraintSpec,
    seed=None,
    gp_config: GPConfig | None = None,
    hyper_config=None,
    bandwidth_scale: float = 1.0,
) -> PartitionResult:
    """Race the 2-pin edge-cut model against the hypergraph model on a PPN.

    Both partitions are evaluated on the **hypergraph connectivity
    metrics** — the (λ−1) traffic a multicast really generates — so the
    goodness order compares like with like; the edge-cut candidate's own
    (over-counted) metrics are kept in ``info["graph"]["edge_cut_metrics"]``
    for reference.  The winner is returned with ``algorithm
    "model-portfolio"`` and per-model summaries in ``info``.

    Imports of the polyhedral/KPN substrates are deferred so the partition
    package stays importable on its own.
    """
    from repro.hypergraph.metrics import evaluate_hyper_partition
    from repro.hypergraph.partition import hyper_partition
    from repro.kpn.traffic import ppn_to_mapped_graph
    from repro.polyhedral.ppn import PPN, derive_ppn

    ppn = (
        program_or_ppn
        if isinstance(program_or_ppn, PPN)
        else derive_ppn(program_or_ppn)
    )
    s_graph, s_hyper = spawn_seeds(seed, 2)
    hg, _names = ppn.to_hypergraph(bandwidth_scale=bandwidth_scale)

    sw = Stopwatch().start()
    g, _ = ppn_to_mapped_graph(ppn, mode="tokens", scale=bandwidth_scale)
    member_cfg = gp_config or GPConfig()
    if member_cfg.on_infeasible != "return":
        member_cfg = dataclasses.replace(member_cfg, on_infeasible="return")
    # members never raise: an infeasible model must still lose the race,
    # not abort it
    if hyper_config is not None and hyper_config.on_infeasible != "return":
        hyper_config = dataclasses.replace(hyper_config, on_infeasible="return")
    res_graph = gp_partition(g, k, constraints, member_cfg, seed=s_graph)
    res_hyper = hyper_partition(
        hg, k, constraints, config=hyper_config, seed=s_hyper
    )
    sw.stop()

    # common currency: both assignments priced on the hypergraph
    candidates = {
        "graph": (
            res_graph,
            evaluate_hyper_partition(hg, res_graph.assign, k, constraints),
        ),
        "hypergraph": (res_hyper, res_hyper.metrics),
    }
    winner_name, (winner, winner_metrics) = min(
        candidates.items(), key=lambda kv: goodness_key(kv[1][1], constraints)
    )
    info = {
        "winner": winner_name,
        "graph": {
            "connectivity": candidates["graph"][1].cut,
            "feasible": candidates["graph"][1].feasible,
            "edge_cut_metrics": res_graph.metrics,
        },
        "hypergraph": {
            "connectivity": candidates["hypergraph"][1].cut,
            "feasible": candidates["hypergraph"][1].feasible,
        },
    }
    return PartitionResult(
        assign=winner.assign,
        k=k,
        metrics=winner_metrics,
        algorithm="model-portfolio",
        runtime=sw.elapsed,
        constraints=constraints,
        info=info,
    )
