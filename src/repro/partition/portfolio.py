"""Portfolio partitioning: race configurations, keep the goodness winner.

GP's quality depends on its knobs (matchings, restarts, V-cycles, seeds).
The cheapest robust strategy — and what practitioners actually run — is a
small portfolio: several configurations on the same instance, best result
by the goodness order wins.  The portfolio never returns anything worse
than its best member, so it safely wraps GP in pipelines that must not
regress (at the cost of portfolio-size × runtime).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.goodness import goodness_key
from repro.partition.gp import GPConfig, gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.util.errors import InfeasibleError, PartitionError
from repro.util.rng import spawn_seeds
from repro.util.stopwatch import Stopwatch

__all__ = ["default_portfolio", "portfolio_partition"]


def default_portfolio() -> list[GPConfig]:
    """A spread of four complementary GP configurations."""
    return [
        GPConfig(),  # paper defaults
        GPConfig(restarts=20, level_candidates=4),  # wider initial search
        GPConfig(vcycles=2),  # deeper refinement
        GPConfig(matchings=("hem",), restarts=5, max_cycles=30),  # many cheap cycles
    ]


def portfolio_partition(
    g: WGraph,
    k: int,
    constraints: ConstraintSpec,
    configs: Sequence[GPConfig] | None = None,
    seed=None,
    on_infeasible: str = "return",
    stop_on_feasible: bool = False,
) -> PartitionResult:
    """Run every configuration; return the goodness-best result.

    Parameters
    ----------
    configs:
        The portfolio; :func:`default_portfolio` when omitted.
    stop_on_feasible:
        Return the first feasible result instead of racing the full
        portfolio (latency over quality).
    on_infeasible:
        ``"return"`` or ``"raise"`` — applied to the portfolio outcome,
        regardless of member configs' own settings.
    """
    if on_infeasible not in ("return", "raise"):
        raise PartitionError(
            f"on_infeasible must be return/raise, got {on_infeasible!r}"
        )
    configs = list(configs) if configs is not None else default_portfolio()
    if not configs:
        raise PartitionError("portfolio must contain at least one config")
    seeds = spawn_seeds(seed, len(configs))

    sw = Stopwatch().start()
    best: PartitionResult | None = None
    best_key = None
    runs = []
    for cfg, s in zip(configs, seeds):
        # members never raise; the portfolio applies its own policy at the end
        member_cfg = (
            cfg
            if cfg.on_infeasible == "return"
            else GPConfig(**{**cfg.__dict__, "on_infeasible": "return"})
        )
        res = gp_partition(g, k, constraints, member_cfg, seed=s)
        runs.append(
            {
                "config": member_cfg,
                "feasible": res.feasible,
                "cut": res.metrics.cut,
            }
        )
        key = goodness_key(res.metrics, constraints)
        if best_key is None or key < best_key:
            best, best_key = res, key
        if stop_on_feasible and res.feasible:
            break
    sw.stop()

    assert best is not None
    result = PartitionResult(
        assign=best.assign,
        k=k,
        metrics=best.metrics,
        algorithm="GP-portfolio",
        runtime=sw.elapsed,
        constraints=constraints,
        info={"members": len(runs), "runs": runs, "winner": best.info},
    )
    if not result.feasible and on_infeasible == "raise":
        raise InfeasibleError(
            f"no portfolio member found a feasible partitioning "
            f"({len(runs)} configurations tried)",
            best=result,
        )
    return result
