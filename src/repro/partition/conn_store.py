"""Connectivity stores — the memory representation behind the engine.

The refinement engine's dominant allocation is the per-node
part-connectivity bookkeeping: for every node *u* and part *c*, the
summed weight of *u*'s edges into *c* and the count of *u*'s neighbours
living in *c*.  :class:`~repro.partition.refine_state.RefinementState`
historically materialised both as dense ``(k, n)`` matrices — ~16·k·n
bytes, which is ~2 GB at n=1M, k=128 *before a single move* and the
blocker to million-node instances (ROADMAP item 2).

This module puts that bookkeeping behind a small protocol with two
interchangeable implementations:

:class:`DenseConnStore`
    The historical layout, verbatim: ``conn`` float64 and ``ncnt`` int64
    of shape ``(k, n)``.  Every query and update is the exact numpy
    expression the engine used inline, so the dense path is
    **bit-identical** to the pre-store engine (pinned by the existing
    differential corpora).

:class:`SparseConnStore`
    A packed CSR-of-slices layout sized by *degree*, not by *k*: node
    *u* owns a slice of capacity ``min(deg(u), k)`` holding
    ``(part int32, weight float64, count int32)`` entries for the parts
    it actually touches — ~16 bytes per *incident part* instead of 16
    bytes per *(part, node)* cell.  On bounded-degree process networks
    this is 8–15× below dense at k=64 and the ratio grows with k.
    Entries within a slice are unsorted; removal is swap-with-last;
    a move updates only the slices of the moved node's neighbours
    (O(deg) amortised).  The capacity invariant — live entries =
    distinct neighbour parts ≤ min(deg, k), since every live entry has
    count ≥ 1 and counts sum to deg — guarantees a slice never
    overflows as long as zero-count entries are removed before new
    parts are inserted.

Exactness contract: like the engine itself, the sparse store is exact
under **integer-valued weights** (the invariant the differential suites
pin).  Under such weights a part's summed weight reaches exactly 0.0
when its neighbour count does, so dropping the entry loses nothing;
with irrational float weights the dense matrix can retain
accumulation dust in zero-count cells that the sparse store sheds —
both are within float tolerance of the true value, but only the
integer-weight case is bit-reproducible across formats.

``make_conn_store`` picks the format: explicit ``"dense"``/``"sparse"``,
or ``"auto"`` — sparse iff ``k * n`` exceeds :data:`AUTO_SPARSE_CELLS`.
The threshold is far above every pinned differential corpus, so
existing results are byte-stable by construction.  See
``docs/refinement.md`` (connectivity formats) for the full contract.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import PartitionError

__all__ = [
    "AUTO_SPARSE_CELLS",
    "CONN_FORMATS",
    "check_conn_format",
    "make_conn_store",
    "DenseConnStore",
    "SparseConnStore",
]

#: ``"auto"`` switches to the sparse store when ``k * n`` exceeds this
#: many cells (4M cells = 64 MB of dense matrices).  Far above every
#: pinned differential corpus, so auto never changes small-instance
#: results; far below the million-node target, so large instances never
#: allocate the dense matrices at all.
AUTO_SPARSE_CELLS = 4_000_000

CONN_FORMATS = ("auto", "dense", "sparse")


def check_conn_format(conn_format: str) -> str:
    """Validate a ``conn_format`` knob value (shared by every entry point)."""
    if conn_format not in CONN_FORMATS:
        raise PartitionError(
            f"conn_format must be one of {CONN_FORMATS}, got {conn_format!r}"
        )
    return conn_format


def make_conn_store(g, assign: np.ndarray, k: int, conn_format: str = "auto"):
    """Build the connectivity store for *(g, assign, k)* in *conn_format*."""
    check_conn_format(conn_format)
    if conn_format == "auto":
        conn_format = "sparse" if k * g.n > AUTO_SPARSE_CELLS else "dense"
    if conn_format == "dense":
        return DenseConnStore(g, assign, k)
    return SparseConnStore(g, assign, k)


def _flat_slice_indices(
    lo: np.ndarray, ln: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat indices enumerating many slices at once.

    Given per-slice starts *lo* and lengths *ln*, returns ``(rows,
    flat)``: ``flat`` walks every slice's entries in order, ``rows[i]``
    is the slice that ``flat[i]`` belongs to.  The repeat/cumsum trick
    replaces a Python loop over slices with three O(total) array ops.
    """
    total = int(ln.sum())
    rows = np.repeat(np.arange(ln.size), ln)
    offsets = np.arange(total) - np.repeat(np.cumsum(ln) - ln, ln)
    return rows, np.repeat(lo, ln) + offsets


class DenseConnStore:
    """The historical dense ``(k, n)`` layout, expression for expression.

    ``conn[c, u]`` — weight of *u*'s edges into part *c*;
    ``ncnt[c, u]`` — count of *u*'s neighbours in part *c*.
    """

    __slots__ = ("k", "n", "conn", "ncnt", "_idx")

    format = "dense"

    def __init__(self, g, assign: np.ndarray, k: int) -> None:
        self.k = int(k)
        self.n = g.n
        a = assign
        eu, ev, ew = g.edge_array
        conn = np.zeros((self.k, self.n), dtype=np.float64)
        np.add.at(conn, (a[ev], eu), ew)
        np.add.at(conn, (a[eu], ev), ew)
        self.conn = conn
        ncnt = np.zeros((self.k, self.n), dtype=np.int64)
        ones = np.ones(len(ew), dtype=np.int64)
        np.add.at(ncnt, (a[ev], eu), ones)
        np.add.at(ncnt, (a[eu], ev), ones)
        self.ncnt = ncnt
        self._idx = np.arange(self.n)

    @property
    def nbytes(self) -> int:
        return self.conn.nbytes + self.ncnt.nbytes

    # -- queries ------------------------------------------------------- #
    def col(self, u: int) -> np.ndarray:
        """Node *u*'s dense connectivity column, shape ``(k,)`` (a copy)."""
        return self.conn[:, u].copy()

    def gain_pair(self, u: int, src: int, dest: int) -> float:
        return float(self.conn[dest, u] - self.conn[src, u])

    def conn_at(self, parts: np.ndarray) -> np.ndarray:
        """``out[i] = conn[parts[i], i]`` — one weight per node."""
        return self.conn[parts, self._idx]

    def same_part_counts(self, assign: np.ndarray) -> np.ndarray:
        """``out[i] = ncnt[assign[i], i]`` — same-part neighbour counts."""
        return self.ncnt[assign, self._idx]

    def gather_cols(self, nodes: np.ndarray) -> np.ndarray:
        """Columns of *nodes* as a ``(len(nodes), k)`` contiguous gather."""
        return self.conn.T[nodes]

    def touching(self, part: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of nodes with positive weight into *part*."""
        return self.conn[part] > 0.0

    def dense_conn(self) -> np.ndarray:
        return self.conn

    def dense_counts(self) -> np.ndarray:
        return self.ncnt

    # -- updates ------------------------------------------------------- #
    def apply_move(
        self, src: int, dest: int, nbrs: np.ndarray, ws: np.ndarray
    ) -> None:
        """Account a *src*→*dest* move of a node with neighbours *nbrs*."""
        self.conn[src, nbrs] -= ws
        self.conn[dest, nbrs] += ws
        self.ncnt[src, nbrs] -= 1
        self.ncnt[dest, nbrs] += 1

    def copy(self) -> "DenseConnStore":
        out = object.__new__(DenseConnStore)
        out.k = self.k
        out.n = self.n
        out.conn = self.conn.copy()
        out.ncnt = self.ncnt.copy()
        out._idx = self._idx
        return out


class SparseConnStore:
    """Packed per-node part-connectivity slices, sized by degree.

    Node *u* owns ``parts/weights/counts[indptr[u] : indptr[u] +
    nnz[u]]`` within a reserved capacity of ``indptr[u+1] - indptr[u] =
    min(deg(u), k)`` entries; entries are unsorted, one per part the
    node currently touches.  See the module docstring for the capacity
    invariant and the exactness contract.
    """

    __slots__ = ("k", "n", "indptr", "parts", "weights", "counts", "nnz")

    format = "sparse"

    def __init__(self, g, assign: np.ndarray, k: int) -> None:
        self.k = int(k)
        self.n = g.n
        a = assign
        eu, ev, ew = g.edge_array
        csr_indptr = g.csr[0]
        degrees = csr_indptr[1:] - csr_indptr[:-1]
        cap = np.minimum(degrees, self.k).astype(np.int64)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(cap, out=indptr[1:])
        self.indptr = indptr

        # aggregate (node, part) contributions from both edge directions
        node_of = np.concatenate([eu, ev])
        part_of = np.concatenate([a[ev], a[eu]])
        w_of = np.concatenate([ew, ew])
        keys = node_of.astype(np.int64) * self.k + part_of
        uniq, inv = np.unique(keys, return_inverse=True)
        wsum = np.bincount(inv, weights=w_of, minlength=uniq.size)
        csum = np.bincount(inv, minlength=uniq.size)
        node_ids = uniq // self.k
        part_ids = (uniq % self.k).astype(np.int32)

        total = int(indptr[-1])
        parts_arr = np.zeros(total, dtype=np.int32)
        weights_arr = np.zeros(total, dtype=np.float64)
        counts_arr = np.zeros(total, dtype=np.int32)
        nnz = np.bincount(node_ids, minlength=self.n).astype(np.int32)
        # uniq is ascending, so each node's entries are consecutive; the
        # first entry of node u sits at searchsorted(node_ids, u)
        first = np.searchsorted(node_ids, np.arange(self.n))
        pos = indptr[node_ids] + (np.arange(uniq.size) - first[node_ids])
        parts_arr[pos] = part_ids
        weights_arr[pos] = wsum
        counts_arr[pos] = csum.astype(np.int32)
        self.parts = parts_arr
        self.weights = weights_arr
        self.counts = counts_arr
        self.nnz = nnz

    @property
    def nbytes(self) -> int:
        return (
            self.indptr.nbytes
            + self.parts.nbytes
            + self.weights.nbytes
            + self.counts.nbytes
            + self.nnz.nbytes
        )

    # -- queries ------------------------------------------------------- #
    def _slice(self, u: int) -> slice:
        lo = self.indptr[u]
        return slice(lo, lo + self.nnz[u])

    def col(self, u: int) -> np.ndarray:
        out = np.zeros(self.k, dtype=np.float64)
        sl = self._slice(u)
        out[self.parts[sl]] = self.weights[sl]
        return out

    def gain_pair(self, u: int, src: int, dest: int) -> float:
        sl = self._slice(u)
        p = self.parts[sl]
        w = self.weights[sl]
        w_dest = w[p == dest]
        w_src = w[p == src]
        dest_w = float(w_dest[0]) if w_dest.size else 0.0
        src_w = float(w_src[0]) if w_src.size else 0.0
        return dest_w - src_w

    def conn_at(self, parts: np.ndarray) -> np.ndarray:
        rows, flat = _flat_slice_indices(self.indptr[:-1], self.nnz)
        hit = self.parts[flat] == parts[rows]
        out = np.zeros(self.n, dtype=np.float64)
        out[rows[hit]] = self.weights[flat[hit]]
        return out

    def same_part_counts(self, assign: np.ndarray) -> np.ndarray:
        rows, flat = _flat_slice_indices(self.indptr[:-1], self.nnz)
        hit = self.parts[flat] == assign[rows]
        out = np.zeros(self.n, dtype=np.int64)
        out[rows[hit]] = self.counts[flat[hit]]
        return out

    def gather_cols(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.zeros((nodes.size, self.k), dtype=np.float64)
        if nodes.size == 0:
            return out
        rows, flat = _flat_slice_indices(self.indptr[nodes], self.nnz[nodes])
        out[rows, self.parts[flat]] = self.weights[flat]
        return out

    def touching(self, part: int) -> np.ndarray:
        rows, flat = _flat_slice_indices(self.indptr[:-1], self.nnz)
        hit = (self.parts[flat] == part) & (self.weights[flat] > 0.0)
        out = np.zeros(self.n, dtype=bool)
        out[rows[hit]] = True
        return out

    def dense_conn(self) -> np.ndarray:
        """Materialised ``(k, n)`` weight matrix — tests/debugging only."""
        out = np.zeros((self.k, self.n), dtype=np.float64)
        rows, flat = _flat_slice_indices(self.indptr[:-1], self.nnz)
        out[self.parts[flat], rows] = self.weights[flat]
        return out

    def dense_counts(self) -> np.ndarray:
        """Materialised ``(k, n)`` count matrix — tests/debugging only."""
        out = np.zeros((self.k, self.n), dtype=np.int64)
        rows, flat = _flat_slice_indices(self.indptr[:-1], self.nnz)
        out[self.parts[flat], rows] = self.counts[flat]
        return out

    # -- updates ------------------------------------------------------- #
    def apply_move(
        self, src: int, dest: int, nbrs: np.ndarray, ws: np.ndarray
    ) -> None:
        """Account a *src*→*dest* move across the neighbours' slices.

        Order matters for the capacity invariant: decrement the (always
        present) *src* entries first, drop the ones whose count reached
        zero, and only then insert *dest* entries for neighbours that
        had none — after removal every slice holds exactly its live
        distinct parts, so the insert always fits.
        """
        nbrs = np.asarray(nbrs, dtype=np.int64)
        if nbrs.size == 0:
            return
        lo = self.indptr[nbrs]
        ln = self.nnz[nbrs].astype(np.int64)
        rows, flat = _flat_slice_indices(lo, ln)
        p = self.parts[flat]

        # every neighbour has a src entry (the moved node sat in src);
        # rows are ascending, so the selection aligns with nbrs order
        src_flat = flat[p == src]
        self.weights[src_flat] -= ws
        self.counts[src_flat] -= 1

        dest_sel = p == dest
        dest_rows = rows[dest_sel]
        dest_flat = flat[dest_sel]
        self.weights[dest_flat] += ws[dest_rows]
        self.counts[dest_flat] += 1

        # remove src entries whose count hit zero: swap-with-last
        dead = self.counts[src_flat] == 0
        if np.any(dead):
            rm_rows = np.nonzero(dead)[0]  # indices into nbrs
            slot = src_flat[rm_rows]
            last = lo[rm_rows] + ln[rm_rows] - 1
            self.parts[slot] = self.parts[last]
            self.weights[slot] = self.weights[last]
            self.counts[slot] = self.counts[last]
            self.nnz[nbrs[rm_rows]] -= 1

        # insert dest entries for neighbours that had none
        has_dest = np.zeros(nbrs.size, dtype=bool)
        has_dest[dest_rows] = True
        ins = np.nonzero(~has_dest)[0]
        if ins.size:
            slot = self.indptr[nbrs[ins]] + self.nnz[nbrs[ins]]
            self.parts[slot] = dest
            self.weights[slot] = ws[ins]
            self.counts[slot] = 1
            self.nnz[nbrs[ins]] += 1

    def copy(self) -> "SparseConnStore":
        out = object.__new__(SparseConnStore)
        out.k = self.k
        out.n = self.n
        out.indptr = self.indptr  # capacity layout is immutable
        out.parts = self.parts.copy()
        out.weights = self.weights.copy()
        out.counts = self.counts.copy()
        out.nnz = self.nnz.copy()
        return out
