"""Flow-based refinement on the shared engine seam.

Move-at-a-time local search (the constrained FM in
:mod:`repro.partition.kway_refine`) improves a cut one node at a time and
stalls on any improvement that needs a *group* of nodes to cross together.
The strongest modern refiners (the KaHyPar/Mt-KaHyPar lineage) escape that
plateau with **max-flow min-cut on boundary-region subproblems**: carve a
corridor of nodes around the cut between two parts, collapse everything
outside it into a super-source/super-sink, and let a max-flow computation
find the *optimal* cut through the corridor — an entire group move in one
step.  This module is that refiner, written as a second implementation of
the engine-agnostic pass protocol:

* :func:`extract_corridor` — BFS from the pair boundary under a per-side
  size budget, through the state's ``flow_adjacency`` hook (plain weighted
  neighbours on the graph engines; a clique expansion of the incident nets
  on the hypergraph Φ engine, each net *e* contributing
  ``w_e / (|pins(e)| − 1)`` per pin pair — exact on 2-pin nets).
* :class:`FlowNetwork` — a Dinic-style solver (incremental BFS level
  graphs + blocking-flow DFS) on the corridor network, with super-source
  arcs for edges leaving the corridor on side *a* and super-sink arcs for
  side *b*.
* :func:`most_balanced_min_cut` — among the closure of all min cuts
  (every residual-closed superset of the source-reachable set is one),
  pick the source side whose weight is nearest the pair's balance point:
  SCC-condense the free nodes (reachable from neither terminal), then
  greedily admit components in reverse-topological order.  Any choice is
  a true min cut; the greedy only decides *which* one.
* :func:`run_flow_refine` — the pairwise/active-block scheduler: adjacent
  part pairs in decreasing-traffic order, each refined under a
  never-worse acceptance guard on the state's own ``(violation, cut)``
  key (componentwise for the vector-resource engine), with a part pair
  staying *active* only while flow keeps finding improvements around it.

The pass runs on any state exposing the
:class:`~repro.partition.refine_state.RefinementState` move protocol plus
the three flow hooks (``flow_adjacency``, ``pair_boundary``,
``flow_node_weights``) — the scalar graph engine, the hypergraph Φ engine
and the vector-resource engine all qualify, so ``gp_partition``, ``mlkp``,
``vcycle_refine``, ``mr_gp_partition`` and ``evolve_partition`` invoke one
refiner through ``refine="flow"``/``"fm+flow"``.  Unlike
:func:`~repro.partition.kway_refine.run_constrained_fm`, adjacency comes
from the state's hooks rather than a ``neighbors_of`` argument: hypergraph
corridors need *weighted* expansion of the incident nets, which a plain
neighbour list cannot supply.

The flow core is pinned by an exhaustive differential battery
(``tests/test_flow_core.py``: max-flow == brute-force min-cut enumeration
on every small graph), the refiner by invariant and cross-engine suites
(``tests/test_flow_refine.py``).  See ``docs/refinement.md``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

import repro.obs as _obs
from repro.graph.wgraph import WGraph
from repro.partition.metrics import ConstraintSpec, check_assignment
from repro.partition.refine_state import RefinementState
from repro.util.errors import PartitionError

__all__ = [
    "REFINE_MODES",
    "check_refine_mode",
    "FlowConfig",
    "FlowNetwork",
    "most_balanced_min_cut",
    "extract_corridor",
    "run_flow_refine",
    "constrained_flow_pass",
]

_EPS = 1e-12

#: The refinement-stage spellings accepted everywhere a ``refine=`` knob
#: exists (``partition_graph``, the CLI, GP/evolve configs, mlkp/vcycle/
#: multires parameters): ``"fm"`` is each driver's native behaviour
#: (byte-identical to before the knob existed), ``"flow"`` substitutes
#: flow passes for the FM local search, ``"fm+flow"`` runs the native
#: refinement and then a guarded flow stage on the finest level.
REFINE_MODES = ("fm", "flow", "fm+flow")


def check_refine_mode(refine: str) -> str:
    """Validate a ``refine=`` knob value; returns it unchanged."""
    if refine not in REFINE_MODES:
        raise PartitionError(
            f"refine must be one of {REFINE_MODES}, got {refine!r}"
        )
    return refine


@dataclass(frozen=True)
class FlowConfig:
    """Tuning knobs of the flow refinement pass.

    Attributes
    ----------
    corridor_budget:
        Corridor size cap per side of a pair, in nodes.  The pair
        boundary itself is always included even when it exceeds the
        budget (a corridor smaller than the boundary could not represent
        the current cut).  ``None`` (default) scales with the instance:
        ``max(8, n // k)``.
    rounds:
        Scheduler rounds over the active part pairs.  Pairs stay active
        across rounds only while flow keeps improving them, so the
        scheduler usually converges before the cap.
    max_pairs:
        Cap on pairs refined per round, highest-traffic first
        (``None`` = every active pair).
    """

    corridor_budget: int | None = None
    rounds: int = 2
    max_pairs: int | None = None

    def __post_init__(self) -> None:
        if self.corridor_budget is not None and self.corridor_budget < 1:
            raise PartitionError("corridor_budget must be >= 1")
        if self.rounds < 1:
            raise PartitionError("rounds must be >= 1")
        if self.max_pairs is not None and self.max_pairs < 1:
            raise PartitionError("max_pairs must be >= 1")


class FlowNetwork:
    """An s-t flow network over dense small integer node ids.

    Arcs are stored as interleaved residual pairs (arc ``i`` and its
    reverse ``i ^ 1``), the classic adjacency-array layout; capacities are
    floats (process-network bandwidths), compared against ``1e-12``
    everywhere a zero test is needed.  :meth:`max_flow` is Dinic's
    algorithm — incremental BFS level graphs, then blocking-flow DFS with
    per-node arc iterators — which is overkill for corridor-sized
    networks but makes the solver's complexity independent of how large a
    ``corridor_budget`` a caller picks.  ``paths`` counts augmenting
    paths for the obs spans.
    """

    __slots__ = ("n", "head", "to", "cap", "cap0", "paths")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self.head: list[list[int]] = [[] for _ in range(self.n)]
        self.to: list[int] = []
        self.cap: list[float] = []
        self.cap0: list[float] = []  # original capacities (flow readback)
        self.paths = 0

    def add_arc(self, u: int, v: int, cap: float, rev_cap: float = 0.0) -> None:
        """Arc ``u → v`` with capacity *cap* plus its reverse at *rev_cap*
        (``rev_cap=cap`` models an undirected edge)."""
        for x, y, c in ((u, v, float(cap)), (v, u, float(rev_cap))):
            self.head[x].append(len(self.to))
            self.to.append(y)
            self.cap.append(c)
            self.cap0.append(c)

    @property
    def n_arcs(self) -> int:
        return len(self.to)

    def arc_flow(self, i: int) -> float:
        """Signed flow currently on arc *i* (original minus residual)."""
        return self.cap0[i] - self.cap[i]

    def node_excess(self, u: int) -> float:
        """Net outflow of *u* — zero at every interior node of a valid
        flow, ``+value`` at the source, ``−value`` at the sink.

        ``cap[i] + cap[i ^ 1]`` is invariant under augmentation, so
        :meth:`arc_flow` is already the *signed* net flow of arc *i*
        (its partner carries the negation): summing it over the arcs
        leaving *u* counts inflow and outflow exactly once each."""
        return sum(self.arc_flow(i) for i in self.head[u])

    def _levels(self, s: int, t: int) -> list[int] | None:
        level = [-1] * self.n
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for i in self.head[u]:
                v = self.to[i]
                if self.cap[i] > _EPS and level[v] < 0:
                    level[v] = level[u] + 1
                    q.append(v)
        return level if level[t] >= 0 else None

    def _augment(
        self, u: int, t: int, f: float, level: list[int], it: list[int]
    ) -> float:
        if u == t:
            return f
        while it[u] < len(self.head[u]):
            i = self.head[u][it[u]]
            v = self.to[i]
            if self.cap[i] > _EPS and level[v] == level[u] + 1:
                d = self._augment(v, t, min(f, self.cap[i]), level, it)
                if d > _EPS:
                    self.cap[i] -= d
                    self.cap[i ^ 1] += d
                    return d
            it[u] += 1
        level[u] = -1  # dead end: prune for the rest of this phase
        return 0.0

    def max_flow(self, s: int, t: int) -> float:
        """Maximum s-t flow value (mutates residual capacities)."""
        if s == t:
            raise PartitionError("flow source and sink must differ")
        total = 0.0
        while True:
            level = self._levels(s, t)
            if level is None:
                return total
            it = [0] * self.n
            while True:
                pushed = self._augment(s, t, float("inf"), level, it)
                if pushed <= _EPS:
                    break
                total += pushed
                self.paths += 1

    def reach_from(self, s: int) -> list[bool]:
        """Nodes reachable from *s* through residual arcs — the canonical
        (smallest) source side of a min cut after :meth:`max_flow`."""
        mark = [False] * self.n
        mark[s] = True
        q = deque([s])
        while q:
            u = q.popleft()
            for i in self.head[u]:
                v = self.to[i]
                if self.cap[i] > _EPS and not mark[v]:
                    mark[v] = True
                    q.append(v)
        return mark

    def reach_to(self, t: int) -> list[bool]:
        """Nodes that can reach *t* through residual arcs — the canonical
        (smallest) sink side of a min cut after :meth:`max_flow`."""
        mark = [False] * self.n
        mark[t] = True
        q = deque([t])
        while q:
            x = q.popleft()
            for i in self.head[x]:
                # arc i runs x → y, so its partner i^1 runs y → x: y can
                # step to x through the residual iff cap[i^1] > 0
                y = self.to[i]
                if not mark[y] and self.cap[i ^ 1] > _EPS:
                    mark[y] = True
                    q.append(y)
        return mark


def _residual_scc(
    net: FlowNetwork, free: list[bool]
) -> tuple[list[list[int]], dict[int, int]]:
    """Tarjan SCCs of the free nodes under residual arcs, iteratively.

    Emission order is reverse topological on the condensation DAG (every
    component is emitted after all components reachable from it) — the
    order :func:`most_balanced_min_cut` consumes directly.  Roots are
    visited in ascending node id and arcs in insertion order, so the
    decomposition is deterministic.
    """
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    onstack: set[int] = set()
    stack: list[int] = []
    comps: list[list[int]] = []
    comp_of: dict[int, int] = {}
    counter = 0
    for root in range(net.n):
        if not free[root] or root in index:
            continue
        work = [(root, 0)]
        while work:
            u, pi = work.pop()
            if pi == 0:
                index[u] = low[u] = counter
                counter += 1
                stack.append(u)
                onstack.add(u)
            descended = False
            arcs = net.head[u]
            while pi < len(arcs):
                i = arcs[pi]
                pi += 1
                v = net.to[i]
                if net.cap[i] <= _EPS or not free[v]:
                    continue
                if v not in index:
                    work.append((u, pi))
                    work.append((v, 0))
                    descended = True
                    break
                if v in onstack:
                    low[u] = min(low[u], index[v])
            if descended:
                continue
            if low[u] == index[u]:
                comp = []
                while True:
                    x = stack.pop()
                    onstack.discard(x)
                    comp.append(x)
                    comp_of[x] = len(comps)
                    if x == u:
                        break
                comps.append(comp)
            if work:
                p = work[-1][0]
                low[p] = min(low[p], low[u])
    return comps, comp_of


def most_balanced_min_cut(
    net: FlowNetwork,
    s: int,
    t: int,
    weights,
    target: float,
) -> list[bool]:
    """Pick the min cut whose source-side weight is nearest *target*.

    Must be called after :meth:`FlowNetwork.max_flow`.  The closure of
    all min cuts: a set ``A`` is the source side of a min cut iff it
    contains ``R(s)`` (residual-reachable from *s*), excludes ``R⁻(t)``
    (residual-reaching *t*), and is closed under residual arcs — no
    residual arc may leave ``A``.  Free nodes (in neither terminal set)
    can therefore join the source side SCC by SCC, each component only
    after every residual successor among the free components; iterating
    Tarjan's reverse-topological emission order makes that a single
    greedy sweep.  A component is admitted iff it moves the source-side
    weight strictly closer to *target* — any admission pattern yields a
    true min cut (pinned by ``tests/test_flow_core.py``), the greedy
    only chooses among them.
    """
    S = net.reach_from(s)
    T = net.reach_to(t)
    side = list(S)
    free = [not S[v] and not T[v] for v in range(net.n)]
    w_src = sum(float(weights[v]) for v in range(net.n) if S[v])
    if any(free):
        comps, comp_of = _residual_scc(net, free)
        admitted = [False] * len(comps)
        for ci, comp in enumerate(comps):
            closed = True
            for u in comp:
                for i in net.head[u]:
                    if net.cap[i] <= _EPS:
                        continue
                    v = net.to[i]
                    if free[v] and comp_of[v] != ci and not admitted[comp_of[v]]:
                        closed = False
                        break
                if not closed:
                    break
            if not closed:
                continue
            wc = sum(float(weights[u]) for u in comp)
            if abs(w_src + wc - target) + _EPS < abs(w_src - target):
                admitted[ci] = True
                w_src += wc
                for u in comp:
                    side[u] = True
    return side


def extract_corridor(
    st, a: int, b: int, budget: int
) -> tuple[np.ndarray, np.ndarray]:
    """The corridor of the part pair ``(a, b)``: per side, the pair
    boundary plus a BFS-grown margin of same-part nodes.

    Growth runs through the state's ``flow_adjacency`` hook restricted to
    nodes of the growing side, FIFO from the boundary in ascending node
    id, and stops at ``max(budget, |boundary side|)`` nodes — the
    boundary is never truncated (a corridor that misses part of the
    current cut could not improve it).  Returns the two sides as sorted
    id arrays; either may be empty when the pair shares no boundary.
    """
    bnodes = st.pair_boundary(a, b)
    assign = st.assign
    out = []
    for part in (a, b):
        seeds = [int(u) for u in bnodes[assign[bnodes] == part]]
        visited = set(seeds)
        cap = max(int(budget), len(visited))
        q = deque(seeds)
        while q and len(visited) < cap:
            u = q.popleft()
            nbrs, _ = st.flow_adjacency(u)
            for v in nbrs:
                v = int(v)
                if assign[v] == part and v not in visited:
                    visited.add(v)
                    q.append(v)
                    if len(visited) >= cap:
                        break
        out.append(np.array(sorted(visited), dtype=np.int64))
    return out[0], out[1]


def _anchor(st, part: int, corridor: np.ndarray) -> int:
    """The corridor node of *part* farthest from the pair boundary — the
    terminal anchor when the corridor swallowed the whole part.

    Without a remainder to collapse into the super-terminal, the terminal
    would be isolated and the only min cut would relabel the entire side
    (always rejected).  Pinning the most interior node to its part (the
    FlowCutter/KaHyPar piercing heuristic) keeps the subproblem anchored;
    distance ties break toward the smallest node id."""
    members = set(int(u) for u in corridor)
    assign = st.assign
    dist = {
        int(u): 0
        for u in corridor
        if any(
            int(assign[v]) != part
            for v in st.flow_adjacency(int(u))[0]
        )
    }
    q = deque(sorted(dist))
    far = min(members) if not dist else None
    while q:
        u = q.popleft()
        far = u if far is None or dist[u] > dist[far] or (
            dist[u] == dist[far] and u < far
        ) else far
        for v in st.flow_adjacency(u)[0]:
            v = int(v)
            if v in members and v not in dist:
                dist[v] = dist[u] + 1
                q.append(v)
    return int(far)


def _build_network(
    st, a: int, b: int, ca: np.ndarray, cb: np.ndarray
) -> tuple[FlowNetwork, list[int]]:
    """Corridor → flow network: node 0 is the super-source (the collapsed
    remainder of part *a*), node 1 the super-sink (remainder of *b*),
    corridor nodes follow in ``(ca, cb)`` order.  Corridor-internal edges
    become symmetric arc pairs; edges to a non-corridor node of part *a*
    accumulate source capacity, of part *b* sink capacity; edges leaving
    the pair entirely are invisible to this subproblem (moving a corridor
    node cannot change their cut contribution between *a* and *b*).  A
    side whose corridor covers its whole part has no remainder arcs; it
    gets an effectively-infinite arc to its :func:`_anchor` node instead,
    so the terminal stays connected and the side can never be emptied."""
    ids: dict[int, int] = {}
    order: list[int] = []
    for u in ca:
        ids[int(u)] = len(order) + 2
        order.append(int(u))
    for u in cb:
        ids[int(u)] = len(order) + 2
        order.append(int(u))
    net = FlowNetwork(2 + len(order))
    assign = st.assign
    s_cap: dict[int, float] = {}
    t_cap: dict[int, float] = {}
    und: dict[tuple[int, int], float] = {}
    for u in order:
        iu = ids[u]
        nbrs, ws = st.flow_adjacency(u)
        for v, w in zip(nbrs, ws):
            v = int(v)
            pv = int(assign[v])
            if pv != a and pv != b:
                continue
            j = ids.get(v)
            if j is not None:
                if u < v:  # adjacency rows are symmetric: count each pair once
                    key = (iu, j)
                    und[key] = und.get(key, 0.0) + float(w)
            elif pv == a:
                s_cap[iu] = s_cap.get(iu, 0.0) + float(w)
            else:
                t_cap[iu] = t_cap.get(iu, 0.0) + float(w)
    big = sum(und.values()) + sum(s_cap.values()) + sum(t_cap.values()) + 1.0
    if not s_cap and len(ca):
        s_cap[ids[_anchor(st, a, ca)]] = big
    if not t_cap and len(cb):
        t_cap[ids[_anchor(st, b, cb)]] = big
    for (i, j), w in sorted(und.items()):
        net.add_arc(i, j, w, w)
    for i, w in sorted(s_cap.items()):
        net.add_arc(0, i, w)
    for i, w in sorted(t_cap.items()):
        net.add_arc(i, 1, w)
    return net, order


def _try_budget(
    st, a: int, b: int, constraints, budget: int
) -> tuple[bool, int, int, float]:
    """One flow attempt on pair ``(a, b)`` at a fixed corridor *budget*.

    Returns ``(accepted, corridor_size, augmenting_paths, cut_gain)``.
    The candidate relabelling (source side → *a*, rest → *b*) is applied
    through the state's move protocol and kept only if the state's own
    ``(violation, cut)`` key strictly improves and neither part empties —
    otherwise every move is rolled back, so the pass composes with any
    constraint model the state implements (scalar, Φ, componentwise).
    """
    ca, cb = extract_corridor(st, a, b, budget)
    csize = int(ca.size + cb.size)
    if ca.size == 0 or cb.size == 0:
        return False, csize, 0, 0.0
    net, order = _build_network(st, a, b, ca, cb)
    if not net.to:
        return False, csize, 0, 0.0
    net.max_flow(0, 1)
    node_w = st.flow_node_weights()
    weights = [0.0, 0.0] + [float(node_w[u]) for u in order]
    wa = float(st.part_weight[a])
    wb = float(st.part_weight[b])
    weights[0] = wa - float(node_w[ca].sum())
    weights[1] = wb - float(node_w[cb].sum())
    side = most_balanced_min_cut(net, 0, 1, weights, (wa + wb) / 2.0)
    moves = [
        (u, a if side[idx + 2] else b)
        for idx, u in enumerate(order)
        if (a if side[idx + 2] else b) != int(st.assign[u])
    ]
    if not moves:
        return False, csize, net.paths, 0.0
    mark = st.snapshot()
    before = st.key(constraints)
    for u, dest in moves:
        st.move(u, dest)
    after = st.key(constraints)
    if (
        after < before
        and st.part_size[a] > 0
        and st.part_size[b] > 0
    ):
        st.clear_trail()
        return True, csize, net.paths, before[1] - after[1]
    st.rollback(mark)
    return False, csize, net.paths, 0.0


def _refine_pair(
    st, a: int, b: int, constraints, budget: int
) -> tuple[bool, int, int, float]:
    """Flow-refine one part pair in place, adaptively scaling the corridor.

    A wide corridor lets the min cut shift a lot of weight between the
    parts, so its cuts — optimal for the *pair cut* — are often too
    unbalanced to pass the acceptance guard.  Following the adaptive
    scaling idiom of the KaHyPar-lineage refiners, rejection retries with
    the budget halved (a corridor of *h* nodes per side can relabel at
    most *h* nodes, so shrinking it bounds the weight shift) until a
    candidate is accepted or the corridor degenerates to the bare
    boundary.  Returns the totals over all attempts:
    ``(accepted, corridor_size, augmenting_paths, cut_gain)``.
    """
    with _obs.trace_span("flow.pair", a=a, b=b) as sp:
        csize = paths = attempts = 0
        ok, gain = False, 0.0
        bgt = max(int(budget), 1)
        while True:
            ok, c, p, gain = _try_budget(st, a, b, constraints, bgt)
            csize += c
            paths += p
            attempts += 1
            if ok or bgt == 1:
                break
            bgt //= 2
        if _obs.tracing_on():
            sp.set(corridor_size=csize, augmenting_paths=paths,
                   attempts=attempts, cut_improvement=gain, accepted=ok)
        return ok, csize, paths, gain


def run_flow_refine(
    st,
    constraints,
    config: FlowConfig | None = None,
    seed=None,
) -> np.ndarray:
    """The flow pass discipline, engine-agnostic (pairwise scheduler).

    *st* is any refinement-state engine exposing the
    :class:`~repro.partition.refine_state.RefinementState` move protocol
    (``assign``, ``bw``, ``part_weight``/``part_size``, ``key``,
    ``move``/``snapshot``/``rollback``/``clear_trail``) plus the flow
    hooks ``flow_adjacency(u)``, ``pair_boundary(a, b)`` and
    ``flow_node_weights()`` — the second pass implementation on the seam
    :func:`~repro.partition.kway_refine.run_constrained_fm` defines.
    Adjacency comes from the state hooks instead of a ``neighbors_of``
    argument because the Φ engine's corridors need *weighted* clique
    expansion of the incident nets, which a neighbour list cannot carry.

    Per round, part pairs with positive traffic are visited in
    decreasing ``bw[a, b]`` order (ties by pair id); a pair is scheduled
    only while one of its blocks is *active* — touched by an accepted
    improvement in the previous round (every block starts active).  Each
    pair refinement is guarded never-worse on ``st.key(constraints)``,
    so the pass as a whole never worsens ``(violation, cut)`` and
    terminates (every acceptance strictly decreases a bounded key).

    *seed* is accepted for signature parity with the FM driver and
    unused: corridor growth, the flow computation and the most-balanced
    selection are all deterministic.  Returns the refined assignment (a
    copy); the state is left holding it, trail cleared.
    """
    del seed  # the scheduler is deterministic; kept for API parity
    cfg = config or FlowConfig()
    k = int(st.k)
    n = int(st.assign.shape[0])
    budget = (
        cfg.corridor_budget
        if cfg.corridor_budget is not None
        else max(8, n // max(k, 1))
    )
    rec = _obs.metrics_on()
    engine = type(st).__name__ if rec else ""
    pairs_run = accepted = corridor_total = paths_total = 0
    gain_total = 0.0

    st.clear_trail()
    with _obs.trace_span("flow.refine", k=k, nodes=n) as sp:
        active = set(range(k))
        for _ in range(cfg.rounds):
            iu, ju = np.triu_indices(k, k=1)
            traffic = st.bw[iu, ju]
            pairs = [
                (int(x), int(y))
                for x, y, w in zip(iu, ju, traffic)
                if w > _EPS and (int(x) in active or int(y) in active)
            ]
            pairs.sort(key=lambda p: (-float(st.bw[p[0], p[1]]), p))
            if cfg.max_pairs is not None:
                pairs = pairs[: cfg.max_pairs]
            touched: set[int] = set()
            for x, y in pairs:
                ok, csize, paths, gain = _refine_pair(
                    st, x, y, constraints, budget
                )
                pairs_run += 1
                corridor_total += csize
                paths_total += paths
                if ok:
                    accepted += 1
                    gain_total += gain
                    touched.add(x)
                    touched.add(y)
            if not touched:
                break
            active = touched
        if _obs.tracing_on():
            sp.set(pairs=pairs_run, accepted=accepted,
                   cut_improvement=gain_total)
    if rec:
        _obs.add("flow.pairs", pairs_run, engine=engine)
        _obs.add("flow.accepted", accepted, engine=engine)
        _obs.add("flow.corridor_size", corridor_total, engine=engine)
        _obs.add("flow.augmenting_paths", paths_total, engine=engine)
        _obs.add("flow.cut_improvement", gain_total, engine=engine)
    st.clear_trail()
    return st.assign.copy()


def constrained_flow_pass(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    config: FlowConfig | None = None,
    state: RefinementState | None = None,
) -> np.ndarray:
    """Flow refinement on a plain graph — the convenience driver mirroring
    :func:`~repro.partition.kway_refine.constrained_kway_fm`.

    When *state* is given the engine is reused (and left holding the
    returned assignment, so callers can read ``state.metrics()`` without
    a from-scratch evaluation).
    """
    from repro.partition.kway_refine import _as_state

    a = check_assignment(g, assign, k)
    st = _as_state(g, a, k, state)
    return run_flow_refine(st, constraints, config=config)
