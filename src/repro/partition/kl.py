"""Kernighan-Lin two-way partitioning (paper Section II.A.1).

Included as the historical baseline the paper reviews: random initial
bisection, passes of best pair *swaps* with both nodes locked afterwards,
best prefix kept.  Complexity is the classic O(n^2) per pass (the paper
quotes O(n^3) for naive gain recomputation); the per-pair gain table is
evaluated as one numpy outer sum over the engine's connectivity matrix with
an O(m) sparse correction for adjacent pairs, instead of a Python double
loop.  The best prefix is recovered by rewinding the engine's move trail.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.metrics import check_assignment, cut_value
from repro.partition.refine_state import RefinementState
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = ["kl_pass", "kl_bisection"]


def kl_pass(g: WGraph, assign: np.ndarray) -> tuple[np.ndarray, float]:
    """One KL pass of pair swaps; returns the best prefix and its cut."""
    a = check_assignment(g, assign, 2)
    st = RefinementState(g, a, 2)
    locked = np.zeros(g.n, dtype=bool)
    eu, ev, ew = g.edge_array

    st.clear_trail()
    best_mark = st.snapshot()
    best_cut = st.cut
    current_cut = best_cut

    n_pairs = min(int(st.part_size[0]), int(st.part_size[1]))
    for _ in range(n_pairs):
        # D[u] = external - internal connection cost, for all nodes at once
        d = st.conn_at(1 - st.assign) - st.conn_at(st.assign)
        side0 = np.nonzero(~locked & (st.assign == 0))[0]
        side1 = np.nonzero(~locked & (st.assign == 1))[0]
        if side0.size == 0 or side1.size == 0:
            break
        # gain(u, v) = D[u] + D[v] - 2 w(u, v); the -2w term only exists for
        # adjacent pairs, patched in sparsely from the edge list
        gains = d[side0][:, None] + d[side1][None, :]
        pos0 = np.full(g.n, -1, dtype=np.int64)
        pos0[side0] = np.arange(side0.size)
        pos1 = np.full(g.n, -1, dtype=np.int64)
        pos1[side1] = np.arange(side1.size)
        r, c = pos0[eu], pos1[ev]
        hit = (r >= 0) & (c >= 0)
        gains[r[hit], c[hit]] -= 2.0 * ew[hit]
        r, c = pos0[ev], pos1[eu]
        hit = (r >= 0) & (c >= 0)
        gains[r[hit], c[hit]] -= 2.0 * ew[hit]
        # first occurrence of the maximum == smallest (u, v) among the best
        i, j = np.unravel_index(int(np.argmax(gains)), gains.shape)
        gain = float(gains[i, j])
        u, v = int(side0[i]), int(side1[j])
        st.move(u, 1)
        st.move(v, 0)
        locked[u] = locked[v] = True
        current_cut -= gain
        if current_cut < best_cut - 1e-12:
            best_cut = current_cut
            best_mark = st.snapshot()
    st.rollback(best_mark)
    return st.assign.copy(), best_cut


def kl_bisection(
    g: WGraph, seed=None, max_passes: int = 10
) -> np.ndarray:
    """Full KL: random balanced initial bisection + passes to convergence.

    "The initial partition is generated randomly ... the first n/2 are
    assigned to G1 and the rest to G2" (Section II.A.1).
    """
    if g.n < 2:
        raise PartitionError("KL needs at least 2 nodes")
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    rng = as_rng(seed)
    order = rng.permutation(g.n)
    a = np.zeros(g.n, dtype=np.int64)
    a[order[g.n // 2 :]] = 1
    cut = cut_value(g, a)
    for _ in range(max_passes):
        new_a, new_cut = kl_pass(g, a)
        if new_cut >= cut - 1e-12:
            break
        a, cut = new_a, new_cut
    return a
