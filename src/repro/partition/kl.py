"""Kernighan-Lin two-way partitioning (paper Section II.A.1).

Included as the historical baseline the paper reviews: random initial
bisection, passes of best pair *swaps* with both nodes locked afterwards,
best prefix kept.  Complexity is the classic O(n^2) per pass (the paper
quotes O(n^3) for naive gain recomputation; we cache connection sums).
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionState
from repro.partition.metrics import check_assignment, cut_value
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = ["kl_pass", "kl_bisection"]


def kl_pass(g: WGraph, assign: np.ndarray) -> tuple[np.ndarray, float]:
    """One KL pass of pair swaps; returns the best prefix and its cut."""
    a = check_assignment(g, assign, 2)
    state = PartitionState(g, a, 2)
    locked = np.zeros(g.n, dtype=bool)

    best_assign = state.assign.copy()
    best_cut = state.cut
    current_cut = best_cut

    n_pairs = min(
        int((state.assign == 0).sum()), int((state.assign == 1).sum())
    )
    for _ in range(n_pairs):
        # D[u] = external - internal connection cost
        d = np.empty(g.n, dtype=np.float64)
        for u in range(g.n):
            conn = state.connection_vector(u)
            src = int(state.assign[u])
            d[u] = conn[1 - src] - conn[src]
        best = None
        side0 = [u for u in range(g.n) if not locked[u] and state.assign[u] == 0]
        side1 = [u for u in range(g.n) if not locked[u] and state.assign[u] == 1]
        for u in side0:
            for v in side1:
                gain = d[u] + d[v] - 2 * g.edge_weight(u, v)
                if best is None or gain > best[0]:
                    best = (gain, u, v)
        if best is None:
            break
        gain, u, v = best
        state.move(u, 1)
        state.move(v, 0)
        locked[u] = locked[v] = True
        current_cut -= gain
        if current_cut < best_cut - 1e-12:
            best_cut = current_cut
            best_assign = state.assign.copy()
    return best_assign, best_cut


def kl_bisection(
    g: WGraph, seed=None, max_passes: int = 10
) -> np.ndarray:
    """Full KL: random balanced initial bisection + passes to convergence.

    "The initial partition is generated randomly ... the first n/2 are
    assigned to G1 and the rest to G2" (Section II.A.1).
    """
    if g.n < 2:
        raise PartitionError("KL needs at least 2 nodes")
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    rng = as_rng(seed)
    order = rng.permutation(g.n)
    a = np.zeros(g.n, dtype=np.int64)
    a[order[g.n // 2 :]] = 1
    cut = cut_value(g, a)
    for _ in range(max_passes):
        new_a, new_cut = kl_pass(g, a)
        if new_cut >= cut - 1e-12:
            break
        a, cut = new_a, new_cut
    return a
