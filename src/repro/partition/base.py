"""Partition containers: the mutable refinement state and the final result.

:class:`PartitionState` maintains, under single-node moves, the three
quantities every refinement pass needs in O(deg(u)) per move:

* per-partition resource weights,
* the pairwise bandwidth matrix ``B`` (and hence global cut), and
* per-node external-connection vectors on demand.

This is the data structure that makes FM-style passes linear per pass, the
property the paper inherits from Fiduccia-Mattheyses (Section II.A.2).

The refinement passes themselves now run on the faster vectorized engine in
:mod:`repro.partition.refine_state` (O(deg + k) moves, O(1) gain reads from
a ``(k, n)`` connectivity matrix, rollback via a move trail — see
``docs/refinement.md``).  :class:`PartitionState` remains the simple
reference implementation: tests use it to cross-check the engine, and the
vector-resource multiresolution variant still builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.metrics import (
    ConstraintSpec,
    PartitionMetrics,
    bandwidth_matrix,
    check_assignment,
    evaluate_partition,
    part_weights,
)
from repro.util.errors import PartitionError

__all__ = ["PartitionState", "PartitionResult"]


class PartitionState:
    """Mutable k-way assignment with incrementally-maintained metrics."""

    def __init__(self, g: WGraph, assign: np.ndarray, k: int) -> None:
        self.g = g
        self.k = int(k)
        self.assign = check_assignment(g, assign, k).copy()
        self.part_weight = part_weights(g, self.assign, k)
        self.bw = bandwidth_matrix(g, self.assign, k)

    # ------------------------------------------------------------------ #
    @property
    def cut(self) -> float:
        return float(np.triu(self.bw, k=1).sum())

    def copy(self) -> "PartitionState":
        out = object.__new__(PartitionState)
        out.g = self.g
        out.k = self.k
        out.assign = self.assign.copy()
        out.part_weight = self.part_weight.copy()
        out.bw = self.bw.copy()
        return out

    def connection_vector(self, u: int) -> np.ndarray:
        """Weight of *u*'s edges into each part, shape ``(k,)``."""
        conn = np.zeros(self.k, dtype=np.float64)
        nbrs, ws = self.g.neighbor_weights(u)
        np.add.at(conn, self.assign[nbrs], ws)
        return conn

    def gain(self, u: int, dest: int) -> float:
        """Cut reduction if *u* moved to part *dest* (negative = worse)."""
        conn = self.connection_vector(u)
        src = self.assign[u]
        if dest == src:
            return 0.0
        return float(conn[dest] - conn[src])

    def move(self, u: int, dest: int) -> None:
        """Move node *u* to part *dest*, updating all tracked quantities."""
        src = int(self.assign[u])
        if not (0 <= dest < self.k):
            raise PartitionError(f"destination part {dest} out of range")
        if dest == src:
            return
        w_u = self.g.node_weights[u]
        self.part_weight[src] -= w_u
        self.part_weight[dest] += w_u
        nbrs, ws = self.g.neighbor_weights(u)
        parts = self.assign[nbrs]
        for c in range(self.k):
            w_c = float(ws[parts == c].sum())
            if w_c == 0.0:
                continue
            if c != src:
                self.bw[src, c] -= w_c
                self.bw[c, src] -= w_c
            if c != dest:
                self.bw[dest, c] += w_c
                self.bw[c, dest] += w_c
        self.assign[u] = dest

    def boundary_nodes(self) -> np.ndarray:
        """Nodes with at least one neighbour in a different part."""
        eu, ev, _ = self.g.edge_array
        crossing = self.assign[eu] != self.assign[ev]
        return np.unique(np.concatenate([eu[crossing], ev[crossing]]))

    def metrics(self, constraints: ConstraintSpec | None = None) -> PartitionMetrics:
        return evaluate_partition(self.g, self.assign, self.k, constraints)

    def recompute(self) -> None:
        """Rebuild tracked quantities from scratch (used by tests/debugging)."""
        self.part_weight = part_weights(self.g, self.assign, self.k)
        self.bw = bandwidth_matrix(self.g, self.assign, self.k)

    def __repr__(self) -> str:
        return (
            f"PartitionState(n={self.g.n}, k={self.k}, cut={self.cut:g}, "
            f"max_res={self.part_weight.max() if self.k else 0:g})"
        )


@dataclass
class PartitionResult:
    """Outcome of one partitioning run.

    Attributes
    ----------
    assign:
        Node → part assignment, shape ``(n,)``.
    k:
        Number of parts requested.
    metrics:
        Evaluated :class:`PartitionMetrics` (against the run's constraints).
    algorithm:
        Human-readable algorithm tag ("GP", "MLKP", "spectral", "exact", ...).
    runtime:
        Wall-clock seconds of the partitioning call.
    feasible:
        Whether both paper constraints hold (mirrors ``metrics.feasible``).
    constraints:
        The constraints the run was asked to honour.
    info:
        Algorithm-specific extras (levels, cycles used, restarts, ...).
    """

    assign: np.ndarray
    k: int
    metrics: PartitionMetrics
    algorithm: str
    runtime: float = 0.0
    constraints: ConstraintSpec = field(default_factory=ConstraintSpec)
    info: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.metrics.feasible

    @property
    def cut(self) -> float:
        return self.metrics.cut

    def table_row(self) -> list:
        """Row in the paper's table format:
        [algorithm, cut, runtime, max resource, max local bandwidth]."""
        return [
            self.algorithm,
            self.metrics.cut,
            round(self.runtime, 4),
            self.metrics.max_resource,
            self.metrics.max_local_bandwidth,
        ]
