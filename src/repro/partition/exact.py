"""Exact k-way partitioning by branch & bound (small graphs only).

The paper's introduction notes the mapping problem "is possible to solve in
an exact manner via dynamic programming approaches ... not the case when
practical graphs are under examination".  This module supplies that exact
reference for instances up to ~20 nodes: it certifies the heuristics'
optimality gap (benchmark X5) and the *feasibility* of the paper-experiment
constraint sets.

Search order and pruning:

* nodes are assigned in descending weight order (tight resource prunes early),
* part indices are symmetry-broken (node *i* may open at most one new part),
* partial edge cut lower-bounds the objective,
* with ``require_all_parts`` the branch is cut when the remaining nodes
  cannot populate the still-empty parts,
* resource/bandwidth infeasible prefixes are cut immediately when the
  constraints are hard (``enforce=True``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.metrics import ConstraintSpec, evaluate_partition
import repro.obs as _obs
from repro.util.errors import InfeasibleError, PartitionError

__all__ = ["exact_partition", "exact_min_cut", "feasibility_certificate"]

_MAX_NODES = 20


def _search(
    g: WGraph,
    k: int,
    constraints: ConstraintSpec,
    enforce: bool,
    order: np.ndarray,
    require_all_parts: bool,
) -> tuple[np.ndarray | None, float]:
    n = g.n
    nw = g.node_weights
    bmax, rmax = constraints.bmax, constraints.rmax
    adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for u, v, w in g.edges():
        adj[u].append((v, w))
        adj[v].append((u, w))

    assign = np.full(n, -1, dtype=np.int64)
    part_weight = np.zeros(k)
    bw = np.zeros((k, k))
    best_assign: np.ndarray | None = None
    best_cut = float("inf")

    def rec(i: int, cut: float, used: int) -> None:
        nonlocal best_assign, best_cut
        if cut >= best_cut:
            return
        if require_all_parts and (n - i) < (k - used):
            return  # too few nodes left to populate every part
        if i == n:
            if require_all_parts and used < k:
                return
            best_cut = cut
            best_assign = assign.copy()
            return
        u = int(order[i])
        w_u = float(nw[u])
        limit = min(used + 1, k)  # symmetry breaking
        for c in range(limit):
            if enforce and part_weight[c] + w_u > rmax:
                continue
            delta = 0.0
            pairs: list[tuple[int, float]] = []
            ok = True
            for v, w in adj[u]:
                cv = assign[v]
                if cv >= 0 and cv != c:
                    delta += w
                    pairs.append((int(cv), w))
                    if enforce and bw[c, cv] + w > bmax:
                        ok = False
                        break
            if not ok:
                continue
            assign[u] = c
            part_weight[c] += w_u
            feasible_pairs = True
            for cv, w in pairs:
                bw[c, cv] += w
                bw[cv, c] += w
                if enforce and bw[c, cv] > bmax:
                    feasible_pairs = False
            if feasible_pairs or not enforce:
                rec(i + 1, cut + delta, max(used, c + 1))
            for cv, w in pairs:
                bw[c, cv] -= w
                bw[cv, c] -= w
            part_weight[c] -= w_u
            assign[u] = -1

    rec(0, 0.0, 0)
    return best_assign, best_cut


def exact_partition(
    g: WGraph,
    k: int,
    constraints: ConstraintSpec | None = None,
    enforce: bool = True,
    require_all_parts: bool = False,
) -> PartitionResult:
    """Minimum-cut k-way partition by exhaustive branch & bound.

    Parameters
    ----------
    enforce:
        When True (default) the constraints prune the search (hard
        constraints); when False they are only audited on the result.
    require_all_parts:
        When True, solutions must use all *k* parts.  Note that the
        *unconstrained* minimum cut without this flag is trivially 0 (put
        every node in one part); :func:`exact_min_cut` therefore forces it.

    Raises
    ------
    PartitionError
        If the graph exceeds the exact-search size bound (20 nodes).
    InfeasibleError
        If ``enforce`` and no assignment satisfies the constraints.
    """
    constraints = constraints or ConstraintSpec()
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > g.n:
        raise PartitionError(f"k={k} exceeds node count {g.n}")
    if g.n > _MAX_NODES:
        raise PartitionError(
            f"exact search is limited to {_MAX_NODES} nodes, got {g.n}"
        )
    with _obs.timed_span("exact", nodes=g.n, k=k) as sw:
        order = np.argsort(-g.node_weights, kind="stable").astype(np.int64)
        assign, _ = _search(
            g, k, constraints, enforce, order, require_all_parts
        )
    if assign is None:
        raise InfeasibleError(
            f"no assignment satisfies Bmax={constraints.bmax}, "
            f"Rmax={constraints.rmax} for k={k} (proof by exhaustion)"
        )
    return PartitionResult(
        assign=assign,
        k=k,
        metrics=evaluate_partition(g, assign, k, constraints),
        algorithm="exact",
        runtime=sw.elapsed,
        constraints=constraints,
    )


def exact_min_cut(g: WGraph, k: int) -> float:
    """Unconstrained minimum k-way cut with all *k* parts non-empty."""
    res = exact_partition(
        g, k, ConstraintSpec(), enforce=False, require_all_parts=True
    )
    return res.metrics.cut


def feasibility_certificate(
    g: WGraph, k: int, constraints: ConstraintSpec
) -> np.ndarray | None:
    """A feasible assignment if one exists, else ``None`` (exhaustive).

    Feasibility allows empty parts: a mapping that fits on fewer than *k*
    FPGAs also fits on *k*.
    """
    try:
        res = exact_partition(g, k, constraints, enforce=True)
    except InfeasibleError:
        return None
    return res.assign
