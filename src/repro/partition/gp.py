"""GP — the paper's constrained Multi-Level K-Way partitioner (Section IV).

Pipeline (mirrors the paper's phases):

1. **Coarsening** (IV.A): best-of-three matchings per level (random maximal,
   heavy-edge, K-means) down to ``coarsen_to`` nodes (paper default 100).
2. **Initial partitioning** (IV.B): greedy growing from the heaviest node,
   resource-capped, with randomly re-seeded restarts (paper default 10),
   leftover placement by biggest-free-space, then a constrained FM pass to
   drive pairwise bandwidth under ``Bmax``.
3. **Un-coarsening** (IV.C): project level by level; at each level several
   refinement candidates ("different intermediate clusterings") are generated
   and "compared a posteriori using a goodness function" — the nearest to
   meeting the constraints wins.
4. **Cyclic retry**: "if we do not meet constraints, we go back to the
   coarsening phase and then partitioning phase (randomly), cyclically."
   After ``max_cycles`` without a feasible partitioning the run reports
   infeasibility (raise or return, caller's choice), matching the paper's
   "either impossible or we have to give the tool more time".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as _obs
from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.coarsen import Hierarchy, build_hierarchy
from repro.partition.conn_store import check_conn_format
from repro.partition.flow_refine import check_refine_mode, run_flow_refine
from repro.partition.goodness import goodness_key
from repro.partition.initial import greedy_initial_partition
from repro.partition.kway_refine import constrained_kway_fm
from repro.partition.metrics import ConstraintSpec, evaluate_partition
from repro.partition.refine_state import RefinementState
from repro.util.errors import InfeasibleError, PartitionError
from repro.util.parallel import parallel_map
from repro.util.rng import as_rng, spawn_seeds

__all__ = ["GPConfig", "gp_partition"]


@dataclass(frozen=True)
class GPConfig:
    """Tuning knobs of the GP algorithm, with the paper's defaults.

    Attributes
    ----------
    coarsen_to:
        Coarsening stops at this many nodes ("default is 100").
    restarts:
        Initial-partitioning restarts ("10 is default").
    max_cycles:
        Maximum coarsen/partition/un-coarsen cycles before declaring the
        instance infeasible ("a predetermined number of iterations").
    level_candidates:
        Intermediate clusterings generated per un-coarsening level and
        compared with the goodness function.
    refine_passes:
        FM passes per refinement call.
    vcycles:
        Partition-preserving V-cycle refinement rounds applied to each
        cycle's finest-level result (see :mod:`repro.partition.vcycle`);
        0 disables (the default — the cyclic restarts already realise the
        paper's outer loop; benchmark X8 measures this knob).
    matchings:
        Coarsening heuristics raced per level (Section IV.A's three).
    refine:
        Refinement stage (see :mod:`repro.partition.flow_refine`):
        ``"fm"`` — the paper's constrained FM per level (default, exact
        historical behaviour); ``"flow"`` — corridor max-flow passes
        replace the per-level FM (ablation mode); ``"fm+flow"`` — FM per
        level, then one guarded flow stage on the race winner, so the
        result is never worse than ``"fm"`` under the same seeds.
    conn_format:
        Connectivity-store layout of every refinement state this run
        builds (:mod:`repro.partition.conn_store`): ``"dense"`` — the
        historical ``(k, n)`` matrices; ``"sparse"`` — packed per-node
        slices sized by degree (the million-node setting); ``"auto"``
        (default) — sparse iff ``k·n`` crosses the module threshold.
        Dense and sparse are bit-identical under integer-valued weights.
    local_refine_from:
        Localised refinement threshold: on un-coarsening levels with at
        least this many nodes the FM frontier is seeded from the
        recently-uncontracted nodes (those whose coarse parent merged
        ≥2 nodes) intersected with the boundary, n-level style, instead
        of the whole boundary.  The default sits above every pinned
        differential corpus, so small-instance results are unchanged.
    on_infeasible:
        ``"return"`` — give back the least-violating partition with
        ``feasible=False``; ``"raise"`` — raise :class:`InfeasibleError`.
    seed:
        Default random seed for the run; the ``seed`` argument of
        :func:`gp_partition` overrides it when given, and ``None`` falls
        back to the library-default seed (runs are deterministic unless
        the caller passes a live Generator).

    This docstring is the canonical field-by-field reference for the GP
    knobs — ``docs/architecture.md`` and ``docs/parallel.md`` link here
    rather than re-listing them.  Execution concerns (``n_jobs``) are
    deliberately *not* config fields: they change wall-clock, never
    results, and live on the call sites instead.
    """

    coarsen_to: int = 100
    restarts: int = 10
    max_cycles: int = 20
    level_candidates: int = 3
    refine_passes: int = 6
    vcycles: int = 0
    matchings: tuple[str, ...] = ("random", "hem", "kmeans")
    refine: str = "fm"
    conn_format: str = "auto"
    local_refine_from: int = 200_000
    on_infeasible: str = "return"
    seed: int | None = None

    def __post_init__(self) -> None:
        # normalise matchings to a tuple so configs stay hashable (cache
        # keys) and equality-comparable however the caller spelled them
        object.__setattr__(self, "matchings", tuple(self.matchings))
        if self.coarsen_to < 1:
            raise PartitionError("coarsen_to must be >= 1")
        if self.vcycles < 0:
            raise PartitionError("vcycles must be >= 0")
        if self.restarts < 1:
            raise PartitionError("restarts must be >= 1")
        if self.max_cycles < 1:
            raise PartitionError("max_cycles must be >= 1")
        if self.level_candidates < 1:
            raise PartitionError("level_candidates must be >= 1")
        if self.refine_passes < 1:
            raise PartitionError("refine_passes must be >= 1")
        check_refine_mode(self.refine)
        check_conn_format(self.conn_format)
        if self.local_refine_from < 1:
            raise PartitionError("local_refine_from must be >= 1")
        if self.on_infeasible not in ("return", "raise"):
            raise PartitionError(
                f"on_infeasible must be 'return' or 'raise', "
                f"got {self.on_infeasible!r}"
            )
        if not self.matchings:
            raise PartitionError("at least one matching method required")


def _uncoarsen(
    hier: Hierarchy,
    assign_coarsest: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    config: GPConfig,
    seed,
) -> np.ndarray:
    """Project + refine from the coarsest level to the finest.

    At each level, ``level_candidates`` independent refinement runs produce
    different intermediate clusterings; the goodness function picks the one
    "nearest to meeting the constraints" before descending further.

    Levels with at least ``config.local_refine_from`` nodes refine
    *locally* (n-level style): the FM frontier is seeded from the nodes
    the projection just un-contracted (coarse parents that merged ≥2
    nodes) instead of the whole boundary — the move frontier then grows
    outward through neighbourhoods on its own.
    """
    rng = as_rng(seed)
    assign = np.asarray(assign_coarsest, dtype=np.int64)

    def refine_best(
        graph: WGraph,
        a: np.ndarray,
        level: int,
        seed_nodes: np.ndarray | None = None,
    ) -> np.ndarray:
        cand_seeds = spawn_seeds(rng, config.level_candidates)
        with _obs.trace_span(
            "gp.refine_level", level=level, nodes=graph.n, edges=graph.m,
            local=seed_nodes is not None,
        ) as sp:
            # one engine build per level; each candidate run works on a copy
            # and its goodness comes from the incrementally-tracked metrics
            base = RefinementState(graph, a, k, conn_format=config.conn_format)
            if _obs.tracing_on():
                sp.set(cut_before=base.metrics(constraints).cut)
            if config.refine == "flow":
                # flow passes are deterministic — one candidate tells all
                # (the candidate seeds above are still drawn, keeping the
                # rng stream aligned with the FM modes)
                st = base.copy()
                best = run_flow_refine(st, constraints)
                best_cut = st.metrics(constraints).cut
                sp.set(cut_after=best_cut)
                return best
            best, best_key, best_cut = None, None, None
            for s in cand_seeds:
                st = base.copy()
                cand = constrained_kway_fm(
                    graph, a, k, constraints,
                    max_passes=config.refine_passes, seed=s, state=st,
                    seed_nodes=seed_nodes,
                )
                m = st.metrics(constraints)
                key = goodness_key(m, constraints)
                if best_key is None or key < best_key:
                    best, best_key, best_cut = cand, key, m.cut
            sp.set(cut_after=best_cut)
        return best

    def uncontracted_nodes(level: int) -> np.ndarray | None:
        """Fine nodes whose coarse parent merged ≥2 nodes — the locality
        seeds — when the fine level is big enough to bother."""
        fine = hier.levels[level - 1].graph
        if fine.n < config.local_refine_from:
            return None
        node_map = hier.levels[level].node_map
        members = np.bincount(node_map, minlength=hier.levels[level].graph.n)
        return np.nonzero(members[node_map] >= 2)[0]

    with _obs.trace_span("uncoarsen", levels=hier.depth):
        for level in range(hier.depth - 1, 0, -1):
            assign = hier.project(assign, level)
            assign = refine_best(
                hier.levels[level - 1].graph, assign, level - 1,
                seed_nodes=uncontracted_nodes(level),
            )
        if hier.depth == 1:
            assign = refine_best(hier.levels[0].graph, assign, 0)
    return assign


def _run_gp_cycle(context, seeds) -> tuple[np.ndarray, "PartitionMetrics", int]:
    """One coarsen/partition/un-coarsen cycle (a parallel_map worker).

    Independent of every other cycle given its four pre-spawned seeds, so
    cycles race across processes without changing any result.  The
    instance travels in the shared *context* (shipped once per worker);
    only the seed quadruple is per-task.  Returns ``(assign, metrics,
    hierarchy_depth)``.
    """
    g, k, constraints, config = context
    s_hier, s_init, s_unc, s_vc = seeds
    with _obs.trace_span("gp.cycle", nodes=g.n, k=k) as sp:
        # Re-coarsening each cycle realises the paper's "go back to
        # coarsening phase ... (randomly), cyclically".
        # never coarsen below 2k nodes: a halving step from just above the
        # threshold must still leave enough nodes to seed k partitions
        hier = build_hierarchy(
            g,
            coarsen_to=max(config.coarsen_to, 2 * k),
            seed=s_hier,
            methods=config.matchings,
        )
        with _obs.trace_span("gp.initial", nodes=hier.coarsest.n):
            assign_c = greedy_initial_partition(
                hier.coarsest, k, constraints,
                restarts=config.restarts, seed=s_init,
            )
        assign = _uncoarsen(hier, assign_c, k, constraints, config, s_unc)
        if config.vcycles:
            from repro.partition.vcycle import vcycle_refine

            assign = vcycle_refine(
                g, assign, k, constraints,
                rounds=config.vcycles,
                refine_passes=config.refine_passes,
                seed=s_vc,
                refine="fm" if config.refine == "fm+flow" else config.refine,
                conn_format=config.conn_format,
            )
        metrics = evaluate_partition(g, assign, k, constraints)
        sp.set(levels=hier.depth, cut=metrics.cut, feasible=metrics.feasible)
    return assign, metrics, hier.depth


def gp_partition(
    g: WGraph,
    k: int,
    constraints: ConstraintSpec,
    config: GPConfig | None = None,
    seed=None,
    n_jobs: int | None = 1,
) -> PartitionResult:
    """Partition *g* into *k* parts meeting the paper's two constraints.

    Parameters
    ----------
    g:
        Process-network graph (node weights = resources, edge weights =
        bandwidth).
    k:
        Number of partitions (FPGAs).
    constraints:
        ``Bmax`` / ``Rmax`` caps; either may be ``inf``.
    config:
        :class:`GPConfig`; paper defaults when omitted.
    seed:
        Overrides ``config.seed`` when given.
    n_jobs:
        Worker processes racing the retry cycles (``1`` = in-process
        serial, ``-1`` = all CPUs).  Every cycle's seeds are derived up
        front, results are consumed in cycle order, and the first
        feasible cycle still wins — so the returned partition is
        **bit-identical for every** ``n_jobs``; only wall-clock changes.
        Workers past the first feasible cycle are wasted speculation,
        the price of racing an early-exit loop.

    Returns
    -------
    PartitionResult
        With ``info`` containing ``cycles`` (cycles consumed), ``levels``
        (hierarchy depth of the last cycle) and ``feasible``.

    Raises
    ------
    InfeasibleError
        If no feasible partitioning is found within ``max_cycles`` and
        ``config.on_infeasible == "raise"``.  The exception carries the
        least-violating :class:`PartitionResult` in ``.best``.
    """
    config = config or GPConfig()
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > g.n:
        raise PartitionError(f"k={k} exceeds node count {g.n}")
    rng = as_rng(seed if seed is not None else config.seed)

    with _obs.timed_span("gp", nodes=g.n, k=k) as sw:
        # all cycle seeds up front (the same rng stream the serial loop drew
        # from, one quadruple per cycle) — what makes the cycles independent
        cycle_seeds = [spawn_seeds(rng, 4) for _ in range(config.max_cycles)]
        results = parallel_map(
            _run_gp_cycle,
            cycle_seeds,
            n_jobs=n_jobs,
            stop=lambda r: r[1].feasible,
            context=(g, k, constraints, config),
        )

        best_assign: np.ndarray | None = None
        best_key = None
        for assign, metrics, _depth in results:
            key = goodness_key(metrics, constraints)
            if best_key is None or key < best_key:
                best_key = key
                best_assign = assign
        cycles_used = len(results)
        levels_last = results[-1][2]

        assert best_assign is not None
        if config.refine == "fm+flow":
            # one guarded flow stage on the race winner.  Placed *after*
            # the race on purpose: the cycle loop stops at the first
            # feasible cycle, so refining inside a cycle could change
            # which cycle wins; refining the winner leaves the race
            # untouched and (with the pass's never-worse guard) makes
            # "fm+flow" ≤ "fm" in (violation, cut) under the same seeds.
            st = RefinementState(g, best_assign, k, conn_format=config.conn_format)
            best_assign = run_flow_refine(st, constraints)

    metrics = evaluate_partition(g, best_assign, k, constraints)
    result = PartitionResult(
        assign=best_assign,
        k=k,
        metrics=metrics,
        algorithm="GP",
        runtime=sw.elapsed,
        constraints=constraints,
        info={
            "cycles": cycles_used,
            "levels": levels_last,
            "max_cycles": config.max_cycles,
        },
    )
    if not metrics.feasible and config.on_infeasible == "raise":
        raise InfeasibleError(
            f"no partitioning met Bmax={constraints.bmax}, "
            f"Rmax={constraints.rmax} within {config.max_cycles} cycles "
            f"(best violation: bandwidth {metrics.bandwidth_violation:g}, "
            f"resource {metrics.resource_violation:g}); the instance is "
            f"either impossible or needs more iterations",
            best=result,
        )
    return result
