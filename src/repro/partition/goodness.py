"""The GP goodness function (paper Section IV).

Intermediate clusterings are "compared a posteriori using a goodness
function; the best (i.e. the one that is nearest to meeting the constraints)
is chosen".  We realise *nearest to meeting the constraints* as a
lexicographic key:

1. total constraint violation (bandwidth excess + resource excess) — primary,
2. bandwidth violation alone — the constraint FM explicitly targets,
3. resource violation alone,
4. global cut — tie-break among feasible (or equally-violating) candidates.

Lower keys are better.  Feasible partitions therefore always beat infeasible
ones, and among feasible ones the smallest cut wins.
"""

from __future__ import annotations

from repro.partition.metrics import ConstraintSpec, PartitionMetrics

__all__ = ["goodness_key", "is_better"]


def goodness_key(
    metrics: PartitionMetrics, constraints: ConstraintSpec
) -> tuple[float, float, float, float]:
    """Sort key; lower is better. *constraints* kept for signature symmetry —
    the metrics were already evaluated against them."""
    del constraints  # violations are baked into the metrics
    return (
        metrics.total_violation,
        metrics.bandwidth_violation,
        metrics.resource_violation,
        metrics.cut,
    )


def is_better(
    a: PartitionMetrics, b: PartitionMetrics, constraints: ConstraintSpec
) -> bool:
    """True iff *a* is strictly better than *b* under the goodness order."""
    return goodness_key(a, constraints) < goodness_key(b, constraints)
