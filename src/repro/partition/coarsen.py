"""Coarsening phase: matchings and graph contraction (paper Section IV.A).

The paper uses three matching heuristics, "employed at different times,
multiple times, in order to find the best matching for the given graph":

* **Random Maximal Matching** — visit nodes in random order; match each
  unmatched node with a random unmatched neighbour.
* **Heavy Edge Matching (HEM)** — visit edges in descending weight order;
  select edges whose endpoints are both unmatched.
* **K-Means Matching** — cluster nodes by weight-based features, then match
  near nodes inside each cluster (after Khan's multilevel TSP scheme [28]).

Contraction merges each matched pair into one coarse node whose weight is the
sum of the pair's weights; parallel edges produced by common neighbours are
merged with summed weights (exactly the rules spelled out in IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.wgraph import WGraph
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = [
    "random_maximal_matching",
    "heavy_edge_matching",
    "kmeans_matching",
    "matching_quality",
    "contract",
    "coarsen_once",
    "CoarseLevel",
    "Hierarchy",
    "build_hierarchy",
    "MATCHING_METHODS",
]


def _validate_matching(g: WGraph, match: np.ndarray) -> None:
    if match.shape != (g.n,):
        raise PartitionError(f"matching has shape {match.shape}, expected ({g.n},)")
    for u in range(g.n):
        v = int(match[u])
        if not 0 <= v < g.n:
            raise PartitionError(f"match[{u}]={v} out of range")
        if v != u and int(match[v]) != u:
            raise PartitionError(f"matching not symmetric at ({u}, {v})")


def random_maximal_matching(g: WGraph, seed=None) -> np.ndarray:
    """Random maximal matching: ``match[u] == v`` iff u,v are paired; u if single."""
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    matched = np.zeros(g.n, dtype=bool)
    for u in rng.permutation(g.n):
        u = int(u)
        if matched[u]:
            continue
        nbrs = g.neighbors(u)
        free = nbrs[~matched[nbrs]]
        if free.size == 0:
            continue
        v = int(free[rng.integers(0, free.size)])
        match[u], match[v] = v, u
        matched[u] = matched[v] = True
    return match


def heavy_edge_matching(g: WGraph, seed=None) -> np.ndarray:
    """HEM per the paper: globally sort edges by descending weight, take edges
    with both endpoints unmatched.  Ties are broken by a seeded shuffle so
    repeated invocations explore different maximal matchings."""
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    if g.m == 0:
        return match
    eu, ev, ew = g.edge_array
    jitter = rng.permutation(g.m)  # deterministic tie-break among equal weights
    order = np.lexsort((jitter, -ew))
    matched = np.zeros(g.n, dtype=bool)
    for i in order:
        u, v = int(eu[i]), int(ev[i])
        if not matched[u] and not matched[v]:
            match[u], match[v] = v, u
            matched[u] = matched[v] = True
    return match


def _node_features(g: WGraph) -> np.ndarray:
    """Per-node feature vector for k-means matching: (own weight, mean
    neighbour weight, weighted degree), standardised per column."""
    n = g.n
    feats = np.zeros((n, 3), dtype=np.float64)
    feats[:, 0] = g.node_weights
    for u in range(n):
        nbrs, ws = g.neighbor_weights(u)
        feats[u, 1] = g.node_weights[nbrs].mean() if nbrs.size else 0.0
        feats[u, 2] = ws.sum()
    std = feats.std(axis=0)
    std[std == 0] = 1.0
    return (feats - feats.mean(axis=0)) / std


def _lloyd(feats: np.ndarray, k: int, rng: np.random.Generator, iters: int = 12):
    """Tiny Lloyd's k-means (numpy); returns labels."""
    n = feats.shape[0]
    centers = feats[rng.choice(n, size=k, replace=False)]
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        d = ((feats[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = d.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(k):
            members = feats[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return labels


def kmeans_matching(g: WGraph, seed=None) -> np.ndarray:
    """K-means matching: cluster nodes on weight-based features, then inside
    each cluster greedily match *adjacent* pairs (heaviest connecting edge
    first), falling back to nearest-feature pairs."""
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    if g.n < 2:
        return match
    k = max(2, g.n // 4)
    if k >= g.n:
        k = max(1, g.n // 2)
    feats = _node_features(g)
    labels = _lloyd(feats, k, rng)
    matched = np.zeros(g.n, dtype=bool)
    for c in range(k):
        members = np.nonzero(labels == c)[0]
        member_set = set(members.tolist())
        # adjacent pairs first, heaviest edge first
        cand = []
        for u in members:
            nbrs, ws = g.neighbor_weights(int(u))
            for v, w in zip(nbrs, ws):
                if int(v) in member_set and u < v:
                    cand.append((float(w), int(u), int(v)))
        cand.sort(key=lambda t: (-t[0], t[1], t[2]))
        for _, u, v in cand:
            if not matched[u] and not matched[v]:
                match[u], match[v] = v, u
                matched[u] = matched[v] = True
        # remaining members: pair by feature proximity
        rest = [int(u) for u in members if not matched[u]]
        while len(rest) >= 2:
            u = rest.pop()
            d = [(float(((feats[u] - feats[v]) ** 2).sum()), v) for v in rest]
            d.sort()
            v = d[0][1]
            rest.remove(v)
            match[u], match[v] = v, u
            matched[u] = matched[v] = True
    return match


def matching_quality(g: WGraph, match: np.ndarray) -> float:
    """Total weight of matched edges (higher = better coarsening: more edge
    weight hidden inside coarse nodes, following the HEM rationale)."""
    total = 0.0
    for u in range(g.n):
        v = int(match[u])
        if v > u:
            total += g.edge_weight(u, v)
    return total


def contract(g: WGraph, match: np.ndarray) -> tuple[WGraph, np.ndarray]:
    """Contract matched pairs into coarse nodes.

    Returns ``(coarse, node_map)`` with ``node_map[u]`` the coarse id of fine
    node *u* — the paper's "map from the nodes in the un-coarsened graph to
    those in the coarsened graph".
    """
    _validate_matching(g, match)
    node_map = np.full(g.n, -1, dtype=np.int64)
    next_id = 0
    for u in range(g.n):
        if node_map[u] >= 0:
            continue
        v = int(match[u])
        node_map[u] = next_id
        if v != u:
            node_map[v] = next_id
        next_id += 1
    coarse_w = np.zeros(next_id, dtype=np.float64)
    np.add.at(coarse_w, node_map, g.node_weights)
    merged: dict[tuple[int, int], float] = {}
    for u, v, w in g.edges():
        cu, cv = int(node_map[u]), int(node_map[v])
        if cu == cv:
            continue  # edge hidden inside a coarse node
        key = (cu, cv) if cu < cv else (cv, cu)
        merged[key] = merged.get(key, 0.0) + w
    edges = [(u, v, w) for (u, v), w in merged.items()]
    return WGraph(next_id, edges, node_weights=coarse_w), node_map


MATCHING_METHODS = {
    "random": random_maximal_matching,
    "hem": heavy_edge_matching,
    "kmeans": kmeans_matching,
}


def coarsen_once(
    g: WGraph,
    seed=None,
    methods: tuple[str, ...] = ("random", "hem", "kmeans"),
) -> tuple[WGraph, np.ndarray, str]:
    """One coarsening step: run every requested matching, keep the best.

    "Each time we compare the results of the three heuristics with each other
    and choose the best one" (Section IV.A).  Best = largest matched edge
    weight, tie-broken by fewer coarse nodes then by method order.

    Returns ``(coarse, node_map, method_name)``.
    """
    if not methods:
        raise PartitionError("at least one matching method required")
    rng = as_rng(seed)
    best = None
    for rank, name in enumerate(methods):
        try:
            fn = MATCHING_METHODS[name]
        except KeyError:
            raise PartitionError(
                f"unknown matching method {name!r}; "
                f"valid: {sorted(MATCHING_METHODS)}"
            ) from None
        match = fn(g, seed=rng)
        quality = matching_quality(g, match)
        n_coarse = g.n - int((match != np.arange(g.n)).sum() // 2)
        key = (-quality, n_coarse, rank)
        if best is None or key < best[0]:
            best = (key, match, name)
    _, match, name = best
    coarse, node_map = contract(g, match)
    return coarse, node_map, name


@dataclass
class CoarseLevel:
    """One level of the multilevel hierarchy."""

    graph: WGraph
    #: fine-node -> coarse-node map *into this level* (None for the original).
    node_map: np.ndarray | None
    method: str | None = None


@dataclass
class Hierarchy:
    """Coarsening hierarchy; ``levels[0]`` is the input graph."""

    levels: list[CoarseLevel] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> WGraph:
        return self.levels[-1].graph

    def project(self, assign_coarse: np.ndarray, level: int) -> np.ndarray:
        """Project an assignment on ``levels[level]`` one step down, to
        ``levels[level-1]`` — the paper's "mapping vector is used to project
        the coarse graph partition onto the finer graph"."""
        if not 1 <= level < self.depth:
            raise PartitionError(f"cannot project from level {level}")
        node_map = self.levels[level].node_map
        return np.asarray(assign_coarse, dtype=np.int64)[node_map]

    def project_to_finest(self, assign_coarse: np.ndarray, level: int) -> np.ndarray:
        out = np.asarray(assign_coarse, dtype=np.int64)
        for lvl in range(level, 0, -1):
            out = self.project(out, lvl)
        return out


def build_hierarchy(
    g: WGraph,
    coarsen_to: int = 100,
    seed=None,
    methods: tuple[str, ...] = ("random", "hem", "kmeans"),
    min_shrink: float = 0.02,
) -> Hierarchy:
    """Coarsen *g* until it has at most *coarsen_to* nodes.

    Stops early when a step shrinks the graph by less than ``min_shrink``
    (no useful matching left, e.g. star graphs).  ``coarsen_to=100`` is the
    paper's default ("the input graph is coarsened to a parametrized size
    (default is 100)").
    """
    if coarsen_to < 1:
        raise PartitionError(f"coarsen_to must be >= 1, got {coarsen_to}")
    rng = as_rng(seed)
    hier = Hierarchy(levels=[CoarseLevel(graph=g, node_map=None)])
    current = g
    while current.n > coarsen_to:
        coarse, node_map, method = coarsen_once(current, seed=rng, methods=methods)
        if coarse.n >= current.n * (1 - min_shrink):
            break
        hier.levels.append(CoarseLevel(graph=coarse, node_map=node_map, method=method))
        current = coarse
    return hier
