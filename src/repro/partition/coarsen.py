"""Coarsening phase: matchings and graph contraction (paper Section IV.A).

The paper uses three matching heuristics, "employed at different times,
multiple times, in order to find the best matching for the given graph":

* **Random Maximal Matching** — visit nodes in random order; match each
  unmatched node with a random unmatched neighbour.
* **Heavy Edge Matching (HEM)** — visit edges in descending weight order;
  select edges whose endpoints are both unmatched.
* **K-Means Matching** — cluster nodes by weight-based features, then match
  near nodes inside each cluster (after Khan's multilevel TSP scheme [28]).

Contraction merges each matched pair into one coarse node whose weight is the
sum of the pair's weights; parallel edges produced by common neighbours are
merged with summed weights (exactly the rules spelled out in IV.A).

Vectorization
-------------
The matching and contraction kernels here are NumPy array passes, not
per-node Python loops (see ``docs/parallel.md``, "Vectorized coarsening").
Sequential greedy matching — take candidate pairs in a fixed priority
order, skip pairs with a matched endpoint — is computed by iterated
*locally-dominant* selection: per round, a candidate is matched iff it
holds the best (lowest) priority rank at **both** endpoints, then dead
candidates are dropped.  That fixpoint equals the sequential greedy result
exactly, so HEM is bit-identical to its pre-vectorization loop (frozen in
``benchmarks/_legacy_coarsen.py``).  Random maximal matching pre-draws one
random priority per adjacency slot (each node pairs with its
lowest-priority free neighbour — still a uniformly random free neighbour)
precisely so it fits
the same static-priority scheme; its loop-form reference lives next to the
legacy copy and the differential tests pin both kernels to their
references.  Contraction reproduces the legacy coarse graph
array-for-array via :meth:`~repro.graph.wgraph.WGraph._from_canonical`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as _obs
from repro.graph.wgraph import WGraph
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = [
    "greedy_match_by_rank",
    "random_maximal_matching",
    "heavy_edge_matching",
    "kmeans_matching",
    "matching_quality",
    "contract",
    "coarsen_once",
    "CoarseLevel",
    "Hierarchy",
    "build_hierarchy",
    "MATCHING_METHODS",
]


def _validate_matching(g: WGraph, match: np.ndarray) -> None:
    if match.shape != (g.n,):
        raise PartitionError(f"matching has shape {match.shape}, expected ({g.n},)")
    if g.n == 0:
        return
    if not ((match >= 0) & (match < g.n)).all():
        u = int(np.argmax((match < 0) | (match >= g.n)))
        raise PartitionError(f"match[{u}]={int(match[u])} out of range")
    sym = match[match] == np.arange(g.n)
    if not sym.all():
        u = int(np.argmax(~sym))
        raise PartitionError(f"matching not symmetric at ({u}, {int(match[u])})")


def greedy_match_by_rank(
    n: int, tails: np.ndarray, heads: np.ndarray, rank: np.ndarray | None = None
) -> np.ndarray:
    """Matching of sequential greedy over rank-ordered candidate pairs.

    Candidates ``(tails[i], heads[i])`` carry unique integer priorities
    ``rank[i]`` (lower = earlier); with ``rank=None`` the candidates are
    taken to be listed in priority order already (callers that sorted
    anyway skip a redundant argsort).  The sequential process — scan
    candidates in rank order, match a pair iff both endpoints are still
    unmatched — is computed without the scan: per round, select every
    *live* candidate whose rank is the minimum over live candidates at
    both its endpoints (selected candidates are node-disjoint because
    ranks are unique), mark endpoints matched, drop candidates with a
    matched endpoint, repeat.  The round fixpoint equals the sequential
    result exactly; rounds are O(log candidates) expected, each a full
    array pass.
    """
    match = np.arange(n, dtype=np.int64)
    E = tails.size
    if E == 0:
        return match
    if rank is None:
        t = np.ascontiguousarray(tails, dtype=np.int64)
        h = np.ascontiguousarray(heads, dtype=np.int64)
    else:
        order = np.argsort(rank)
        # entries in rank order; from here on an entry's id is its position
        t = np.ascontiguousarray(tails[order])
        h = np.ascontiguousarray(heads[order])
    # per-node incidence over entries (each entry listed under both
    # endpoints, ascending rank within a node): a node's lowest live
    # incident rank is simply the entry behind its advance pointer
    nodes = np.concatenate([t, h])
    eids = np.concatenate([np.arange(E), np.arange(E)])
    inc = eids[np.argsort((nodes << np.int64(33)) | eids)]
    cnt = np.bincount(nodes, minlength=n)
    bound = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cnt, out=bound[1:])
    ptr = bound[:-1].copy()
    end = bound[1:]
    matched = np.zeros(n, dtype=bool)
    head_of = np.full(n, -1, dtype=np.int64)
    active = np.nonzero(cnt > 0)[0]
    while active.size:
        # lazily advance pointers past dead entries (an endpoint matched);
        # after the first check only nodes that just advanced are
        # re-checked, so total advancement work is bounded by 2E overall
        adv = active
        while adv.size:
            e = inc[np.minimum(ptr[adv], end[adv] - 1)]
            dead = (ptr[adv] < end[adv]) & (matched[t[e]] | matched[h[e]])
            adv = adv[dead]
            if adv.size:
                ptr[adv] += 1
        active = active[ptr[active] < end[active]]
        if active.size == 0:
            return match
        e = inc[ptr[active]]
        # locally-dominant selection: an entry matches iff it is the head
        # entry of both its endpoints (the globally minimal live entry
        # always qualifies, so every round makes progress)
        head_of[active] = e
        sel = np.unique(e[(head_of[t[e]] == e) & (head_of[h[e]] == e)])
        head_of[active] = -1
        st, sh = t[sel], h[sel]
        match[st] = sh
        match[sh] = st
        matched[st] = True
        matched[sh] = True
        active = active[~matched[active]]
    return match


def random_maximal_matching(g: WGraph, seed=None) -> np.ndarray:
    """Random maximal matching: ``match[u] == v`` iff u,v are paired; u if single.

    Visits nodes in a seeded random order; each unmatched node pairs with
    a uniformly random free neighbour (realised as the lowest pre-drawn
    priority among its free adjacency slots — slot priorities are one
    random permutation, so the pick is uniform and tie-free, and the whole
    matching becomes one static-priority greedy computable in array passes;
    see the module docstring).  Exactly reproduces
    ``benchmarks._legacy_coarsen.random_maximal_matching_loopref``.
    """
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    if g.n == 0:
        return match
    indptr, indices, _ = g.csr
    # draw order matters for stream-compatibility with the loop reference:
    # slot priorities first, visit permutation second
    slot_pri = rng.permutation(indices.size)
    visit = rng.permutation(g.n)
    if indices.size == 0:
        return match
    pos = np.empty(g.n, dtype=np.int64)
    pos[visit] = np.arange(g.n)
    deg = np.diff(indptr)
    tails = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    # one int64 composite: visit position of the tail, then slot priority
    # (both ascending; slot_pri < 2**33 fits the low bits for any graph
    # whose adjacency this process can hold in memory)
    order = np.argsort((pos[tails] << np.int64(33)) | slot_pri)
    return greedy_match_by_rank(g.n, tails[order], indices[order])


def heavy_edge_matching(g: WGraph, seed=None) -> np.ndarray:
    """HEM per the paper: globally sort edges by descending weight, take edges
    with both endpoints unmatched.  Ties are broken by a seeded shuffle so
    repeated invocations explore different maximal matchings.

    Bit-identical to the sequential greedy over the sorted edge list
    (``benchmarks._legacy_coarsen.heavy_edge_matching_legacy``), computed
    by locally-dominant rounds instead of a per-edge Python loop.
    """
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    if g.m == 0:
        return match
    eu, ev, ew = g.edge_array
    jitter = rng.permutation(g.m)  # deterministic tie-break among equal weights
    order = np.lexsort((jitter, -ew))
    return greedy_match_by_rank(g.n, eu[order], ev[order])


def _node_features(g: WGraph) -> np.ndarray:
    """Per-node feature vector for k-means matching: (own weight, mean
    neighbour weight, weighted degree), standardised per column."""
    n = g.n
    feats = np.zeros((n, 3), dtype=np.float64)
    feats[:, 0] = g.node_weights
    for u in range(n):
        nbrs, ws = g.neighbor_weights(u)
        feats[u, 1] = g.node_weights[nbrs].mean() if nbrs.size else 0.0
        feats[u, 2] = ws.sum()
    std = feats.std(axis=0)
    std[std == 0] = 1.0
    return (feats - feats.mean(axis=0)) / std


def _lloyd(feats: np.ndarray, k: int, rng: np.random.Generator, iters: int = 12):
    """Tiny Lloyd's k-means (numpy); returns labels."""
    n = feats.shape[0]
    centers = feats[rng.choice(n, size=k, replace=False)]
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        d = ((feats[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = d.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(k):
            members = feats[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return labels


def kmeans_matching(g: WGraph, seed=None) -> np.ndarray:
    """K-means matching: cluster nodes on weight-based features, then inside
    each cluster greedily match *adjacent* pairs (heaviest connecting edge
    first), falling back to nearest-feature pairs."""
    rng = as_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    if g.n < 2:
        return match
    k = max(2, g.n // 4)
    if k >= g.n:
        k = max(1, g.n // 2)
    feats = _node_features(g)
    labels = _lloyd(feats, k, rng)
    matched = np.zeros(g.n, dtype=bool)
    for c in range(k):
        members = np.nonzero(labels == c)[0]
        member_set = set(members.tolist())
        # adjacent pairs first, heaviest edge first
        cand = []
        for u in members:
            nbrs, ws = g.neighbor_weights(int(u))
            for v, w in zip(nbrs, ws):
                if int(v) in member_set and u < v:
                    cand.append((float(w), int(u), int(v)))
        cand.sort(key=lambda t: (-t[0], t[1], t[2]))
        for _, u, v in cand:
            if not matched[u] and not matched[v]:
                match[u], match[v] = v, u
                matched[u] = matched[v] = True
        # remaining members: pair by feature proximity
        rest = [int(u) for u in members if not matched[u]]
        while len(rest) >= 2:
            u = rest.pop()
            d = [(float(((feats[u] - feats[v]) ** 2).sum()), v) for v in rest]
            d.sort()
            v = d[0][1]
            rest.remove(v)
            match[u], match[v] = v, u
            matched[u] = matched[v] = True
    return match


def matching_quality(g: WGraph, match: np.ndarray) -> float:
    """Total weight of matched edges (higher = better coarsening: more edge
    weight hidden inside coarse nodes, following the HEM rationale).

    One masked reduction over the edge array; non-adjacent matched pairs
    (k-means may produce them) contribute nothing, as before.
    """
    eu, ev, ew = g.edge_array
    if ew.size == 0:
        return 0.0
    m = np.asarray(match, dtype=np.int64)
    return float(ew[m[eu] == ev].sum())


def contract(g: WGraph, match: np.ndarray) -> tuple[WGraph, np.ndarray]:
    """Contract matched pairs into coarse nodes.

    Returns ``(coarse, node_map)`` with ``node_map[u]`` the coarse id of fine
    node *u* — the paper's "map from the nodes in the un-coarsened graph to
    those in the coarsened graph".

    Runs as array passes (coarse ids by cumulative count of pair
    representatives, parallel-edge merge by lexicographic grouping) and
    reproduces the dict-merge reference
    (``benchmarks._legacy_coarsen.contract_legacy``) array-for-array:
    same node map, same coarse graph, same CSR layout.
    """
    match = np.asarray(match)
    _validate_matching(g, match)
    match = match.astype(np.int64, copy=False)
    ids = np.arange(g.n, dtype=np.int64)
    # a node represents its pair iff it is its pair's smaller endpoint (or
    # single); coarse ids count representatives in node order, matching the
    # first-visit numbering of the sequential reference
    reps = match >= ids
    coarse_ids = np.cumsum(reps) - 1
    node_map = coarse_ids[np.minimum(ids, match)]
    next_id = int(coarse_ids[-1]) + 1 if g.n else 0
    coarse_w = np.zeros(next_id, dtype=np.float64)
    np.add.at(coarse_w, node_map, g.node_weights)

    eu, ev, ew = g.edge_array
    cu, cv = node_map[eu], node_map[ev]
    keep = cu != cv  # edges hidden inside a coarse node vanish
    lo = np.minimum(cu[keep], cv[keep])
    hi = np.maximum(cu[keep], cv[keep])
    w = ew[keep]
    if lo.size == 0:
        empty = np.empty(0, dtype=np.int64)
        coarse = WGraph._from_canonical(
            next_id, empty, empty, np.empty(0, dtype=np.float64), coarse_w
        )
        return coarse, node_map
    # group parallel coarse edges; the tertiary key keeps fine-edge order
    # within each group so weight sums accumulate in the reference's order
    order = np.lexsort((np.arange(lo.size), hi, lo))
    lo, hi, w = lo[order], hi[order], w[order]
    new_group = np.empty(lo.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
    seg = np.cumsum(new_group) - 1
    n_edges = int(seg[-1]) + 1
    merged_w = np.zeros(n_edges, dtype=np.float64)
    np.add.at(merged_w, seg, w)
    coarse = WGraph._from_canonical(
        next_id, lo[new_group], hi[new_group], merged_w, coarse_w
    )
    return coarse, node_map


MATCHING_METHODS = {
    "random": random_maximal_matching,
    "hem": heavy_edge_matching,
    "kmeans": kmeans_matching,
}


def coarsen_once(
    g: WGraph,
    seed=None,
    methods: tuple[str, ...] = ("random", "hem", "kmeans"),
) -> tuple[WGraph, np.ndarray, str]:
    """One coarsening step: run every requested matching, keep the best.

    "Each time we compare the results of the three heuristics with each other
    and choose the best one" (Section IV.A).  Best = largest matched edge
    weight, tie-broken by fewer coarse nodes then by method order.

    Returns ``(coarse, node_map, method_name)``.
    """
    if not methods:
        raise PartitionError("at least one matching method required")
    rng = as_rng(seed)
    best = None
    for rank, name in enumerate(methods):
        try:
            fn = MATCHING_METHODS[name]
        except KeyError:
            raise PartitionError(
                f"unknown matching method {name!r}; "
                f"valid: {sorted(MATCHING_METHODS)}"
            ) from None
        match = fn(g, seed=rng)
        quality = matching_quality(g, match)
        n_coarse = g.n - int((match != np.arange(g.n)).sum() // 2)
        key = (-quality, n_coarse, rank)
        if best is None or key < best[0]:
            best = (key, match, name)
    _, match, name = best
    coarse, node_map = contract(g, match)
    return coarse, node_map, name


@dataclass
class CoarseLevel:
    """One level of the multilevel hierarchy."""

    graph: WGraph
    #: fine-node -> coarse-node map *into this level* (None for the original).
    node_map: np.ndarray | None
    method: str | None = None


@dataclass
class Hierarchy:
    """Coarsening hierarchy; ``levels[0]`` is the input graph."""

    levels: list[CoarseLevel] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> WGraph:
        return self.levels[-1].graph

    def project(self, assign_coarse: np.ndarray, level: int) -> np.ndarray:
        """Project an assignment on ``levels[level]`` one step down, to
        ``levels[level-1]`` — the paper's "mapping vector is used to project
        the coarse graph partition onto the finer graph"."""
        if not 1 <= level < self.depth:
            raise PartitionError(f"cannot project from level {level}")
        node_map = self.levels[level].node_map
        return np.asarray(assign_coarse, dtype=np.int64)[node_map]

    def project_to_finest(self, assign_coarse: np.ndarray, level: int) -> np.ndarray:
        out = np.asarray(assign_coarse, dtype=np.int64)
        for lvl in range(level, 0, -1):
            out = self.project(out, lvl)
        return out


def build_hierarchy(
    g: WGraph,
    coarsen_to: int = 100,
    seed=None,
    methods: tuple[str, ...] = ("random", "hem", "kmeans"),
    min_shrink: float = 0.02,
) -> Hierarchy:
    """Coarsen *g* until it has at most *coarsen_to* nodes.

    Stops early when a step shrinks the graph by less than ``min_shrink``
    (no useful matching left, e.g. star graphs).  ``coarsen_to=100`` is the
    paper's default ("the input graph is coarsened to a parametrized size
    (default is 100)").
    """
    if coarsen_to < 1:
        raise PartitionError(f"coarsen_to must be >= 1, got {coarsen_to}")
    rng = as_rng(seed)
    with _obs.trace_span("coarsen", nodes=g.n, coarsen_to=coarsen_to) as sp:
        hier = Hierarchy(levels=[CoarseLevel(graph=g, node_map=None)])
        current = g
        while current.n > coarsen_to:
            with _obs.trace_span(
                "coarsen.level", level=len(hier.levels), nodes_in=current.n
            ) as lv:
                coarse, node_map, method = coarsen_once(
                    current, seed=rng, methods=methods
                )
                lv.set(nodes_out=coarse.n, method=method)
            if coarse.n >= current.n * (1 - min_shrink):
                break
            hier.levels.append(
                CoarseLevel(graph=coarse, node_map=node_map, method=method)
            )
            current = coarse
        sp.set(levels=len(hier.levels), coarsest=current.n)
    return hier
