"""METIS-like unconstrained Multi-Level K-Way Partitioning (baseline).

This reimplements the *scheme* of METIS 5.1 (kmetis) that the paper compares
against — no bindings exist offline, and the paper's claims about METIS are
structural, not numeric (see DESIGN.md, Substitutions):

1. **Coarsening** by heavy-edge matching until ``max(coarsen_to, 4k)`` nodes.
2. **Initial partitioning** by recursive bisection on the coarsest graph:
   greedy graph growing to the target weight split, then FM refinement.
3. **Un-coarsening** with greedy cut-driven k-way boundary refinement under a
   node-weight balance cap (METIS's default load-imbalance tolerance 1.03).

The baseline minimises *global* edge cut subject only to *balance* — it is
deliberately oblivious to the paper's pairwise-bandwidth and absolute
resource caps, which is precisely the behaviour the paper's experiments
exhibit ("METIS always partitions, regardless of said constraints").
"""

from __future__ import annotations

import numpy as np

import repro.obs as _obs
from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.coarsen import build_hierarchy
from repro.partition.flow_refine import check_refine_mode, run_flow_refine
from repro.partition.fm import fm_refine_bisection
from repro.partition.kway_refine import greedy_kway_refine, rebalance_pass
from repro.partition.metrics import ConstraintSpec, evaluate_partition
from repro.partition.refine_state import RefinementState
from repro.util.errors import PartitionError
from repro.util.rng import as_rng, spawn_seeds

__all__ = ["mlkp_partition", "recursive_bisection"]

#: METIS's default load-imbalance tolerance for k-way (ufactor=30 -> 1.03).
DEFAULT_BALANCE = 1.03

#: Levels with at least this many nodes refine locally: the FM frontier is
#: seeded from the just-uncontracted boundary nodes instead of the full
#: boundary (n-level style).  Set above every pinned corpus so small runs
#: are bit-identical to the historical global sweep.
LOCAL_REFINE_FROM = 200_000


def _grow_bisection(
    g: WGraph, target0: float, rng: np.random.Generator
) -> np.ndarray:
    """Greedy graph growing: BFS-grow side 0 from a random node until its
    weight reaches *target0*; strongest-connection-first frontier."""
    assign = np.ones(g.n, dtype=np.int64)
    start = int(rng.integers(0, g.n))
    assign[start] = 0
    weight = float(g.node_weights[start])
    frontier: dict[int, float] = {}
    for v, w in zip(*g.neighbor_weights(start)):
        frontier[int(v)] = frontier.get(int(v), 0.0) + float(w)
    while weight < target0 and frontier:
        u = min(frontier, key=lambda x: (-frontier[x], x))
        del frontier[u]
        if assign[u] == 0:
            continue
        assign[u] = 0
        weight += float(g.node_weights[u])
        for v, w in zip(*g.neighbor_weights(u)):
            v = int(v)
            if assign[v] == 1:
                frontier[v] = frontier.get(v, 0.0) + float(w)
    # disconnected remainder: top up side 0 with arbitrary side-1 nodes
    if weight < target0:
        for u in np.nonzero(assign == 1)[0]:
            if weight >= target0:
                break
            assign[int(u)] = 0
            weight += float(g.node_weights[int(u)])
    return assign


def recursive_bisection(
    g: WGraph,
    k: int,
    seed=None,
    balance: float = DEFAULT_BALANCE,
    trials: int = 4,
) -> np.ndarray:
    """Recursive bisection into *k* weight-proportional parts.

    Each bisection runs *trials* greedy-growing starts refined with FM
    (balance-capped) and keeps the smallest cut — the strategy kmetis uses
    for its coarsest-level initial partitioning.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > g.n:
        raise PartitionError(f"k={k} exceeds node count {g.n}")
    rng = as_rng(seed)
    assign = np.zeros(g.n, dtype=np.int64)

    def ensure_counts(sub: WGraph, a: np.ndarray, k0: int, k1: int) -> np.ndarray:
        """Each side must carry enough nodes for its sub-parts; move the
        lightest nodes across when a weight-driven split starves a side."""
        a = a.copy()
        for side, need in ((0, k0), (1, k1)):
            other = 1 - side
            while int((a == side).sum()) < need:
                donors = np.nonzero(a == other)[0]
                u = int(donors[int(np.argmin(sub.node_weights[donors]))])
                a[u] = side
        return a

    def bisect(nodes: np.ndarray, k_sub: int, first_label: int) -> None:
        if k_sub == 1:
            assign[nodes] = first_label
            return
        sub, idx = g.subgraph(nodes)
        k0 = k_sub // 2
        k1 = k_sub - k0
        frac0 = k0 / k_sub
        target0 = frac0 * sub.total_node_weight
        cap0 = balance * target0
        cap1 = balance * (sub.total_node_weight - target0)
        best = None
        for _ in range(max(1, trials)):
            a = _grow_bisection(sub, target0, rng)
            a = fm_refine_bisection(sub, a, max_weight=(cap0, cap1))
            a = ensure_counts(sub, a, k0, k1)
            m = evaluate_partition(sub, a, 2)
            if best is None or m.cut < best[1]:
                best = (a, m.cut)
        a = best[0]
        bisect(idx[a == 0], k0, first_label)
        bisect(idx[a == 1], k1, first_label + k0)

    bisect(np.arange(g.n, dtype=np.int64), k, 0)
    return assign


def mlkp_partition(
    g: WGraph,
    k: int,
    seed=None,
    coarsen_to: int | None = None,
    balance: float = DEFAULT_BALANCE,
    refine_passes: int = 8,
    constraints: ConstraintSpec | None = None,
    refine: str = "fm",
    conn_format: str = "auto",
) -> PartitionResult:
    """Partition *g* into *k* parts, METIS style.

    *constraints* (optional) are **not enforced** — they are only used to
    evaluate the result's feasibility, mirroring how the paper audits the
    METIS output against ``Bmax``/``Rmax`` after the fact.

    *refine* other than ``"fm"`` (the native pipeline, default) appends a
    guarded corridor-flow stage (:mod:`repro.partition.flow_refine`) after
    un-coarsening, run under the baseline's *own* objective — a balance
    cap of ``balance · total / k`` as the resource constraint — so the
    stage polishes the cut without abandoning kmetis's balance contract.

    *conn_format* selects the engine's connectivity representation
    (``"auto"``/``"dense"``/``"sparse"``, see
    :mod:`repro.partition.conn_store`); results are identical either way.
    """
    check_refine_mode(refine)
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > g.n:
        raise PartitionError(f"k={k} exceeds node count {g.n}")
    if balance < 1.0:
        raise PartitionError(f"balance must be >= 1.0, got {balance}")
    rng = as_rng(seed)
    seed_hier, seed_init, seed_refine = spawn_seeds(rng, 3)
    if coarsen_to is None:
        coarsen_to = max(20, 4 * k)
    with _obs.timed_span("mlkp", nodes=g.n, k=k) as sw:
        hier = build_hierarchy(g, coarsen_to=max(coarsen_to, k),
                               seed=seed_hier, methods=("hem",))
        coarsest = hier.coarsest
        with _obs.trace_span("mlkp.initial", nodes=coarsest.n):
            assign = recursive_bisection(
                coarsest, k, seed=seed_init, balance=balance
            )

        max_part_weight = balance * g.total_node_weight / k
        refine_seeds = spawn_seeds(seed_refine, max(hier.depth, 1))
        for level in range(hier.depth - 1, 0, -1):
            level_graph = hier.levels[level - 1].graph
            assign = hier.project(assign, level)
            with _obs.trace_span(
                "mlkp.refine_level", level=level - 1,
                nodes=level_graph.n, edges=level_graph.m,
            ):
                # one engine state per level, shared by both phases so
                # connectivity and bandwidth are never rebuilt between them
                state = RefinementState(
                    level_graph, assign, k, conn_format=conn_format
                )
                seed_nodes = None
                if level_graph.n >= LOCAL_REFINE_FROM:
                    node_map = hier.levels[level].node_map
                    members = np.bincount(
                        node_map, minlength=hier.levels[level].graph.n
                    )
                    seed_nodes = np.nonzero(members[node_map] >= 2)[0]
                # kmetis order: restore balance first, then chase the cut
                assign = rebalance_pass(
                    level_graph, assign, k, max_part_weight,
                    seed=refine_seeds[level - 1], state=state,
                )
                assign = greedy_kway_refine(
                    level_graph,
                    assign,
                    k,
                    max_part_weight=max_part_weight,
                    max_passes=refine_passes,
                    seed=refine_seeds[level - 1],
                    state=state,
                    seed_nodes=seed_nodes,
                )
        if hier.depth == 1:
            with _obs.trace_span(
                "mlkp.refine_level", level=0, nodes=g.n, edges=g.m
            ):
                state = RefinementState(g, assign, k, conn_format=conn_format)
                assign = rebalance_pass(
                    g, assign, k, max_part_weight,
                    seed=refine_seeds[0], state=state,
                )
                assign = greedy_kway_refine(
                    g, assign, k,
                    max_part_weight=max_part_weight,
                    max_passes=refine_passes,
                    seed=refine_seeds[0],
                    state=state,
                )
        if refine != "fm":
            # guarded flow polish under the baseline's balance objective;
            # the pass's never-worse guard keeps (balance violation, cut)
            # from regressing, so the kmetis contract survives
            st = RefinementState(g, assign, k, conn_format=conn_format)
            assign = run_flow_refine(
                st, ConstraintSpec(rmax=float(max_part_weight))
            )

    metrics = evaluate_partition(g, assign, k, constraints)
    return PartitionResult(
        assign=assign,
        k=k,
        metrics=metrics,
        algorithm="MLKP",
        runtime=sw.elapsed,
        constraints=constraints or ConstraintSpec(),
        info={"levels": hier.depth, "balance": balance, "refine": refine},
    )
