"""Partition quality metrics and the paper's mapping constraints.

The paper evaluates four quantities per partitioning (Section V):

1. **Global edge cut** — sum of weights of edges whose endpoints lie in
   different partitions ("Total Edge-Cuts").
2. **Local edge cut / pairwise bandwidth** — for each *pair* of partitions,
   the summed weight of edges crossing between exactly those two; the
   per-pair inter-FPGA traffic.  Constraint: every entry ``<= Bmax``.
3. **Maximum resource allocation** — the largest per-partition sum of node
   weights.  Constraint: every partition ``<= Rmax``.
4. Runtime (measured by the harness, not here).

All functions are numpy-vectorised over the edge arrays — on large PN graphs
these run in microseconds, which matters because GP's refinement loop calls
them per candidate clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.wgraph import WGraph
from repro.util.errors import PartitionError

__all__ = [
    "ConstraintSpec",
    "PartitionMetrics",
    "check_assignment",
    "cut_value",
    "bandwidth_matrix",
    "part_weights",
    "evaluate_partition",
]


@dataclass(frozen=True)
class ConstraintSpec:
    """The two mapping constraints of Section I.

    Attributes
    ----------
    bmax:
        Maximum total bandwidth between any *pair* of partitions (the
        inter-FPGA link capacity).  ``inf`` disables the constraint.
    rmax:
        Maximum resource (node-weight) sum per partition (the per-FPGA
        budget).  ``inf`` disables the constraint.
    """

    bmax: float = float("inf")
    rmax: float = float("inf")

    def __post_init__(self) -> None:
        if self.bmax < 0 or self.rmax < 0:
            raise PartitionError(
                f"constraints must be non-negative, got {self}"
            )

    @property
    def unconstrained(self) -> bool:
        return np.isinf(self.bmax) and np.isinf(self.rmax)


@dataclass(frozen=True)
class PartitionMetrics:
    """Evaluated quality of one k-way assignment."""

    k: int
    cut: float
    max_local_bandwidth: float
    max_resource: float
    bandwidth_violation: float
    resource_violation: float

    @property
    def feasible(self) -> bool:
        return self.bandwidth_violation == 0.0 and self.resource_violation == 0.0

    @property
    def total_violation(self) -> float:
        return self.bandwidth_violation + self.resource_violation

    def as_row(self) -> list:
        """Columns in the paper's table order (sans runtime)."""
        return [self.cut, self.max_resource, self.max_local_bandwidth]


def check_assignment(g: WGraph, assign: np.ndarray, k: int) -> np.ndarray:
    """Validate an assignment vector; return it as an int64 array.

    Every node must be assigned to exactly one part in ``0..k-1``.  (The
    "each node in exactly one partition" invariant of Section IV.B.)
    """
    a = np.asarray(assign, dtype=np.int64)
    if a.shape != (g.n,):
        raise PartitionError(
            f"assignment has shape {a.shape}, expected ({g.n},)"
        )
    if k <= 0:
        raise PartitionError(f"k must be positive, got {k}")
    if g.n and (a.min() < 0 or a.max() >= k):
        raise PartitionError(
            f"assignment values outside [0, {k}): min={a.min()}, max={a.max()}"
        )
    return a


def cut_value(g: WGraph, assign: np.ndarray) -> float:
    """Global edge cut: total weight of edges with endpoints in different parts."""
    a = np.asarray(assign, dtype=np.int64)
    eu, ev, ew = g.edge_array
    return float(ew[a[eu] != a[ev]].sum())


def bandwidth_matrix(g: WGraph, assign: np.ndarray, k: int) -> np.ndarray:
    """Symmetric ``(k, k)`` matrix of pairwise inter-partition bandwidth.

    Entry ``[c, d]`` (``c != d``) is the summed weight of edges with one
    endpoint in part *c* and the other in part *d*; the diagonal is zero
    (intra-FPGA traffic is free per Section V).
    """
    a = check_assignment(g, assign, k)
    eu, ev, ew = g.edge_array
    b = np.zeros((k, k), dtype=np.float64)
    cu, cv = a[eu], a[ev]
    crossing = cu != cv
    np.add.at(b, (cu[crossing], cv[crossing]), ew[crossing])
    np.add.at(b, (cv[crossing], cu[crossing]), ew[crossing])
    return b


def part_weights(g: WGraph, assign: np.ndarray, k: int) -> np.ndarray:
    """Per-partition sums of node resource weights, shape ``(k,)``."""
    a = check_assignment(g, assign, k)
    w = np.zeros(k, dtype=np.float64)
    np.add.at(w, a, g.node_weights)
    return w


def evaluate_partition(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec | None = None,
) -> PartitionMetrics:
    """Compute all paper metrics for one assignment."""
    constraints = constraints or ConstraintSpec()
    b = bandwidth_matrix(g, assign, k)
    w = part_weights(g, assign, k)
    # each crossing edge counted once: sum of upper triangle
    cut = float(np.triu(b, k=1).sum())
    max_bw = float(b.max()) if k > 1 else 0.0
    max_res = float(w.max()) if k > 0 else 0.0
    if np.isfinite(constraints.bmax):
        bw_excess = np.triu(np.maximum(b - constraints.bmax, 0.0), k=1)
        bw_violation = float(bw_excess.sum())
    else:
        bw_violation = 0.0
    if np.isfinite(constraints.rmax):
        res_violation = float(np.maximum(w - constraints.rmax, 0.0).sum())
    else:
        res_violation = 0.0
    return PartitionMetrics(
        k=k,
        cut=cut,
        max_local_bandwidth=max_bw,
        max_resource=max_res,
        bandwidth_violation=bw_violation,
        resource_violation=res_violation,
    )
