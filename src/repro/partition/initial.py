"""Initial partitioning phase (paper Section IV.B).

The paper's greedy scheme on the coarsest graph:

1. take the **heaviest** unassigned node as the seed of the next partition,
2. grow the partition by absorbing neighbours "as long as the total number
   of resources assignable to each partition (Rmax) is not violated",
3. repeat for all K partitions,
4. place leftover nodes into "the first partition which has biggest free
   space", violating ``Rmax`` only if unavoidable,
5. run an FM-based pass to push pairwise bandwidth under ``Bmax``,
6. because step 1 is "sensitive to the initial node selection, the whole
   process is repeated with a parametrized number of randomly chosen initial
   nodes (10 is default)" and the best outcome (goodness order) is kept.

``random_initial`` and ``balanced_random_initial`` are cheap alternatives
used by baselines and tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.goodness import goodness_key
from repro.partition.kway_refine import constrained_kway_fm
from repro.partition.metrics import ConstraintSpec
from repro.partition.refine_state import RefinementState
from repro.util.errors import PartitionError
from repro.util.rng import as_rng, spawn_seeds

__all__ = [
    "greedy_grow_once",
    "greedy_initial_partition",
    "random_initial",
    "balanced_random_initial",
]


def _grow_from_seed(
    g: WGraph,
    assign: np.ndarray,
    part: int,
    seed_node: int,
    rmax: float,
) -> None:
    """Grow *part* from *seed_node*, absorbing the most strongly connected
    unassigned neighbour while the resource budget holds.  Mutates *assign*."""
    assign[seed_node] = part
    weight = float(g.node_weights[seed_node])
    frontier_gain: dict[int, float] = {}
    for v, w in zip(*g.neighbor_weights(seed_node)):
        v = int(v)
        if assign[v] < 0:
            frontier_gain[v] = frontier_gain.get(v, 0.0) + float(w)
    while frontier_gain:
        # strongest connection first; node id tie-break for determinism
        u = min(frontier_gain, key=lambda x: (-frontier_gain[x], x))
        del frontier_gain[u]
        if assign[u] >= 0:
            continue
        w_u = float(g.node_weights[u])
        if weight + w_u > rmax:
            continue  # paper: add neighbours as long as Rmax not violated
        assign[u] = part
        weight += w_u
        for v, w in zip(*g.neighbor_weights(u)):
            v = int(v)
            if assign[v] < 0:
                frontier_gain[v] = frontier_gain.get(v, 0.0) + float(w)


def greedy_grow_once(
    g: WGraph,
    k: int,
    rmax: float,
    seed_nodes: list[int] | None = None,
) -> np.ndarray:
    """One greedy growing round (steps 1-4 above).

    *seed_nodes*: optional explicit seeds, one per partition in order; when
    a seed is already assigned (absorbed by an earlier partition), the
    heaviest unassigned node takes its place — this realises both the
    "heaviest node" round (no seeds) and the random-restart rounds.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > g.n:
        raise PartitionError(f"k={k} exceeds node count {g.n}")
    assign = np.full(g.n, -1, dtype=np.int64)
    for part in range(k):
        unassigned = np.nonzero(assign < 0)[0]
        if unassigned.size == 0:
            break
        seed_node = -1
        if seed_nodes is not None and part < len(seed_nodes):
            cand = int(seed_nodes[part])
            if assign[cand] < 0:
                seed_node = cand
        if seed_node < 0:
            # heaviest unassigned node (paper's default seeding)
            weights = g.node_weights[unassigned]
            seed_node = int(unassigned[int(np.argmax(weights))])
        _grow_from_seed(g, assign, part, seed_node, rmax)

    # leftover placement: biggest free space first (paper step 4)
    part_weight = np.zeros(k, dtype=np.float64)
    for c in range(k):
        part_weight[c] = g.node_weights[assign == c].sum()
    leftovers = np.nonzero(assign < 0)[0]
    # heaviest leftovers first: hardest to place
    leftovers = leftovers[np.argsort(-g.node_weights[leftovers], kind="stable")]
    for u in leftovers:
        u = int(u)
        w_u = float(g.node_weights[u])
        free = rmax - part_weight
        fits = np.nonzero(free >= w_u)[0]
        if fits.size:
            dest = int(fits[int(np.argmax(free[fits]))])
        else:
            # unavoidable violation: biggest free space even though over Rmax
            dest = int(np.argmax(free))
        assign[u] = dest
        part_weight[dest] += w_u
    return assign


def greedy_initial_partition(
    g: WGraph,
    k: int,
    constraints: ConstraintSpec,
    restarts: int = 10,
    seed=None,
    fm_passes: int = 4,
) -> np.ndarray:
    """Full initial-partitioning phase with restarts and the bandwidth FM pass.

    Round 0 uses the paper's heaviest-node seeding; rounds ``1..restarts-1``
    use randomly chosen seed nodes.  Every round ends with the constrained
    FM pass ("we check the bandwidth between each pair of partitions and use
    the FM algorithm to meet the bandwidth constraint"); the round with the
    best goodness key wins.
    """
    if restarts < 1:
        raise PartitionError(f"restarts must be >= 1, got {restarts}")
    rng = as_rng(seed)
    round_seeds = spawn_seeds(rng, restarts)
    best_assign: np.ndarray | None = None
    best_key = None
    for r in range(restarts):
        if r == 0:
            seeds_r = None
        else:
            r_rng = as_rng(round_seeds[r])
            seeds_r = r_rng.choice(g.n, size=min(k, g.n), replace=False).tolist()
        assign = greedy_grow_once(g, k, constraints.rmax, seed_nodes=seeds_r)
        st = RefinementState(g, assign, k)
        assign = constrained_kway_fm(
            g, assign, k, constraints, max_passes=fm_passes,
            seed=round_seeds[r], state=st,
        )
        key = goodness_key(st.metrics(constraints), constraints)
        if best_key is None or key < best_key:
            best_key = key
            best_assign = assign
    assert best_assign is not None
    return best_assign


def random_initial(g: WGraph, k: int, seed=None) -> np.ndarray:
    """Uniformly random assignment (KL-style arbitrary initial partition)."""
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    rng = as_rng(seed)
    return rng.integers(0, k, size=g.n).astype(np.int64)


def balanced_random_initial(g: WGraph, k: int, seed=None) -> np.ndarray:
    """Random assignment greedily balanced on node weight: shuffle nodes,
    heaviest-first into the currently lightest part."""
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    rng = as_rng(seed)
    order = np.argsort(-g.node_weights + rng.random(g.n) * 1e-9, kind="stable")
    assign = np.empty(g.n, dtype=np.int64)
    part_weight = np.zeros(k, dtype=np.float64)
    for u in order:
        dest = int(np.argmin(part_weight))
        assign[u] = dest
        part_weight[dest] += g.node_weights[u]
    return assign
