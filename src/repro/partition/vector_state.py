"""Vector-resource containers and the multi-resource refinement engine.

The paper tracks one resource per node ("only one resource is considered
at this time, for example LUTs", Section V); real FPGAs budget LUTs, FFs,
BRAMs and DSPs independently.  This module lifts the shared refinement
engine to that setting:

* :class:`VectorConstraints` — the pairwise bandwidth cap plus a
  per-resource budget *vector* ``rmax``;
* :class:`MultiResMetrics` — evaluated quality of an assignment under
  vector constraints (per-resource load maxima, componentwise violation);
* :class:`VectorGraph` — a :class:`~repro.graph.wgraph.WGraph` bundled
  with its ``(n, R)`` resource matrix and a content digest covering both,
  the structure type the evolutionary engine adapter dispatches on;
* :class:`VectorRefinementState` — :class:`~repro.partition.refine_state.
  RefinementState` extended with the per-part ``(k, R)`` load matrix,
  tracked incrementally under ``move()`` with exact rollback, so the
  engine-agnostic :func:`~repro.partition.kway_refine.run_constrained_fm`
  driver runs on vector-resource instances unchanged.

The state overrides exactly the pieces the vector objective changes —
the resource part of the move deltas, the over-budget escape rule, the
``(violation, cut)`` key and the tracked metrics — and inherits the
bandwidth-violation arithmetic verbatim, so the bandwidth side of every
move delta is bit-identical to the scalar engine's.  Invariants are
pinned by ``tests/test_multires_invariants.py``; the algorithm drivers
live in :mod:`repro.partition.multires`; see ``docs/multires.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.wgraph import WGraph
from repro.obs.memory import note_bytes
from repro.partition.metrics import ConstraintSpec
from repro.partition.refine_state import RefinementState
from repro.util.errors import PartitionError

__all__ = [
    "VectorConstraints",
    "MultiResMetrics",
    "VectorGraph",
    "VectorRefinementState",
    "check_weight_matrix",
]


@dataclass(frozen=True)
class VectorConstraints:
    """Pairwise bandwidth cap + per-resource budget vector.

    ``rmax[r]`` caps every part's summed column-*r* load; a component may
    be ``inf`` to leave that resource unconstrained.  Hashable (tuples are
    normalised in ``__post_init__``) so it can key a
    :class:`~repro.util.parallel.KeyedCache` like
    :class:`~repro.partition.metrics.ConstraintSpec` does.
    """

    bmax: float
    rmax: tuple[float, ...]
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "bmax", float(self.bmax))
        object.__setattr__(
            self, "rmax", tuple(float(r) for r in self.rmax)
        )
        object.__setattr__(self, "names", tuple(self.names))
        if self.bmax < 0:
            raise PartitionError(f"bmax must be >= 0, got {self.bmax}")
        if not self.rmax:
            raise PartitionError("rmax vector must be non-empty")
        if any(r < 0 for r in self.rmax):
            raise PartitionError(f"rmax components must be >= 0: {self.rmax}")
        if self.names and len(self.names) != len(self.rmax):
            raise PartitionError("names/rmax length mismatch")

    @property
    def n_resources(self) -> int:
        return len(self.rmax)


@dataclass(frozen=True)
class MultiResMetrics:
    """Evaluated quality of a vector-constrained assignment.

    Field-compatible with :class:`~repro.partition.metrics.
    PartitionMetrics` where it matters: the goodness key reads
    ``total_violation`` / ``bandwidth_violation`` / ``resource_violation``
    / ``cut``, so population search and portfolio ranking work on either.
    """

    k: int
    cut: float
    max_local_bandwidth: float
    #: per-resource maxima over parts, shape (R,)
    max_loads: tuple[float, ...]
    bandwidth_violation: float
    resource_violation: float

    @property
    def feasible(self) -> bool:
        return self.bandwidth_violation == 0.0 and self.resource_violation == 0.0

    @property
    def total_violation(self) -> float:
        return self.bandwidth_violation + self.resource_violation

    @property
    def max_resource(self) -> float:
        """Largest load component anywhere (scalar-metric compatibility)."""
        return max(self.max_loads) if self.max_loads else 0.0


def check_weight_matrix(g: WGraph, weights: np.ndarray) -> np.ndarray:
    """Validate an ``(n, R)`` resource matrix against *g*; return float64."""
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != g.n or w.shape[1] < 1:
        raise PartitionError(
            f"weight matrix must be (n={g.n}, R>=1), got {w.shape}"
        )
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise PartitionError("weight matrix entries must be finite and >= 0")
    return w


class VectorGraph:
    """A graph bundled with its per-node resource matrix.

    The structure type of the vector-resource engine: algorithms that take
    "a structure" (the evolutionary loop, its operators, the engine
    adapters) receive one object carrying both the topology and the
    ``(n, R)`` weight matrix, so coarsening can aggregate the matrix
    through the same contraction maps that merge the nodes.

    The bundle is immutable (arrays are read-only) and content-addressed:
    :meth:`content_digest` covers the graph *and* the weight matrix, so
    two instances that partition identically share a digest and nothing
    else does — the property cache keys rely on.
    """

    __slots__ = ("graph", "weights", "names", "_digest")

    def __init__(
        self,
        graph: WGraph,
        weights: np.ndarray,
        names: tuple[str, ...] = (),
    ) -> None:
        self.graph = graph
        w = check_weight_matrix(graph, weights).copy()
        w.setflags(write=False)
        self.weights = w
        note_bytes("vector_graph.weights", w.nbytes,
                   n=graph.n, resources=int(w.shape[1]))
        self.names = tuple(names)
        if self.names and len(self.names) != w.shape[1]:
            raise PartitionError(
                f"{len(self.names)} resource names for {w.shape[1]} columns"
            )
        self._digest: str | None = None

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m

    @property
    def n_resources(self) -> int:
        return int(self.weights.shape[1])

    def content_digest(self) -> str:
        """Digest of topology + node/edge weights + resource matrix."""
        if self._digest is None:
            import hashlib

            h = hashlib.sha256()
            h.update(self.graph.content_digest().encode())
            h.update(np.ascontiguousarray(self.weights).tobytes())
            h.update(repr(self.names).encode())
            self._digest = h.hexdigest()
        return self._digest

    def __repr__(self) -> str:
        return (
            f"VectorGraph(n={self.n}, m={self.m}, "
            f"resources={self.n_resources})"
        )


class VectorRefinementState(RefinementState):
    """:class:`RefinementState` extended with a tracked ``(k, R)`` load matrix.

    Every move updates ``loads`` in O(R) on top of the parent's
    O(deg(u) + k) bookkeeping, and rollback undoes it exactly (the load
    update lives inside ``_move``, which the trail replays in reverse).
    The *constraints* object threaded through the FM driver is a
    :class:`VectorConstraints`; the bandwidth half of every quantity is
    computed by the parent against a scalar ``ConstraintSpec`` carrying
    only ``bmax``, so the two engines can never drift on the bandwidth
    arithmetic.
    """

    __slots__ = ("weights", "loads", "_rmax_cache", "_bw_spec")

    def __init__(
        self,
        g: WGraph,
        weights: np.ndarray,
        assign: np.ndarray,
        k: int,
        conn_format: str = "auto",
    ) -> None:
        w = check_weight_matrix(g, weights)
        super().__init__(g, assign, k, conn_format=conn_format)
        self.weights = w
        loads = np.zeros((self.k, w.shape[1]), dtype=np.float64)
        np.add.at(loads, self.assign, w)
        self.loads = loads
        self._rmax_cache: tuple[tuple[float, ...], np.ndarray] | None = None
        self._bw_spec: ConstraintSpec | None = None

    @property
    def n_resources(self) -> int:
        return int(self.weights.shape[1])

    # ------------------------------------------------------------------ #
    # constraint plumbing
    # ------------------------------------------------------------------ #
    def _rmax(self, constraints: VectorConstraints) -> np.ndarray:
        """``rmax`` as an array, cached per constraints tuple (hot path)."""
        cached = self._rmax_cache
        if cached is None or cached[0] != constraints.rmax:
            arr = np.asarray(constraints.rmax, dtype=np.float64)
            if arr.size != self.n_resources:
                raise PartitionError(
                    f"constraints cap {arr.size} resources, "
                    f"state tracks {self.n_resources}"
                )
            cached = (constraints.rmax, arr)
            self._rmax_cache = cached
        return cached[1]

    def _bw_only(self, constraints: VectorConstraints) -> ConstraintSpec:
        """Scalar spec carrying only ``bmax`` — what the parent's
        bandwidth-delta arithmetic consumes."""
        spec = self._bw_spec
        if spec is None or spec.bmax != constraints.bmax:
            spec = ConstraintSpec(bmax=constraints.bmax)
            self._bw_spec = spec
        return spec

    # ------------------------------------------------------------------ #
    # overridden engine surface
    # ------------------------------------------------------------------ #
    def overloaded_mask(self, constraints: VectorConstraints) -> np.ndarray:
        """Parts over *any* resource cap — the vector escape rule."""
        return np.any(self.loads > self._rmax(constraints), axis=1)

    def key(self, constraints: VectorConstraints) -> tuple[float, float]:
        """``(total violation, cut)`` under vector constraints."""
        upper = self.bw[self._iu]
        cut = float(upper.sum())
        v = float(
            np.maximum(self.loads - self._rmax(constraints), 0.0).sum()
        )
        if np.isfinite(constraints.bmax):
            v += float(np.maximum(upper - constraints.bmax, 0.0).sum())
        return (v, cut)

    def metrics(
        self, constraints: VectorConstraints | None = None
    ) -> MultiResMetrics:
        """:class:`MultiResMetrics` from the tracked matrices, no rescan."""
        if constraints is None:
            constraints = VectorConstraints(
                bmax=float("inf"),
                rmax=(float("inf"),) * self.n_resources,
            )
        rmax = self._rmax(constraints)
        upper = self.bw[self._iu]
        if np.isfinite(constraints.bmax):
            bw_violation = float(
                np.maximum(upper - constraints.bmax, 0.0).sum()
            )
        else:
            bw_violation = 0.0
        return MultiResMetrics(
            k=self.k,
            cut=float(upper.sum()),
            max_local_bandwidth=float(self.bw.max()) if self.k > 1 else 0.0,
            max_loads=tuple(float(x) for x in self.loads.max(axis=0)),
            bandwidth_violation=bw_violation,
            resource_violation=float(
                np.maximum(self.loads - rmax, 0.0).sum()
            ),
        )

    def _move(self, u: int, dest: int) -> int:
        src = super()._move(u, dest)
        if src >= 0:
            w_u = self.weights[u]
            self.loads[src] -= w_u
            self.loads[dest] += w_u
        return src

    def move_deltas(
        self, u: int, constraints: VectorConstraints
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(violation_delta, cut_delta)`` of moving *u* to every part.

        The bandwidth part is the parent's vectorized arithmetic verbatim
        (scalar spec with ``rmax=inf``); the resource part replaces the
        scalar part-weight ReLU with the componentwise load ReLU summed
        over resources.
        """
        dv, dc = super().move_deltas(u, self._bw_only(constraints))
        src = int(self.assign[u])
        rmax = self._rmax(constraints)
        loads = self.loads
        w_u = self.weights[u]
        shed = float(
            np.maximum(loads[src] - w_u - rmax, 0.0).sum()
            - np.maximum(loads[src] - rmax, 0.0).sum()
        )
        add = (
            np.maximum(loads + w_u[None, :] - rmax, 0.0)
            - np.maximum(loads - rmax, 0.0)
        ).sum(axis=1)
        dv = dv + shed + add
        dv[src] = 0.0
        return dv, dc

    def move_deltas_batch(
        self, nodes: np.ndarray, constraints: VectorConstraints
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`move_deltas` (shape ``(len(nodes), k)`` each).

        Expression structure matches :meth:`move_deltas` element for
        element, so the two produce identical floats — the same contract
        the parent maintains for the scalar engine.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        dv, dc = super().move_deltas_batch(nodes, self._bw_only(constraints))
        if nodes.size == 0:
            return dv, dc
        srcs = self.assign[nodes]
        rows = np.arange(nodes.size)
        rmax = self._rmax(constraints)
        loads = self.loads
        w_b = self.weights[nodes]  # (nb, R)
        shed = (
            np.maximum(loads[srcs] - w_b - rmax, 0.0)
            - np.maximum(loads[srcs] - rmax, 0.0)
        ).sum(axis=1)
        add = (
            np.maximum(loads[None, :, :] + w_b[:, None, :] - rmax, 0.0)
            - np.maximum(loads - rmax, 0.0)[None, :, :]
        ).sum(axis=2)
        dv = dv + shed[:, None] + add
        dv[rows, srcs] = 0.0
        return dv, dc

    def copy(self) -> "VectorRefinementState":
        out = super().copy()
        # super().copy() allocates the subclass via object.__new__(type(self))
        out.weights = self.weights
        out.loads = self.loads.copy()
        out._rmax_cache = None
        out._bw_spec = None
        return out

    def recompute(self) -> None:
        """Rebuild everything from scratch (tests/debugging only)."""
        super().recompute()
        loads = np.zeros((self.k, self.weights.shape[1]), dtype=np.float64)
        np.add.at(loads, self.assign, self.weights)
        self.loads = loads

    def __repr__(self) -> str:
        return (
            f"VectorRefinementState(n={self.g.n}, k={self.k}, "
            f"R={self.n_resources}, cut={self.cut:g})"
        )
