"""Partition-preserving V-cycle refinement.

Section IV describes GP's search as "un-coarsened up to a certain
intermediate level and then coarsened back to the lowest level ...
repeated a number of parametrized times".  :mod:`repro.partition.gp`
realises the outer loop as full restart cycles; this module adds the
*localised* variant from the multilevel literature: re-coarsen the current
graph with matchings **restricted to intra-partition pairs** (so the
incumbent partition survives contraction exactly), refine the coarse
problem where moves are cheap and global, and project back.

``vcycle_refine`` never returns anything worse than its input under the
goodness order, so it composes safely after any partitioner
(``GPConfig(vcycles=...)`` wires it into GP; benchmark X8 measures it).
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.coarsen import MATCHING_METHODS, contract
from repro.partition.flow_refine import check_refine_mode, run_flow_refine
from repro.partition.goodness import goodness_key
from repro.partition.kway_refine import constrained_kway_fm
from repro.partition.metrics import ConstraintSpec, check_assignment, evaluate_partition
from repro.partition.refine_state import RefinementState
from repro.util.errors import PartitionError
from repro.util.rng import as_rng, spawn_seeds

__all__ = ["intra_part_matching", "vcycle_refine"]


def intra_part_matching(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    method: str = "hem",
    seed=None,
) -> np.ndarray:
    """A matching of *g* that never pairs nodes from different parts.

    Runs the base matching heuristic, then unmatches every crossing pair —
    contraction of the result preserves the partition exactly (each coarse
    node inherits the single part of its constituents).
    """
    a = check_assignment(g, assign, k)
    try:
        fn = MATCHING_METHODS[method]
    except KeyError:
        raise PartitionError(
            f"unknown matching method {method!r}; valid: {sorted(MATCHING_METHODS)}"
        ) from None
    match = fn(g, seed=seed).copy()
    for u in range(g.n):
        v = int(match[u])
        if v != u and a[u] != a[v]:
            match[u] = u
            match[v] = v
    return match


def vcycle_refine(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    rounds: int = 2,
    coarsen_to: int | None = None,
    refine_passes: int = 6,
    method: str = "hem",
    seed=None,
    refine: str = "fm",
    conn_format: str = "auto",
) -> np.ndarray:
    """Improve *assign* with *rounds* partition-preserving V-cycles.

    Each round: coarsen the graph with intra-part matchings down to
    ``coarsen_to`` nodes (default ``max(30, 4k)``), refine every level on
    the way *down and back up* with the constrained FM, keep the result iff
    it improves the goodness key.  Stops early when a round brings no
    improvement.

    *refine* swaps the per-level local search (see
    :mod:`repro.partition.flow_refine`): ``"flow"`` replaces the FM with
    corridor flow passes; ``"fm+flow"`` runs FM per level plus a flow
    stage on the finest level — both still inside the round's goodness
    guard, so the never-worse-than-input property is unchanged.

    *conn_format* selects the engine's connectivity representation per
    level (``"auto"``/``"dense"``/``"sparse"``, see
    :mod:`repro.partition.conn_store`); results are identical either way.
    """
    check_refine_mode(refine)
    if rounds < 0:
        raise PartitionError(f"rounds must be >= 0, got {rounds}")
    a = check_assignment(g, assign, k).copy()
    if rounds == 0 or g.n <= k:
        return a
    if coarsen_to is None:
        coarsen_to = max(30, 4 * k)
    rng = as_rng(seed)

    best = a
    best_key = goodness_key(evaluate_partition(g, a, k, constraints), constraints)

    for _ in range(rounds):
        s_match, s_refine = spawn_seeds(rng, 2)
        # build a partition-preserving hierarchy from the incumbent
        graphs: list[WGraph] = [g]
        maps: list[np.ndarray] = []
        assigns: list[np.ndarray] = [best.copy()]
        cur_g, cur_a = g, best
        match_seeds = iter(spawn_seeds(s_match, 64))
        while cur_g.n > coarsen_to:
            match = intra_part_matching(
                cur_g, cur_a, k, method=method, seed=next(match_seeds)
            )
            if np.all(match == np.arange(cur_g.n)):
                break  # nothing contractible inside parts
            coarse, node_map = contract(cur_g, match)
            if coarse.n >= cur_g.n:
                break
            coarse_a = np.empty(coarse.n, dtype=np.int64)
            coarse_a[node_map] = cur_a  # well-defined: pairs share a part
            graphs.append(coarse)
            maps.append(node_map)
            assigns.append(coarse_a)
            cur_g, cur_a = coarse, coarse_a

        if len(graphs) == 1:
            break  # no hierarchy to exploit

        refine_seeds = spawn_seeds(s_refine, len(graphs))

        def level_refine(graph, a_level, s, state=None):
            if refine == "flow":
                from repro.partition.kway_refine import _as_state

                stf = _as_state(graph, check_assignment(graph, a_level, k),
                                k, state)
                return run_flow_refine(stf, constraints), stf
            out = constrained_kway_fm(
                graph, a_level, k, constraints,
                max_passes=refine_passes, seed=s, state=state,
            )
            return out, state

        # refine the coarsest, then project down with refinement per level;
        # the finest level's engine state also supplies the goodness metrics
        cand, _ = level_refine(graphs[-1], assigns[-1], refine_seeds[-1])
        st = None
        for level in range(len(graphs) - 1, 0, -1):
            cand = cand[maps[level - 1]]
            st = RefinementState(
                graphs[level - 1], cand, k, conn_format=conn_format
            )
            cand, st = level_refine(
                graphs[level - 1], cand, refine_seeds[level - 1], state=st
            )
        if refine == "fm+flow":
            # flow polish on the finest level, inside the goodness guard
            if st is None:
                st = RefinementState(g, cand, k, conn_format=conn_format)
            cand = run_flow_refine(st, constraints)
        metrics = (
            st.metrics(constraints)
            if st is not None
            else evaluate_partition(g, cand, k, constraints)
        )
        key = goodness_key(metrics, constraints)
        if key < best_key:
            best, best_key = cand, key
        else:
            break
    return best
