"""K-way refinement passes.

Two flavours are provided:

``greedy_kway_refine``
    The unconstrained, cut-driven boundary refinement used by the METIS-like
    baseline: move boundary nodes to the adjacent part with the largest
    positive gain, subject to a balance cap.  Greedy — only improving moves.

``constrained_kway_fm``
    The paper's refinement: an FM-discipline pass whose move selection is
    *lexicographic* — first reduce constraint violation (pairwise bandwidth
    over ``Bmax``, resources over ``Rmax``), then reduce cut.  Worsening-cut
    moves are accepted when violation does not increase (hill-climbing with
    best-prefix recovery, Section II.A); each node moves at most once per
    pass.  "Partitions will be changed and nodes will move between
    partitions as far as constraints met" (Section IV.B).

All passes run on the shared vectorized engine
(:class:`~repro.partition.refine_state.RefinementState`): part connectivity,
pairwise bandwidth, part weights and the boundary set are maintained
incrementally in O(deg + k) per move, and the constrained pass orders moves
with a :class:`~repro.partition.refine_state.BucketQueue` — the float-weight
analogue of the FM gain buckets — giving near-linear passes on
bounded-degree process networks.  Data-structure invariants and tie-breaking
rules are documented in ``docs/refinement.md``.
"""

from __future__ import annotations

import heapq

import numpy as np

import repro.obs as _obs
from repro.graph.wgraph import WGraph
from repro.partition.metrics import ConstraintSpec, check_assignment
from repro.partition.refine_state import BucketQueue, RefinementState
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = [
    "greedy_kway_refine",
    "rebalance_pass",
    "constrained_kway_fm",
    "run_constrained_fm",
    "move_delta",
]

_EPS = 1e-12


def _as_state(
    g: WGraph, assign: np.ndarray, k: int, state: RefinementState | None
) -> RefinementState:
    """Validate/adopt a caller-provided engine state, or build a fresh one.

    Callers that chain passes (rebalance → greedy refine, or per-level FM
    candidates) pass the previous pass's state so connectivity and bandwidth
    are never recomputed from scratch.
    """
    if state is None:
        return RefinementState(g, assign, k)
    if state.g is not g or state.k != k:
        raise PartitionError("provided state does not match graph/k")
    if not np.array_equal(state.assign, assign):
        raise PartitionError(
            "provided state holds a different assignment than the one passed"
        )
    return state


def rebalance_pass(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    max_part_weight: float,
    seed=None,
    state: RefinementState | None = None,
) -> np.ndarray:
    """Explicit balance phase (kmetis style).

    While any part exceeds *max_part_weight*, evict the node whose move
    damages the cut least into the lightest part that can take it.  Used by
    the METIS-like baseline between projection and cut refinement; gives up
    (returning the best effort) when no move can reduce the overflow —
    e.g. single nodes heavier than the cap.

    Every eviction is permanent — a destination accepted a node only because
    it stays under the cap, so it can never become a source — which bounds
    the pass at ``n`` moves total (the old implementation rescanned under a
    ``4·n`` guess and did O(n·k) Python work per move; candidate scoring is
    now one vectorized lexsort over the source part's members).

    *seed* is accepted for signature stability but unused: the eviction
    choice minimises the deterministic key ``(cut damage, -weight, node,
    dest)``, so no random tie-breaking remains.
    """
    del seed  # selection is deterministic; kept for API compatibility
    a = check_assignment(g, assign, k)
    st = _as_state(g, a, k, state)
    node_w = g.node_weights
    cap = float(max_part_weight)

    def current_src() -> int:
        """The part legacy eviction would drain next, or -1 when balanced."""
        over = np.nonzero((st.part_weight > cap) & (st.part_size > 1))[0]
        if over.size == 0:
            return -1
        return int(over[int(np.argmax(st.part_weight[over]))])

    def fresh_key(v: int, src: int):
        """Current best eviction key of node *v*: min over feasible dests of
        ``(cut damage, -weight, node, dest)`` — exactly the scan order."""
        w_v = float(node_w[v])
        cv = st.connection_vector(v)
        best = None
        for d in range(k):
            if d == src or st.part_weight[d] + w_v > cap:
                continue
            key = (float(cv[src] - cv[d]), -w_v, v, d)
            if best is None or key < best:
                best = key
        return best

    def build_heap(src: int) -> list:
        """Eviction queue of part *src*: every member's best key, in one
        vectorized sweep over the connectivity matrix."""
        members = np.nonzero(st.assign == src)[0]
        w_m = node_w[members]
        conn_m = st.conn_columns(members)  # (members, k)
        damage = np.ascontiguousarray(conn_m[:, src][:, None] - conn_m)
        feasible = st.part_weight[None, :] + w_m[:, None] <= cap
        feasible[:, src] = False
        masked = np.where(feasible, damage, np.inf)
        best_dest = np.argmin(masked, axis=1)  # first min = smallest dest
        best_dmg = masked[np.arange(members.size), best_dest]
        live = np.isfinite(best_dmg)
        heap = [
            (float(d), -float(w), int(u), int(t))
            for d, w, u, t in zip(
                best_dmg[live], w_m[live], members[live], best_dest[live]
            )
        ]
        heapq.heapify(heap)
        return heap

    # One cached eviction heap per over-capacity part.  A cached key can
    # only go stale in three ways, each handled exactly:
    #   * it rose (its destination filled up) — caught by lazy revalidation
    #     on pop, same discipline as the FM queue;
    #   * it fell because a neighbour was evicted — the eviction loop pushes
    #     the fresh key into the owner's heap immediately;
    #   * a destination *reopened* — impossible while every tracked part
    #     stays over the cap, because parts only shed while over it; the
    #     one-time event of a part dropping to/below the cap clears the
    #     whole cache.
    # Eviction order therefore equals a full rescan per move (the reference
    # behaviour) without rebuilding state when the heaviest-part argmax
    # ping-pongs between two draining parts.
    heaps: dict[int, list] = {}
    for _ in range(g.n + 1):  # ≤ n evictions possible (see docstring)
        src = current_src()
        if src < 0:
            break
        heap = heaps.get(src)
        if heap is None:
            heap = heaps[src] = build_heap(src)
        drained = False
        while heap:
            entry = heapq.heappop(heap)
            u = entry[2]
            if st.assign[u] != src:
                continue  # already evicted
            fresh = fresh_key(u, src)
            if fresh is None:
                continue  # no destination fits u any more
            if fresh != entry:
                heapq.heappush(heap, fresh)
                continue
            st.move(u, entry[3])
            # refresh every cached heap whose member just lost a neighbour
            # (or gained one in its destination) before any break
            for v in g.neighbors(u):
                v = int(v)
                part_v = int(st.assign[v])
                heap_v = heaps.get(part_v)
                if heap_v is not None:
                    key_v = fresh_key(v, part_v)
                    if key_v is not None:
                        heapq.heappush(heap_v, key_v)
            if st.part_weight[src] <= cap:
                heaps.clear()  # src crossed the cap: destinations reopened
                drained = True
                break
            if current_src() != src:
                drained = True  # another part is now the heaviest: switch
                break
        if not drained:
            break  # no feasible eviction for the heaviest part: give up
    st.clear_trail()
    return st.assign.copy()


def greedy_kway_refine(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    max_part_weight: float = float("inf"),
    max_passes: int = 8,
    seed=None,
    state: RefinementState | None = None,
    seed_nodes: np.ndarray | None = None,
) -> np.ndarray:
    """Cut-driven greedy boundary refinement (METIS style).

    Moves a boundary node to the *adjacent* part with the highest positive
    gain, provided the destination stays under *max_part_weight*.  Among
    equal-gain destinations the one improving balance wins.  Passes repeat
    until no move fires.

    *seed_nodes* localises the pass (n-level style): only boundary nodes
    in the given set are scanned, widened to every moved node's
    neighbourhood as the frontier expands — O(local boundary) per pass
    instead of O(global boundary).  ``None`` (default) scans everything.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, k)
    st = _as_state(g, a, k, state)
    rng = as_rng(seed)
    active = None
    if seed_nodes is not None:
        active = np.zeros(g.n, dtype=bool)
        active[np.asarray(seed_nodes, dtype=np.int64)] = True

    for _ in range(max_passes):
        boundary = st.boundary_nodes()
        if active is not None:
            boundary = boundary[active[boundary]]
        if boundary.size == 0:
            break
        rng.shuffle(boundary)
        moved = 0
        for u in boundary:
            u = int(u)
            src = int(st.assign[u])
            if st.part_size[src] <= 1:
                continue  # kmetis rule: never empty a part
            cu = st.connection_vector(u)
            w_u = float(g.node_weights[u])
            best_dest, best_gain = -1, _EPS
            for dest in np.nonzero(cu > 0)[0]:
                dest = int(dest)
                if dest == src:
                    continue
                if st.part_weight[dest] + w_u > max_part_weight:
                    continue
                gain = float(cu[dest] - cu[src])
                if gain > best_gain + _EPS:
                    best_dest, best_gain = dest, gain
                elif (
                    best_dest >= 0
                    and abs(gain - best_gain) <= _EPS
                    and st.part_weight[dest] < st.part_weight[best_dest]
                ):
                    best_dest = dest
            if best_dest >= 0:
                st.move(u, best_dest)
                moved += 1
                if active is not None:
                    # frontier growth: a move re-opens its neighbourhood
                    active[g.neighbors(u)] = True
        if moved == 0:
            break
    st.clear_trail()
    return st.assign.copy()


def move_delta(
    state,
    u: int,
    dest: int,
    constraints: ConstraintSpec,
    conn: np.ndarray | None = None,
) -> tuple[float, float]:
    """Effect of moving *u* to *dest*: ``(violation_delta, cut_delta)``.

    Negative values are improvements.  Works on either a
    :class:`~repro.partition.refine_state.RefinementState` (O(k²) vectorized)
    or the legacy :class:`~repro.partition.base.PartitionState` (computed
    from its bandwidth matrix in O(k) Python).
    """
    src = int(state.assign[u])
    if dest == src:
        return (0.0, 0.0)
    if isinstance(state, RefinementState):
        dv, dc = state.move_deltas(u, constraints)
        return (float(dv[dest]), float(dc[dest]))
    if conn is None:
        conn = state.connection_vector(u)
    w_u = float(state.g.node_weights[u])
    rmax, bmax = constraints.rmax, constraints.bmax

    dv = 0.0
    if np.isfinite(rmax):
        w_src, w_dest = state.part_weight[src], state.part_weight[dest]
        dv += max(0.0, w_src - w_u - rmax) - max(0.0, w_src - rmax)
        dv += max(0.0, w_dest + w_u - rmax) - max(0.0, w_dest - rmax)

    if np.isfinite(bmax):
        for c in range(state.k):
            if c == src or c == dest or conn[c] == 0.0:
                continue
            old_sc = state.bw[src, c]
            old_dc = state.bw[dest, c]
            dv += max(0.0, old_sc - conn[c] - bmax) - max(0.0, old_sc - bmax)
            dv += max(0.0, old_dc + conn[c] - bmax) - max(0.0, old_dc - bmax)
        old_sd = state.bw[src, dest]
        new_sd = old_sd - conn[dest] + conn[src]
        dv += max(0.0, new_sd - bmax) - max(0.0, old_sd - bmax)

    cut_delta = float(conn[src] - conn[dest])
    return (float(dv), cut_delta)


def constrained_kway_fm(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    max_passes: int = 6,
    seed=None,
    abort_after: int | None = None,
    state: RefinementState | None = None,
    selection: str = "first",
    seed_nodes: np.ndarray | None = None,
) -> np.ndarray:
    """Constraint-driven FM k-way refinement (the GP local search).

    Per pass, nodes move at most once, ordered by a gain-bucket queue on
    ``(violation_delta, cut_delta)`` with lazy invalidation.  Moves that
    would *increase* violation are never taken; cut-worsening moves with
    non-increasing violation are taken FM-style (best state by
    ``(total violation, cut)`` is restored at the end — via the engine's
    move trail, not an O(n) assignment copy per improvement).  *abort_after*
    bounds consecutive non-improving moves per pass (defaults to
    ``max(50, n // 10)``), the standard early-exit that keeps passes cheap
    on large graphs.

    *selection* picks the move-ordering discipline — see
    :func:`run_constrained_fm`.

    When *state* is given the engine is reused (and left holding the
    returned assignment, so callers can read ``state.metrics()`` without a
    from-scratch evaluation).  *seed_nodes* localises the FM frontier —
    see :func:`run_constrained_fm`.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, k)
    st = _as_state(g, a, k, state)
    return run_constrained_fm(
        st, g.n, g.neighbors, constraints,
        max_passes=max_passes, seed=seed, abort_after=abort_after,
        selection=selection, seed_nodes=seed_nodes,
    )


def run_constrained_fm(
    st,
    n: int,
    neighbors_of,
    constraints: ConstraintSpec,
    max_passes: int = 6,
    seed=None,
    abort_after: int | None = None,
    selection: str = "first",
    seed_nodes: np.ndarray | None = None,
) -> np.ndarray:
    """The constrained-FM pass discipline, engine-agnostic.

    *st* is any refinement-state engine exposing the
    :class:`~repro.partition.refine_state.RefinementState` move protocol
    (``assign``/``epoch``, ``boundary_nodes``, ``overloaded_nodes``,
    ``key``, ``best_move``/``best_moves``, ``move``/``snapshot``/
    ``rollback``/``clear_trail``); *neighbors_of(u)* returns the nodes
    whose gains a move of *u* can change.  The graph engine passes
    ``g.neighbors``; the hypergraph Φ engine passes
    ``HGraph.adjacent_nodes``; the vector-resource engine
    (:class:`~repro.partition.vector_state.VectorRefinementState`) passes
    ``g.neighbors`` with a
    :class:`~repro.partition.vector_state.VectorConstraints` threaded
    through in place of the scalar spec.  What counts as "over budget"
    (extra FM seeds, the escape rule) is the state's business via
    ``overloaded_nodes``/``overloaded_mask``, so one driver serves all
    three objectives with identical move ordering, tie-breaking, queue
    discipline and best-prefix recovery — the 2-pin differential parity
    between the graph and Φ engines is a property of their states alone.

    *selection* picks the move-ordering discipline.  ``"first"`` (default,
    byte-identical to the historical behaviour) pops from the lazy gain
    queue — near-linear passes, the production setting.  ``"steepest"``
    re-evaluates every unlocked boundary/overloaded candidate after each
    move and applies the global argmin on ``(dv, dc, dest, u)`` — the
    textbook steepest-descent FM, O(boundary) gain work per move, no RNG
    (so no *seed* sensitivity).  Acceptance, stagnation and best-prefix
    rules are shared, so the two differ only in move *order*; steepest is
    meant for coarsest-level polish where the boundary is tiny (see
    ROADMAP/X13 notes on the cost-quality trade).

    *seed_nodes* localises the frontier, n-level style: only boundary
    nodes inside the given set seed the queue (overloaded nodes always
    do — violations must be reachable), and every move re-opens its
    neighbourhood, so the pass expands outward from the seeds instead of
    scanning the whole boundary.  On a fine level after uncoarsening,
    seeding from the recently-uncontracted nodes gives O(changed region)
    passes.  ``None`` (default) keeps the historical whole-boundary
    behaviour, bit for bit.
    """
    if selection not in ("first", "steepest"):
        raise PartitionError(
            f"selection must be 'first' or 'steepest', got {selection!r}"
        )
    rng = as_rng(seed)
    if abort_after is None:
        abort_after = max(50, n // 10)
    active = None
    if seed_nodes is not None:
        active = np.zeros(n, dtype=bool)
        active[np.asarray(seed_nodes, dtype=np.int64)] = True

    # Pass statistics ship to the obs registry, labeled by engine — the
    # local accumulators keep the per-move cost at zero lock traffic
    # (one observe_bulk flush at the end) and at literally nothing when
    # metrics are off.
    rec = _obs.metrics_on()
    engine = type(st).__name__ if rec else ""
    passes = tried = escape_seeds = 0
    gains: list | None = [] if rec else None

    st.clear_trail()
    best_key = st.key(constraints)
    best_mark = st.snapshot()

    for _ in range(max_passes):
        passes += 1
        locked = np.zeros(n, dtype=bool)
        start_key = st.key(constraints)

        if selection == "steepest":
            if rec:
                escape_seeds += int(st.overloaded_nodes(constraints).size)
            stagnant = 0
            while True:
                # fresh global scan: every unlocked boundary/overloaded
                # node, re-gained after the previous move
                bnd = st.boundary_nodes()
                if active is not None:
                    bnd = bnd[active[bnd]]
                cand = np.union1d(
                    bnd, st.overloaded_nodes(constraints)
                ).astype(np.int64)
                cand = cand[~locked[cand]]
                best = None
                if cand.size:
                    for u, mv in zip(cand, st.best_moves(cand, constraints)):
                        if mv is None:
                            continue
                        key = (mv[0], mv[1], mv[2], int(u))
                        if best is None or key < best:
                            best = key
                if best is None:
                    break
                dv, dc, dest, u = best
                if dv > _EPS:
                    break  # even the best move worsens violation
                if dv > -_EPS and dc > _EPS and stagnant >= abort_after:
                    break
                st.move(u, dest)
                if active is not None:
                    active[neighbors_of(u)] = True
                if rec:
                    tried += 1
                    gains.append(dc)
                locked[u] = True
                key_now = st.key(constraints)
                if key_now < best_key:
                    best_key = key_now
                    best_mark = st.snapshot()
                    stagnant = 0
                else:
                    stagnant += 1
                if stagnant > abort_after:
                    break
            st.rollback(best_mark)
            if not best_key < start_key:
                break
            continue

        queue = BucketQueue()

        def push_all(nodes: np.ndarray) -> None:
            # one batched gain evaluation for the whole group; queue order
            # matches the given node order (FIFO within equal keys)
            epoch = st.epoch
            for u, mv in zip(nodes, st.best_moves(nodes, constraints)):
                if mv is not None:
                    dv, dc, dest = mv
                    queue.push((dv, dc), (int(u), dest, epoch))

        seeds = st.boundary_nodes()
        if active is not None:
            seeds = seeds[active[seeds]]
        extra = st.overloaded_nodes(constraints)
        if extra.size:
            if rec:
                escape_seeds += int(extra.size)
            seeds = np.union1d(seeds, extra)
        seeds = seeds.astype(np.int64)
        rng.shuffle(seeds)
        push_all(seeds)

        stagnant = 0
        while queue:
            (dv, dc), (u, dest, entry_epoch) = queue.pop()
            if locked[u]:
                continue
            if entry_epoch != st.epoch:
                # something moved since this entry was computed: revalidate
                fresh = st.best_move(u, constraints)
                if fresh is None:
                    continue
                if fresh != (dv, dc, dest):
                    queue.push((fresh[0], fresh[1]), (u, fresh[2], st.epoch))
                    continue
            if dv > _EPS:
                break  # every remaining move strictly worsens violation
            if dv > -_EPS and dc > _EPS and stagnant >= abort_after:
                break
            st.move(u, dest)
            if rec:
                tried += 1
                gains.append(dc)
            locked[u] = True
            key_now = st.key(constraints)
            if key_now < best_key:
                best_key = key_now
                best_mark = st.snapshot()
                stagnant = 0
            else:
                stagnant += 1
            if stagnant > abort_after:
                break
            nbrs = neighbors_of(u)
            if active is not None:
                active[nbrs] = True  # later passes may re-seed from here
            push_all(nbrs[~locked[nbrs]])

        # FM discipline: rewind to the best prefix seen so far
        st.rollback(best_mark)
        if not best_key < start_key:
            break  # the pass found nothing better anywhere
    if rec:
        # after the final rollback the trail length *is* the kept prefix
        kept = int(st.snapshot())
        _obs.add("fm.passes", passes, engine=engine)
        _obs.add("fm.moves_tried", tried, engine=engine)
        _obs.add("fm.moves_kept", kept, engine=engine)
        _obs.add("fm.moves_rolled_back", tried - kept, engine=engine)
        if escape_seeds:
            _obs.add("fm.escape_seeds", escape_seeds, engine=engine)
        if gains:
            _obs.observe_bulk(
                "fm.gain", gains, buckets=_obs.GAIN_BUCKETS, engine=engine
            )
    st.clear_trail()
    return st.assign.copy()
