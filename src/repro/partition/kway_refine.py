"""K-way refinement passes.

Two flavours are provided:

``greedy_kway_refine``
    The unconstrained, cut-driven boundary refinement used by the METIS-like
    baseline: move boundary nodes to the adjacent part with the largest
    positive gain, subject to a balance cap.  Greedy — only improving moves.

``constrained_kway_fm``
    The paper's refinement: an FM-discipline pass whose move selection is
    *lexicographic* — first reduce constraint violation (pairwise bandwidth
    over ``Bmax``, resources over ``Rmax``), then reduce cut.  Worsening-cut
    moves are accepted when violation does not increase (hill-climbing with
    best-prefix recovery, Section II.A); each node moves at most once per
    pass.  "Partitions will be changed and nodes will move between
    partitions as far as constraints met" (Section IV.B).

Both use the incremental :class:`~repro.partition.base.PartitionState`; the
constrained pass keeps moves ordered with a lazy-validation max-priority heap
(stale entries are re-keyed on pop), the float-weight analogue of the FM gain
buckets, giving near-linear passes on bounded-degree process networks.
"""

from __future__ import annotations

import heapq
from itertools import count

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionState
from repro.partition.metrics import ConstraintSpec, check_assignment
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = [
    "greedy_kway_refine",
    "rebalance_pass",
    "constrained_kway_fm",
    "move_delta",
]

_EPS = 1e-12


def rebalance_pass(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    max_part_weight: float,
    seed=None,
) -> np.ndarray:
    """Explicit balance phase (kmetis style).

    While any part exceeds *max_part_weight*, evict the node whose move
    damages the cut least into the lightest part that can take it.  Used by
    the METIS-like baseline between projection and cut refinement; gives up
    (returning the best effort) when no move can reduce the overflow —
    e.g. single nodes heavier than the cap.
    """
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    rng = as_rng(seed)
    counts = np.bincount(state.assign, minlength=k)
    for _ in range(4 * g.n):  # generous bound; each move reduces overflow
        over = np.nonzero(
            (state.part_weight > max_part_weight) & (counts > 1)
        )[0]  # single-member parts are never emptied (kmetis rule)
        if over.size == 0:
            break
        src = int(over[int(np.argmax(state.part_weight[over]))])
        members = np.nonzero(state.assign == src)[0]
        rng.shuffle(members)
        best = None  # (cut_damage, -weight, u, dest)
        for u in members:
            u = int(u)
            w_u = float(g.node_weights[u])
            conn = state.connection_vector(u)
            for dest in range(k):
                if dest == src:
                    continue
                if state.part_weight[dest] + w_u > max_part_weight:
                    continue
                damage = float(conn[src] - conn[dest])
                key = (damage, -w_u, u, dest)
                if best is None or key < best:
                    best = key
        if best is None:
            break  # nothing fits anywhere: give up gracefully
        _, _, u, dest = best
        state.move(u, dest)
        counts[src] -= 1
        counts[dest] += 1
    return state.assign


def greedy_kway_refine(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    max_part_weight: float = float("inf"),
    max_passes: int = 8,
    seed=None,
) -> np.ndarray:
    """Cut-driven greedy boundary refinement (METIS style).

    Moves a boundary node to the *adjacent* part with the highest positive
    gain, provided the destination stays under *max_part_weight*.  Among
    equal-gain destinations the one improving balance wins.  Passes repeat
    until no move fires.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    rng = as_rng(seed)
    part_count = np.bincount(state.assign, minlength=k)

    for _ in range(max_passes):
        boundary = state.boundary_nodes()
        if boundary.size == 0:
            break
        rng.shuffle(boundary)
        moved = 0
        for u in boundary:
            u = int(u)
            src = int(state.assign[u])
            if part_count[src] <= 1:
                continue  # kmetis rule: never empty a part
            conn = state.connection_vector(u)
            w_u = float(g.node_weights[u])
            best_dest, best_gain = -1, _EPS
            for dest in np.nonzero(conn > 0)[0]:
                dest = int(dest)
                if dest == src:
                    continue
                if state.part_weight[dest] + w_u > max_part_weight:
                    continue
                gain = float(conn[dest] - conn[src])
                if gain > best_gain + _EPS:
                    best_dest, best_gain = dest, gain
                elif (
                    best_dest >= 0
                    and abs(gain - best_gain) <= _EPS
                    and state.part_weight[dest] < state.part_weight[best_dest]
                ):
                    best_dest = dest
            if best_dest >= 0:
                state.move(u, best_dest)
                part_count[src] -= 1
                part_count[best_dest] += 1
                moved += 1
        if moved == 0:
            break
    return state.assign


def move_delta(
    state: PartitionState,
    u: int,
    dest: int,
    constraints: ConstraintSpec,
    conn: np.ndarray | None = None,
) -> tuple[float, float]:
    """Effect of moving *u* to *dest*: ``(violation_delta, cut_delta)``.

    Negative values are improvements.  Computed incrementally from the
    state's bandwidth matrix and part weights in O(k).
    """
    src = int(state.assign[u])
    if dest == src:
        return (0.0, 0.0)
    if conn is None:
        conn = state.connection_vector(u)
    w_u = float(state.g.node_weights[u])
    rmax, bmax = constraints.rmax, constraints.bmax

    dv = 0.0
    if np.isfinite(rmax):
        w_src, w_dest = state.part_weight[src], state.part_weight[dest]
        dv += max(0.0, w_src - w_u - rmax) - max(0.0, w_src - rmax)
        dv += max(0.0, w_dest + w_u - rmax) - max(0.0, w_dest - rmax)

    if np.isfinite(bmax):
        for c in range(state.k):
            if c == src or c == dest or conn[c] == 0.0:
                continue
            old_sc = state.bw[src, c]
            old_dc = state.bw[dest, c]
            dv += max(0.0, old_sc - conn[c] - bmax) - max(0.0, old_sc - bmax)
            dv += max(0.0, old_dc + conn[c] - bmax) - max(0.0, old_dc - bmax)
        old_sd = state.bw[src, dest]
        new_sd = old_sd - conn[dest] + conn[src]
        dv += max(0.0, new_sd - bmax) - max(0.0, old_sd - bmax)

    cut_delta = float(conn[src] - conn[dest])
    return (float(dv), cut_delta)


def _best_move(
    state: PartitionState, u: int, constraints: ConstraintSpec
) -> tuple[float, float, int] | None:
    """Best ``(violation_delta, cut_delta, dest)`` for node *u*, or None."""
    src = int(state.assign[u])
    conn = state.connection_vector(u)
    dests = {int(c) for c in np.nonzero(conn > 0)[0] if int(c) != src}
    if (
        np.isfinite(constraints.rmax)
        and state.part_weight[src] > constraints.rmax
    ):
        # over-full part: any escape destination is worth considering
        dests.update(c for c in range(state.k) if c != src)
    best = None
    for dest in sorted(dests):
        dv, dc = move_delta(state, u, dest, constraints, conn=conn)
        key = (dv, dc, dest)
        if best is None or key < best:
            best = key
    return best


def constrained_kway_fm(
    g: WGraph,
    assign: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
    max_passes: int = 6,
    seed=None,
    abort_after: int | None = None,
) -> np.ndarray:
    """Constraint-driven FM k-way refinement (the GP local search).

    Per pass, nodes move at most once, ordered by a lazy-validation heap on
    ``(violation_delta, cut_delta)``.  Moves that would *increase* violation
    are never taken; cut-worsening moves with non-increasing violation are
    taken FM-style (best state by ``(total violation, cut)`` is restored at
    the end).  *abort_after* bounds consecutive non-improving moves per pass
    (defaults to ``max(50, n // 10)``), the standard early-exit that keeps
    passes cheap on large graphs.
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    rng = as_rng(seed)
    if abort_after is None:
        abort_after = max(50, g.n // 10)

    def total_violation() -> float:
        v = 0.0
        if np.isfinite(constraints.rmax):
            v += float(np.maximum(state.part_weight - constraints.rmax, 0.0).sum())
        if np.isfinite(constraints.bmax):
            v += float(
                np.triu(np.maximum(state.bw - constraints.bmax, 0.0), k=1).sum()
            )
        return v

    best_assign = state.assign.copy()
    best_key = (total_violation(), state.cut)

    tick = count()
    for _ in range(max_passes):
        locked = np.zeros(g.n, dtype=bool)
        start_key = (total_violation(), state.cut)

        heap: list[tuple[float, float, int, int, int]] = []

        def push(u: int) -> None:
            mv = _best_move(state, u, constraints)
            if mv is not None:
                dv, dc, dest = mv
                heapq.heappush(heap, (dv, dc, next(tick), u, dest))

        seeds = state.boundary_nodes()
        if np.isfinite(constraints.rmax):
            over = np.nonzero(state.part_weight > constraints.rmax)[0]
            if over.size:
                extra = np.nonzero(np.isin(state.assign, over))[0]
                seeds = np.union1d(seeds, extra)
        seeds = seeds.astype(np.int64)
        rng.shuffle(seeds)
        for u in seeds:
            push(int(u))

        stagnant = 0
        while heap:
            dv, dc, _, u, dest = heapq.heappop(heap)
            if locked[u]:
                continue
            fresh = _best_move(state, u, constraints)
            if fresh is None:
                continue
            if (fresh[0], fresh[1], fresh[2]) != (dv, dc, dest):
                heapq.heappush(heap, (fresh[0], fresh[1], next(tick), u, fresh[2]))
                continue
            if dv > _EPS:
                break  # every remaining move strictly worsens violation
            if dv > -_EPS and dc > _EPS and stagnant >= abort_after:
                break
            state.move(u, dest)
            locked[u] = True
            key_now = (total_violation(), state.cut)
            if key_now < best_key:
                best_key = key_now
                best_assign = state.assign.copy()
                stagnant = 0
            else:
                stagnant += 1
            if stagnant > abort_after:
                break
            for v in g.neighbors(u):
                v = int(v)
                if not locked[v]:
                    push(v)

        if best_key < start_key:
            # FM discipline: next pass starts from the best prefix seen
            state = PartitionState(g, best_assign, k)
        else:
            break  # the pass found nothing better anywhere
    return best_assign
