"""Multi-resource constrained partitioning (paper's stated extension).

Section V: "only one resource is considered at this time, for example
LUTs".  Real FPGAs budget LUTs, FFs, BRAMs and DSPs independently, and a
partition can fit one budget while blowing another.  This module lifts GP's
resource constraint from a scalar to a vector:

* node weights become a matrix ``W`` of shape ``(n, R)``;
* the resource constraint becomes component-wise:
  ``sum(W[u] for u in part) <= rmax`` for every part and every resource;
* the bandwidth constraint is unchanged (links carry tokens, not LUTs).

The algorithm mirrors :mod:`repro.partition.gp` — greedy vector-aware
initial growing with restarts, violation-lexicographic FM, cyclic retries
raced across processes — over a multilevel hierarchy whose node-weight
*matrices* are aggregated through the same contraction maps the scalar
path uses.

Since the engine unification, the drivers here are thin: the FM pass is
the engine-agnostic
:func:`~repro.partition.kway_refine.run_constrained_fm` run on a
:class:`~repro.partition.vector_state.VectorRefinementState` (the ``(k,
R)`` load matrix tracked incrementally with exact rollback), the retry
cycles race through :func:`~repro.util.parallel.parallel_map` with
results bit-identical for every ``n_jobs``, and completed runs are
memoised in :data:`multires_cache` keyed by the
:class:`~repro.partition.vector_state.VectorGraph` content digest
(structure **and** weight matrix).  The pre-unification hand-rolled loop
is frozen in ``benchmarks/_legacy_multires.py``;
``tests/test_multires_differential.py`` pins the two against each other.
See ``docs/multires.md``.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionState
from repro.partition.coarsen import build_hierarchy
from repro.partition.flow_refine import check_refine_mode, run_flow_refine
from repro.partition.kway_refine import run_constrained_fm
from repro.partition.metrics import check_assignment
from repro.partition.vector_state import (
    MultiResMetrics,
    VectorConstraints,
    VectorGraph,
    VectorRefinementState,
    check_weight_matrix,
)
from repro.util.errors import InfeasibleError, PartitionError
import repro.obs as _obs
from repro.util.parallel import KeyedCache, parallel_map
from repro.util.rng import as_rng, spawn_seeds

__all__ = [
    "VectorConstraints",
    "MultiResMetrics",
    "evaluate_multires",
    "mr_constrained_fm",
    "mr_greedy_initial",
    "mr_gp_partition",
    "leftover_destination",
    "MultiResResult",
    "multires_cache",
    "clear_multires_cache",
]

#: In-process memo of completed :func:`mr_gp_partition` runs, keyed by
#: ``(VectorGraph digest, k, constraints, knobs, seed)``.  ``n_jobs`` is
#: deliberately absent from the key: results are bit-identical for every
#: worker count, so a serial run may serve a parallel request and vice
#: versa.
multires_cache = KeyedCache(maxsize=32, name="multires")


def clear_multires_cache() -> None:
    """Drop every memoised multi-resource result (and reset stats)."""
    multires_cache.clear()


@dataclass
class MultiResResult:
    """Outcome of :func:`mr_gp_partition`."""

    assign: np.ndarray
    k: int
    metrics: MultiResMetrics
    constraints: VectorConstraints
    algorithm: str = "MR-GP"
    runtime: float = 0.0
    info: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.metrics.feasible

    @property
    def cut(self) -> float:
        return self.metrics.cut


def _check_weights(g: WGraph, weights: np.ndarray) -> np.ndarray:
    # retained name for the module's internal call sites; the validation
    # itself lives with the engine state
    return check_weight_matrix(g, weights)


def _loads(weights: np.ndarray, assign: np.ndarray, k: int) -> np.ndarray:
    out = np.zeros((k, weights.shape[1]))
    np.add.at(out, assign, weights)
    return out


def _match_resources(w: np.ndarray, cons: VectorConstraints) -> None:
    if w.shape[1] != cons.n_resources:
        raise PartitionError(
            f"weights have {w.shape[1]} resources, constraints {cons.n_resources}"
        )


def evaluate_multires(
    g: WGraph,
    weights: np.ndarray,
    assign: np.ndarray,
    k: int,
    cons: VectorConstraints,
) -> MultiResMetrics:
    """All metrics of one assignment under vector constraints.

    Computed from scratch (no incremental state) — the independent
    reference the invariant suite checks the tracked engine against.
    """
    w = _check_weights(g, weights)
    _match_resources(w, cons)
    a = check_assignment(g, assign, k)
    state = PartitionState(g, a, k)
    loads = _loads(w, a, k)
    rmax = np.asarray(cons.rmax)
    res_violation = float(np.maximum(loads - rmax, 0.0).sum())
    bw = state.bw
    if np.isfinite(cons.bmax):
        bw_violation = float(
            np.triu(np.maximum(bw - cons.bmax, 0.0), k=1).sum()
        )
    else:
        bw_violation = 0.0
    return MultiResMetrics(
        k=k,
        cut=state.cut,
        max_local_bandwidth=float(bw.max()) if k > 1 else 0.0,
        max_loads=tuple(float(x) for x in loads.max(axis=0)),
        bandwidth_violation=bw_violation,
        resource_violation=res_violation,
    )


def mr_constrained_fm(
    g: WGraph,
    weights: np.ndarray,
    assign: np.ndarray,
    k: int,
    cons: VectorConstraints,
    max_passes: int = 6,
    seed=None,
    abort_after: int | None = None,
    state: VectorRefinementState | None = None,
) -> np.ndarray:
    """Violation-lexicographic FM with vector resource deltas.

    A thin driver: builds (or adopts) a
    :class:`~repro.partition.vector_state.VectorRefinementState` and runs
    the shared :func:`~repro.partition.kway_refine.run_constrained_fm`
    pass discipline on it — the same gain-bucket queue, lazy
    revalidation, lock/tie-breaking rules and best-prefix rollback as the
    scalar GP refinement and the hypergraph Φ engine, with ``(violation,
    cut)`` keys computed against the componentwise budgets.

    When *state* is given the engine is reused (and left holding the
    returned assignment, so callers can read ``state.metrics(cons)``
    without a from-scratch evaluation).
    """
    if max_passes < 1:
        raise PartitionError(f"max_passes must be >= 1, got {max_passes}")
    w = _check_weights(g, weights)
    _match_resources(w, cons)
    a = check_assignment(g, assign, k)
    if state is None:
        st = VectorRefinementState(g, w, a, k)
    else:
        if state.g is not g or state.k != k:
            raise PartitionError("provided state does not match graph/k")
        if not np.array_equal(state.assign, a):
            raise PartitionError(
                "provided state holds a different assignment than the one passed"
            )
        st = state
    return run_constrained_fm(
        st, g.n, g.neighbors, cons,
        max_passes=max_passes, seed=seed, abort_after=abort_after,
    )


def leftover_destination(
    loads: np.ndarray, rmax: np.ndarray, w_u: np.ndarray
) -> int:
    """Greedy-growing leftover placement: where does a node nothing fits go?

    A part *fits* iff adding the node's whole resource vector keeps every
    component under ``rmax``; among fitting parts the one with the most
    min-component headroom (after placement) wins.  When **no** part
    fits, the part whose *violation increase* is smallest wins — ties
    broken by headroom, then part id.  (The pre-unification rule used
    headroom alone, which could dump a node on the part with the largest
    slack on an irrelevant resource while another part would have taken
    it with zero new excess on the binding one; frozen in
    ``benchmarks/_legacy_multires.py``, regression-pinned in
    ``tests/test_multires_invariants.py``.)
    """
    after = loads + w_u
    headroom = (rmax - after).min(axis=1)
    fits = np.nonzero(headroom >= 0)[0]
    if fits.size:
        return int(fits[int(np.argmax(headroom[fits]))])
    viol_delta = (
        np.maximum(after - rmax, 0.0) - np.maximum(loads - rmax, 0.0)
    ).sum(axis=1)
    order = np.lexsort(
        (np.arange(loads.shape[0]), -headroom, viol_delta)
    )
    return int(order[0])


def mr_greedy_initial(
    g: WGraph,
    weights: np.ndarray,
    k: int,
    cons: VectorConstraints,
    restarts: int = 10,
    seed=None,
) -> np.ndarray:
    """Vector-aware greedy growing with restarts (Section IV.B, lifted).

    A node fits a partition iff adding its whole resource *vector* keeps
    every component under ``rmax``; leftovers are placed by
    :func:`leftover_destination` (violation-aware when nothing fits).
    Each restart ends with a short seam-based FM repair.
    """
    if restarts < 1:
        raise PartitionError(f"restarts must be >= 1, got {restarts}")
    w = _check_weights(g, weights)
    _match_resources(w, cons)
    rmax = np.asarray(cons.rmax)
    rng = as_rng(seed)
    round_seeds = spawn_seeds(rng, restarts)
    # size proxy for "heaviest": max utilisation share across resources
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(rmax > 0, w / rmax, 0.0).max(axis=1)

    best_assign, best_key = None, None
    for r in range(restarts):
        r_rng = as_rng(round_seeds[r])
        assign = np.full(g.n, -1, dtype=np.int64)
        loads = np.zeros((k, w.shape[1]))
        for part in range(k):
            unassigned = np.nonzero(assign < 0)[0]
            if unassigned.size == 0:
                break
            if r == 0:
                seed_node = int(unassigned[int(np.argmax(share[unassigned]))])
            else:
                seed_node = int(r_rng.choice(unassigned))
            assign[seed_node] = part
            loads[part] += w[seed_node]
            frontier: dict[int, float] = {}
            for v, ew in zip(*g.neighbor_weights(seed_node)):
                if assign[int(v)] < 0:
                    frontier[int(v)] = frontier.get(int(v), 0.0) + float(ew)
            while frontier:
                u = min(frontier, key=lambda x: (-frontier[x], x))
                del frontier[u]
                if assign[u] >= 0:
                    continue
                if np.any(loads[part] + w[u] > rmax):
                    continue
                assign[u] = part
                loads[part] += w[u]
                for v, ew in zip(*g.neighbor_weights(u)):
                    if assign[int(v)] < 0:
                        frontier[int(v)] = frontier.get(int(v), 0.0) + float(ew)
        leftovers = np.nonzero(assign < 0)[0]
        leftovers = leftovers[np.argsort(-share[leftovers], kind="stable")]
        for u in leftovers:
            u = int(u)
            dest = leftover_destination(loads, rmax, w[u])
            assign[u] = dest
            loads[dest] += w[u]
        st = VectorRefinementState(g, w, assign, k)
        assign = run_constrained_fm(
            st, g.n, g.neighbors, cons, max_passes=4, seed=round_seeds[r]
        )
        m = st.metrics(cons)
        key = (m.total_violation, m.bandwidth_violation, m.cut)
        if best_key is None or key < best_key:
            best_assign, best_key = assign, key
    assert best_assign is not None
    return best_assign


def _run_mr_cycle(context, seeds):
    """One coarsen/partition/un-coarsen cycle (a parallel_map worker).

    Independent of every other cycle given its three pre-spawned seeds —
    the same independence that lets GP's scalar cycles race.  The
    instance travels in the shared *context* (shipped once per worker).
    Returns ``(assign, metrics, hierarchy_depth)``.
    """
    (g, w, proxy_graph, k, cons, coarsen_to, restarts, refine_passes,
     refine) = context
    s_hier, s_init, s_ref = seeds
    with _obs.trace_span("mr.cycle", nodes=g.n, k=k) as sp:
        hier = build_hierarchy(
            proxy_graph, coarsen_to=max(coarsen_to, 2 * k), seed=s_hier
        )
        # aggregate the weight matrix down the hierarchy
        level_weights = [w]
        for lvl in hier.levels[1:]:
            prev = level_weights[-1]
            agg = np.zeros((lvl.graph.n, w.shape[1]))
            np.add.at(agg, lvl.node_map, prev)
            level_weights.append(agg)

        with _obs.trace_span("mr.initial", nodes=hier.coarsest.n):
            assign = mr_greedy_initial(
                hier.coarsest, level_weights[-1], k, cons,
                restarts=restarts, seed=s_init,
            )
        ref_seeds = spawn_seeds(s_ref, hier.depth)

        def level_refine(lvl_graph, lvl_w, a_level, s):
            if refine == "flow":
                st = VectorRefinementState(lvl_graph, lvl_w, a_level, k)
                return run_flow_refine(st, cons)
            return mr_constrained_fm(
                lvl_graph, lvl_w, a_level, k, cons,
                max_passes=refine_passes, seed=s,
            )

        for level in range(hier.depth - 1, 0, -1):
            assign = hier.project(assign, level)
            lvl_graph = hier.levels[level - 1].graph
            with _obs.trace_span(
                "mr.refine_level", level=level - 1,
                nodes=lvl_graph.n, edges=lvl_graph.m,
            ):
                assign = level_refine(
                    lvl_graph, level_weights[level - 1], assign,
                    ref_seeds[level - 1],
                )
        if hier.depth == 1:
            with _obs.trace_span(
                "mr.refine_level", level=0, nodes=g.n, edges=g.m
            ):
                assign = level_refine(g, w, assign, ref_seeds[0])
        m = evaluate_multires(g, w, assign, k, cons)
        sp.set(levels=hier.depth, cut=m.cut, feasible=m.feasible)
    return assign, m, hier.depth


def _cached_copy(result: MultiResResult) -> MultiResResult:
    """Deliver a cached result without aliasing the stored arrays/info."""
    return dataclasses.replace(
        result,
        assign=result.assign.copy(),
        info={**copy.deepcopy(result.info), "cache_hit": True},
    )


def _raise_if_infeasible(
    result: MultiResResult, max_cycles: int, on_infeasible: str
) -> MultiResResult:
    if not result.metrics.feasible and on_infeasible == "raise":
        raise InfeasibleError(
            f"no vector-feasible partitioning within {max_cycles} cycles "
            f"(violation {result.metrics.total_violation:g})",
            best=result,
        )
    return result


def mr_gp_partition(
    g: WGraph,
    weights: np.ndarray,
    k: int,
    cons: VectorConstraints,
    coarsen_to: int = 100,
    restarts: int = 10,
    max_cycles: int = 10,
    refine_passes: int = 6,
    seed=None,
    on_infeasible: str = "return",
    n_jobs: int | None = 1,
    cache: bool = True,
    refine: str = "fm",
) -> MultiResResult:
    """GP lifted to vector resources: multilevel + cyclic retries.

    The coarsening hierarchy is built on a scalar projection (summed
    normalised utilisation) so the matchings see a sensible "mass", while
    the true weight *matrix* is aggregated level by level through the
    contraction maps and drives all constraint checks.

    *n_jobs* races the retry cycles across worker processes exactly like
    :func:`~repro.partition.gp.gp_partition` does (``-1`` = all CPUs):
    every cycle's seeds are derived up front, results are consumed in
    cycle order and the first feasible cycle wins, so the returned
    partition is **bit-identical for every** ``n_jobs``.  *cache*
    memoises completed runs in :data:`multires_cache` keyed by the
    :class:`~repro.partition.vector_state.VectorGraph` content digest
    (structure + weight matrix), constraints, the tuning knobs and the
    seed; hits return a fresh copy flagged ``info["cache_hit"]=True``
    (only ``int``/``None`` seeds participate).

    *refine* selects the refinement stage exactly as
    :class:`~repro.partition.gp.GPConfig` does: ``"flow"`` swaps the
    per-level FM for corridor flow passes on the vector engine (its
    componentwise ``key`` drives acceptance), ``"fm+flow"`` adds one
    guarded flow stage on the race winner — never worse than ``"fm"``
    under the same seeds.
    """
    check_refine_mode(refine)
    if on_infeasible not in ("return", "raise"):
        raise PartitionError(
            f"on_infeasible must be return/raise, got {on_infeasible!r}"
        )
    if k < 1 or k > g.n:
        raise PartitionError(f"bad k={k} for n={g.n}")
    w = _check_weights(g, weights)
    _match_resources(w, cons)

    cacheable = cache and (seed is None or isinstance(seed, (int, np.integer)))
    key = None
    if cacheable:
        key = (
            "mr_gp",
            VectorGraph(g, w).content_digest(),
            k,
            cons,
            coarsen_to,
            restarts,
            max_cycles,
            refine_passes,
            refine,
            # n_jobs / on_infeasible are absent on purpose: neither
            # changes the computed partition, only delivery
            None if seed is None else int(seed),
        )
        # lookup (not get): a cached falsy value must stay a hit
        found, hit = multires_cache.lookup(key)
        if found:
            return _raise_if_infeasible(
                _cached_copy(hit), max_cycles, on_infeasible
            )

    rmax = np.asarray(cons.rmax)
    with np.errstate(divide="ignore", invalid="ignore"):
        scalar_proxy = np.where(rmax > 0, w / rmax, 0.0).sum(axis=1)
    proxy_graph = g.with_node_weights(scalar_proxy + 1e-9)
    rng = as_rng(seed)

    with _obs.timed_span("mr_gp", nodes=g.n, k=k) as sw:
        # all cycle seeds up front (the same stream the serial loop drew
        # from, one triple per cycle) — what makes the cycles
        # race-independent
        cycle_seeds = [spawn_seeds(rng, 3) for _ in range(max_cycles)]
        results = parallel_map(
            _run_mr_cycle,
            cycle_seeds,
            n_jobs=n_jobs,
            stop=lambda r: r[1].feasible,
            context=(g, w, proxy_graph, k, cons, coarsen_to, restarts,
                     refine_passes, refine),
        )

        best_assign, best_metrics, best_key = None, None, None
        for assign, m, _depth in results:
            cand = (m.total_violation, m.bandwidth_violation, m.cut)
            if best_key is None or cand < best_key:
                best_assign, best_metrics, best_key = assign, m, cand
        cycles_used = len(results)

        if refine == "fm+flow":
            # guarded flow stage on the race winner — after the race for
            # the same reason as gp_partition: the first-feasible early
            # stop must not see flow-modified cycles, so "fm+flow" stays
            # never worse than "fm" under the same seeds
            st = VectorRefinementState(g, w, best_assign, k)
            best_assign = run_flow_refine(st, cons)
            best_metrics = evaluate_multires(g, w, best_assign, k, cons)

    assert best_assign is not None and best_metrics is not None
    result = MultiResResult(
        assign=best_assign,
        k=k,
        metrics=best_metrics,
        constraints=cons,
        runtime=sw.elapsed,
        info={
            "cycles": cycles_used,
            "max_cycles": max_cycles,
            "levels": results[-1][2],
        },
    )
    if cacheable:
        multires_cache.put(
            key,
            dataclasses.replace(
                result,
                assign=result.assign.copy(),
                info=copy.deepcopy(result.info),
            ),
        )
    return _raise_if_infeasible(result, max_cycles, on_infeasible)
