"""Shared vectorized refinement engine.

Every refinement pass in this package (greedy k-way boundary refinement,
kmetis rebalancing, the paper's constrained FM, two-way FM, KL) needs the
same four quantities kept current under single-node moves:

* the per-node **part-connectivity store** (``conn[c, u]`` = summed weight
  of *u*'s edges into part *c*, plus the matching neighbour counts — the
  KaHyPar-style "gain cache"; a node's cut gain to any destination is one
  subtraction away), kept either as dense ``(k, n)`` matrices or as packed
  degree-sized slices (:mod:`repro.partition.conn_store`),
* per-part **resource weights** and node counts,
* the pairwise **bandwidth matrix** ``bw`` (and hence the global cut), and
* the **boundary set** — nodes with at least one neighbour in another part,
  tracked through an integer neighbour-count matrix so membership is exact
  (never a float comparison).

:class:`RefinementState` maintains all of them in **O(deg(u) + k)** numpy
work per move (the predecessor, :class:`~repro.partition.base.PartitionState`,
paid O(k·deg(u)) in Python per move and O(m) per boundary query).  It also
keeps a move trail so a pass can rewind to its best prefix in O(moves·deg)
instead of rebuilding state from a saved assignment copy.

:class:`BucketQueue` is the float-weight analogue of the Fiduccia-Mattheyses
gain-bucket array: an addressable min-priority structure that buckets entries
by exact key and serves equal keys FIFO.  Process-network gains are floats
(bandwidths), so a dense integer bucket array does not apply; but gain values
repeat heavily, so one heap entry per *distinct* key plus O(1) bucket
appends beats one heap entry per pending move.

Data-structure invariants are documented in ``docs/refinement.md``.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.graph.wgraph import WGraph
from repro.obs.memory import note_bytes
from repro.partition.conn_store import make_conn_store
from repro.partition.metrics import (
    ConstraintSpec,
    PartitionMetrics,
    check_assignment,
)
from repro.util.errors import PartitionError

__all__ = [
    "RefinementState",
    "BucketQueue",
    "select_best_move",
    "constrained_key",
    "metrics_from_matrices",
]

_EPS = 1e-12

#: Chunk bound for the batched (nb, k, k) bandwidth-delta tensor: batches
#: beyond this many cells are processed in row-chunks (rows independent ⇒
#: floats identical), capping that tensor near 32 MB instead of letting a
#: 100k-node boundary at k=64 allocate gigabytes transiently.
_BATCH_TENSOR_CELLS = 4_000_000


def constrained_key(
    bw: np.ndarray,
    part_weight: np.ndarray,
    iu: tuple[np.ndarray, np.ndarray],
    constraints: ConstraintSpec,
) -> tuple[float, float]:
    """``(total violation, cut)`` from tracked matrices — the FM best-prefix
    key.  Shared by the graph engine and the hypergraph Φ engine so the
    two can never drift apart (their 2-pin move-for-move parity depends on
    computing this identically)."""
    upper = bw[iu]
    cut = float(upper.sum())
    v = 0.0
    if np.isfinite(constraints.rmax):
        v += float(np.maximum(part_weight - constraints.rmax, 0.0).sum())
    if np.isfinite(constraints.bmax):
        v += float(np.maximum(upper - constraints.bmax, 0.0).sum())
    return (v, cut)


def metrics_from_matrices(
    bw: np.ndarray,
    part_weight: np.ndarray,
    k: int,
    constraints: ConstraintSpec,
) -> PartitionMetrics:
    """:class:`PartitionMetrics` from tracked matrices, no graph rescan.
    Shared by both engines (see :func:`constrained_key`)."""
    if np.isfinite(constraints.bmax):
        bw_violation = float(
            np.triu(np.maximum(bw - constraints.bmax, 0.0), k=1).sum()
        )
    else:
        bw_violation = 0.0
    if np.isfinite(constraints.rmax):
        res_violation = float(
            np.maximum(part_weight - constraints.rmax, 0.0).sum()
        )
    else:
        res_violation = 0.0
    return PartitionMetrics(
        k=k,
        cut=float(np.triu(bw, k=1).sum()),
        max_local_bandwidth=float(bw.max()) if k > 1 else 0.0,
        max_resource=float(part_weight.max()) if k > 0 else 0.0,
        bandwidth_violation=bw_violation,
        resource_violation=res_violation,
    )


def select_best_move(
    k: int,
    dv_row: list[float],
    dc_row: list[float],
    cu_row: list[float],
    src: int,
    escape: bool,
) -> tuple[float, float, int] | None:
    """Min ``(dv, dc, dest)`` over one node's candidate destinations.

    Candidates are the parts the node already connects to (``cu_row > 0``),
    widened to every part when *escape* is set (the over-``Rmax`` rule).
    Shared by the graph engine and the hypergraph Φ engine so both pick
    moves under exactly the same lexicographic tie-breaking.
    """
    best = None
    for dest in range(k):
        if dest == src:
            continue
        if not escape and cu_row[dest] <= 0.0:
            continue
        key = (dv_row[dest], dc_row[dest], dest)
        if best is None or key < best:
            best = key
    return best


class BucketQueue:
    """Addressable FIFO bucket min-priority queue over hashable keys.

    ``push(key, item)`` is O(1) amortised when *key* already has a bucket
    (the common case: gains repeat), O(log K) otherwise, for K distinct live
    keys.  ``pop()`` returns ``(key, item)`` with the smallest key; equal
    keys pop in insertion order, which is the documented tie-breaking rule
    (see docs/refinement.md).  Stale-entry invalidation is the caller's job,
    exactly as with the lazy heaps this structure replaces.
    """

    __slots__ = ("_buckets", "_keyheap", "_size")

    def __init__(self) -> None:
        self._buckets: dict = {}
        self._keyheap: list = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, key, item) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            # invariant: key sits in the heap exactly once iff it has a bucket
            self._buckets[key] = bucket = deque()
            heapq.heappush(self._keyheap, key)
        bucket.append(item)
        self._size += 1

    def pop(self):
        """Smallest ``(key, item)``; raises IndexError when empty."""
        while self._keyheap:
            key = self._keyheap[0]
            bucket = self._buckets[key]
            if not bucket:
                heapq.heappop(self._keyheap)
                del self._buckets[key]
                continue
            self._size -= 1
            return key, bucket.popleft()
        raise IndexError("pop from empty BucketQueue")


class RefinementState:
    """Mutable k-way assignment with vectorized incremental bookkeeping.

    Parameters
    ----------
    g, assign, k:
        Graph, initial node→part assignment (validated, copied), part count.
    conn_format:
        Connectivity-store layout (:mod:`repro.partition.conn_store`):
        ``"dense"`` — the historical ``(k, n)`` matrices; ``"sparse"`` —
        packed per-node slices sized by degree; ``"auto"`` (default) —
        sparse iff ``k * n`` crosses the module threshold.  Both formats
        answer every query identically under integer-valued weights.

    Notes
    -----
    All tracked quantities are exact under integer-valued weights; the
    invariant suite (``tests/test_refine_invariants.py``) checks them against
    from-scratch recomputation after every pass.
    """

    __slots__ = (
        "g",
        "k",
        "assign",
        "_store",
        "_degrees",
        "part_weight",
        "part_size",
        "bw",
        "_trail",
        "_iu",
        "_epoch",
        "_relu_cache",
    )

    def __init__(
        self,
        g: WGraph,
        assign: np.ndarray,
        k: int,
        conn_format: str = "auto",
    ) -> None:
        self.g = g
        self.k = int(k)
        a = check_assignment(g, assign, k).copy()
        self.assign = a
        n = g.n

        store = make_conn_store(g, a, self.k, conn_format)
        self._store = store
        # degrees are invariant — cached here so the boundary scan never
        # rebuilds them from CSR (it runs per FM frontier refresh)
        indptr = g.csr[0]
        self._degrees = indptr[1:] - indptr[:-1]

        # the connectivity store dominates refinement memory
        note_bytes("refine_state.conn", store.nbytes,
                   engine=type(self).__name__, k=self.k, n=n,
                   format=store.format)

        pw = np.zeros(self.k, dtype=np.float64)
        np.add.at(pw, a, g.node_weights)
        self.part_weight = pw
        self.part_size = np.bincount(a, minlength=self.k)

        eu, ev, ew = g.edge_array
        bw = np.zeros((self.k, self.k), dtype=np.float64)
        cu, cv = a[eu], a[ev]
        crossing = cu != cv
        np.add.at(bw, (cu[crossing], cv[crossing]), ew[crossing])
        np.add.at(bw, (cv[crossing], cu[crossing]), ew[crossing])
        self.bw = bw

        self._trail: list[tuple[int, int]] = []
        self._iu = np.triu_indices(self.k, k=1)
        self._epoch = 0  # bumped on every move; keys the relu cache
        self._relu_cache: tuple[int, float, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def cut(self) -> float:
        return float(self.bw[self._iu].sum())

    @property
    def epoch(self) -> int:
        """Monotone move counter.  Any cached gain computed at the current
        epoch is still exact — nothing has moved since."""
        return self._epoch

    @property
    def conn_format(self) -> str:
        """Layout of the connectivity store (``"dense"`` or ``"sparse"``)."""
        return self._store.format

    @property
    def conn(self) -> np.ndarray:
        """The ``(k, n)`` part-connectivity weight matrix.

        On the dense store this is the live backing array; on the sparse
        store it is **materialised on every access** — tests and
        debugging only, never a hot path.
        """
        return self._store.dense_conn()

    @property
    def ncnt(self) -> np.ndarray:
        """The ``(k, n)`` neighbour-count matrix (see :attr:`conn`)."""
        return self._store.dense_counts()

    def connection_vector(self, u: int) -> np.ndarray:
        """Weight of *u*'s edges into each part, shape ``(k,)`` (a copy)."""
        return self._store.col(u)

    def conn_at(self, parts: np.ndarray) -> np.ndarray:
        """``out[i] = conn[parts[i], i]`` — one weight gather per node.

        The two-way engines (FM bisection, KL) build whole-graph gain
        vectors from two of these gathers; going through the store keeps
        them layout-agnostic.
        """
        return self._store.conn_at(parts)

    def conn_columns(self, nodes: np.ndarray) -> np.ndarray:
        """Connectivity columns of *nodes* as a ``(len(nodes), k)`` array."""
        return self._store.gather_cols(nodes)

    def gain(self, u: int, dest: int) -> float:
        """Cut reduction if *u* moved to part *dest* (negative = worse)."""
        src = int(self.assign[u])
        if dest == src:
            return 0.0
        return self._store.gain_pair(u, src, dest)

    def boundary_mask(self) -> np.ndarray:
        """Boolean mask of nodes with ≥1 neighbour in a different part."""
        return (self._degrees - self._store.same_part_counts(self.assign)) > 0

    def boundary_nodes(self) -> np.ndarray:
        """Sorted array of boundary-node ids (the explicit boundary set)."""
        return np.nonzero(self.boundary_mask())[0]

    def key(self, constraints: ConstraintSpec) -> tuple[float, float]:
        """``(total violation, cut)`` — the FM best-prefix key — computed
        from one gather of the upper bandwidth triangle."""
        return constrained_key(self.bw, self.part_weight, self._iu, constraints)

    def overloaded_mask(self, constraints: ConstraintSpec) -> np.ndarray:
        """Boolean ``(k,)`` mask of parts over the resource cap.

        The hook behind the FM escape rule: a node in an overloaded part
        may move to *any* part, and every node of an overloaded part is an
        FM seed.  The vector-resource engine overrides this with the
        componentwise test (any resource over its cap) — the only place
        the seam needs to know what "over budget" means.
        """
        if np.isfinite(constraints.rmax):
            return self.part_weight > constraints.rmax
        return np.zeros(self.k, dtype=bool)

    def overloaded_nodes(self, constraints: ConstraintSpec) -> np.ndarray:
        """Sorted ids of nodes living in an over-cap part (FM extra seeds)."""
        return np.nonzero(self.overloaded_mask(constraints)[self.assign])[0]

    def metrics(self, constraints: ConstraintSpec | None = None) -> PartitionMetrics:
        """:class:`PartitionMetrics` from the tracked matrices — no graph
        rescan (the whole point of the incremental engine)."""
        constraints = constraints or ConstraintSpec()
        return metrics_from_matrices(
            self.bw, self.part_weight, self.k, constraints
        )

    # ------------------------------------------------------------------ #
    # flow-refinement hooks (see repro.partition.flow_refine)
    # ------------------------------------------------------------------ #
    def flow_adjacency(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Weighted adjacency of *u* for corridor growth and network build:
        ``(neighbour ids, edge weights)``.  On a plain graph this is the
        CSR row; the hypergraph Φ engine overrides it with a clique
        expansion of the incident nets."""
        return self.g.neighbor_weights(u)

    def pair_boundary(self, a: int, b: int) -> np.ndarray:
        """Sorted ids of nodes in part *a* or *b* with connectivity into
        the other — the seed set of a flow corridor."""
        assign = self.assign
        store = self._store
        mask = ((assign == a) & store.touching(b)) | (
            (assign == b) & store.touching(a)
        )
        return np.nonzero(mask)[0]

    def flow_node_weights(self) -> np.ndarray:
        """Per-node weights for the most-balanced min-cut heuristic.  The
        scalar resource on graph engines; engines with richer resource
        models keep this scalar (acceptance runs on :meth:`key`, which is
        componentwise where it needs to be)."""
        return self.g.node_weights

    # ------------------------------------------------------------------ #
    # moves and rollback
    # ------------------------------------------------------------------ #
    def move(self, u: int, dest: int) -> None:
        """Move node *u* to part *dest* in O(deg(u) + k), logging the move."""
        src = self._move(u, dest)
        if src >= 0:
            self._trail.append((u, src))

    def _move(self, u: int, dest: int) -> int:
        """Unlogged move; returns the source part, or -1 for a no-op."""
        src = int(self.assign[u])
        dest = int(dest)
        if not (0 <= dest < self.k):
            raise PartitionError(f"destination part {dest} out of range")
        if dest == src:
            return -1
        g = self.g
        cu = self._store.col(u)
        bw = self.bw
        # bw row/col updates; the diagonal corrections undo the double hit
        bw[src, :] -= cu
        bw[:, src] -= cu
        bw[src, src] += 2.0 * cu[src]
        bw[dest, :] += cu
        bw[:, dest] += cu
        bw[dest, dest] -= 2.0 * cu[dest]

        nbrs, ws = g.neighbor_weights(u)
        self._store.apply_move(src, dest, nbrs, ws)

        w_u = float(g.node_weights[u])
        self.part_weight[src] -= w_u
        self.part_weight[dest] += w_u
        self.part_size[src] -= 1
        self.part_size[dest] += 1
        self.assign[u] = dest
        self._epoch += 1
        return src

    def snapshot(self) -> int:
        """Opaque mark of the current move-trail position."""
        return len(self._trail)

    def rollback(self, mark: int) -> None:
        """Rewind to :meth:`snapshot` mark *mark*, undoing moves in reverse."""
        if not (0 <= mark <= len(self._trail)):
            raise PartitionError(
                f"rollback mark {mark} outside trail of {len(self._trail)}"
            )
        while len(self._trail) > mark:
            u, src = self._trail.pop()
            self._move(u, src)

    def clear_trail(self) -> None:
        """Drop rollback history (call when a prefix is committed for good)."""
        self._trail.clear()

    def copy(self) -> "RefinementState":
        """Independent copy sharing only the immutable graph.

        Allocates ``type(self)`` so subclasses (the vector-resource state)
        can extend the copy with their own tracked matrices.
        """
        out = object.__new__(type(self))
        out.g = self.g
        out.k = self.k
        out.assign = self.assign.copy()
        out._store = self._store.copy()
        out._degrees = self._degrees
        out.part_weight = self.part_weight.copy()
        out.part_size = self.part_size.copy()
        out.bw = self.bw.copy()
        out._trail = list(self._trail)
        out._iu = self._iu
        out._epoch = 0
        out._relu_cache = None
        return out

    # ------------------------------------------------------------------ #
    # vectorized move evaluation
    # ------------------------------------------------------------------ #
    def _relu_bw(self, bmax: float) -> np.ndarray:
        """``max(bw - bmax, 0)``, cached per move epoch (bw is fixed between
        moves, and gain evaluation asks for this for every candidate node)."""
        cached = self._relu_cache
        if cached is not None and cached[0] == self._epoch and cached[1] == bmax:
            return cached[2]
        relu = np.maximum(self.bw - bmax, 0.0)
        self._relu_cache = (self._epoch, bmax, relu)
        return relu

    def move_deltas(
        self, u: int, constraints: ConstraintSpec
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(violation_delta, cut_delta)`` of moving *u* to every part.

        Shape ``(k,)`` each; entries at ``assign[u]`` are zero.  Negative
        values are improvements.  O(k²) numpy, no Python loop over parts.
        The arithmetic mirrors :meth:`move_deltas_batch` expression for
        expression so single-node revalidation reproduces batch-computed
        keys bit for bit.
        """
        src = int(self.assign[u])
        cu = self._store.col(u)
        k = self.k
        dv = np.zeros(k, dtype=np.float64)
        rmax, bmax = constraints.rmax, constraints.bmax
        pw = self.part_weight
        if np.isfinite(rmax):
            w_u = float(self.g.node_weights[u])
            shed = max(0.0, pw[src] - w_u - rmax) - max(0.0, pw[src] - rmax)
            dv += shed + (
                np.maximum(pw + w_u - rmax, 0.0) - np.maximum(pw - rmax, 0.0)
            )
        if np.isfinite(bmax):
            relu_bw = self._relu_bw(bmax)
            bws = self.bw[src]
            relu_src = relu_bw[src]  # == max(bws - bmax, 0), pre-reduced
            t = bws - cu
            shed_c = np.maximum(t - bmax, 0.0) - relu_src
            shed_c[src] = 0.0
            # adding u's connectivity onto each candidate row d
            add = np.maximum(self.bw + cu[None, :] - bmax, 0.0) - relu_bw
            add[:, src] = 0.0
            add_d = add.sum(axis=1) - np.diagonal(add)
            # the src↔dest entry changes by cu[src] - cu[dest]
            sd = np.maximum(t + cu[src] - bmax, 0.0) - relu_src
            dv += (shed_c.sum() - shed_c) + add_d + sd
        dc = cu[src] - cu
        dv[src] = 0.0
        dc[src] = 0.0
        return dv, dc

    def move_deltas_batch(
        self, nodes: np.ndarray, constraints: ConstraintSpec
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`move_deltas`: ``(dv, dc)`` of shape ``(len(nodes),
        k)`` in one tensor evaluation.

        Amortises numpy dispatch overhead across a whole neighbourhood (or
        the whole boundary): ~15 array operations for the batch instead of
        ~15 per node.  Expression structure matches :meth:`move_deltas`
        element for element, so the two produce identical floats.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        nb = nodes.size
        k = self.k
        # the bandwidth branch builds an (nb, k, k) tensor; rows are
        # independent, so chunking the batch reproduces the unchunked
        # floats exactly while bounding peak memory at scale.  The
        # unbound call skips subclass overrides — their extra terms are
        # added once, after this returns.
        if nb * k * k > _BATCH_TENSOR_CELLS and np.isfinite(constraints.bmax):
            step = max(1, _BATCH_TENSOR_CELLS // (k * k))
            chunks = [
                RefinementState.move_deltas_batch(
                    self, nodes[i : i + step], constraints
                )
                for i in range(0, nb, step)
            ]
            return (
                np.concatenate([c[0] for c in chunks]),
                np.concatenate([c[1] for c in chunks]),
            )
        srcs = self.assign[nodes]
        rows = np.arange(nb)
        cu_b = self._store.gather_cols(nodes)  # (nb, k) contiguous gather
        cu_src = cu_b[rows, srcs]
        dv = np.zeros((nb, k), dtype=np.float64)
        rmax, bmax = constraints.rmax, constraints.bmax
        pw = self.part_weight
        if np.isfinite(rmax):
            w_b = self.g.node_weights[nodes]
            pw_src = pw[srcs]
            shed = np.maximum(pw_src - w_b - rmax, 0.0) - np.maximum(
                pw_src - rmax, 0.0
            )
            dv += shed[:, None] + (
                np.maximum(pw[None, :] + w_b[:, None] - rmax, 0.0)
                - np.maximum(pw - rmax, 0.0)[None, :]
            )
        if np.isfinite(bmax):
            relu_bw = self._relu_bw(bmax)
            bws = self.bw[srcs]  # (nb, k)
            relu_src = relu_bw[srcs]  # == max(bws - bmax, 0), pre-reduced
            t = bws - cu_b
            shed_c = np.maximum(t - bmax, 0.0) - relu_src
            shed_c[rows, srcs] = 0.0
            add = np.maximum(
                self.bw[None, :, :] + cu_b[:, None, :] - bmax, 0.0
            ) - relu_bw[None, :, :]
            add[rows, :, srcs] = 0.0
            diag = np.arange(k)
            add_d = add.sum(axis=2) - add[:, diag, diag]
            sd = np.maximum(t + cu_src[:, None] - bmax, 0.0) - relu_src
            dv += (shed_c.sum(axis=1)[:, None] - shed_c) + add_d + sd
        dc = cu_src[:, None] - cu_b
        dv[rows, srcs] = 0.0
        dc[rows, srcs] = 0.0
        return dv, dc

    def _select_best(
        self,
        dv_row: list[float],
        dc_row: list[float],
        cu_row: list[float],
        src: int,
        escape: bool,
    ) -> tuple[float, float, int] | None:
        """Min ``(dv, dc, dest)`` over the candidate destinations of one node."""
        return select_best_move(self.k, dv_row, dc_row, cu_row, src, escape)

    def best_move(
        self, u: int, constraints: ConstraintSpec
    ) -> tuple[float, float, int] | None:
        """Best ``(violation_delta, cut_delta, dest)`` for node *u*.

        Candidate destinations are the parts *u* already connects to; when
        *u*'s part is over the resource cap, every part is a candidate (the
        escape rule).  Ties break lexicographically, last on the smallest
        part id.  Returns ``None`` when no candidate exists.
        """
        src = int(self.assign[u])
        cu = self._store.col(u)
        escape = bool(self.overloaded_mask(constraints)[src])
        dv, dc = self.move_deltas(u, constraints)
        return self._select_best(
            dv.tolist(), dc.tolist(), cu.tolist(), src, escape
        )

    def best_moves(
        self, nodes: np.ndarray, constraints: ConstraintSpec
    ) -> list[tuple[float, float, int] | None]:
        """Batched :meth:`best_move` over *nodes* (order preserved)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return []
        dv, dc = self.move_deltas_batch(nodes, constraints)
        srcs = self.assign[nodes]
        escape = self.overloaded_mask(constraints)[srcs]
        cu_b = self._store.gather_cols(nodes)
        dv_l, dc_l, cu_l = dv.tolist(), dc.tolist(), cu_b.tolist()
        return [
            self._select_best(
                dv_l[i], dc_l[i], cu_l[i], int(srcs[i]), bool(escape[i])
            )
            for i in range(nodes.size)
        ]

    def recompute(self) -> None:
        """Rebuild everything from scratch (tests/debugging only).

        Invalidates everything keyed to the pre-rebuild matrices: the relu
        cache (its epoch would otherwise still match) and the move trail
        (rolling back across a rebuild would corrupt the fresh state).
        """
        fresh = RefinementState(
            self.g, self.assign, self.k, conn_format=self._store.format
        )
        self._store = fresh._store
        self.part_weight = fresh.part_weight
        self.part_size = fresh.part_size
        self.bw = fresh.bw
        self._epoch += 1
        self._relu_cache = None
        self._trail.clear()

    def __repr__(self) -> str:
        return (
            f"RefinementState(n={self.g.n}, k={self.k}, cut={self.cut:g}, "
            f"boundary={int(self.boundary_mask().sum())})"
        )
