"""Fixed-size population with goodness-ranked, diversity-aware replacement.

The memetic search (:mod:`repro.evolve.ea`) keeps a small pool of
high-quality partitions and improves it monotonically:

* **Ranking** — individuals are ordered by the GP goodness key
  (:func:`~repro.partition.goodness.goodness_key`): total violation first,
  cut last.  The pool's best individual can therefore never get worse.
* **Replacement** — an offspring enters a full pool only by evicting a
  member whose key is no better (strictly worse, or tied-worst).  Among
  the members tied at the worst key, the one with the **smallest Hamming
  distance** to the incoming offspring is evicted — similar solutions
  compete for one slot, dissimilar ones coexist (the diversity rule of
  Moreira/Popp/Schulz's evolutionary acyclic partitioner and KaHyPar-E).
* **Duplicate rejection** — an offspring identical to a member (Hamming
  distance 0) is always rejected; a pool of clones would make
  recombination a no-op.
* **Stagnation detection** — :meth:`Population.note_generation` counts
  consecutive generations without an improvement of the best key;
  the EA injects a fresh immigrant when the count crosses its limit.

Hamming distance is taken on the raw assignment vectors (label-sensitive):
two partitions equal up to a part relabelling count as distant, which is
exactly what recombination wants — their overlay still has many classes,
so the child can mix real structural alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.metrics import PartitionMetrics
from repro.util.errors import PartitionError

__all__ = ["Individual", "Population", "hamming"]


def hamming(a: np.ndarray, b: np.ndarray) -> int:
    """Number of nodes assigned to different parts by *a* and *b*."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise PartitionError(
            f"cannot compare assignments of shapes {a.shape} and {b.shape}"
        )
    return int((a != b).sum())


@dataclass(frozen=True)
class Individual:
    """One member of the population.

    Attributes
    ----------
    assign:
        Node → part assignment (not copied; treat as immutable).
    metrics:
        Evaluated :class:`~repro.partition.metrics.PartitionMetrics`.
    key:
        Goodness key of *metrics* (lower is better) — stored so ranking
        never re-derives it.
    origin:
        Provenance tag (``"seed"``, ``"recombine"``, ``"perturb"``,
        ``"walk"``, ``"immigrant"``), kept for the run history.
    """

    assign: np.ndarray
    metrics: PartitionMetrics
    key: tuple
    origin: str = "seed"


class Population:
    """Goodness-ranked pool of at most *size* individuals."""

    def __init__(self, size: int) -> None:
        if size < 2:
            raise PartitionError(f"population size must be >= 2, got {size}")
        self.size = int(size)
        self.members: list[Individual] = []
        self._last_best_key: tuple | None = None
        self.stagnation = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.members)

    @property
    def best(self) -> Individual:
        """The member with the smallest key (earliest-inserted among ties)."""
        if not self.members:
            raise PartitionError("population is empty")
        return min(
            zip(self.members, range(len(self.members))),
            key=lambda mi: (mi[0].key, mi[1]),
        )[0]

    @property
    def worst_key(self) -> tuple:
        if not self.members:
            raise PartitionError("population is empty")
        return max(m.key for m in self.members)

    def add(self, ind: Individual) -> str:
        """Insert *ind* under the replacement rules.

        Returns ``"added"`` (pool had room), ``"replaced"`` (a tied-or-worse
        member was evicted) or ``"rejected"`` (duplicate, or worse than the
        entire pool).
        """
        for m in self.members:
            if hamming(m.assign, ind.assign) == 0:
                return "rejected"
        if len(self.members) < self.size:
            self.members.append(ind)
            return "added"
        worst = self.worst_key
        if ind.key > worst:
            return "rejected"
        # evict the tied-worst member most similar to the newcomer
        tied = [i for i, m in enumerate(self.members) if m.key == worst]
        evict = min(tied, key=lambda i: (hamming(self.members[i].assign,
                                                 ind.assign), i))
        self.members[evict] = ind
        return "replaced"

    # ------------------------------------------------------------------ #
    def note_generation(self) -> bool:
        """Record a generation boundary; returns True iff the best key
        improved since the previous boundary (stagnation resets then)."""
        best = self.best.key
        improved = self._last_best_key is None or best < self._last_best_key
        if improved:
            self.stagnation = 0
        else:
            self.stagnation += 1
        self._last_best_key = best
        return improved

    def reset_stagnation(self) -> None:
        """Called by the EA after injecting an immigrant."""
        self.stagnation = 0

    def diversity(self) -> float:
        """Mean pairwise Hamming distance (0 for pools of fewer than 2)."""
        m = len(self.members)
        if m < 2:
            return 0.0
        total = 0
        for i in range(m):
            for j in range(i + 1, m):
                total += hamming(self.members[i].assign, self.members[j].assign)
        return total / (m * (m - 1) / 2)

    def __repr__(self) -> str:
        keys = sorted(m.key for m in self.members)
        head = keys[0] if keys else None
        return (
            f"Population(size={self.size}, members={len(self.members)}, "
            f"best={head}, stagnation={self.stagnation})"
        )
