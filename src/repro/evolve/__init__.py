"""Evolutionary partitioning subsystem (memetic search over both engines).

The paper's GP search is restart-only: randomized coarsen/partition/refine
cycles that never share information.  The portfolio layer races such runs
but still never *combines* them.  This subpackage closes the loop with a
memetic search in the style of Moreira/Popp/Schulz's evolutionary acyclic
partitioner and KaHyPar-E: a small population of high-quality partitions
is improved by **cut-preserving multilevel recombination** (coarsen with
matchings restricted to pairs both parents agree on, refine, project
back — the V-cycle machinery turned into a crossover operator) and by
perturb/walk mutations, with goodness-ranked, diversity-aware replacement.

* :mod:`repro.evolve.engines` — one adapter surface over the graph
  (edge-cut) and hypergraph ((λ−1) connectivity) substrates; everything
  else is engine-agnostic.
* :mod:`repro.evolve.population` — fixed-size pool, Hamming-distance
  diversity tie-breaking, stagnation detection.
* :mod:`repro.evolve.operators` — recombination (child never worse than
  the better parent) and the two mutation operators.
* :mod:`repro.evolve.ea` — :func:`evolve_partition` with generation /
  evaluation / wall-clock budgets, ``parallel_map`` execution
  (bit-identical for every ``n_jobs``) and :class:`~repro.util.parallel.
  KeyedCache` memoisation.

Entry points: ``partition_graph(method="evolve")``,
``partition_ppn(method="evolve")`` (either traffic model), the CLI's
``--method evolve`` with ``--generations`` / ``--time-budget`` /
``--pop-size`` / ``--no-cache``.  See ``docs/evolve.md``.
"""

from repro.evolve.ea import (
    EvolveConfig,
    clear_evolve_cache,
    evolve_cache,
    evolve_partition,
)
from repro.evolve.engines import (
    GraphEngine,
    HyperEngine,
    VectorGraphEngine,
    make_engine,
)
from repro.evolve.operators import mutate_perturb, mutate_walk, recombine
from repro.evolve.population import Individual, Population, hamming

__all__ = [
    "EvolveConfig",
    "evolve_partition",
    "evolve_cache",
    "clear_evolve_cache",
    "GraphEngine",
    "HyperEngine",
    "VectorGraphEngine",
    "make_engine",
    "recombine",
    "mutate_perturb",
    "mutate_walk",
    "Individual",
    "Population",
    "hamming",
]
