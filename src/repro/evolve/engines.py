"""Engine adapters: one facade over the graph and hypergraph substrates.

The evolutionary loop (:mod:`repro.evolve.ea`) and its operators
(:mod:`repro.evolve.operators`) are written once against the small surface
defined here; :func:`make_engine` dispatches on the structure type.  Both
adapters funnel refinement through the engine-agnostic
:func:`~repro.partition.kway_refine.run_constrained_fm` seam, so the EA
inherits the exact move ordering, tie-breaking and best-prefix discipline
of the GP refinement on either substrate:

* :class:`GraphEngine` — :class:`~repro.graph.wgraph.WGraph` under the
  edge-cut objective, refined on
  :class:`~repro.partition.refine_state.RefinementState`.
* :class:`HyperEngine` — :class:`~repro.hypergraph.hgraph.HGraph` under the
  (λ−1) connectivity objective, refined on
  :class:`~repro.hypergraph.refine_state.HyperRefinementState`.
* :class:`VectorGraphEngine` — :class:`~repro.partition.vector_state.
  VectorGraph` (a graph bundled with its ``(n, R)`` resource matrix)
  under the edge-cut objective with **componentwise** resource budgets
  (:class:`~repro.partition.vector_state.VectorConstraints`), refined on
  :class:`~repro.partition.vector_state.VectorRefinementState`.
  Contraction aggregates the weight matrix through the same node maps
  that merge the nodes, and ``digest()`` covers the matrix, so cached
  runs can never confuse two instances that differ only in resources.

An adapter is stateless apart from the structure/k it wraps: every method
takes the (possibly coarsened) structure it operates on, so one adapter
serves a whole restricted-coarsening hierarchy.
"""

from __future__ import annotations

import numpy as np

from repro.graph.wgraph import WGraph
from repro.hypergraph.coarsen import contract_hyper, heavy_pin_matching
from repro.hypergraph.hgraph import HGraph
from repro.hypergraph.metrics import evaluate_hyper_partition
from repro.hypergraph.refine_state import HyperRefinementState
from repro.partition.coarsen import contract
from repro.partition.flow_refine import check_refine_mode, run_flow_refine
from repro.partition.kway_refine import run_constrained_fm
from repro.partition.metrics import ConstraintSpec, evaluate_partition
from repro.partition.refine_state import RefinementState
from repro.partition.multires import evaluate_multires
from repro.partition.vcycle import intra_part_matching
from repro.partition.vector_state import (
    VectorConstraints,
    VectorGraph,
    VectorRefinementState,
)
from repro.util.errors import PartitionError

__all__ = [
    "GraphEngine",
    "HyperEngine",
    "VectorGraphEngine",
    "make_engine",
]


def _refined(engine, st, structure, neighbors_of, constraints,
             max_passes, seed) -> np.ndarray:
    """The engine's refinement stage on state *st* (shared by all three
    adapters): FM unless the engine was built with ``refine="flow"``;
    corridor flow passes (:mod:`repro.partition.flow_refine`) at every
    level for ``"flow"``, and at the finest level only for ``"fm+flow"``
    (coarse levels keep plain FM — the flow polish is a finest-level
    cut instrument, and the guard makes it free to skip)."""
    if engine.refine != "flow":
        out = run_constrained_fm(
            st, structure.n, neighbors_of, constraints,
            max_passes=max_passes, seed=seed,
        )
    if engine.refine == "flow" or (
        engine.refine == "fm+flow" and structure.n == engine.structure.n
    ):
        out = run_flow_refine(st, constraints)
    return out


class GraphEngine:
    """The 2-pin edge-cut substrate behind the uniform engine surface."""

    kind = "graph"

    def __init__(self, g: WGraph, k: int, refine: str = "fm") -> None:
        self.structure = g
        self.k = int(k)
        self.refine = check_refine_mode(refine)

    def digest(self) -> str:
        return self.structure.content_digest()

    def make_state(self, structure: WGraph, assign: np.ndarray):
        return RefinementState(structure, assign, self.k)

    def neighbors(self, structure: WGraph, u: int) -> np.ndarray:
        return structure.neighbors(u)

    def evaluate(self, assign: np.ndarray, constraints: ConstraintSpec):
        return evaluate_partition(self.structure, assign, self.k, constraints)

    def fm(
        self,
        structure: WGraph,
        assign: np.ndarray,
        constraints: ConstraintSpec,
        max_passes: int,
        seed,
    ):
        """One constrained-FM call; returns ``(assign, tracked metrics)``.

        Never returns an assignment worse than its input under the FM key
        (best-prefix rollback) — the property the recombination invariant
        leans on.
        """
        return self.fm_state(
            structure, self.make_state(structure, assign), constraints,
            max_passes, seed,
        )

    def fm_state(self, structure: WGraph, st, constraints, max_passes, seed):
        """:meth:`fm` on an already-built (possibly moved-on) engine state —
        callers that just mutated through ``st.move`` skip a rebuild."""
        out = _refined(
            self, st, structure, structure.neighbors, constraints,
            max_passes, seed,
        )
        return out, st.metrics(constraints)

    def restricted_matching(
        self, structure: WGraph, labels: np.ndarray, n_labels: int, seed
    ) -> np.ndarray:
        """A matching that never pairs nodes with different *labels* —
        :func:`~repro.partition.vcycle.intra_part_matching` generalized to
        arbitrary label vectors (the recombination overlay has up to ``k²``
        classes)."""
        return intra_part_matching(
            structure, labels, n_labels, method="hem", seed=seed
        )

    def contract(self, structure: WGraph, match: np.ndarray):
        return contract(structure, match)


class HyperEngine:
    """The (λ−1) connectivity substrate behind the uniform engine surface."""

    kind = "hypergraph"

    def __init__(self, hg: HGraph, k: int, refine: str = "fm") -> None:
        self.structure = hg
        self.k = int(k)
        self.refine = check_refine_mode(refine)

    def digest(self) -> str:
        return self.structure.content_digest()

    def make_state(self, structure: HGraph, assign: np.ndarray):
        return HyperRefinementState(structure, assign, self.k)

    def neighbors(self, structure: HGraph, u: int) -> np.ndarray:
        return structure.adjacent_nodes(u)

    def evaluate(self, assign: np.ndarray, constraints: ConstraintSpec):
        return evaluate_hyper_partition(
            self.structure, assign, self.k, constraints
        )

    def fm(
        self,
        structure: HGraph,
        assign: np.ndarray,
        constraints: ConstraintSpec,
        max_passes: int,
        seed,
    ):
        return self.fm_state(
            structure, self.make_state(structure, assign), constraints,
            max_passes, seed,
        )

    def fm_state(self, structure: HGraph, st, constraints, max_passes, seed):
        """:meth:`fm` on an already-built Φ engine state (see GraphEngine)."""
        out = _refined(
            self, st, structure, structure.adjacent_nodes, constraints,
            max_passes, seed,
        )
        return out, st.metrics(constraints)

    def restricted_matching(
        self, structure: HGraph, labels: np.ndarray, n_labels: int, seed
    ) -> np.ndarray:
        """Heavy-pin matching with every label-crossing pair unmatched —
        the hypergraph analogue of the graph engine's restricted matching
        (contraction of the result preserves every label class exactly)."""
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (structure.n,):
            raise PartitionError(
                f"labels have shape {labels.shape}, expected ({structure.n},)"
            )
        match = heavy_pin_matching(structure, seed=seed).copy()
        crossing = labels != labels[match]
        match[crossing] = np.arange(structure.n, dtype=np.int64)[crossing]
        return match

    def contract(self, structure: HGraph, match: np.ndarray):
        return contract_hyper(structure, match)


class VectorGraphEngine:
    """The vector-resource substrate behind the uniform engine surface.

    Identical topology machinery to :class:`GraphEngine` (edge-cut
    objective, HEM restricted matching, graph contraction) — the
    difference is what "resources" means: states are
    :class:`~repro.partition.vector_state.VectorRefinementState` tracking
    the ``(k, R)`` load matrix, constraints are
    :class:`~repro.partition.vector_state.VectorConstraints`, and
    contraction carries the weight matrix through the node map.
    """

    kind = "vector"

    def __init__(self, vg: VectorGraph, k: int, refine: str = "fm") -> None:
        self.structure = vg
        self.k = int(k)
        self.refine = check_refine_mode(refine)

    def digest(self) -> str:
        """Covers topology, node/edge weights **and** the weight matrix."""
        return self.structure.content_digest()

    def make_state(self, structure: VectorGraph, assign: np.ndarray):
        return VectorRefinementState(
            structure.graph, structure.weights, assign, self.k
        )

    def neighbors(self, structure: VectorGraph, u: int) -> np.ndarray:
        return structure.graph.neighbors(u)

    def evaluate(self, assign: np.ndarray, constraints: VectorConstraints):
        return evaluate_multires(
            self.structure.graph, self.structure.weights, assign, self.k,
            constraints,
        )

    def fm(
        self,
        structure: VectorGraph,
        assign: np.ndarray,
        constraints: VectorConstraints,
        max_passes: int,
        seed,
    ):
        """One constrained-FM call; returns ``(assign, tracked metrics)``
        (never worse than its input under the FM key — see GraphEngine)."""
        return self.fm_state(
            structure, self.make_state(structure, assign), constraints,
            max_passes, seed,
        )

    def fm_state(self, structure: VectorGraph, st, constraints, max_passes, seed):
        out = _refined(
            self, st, structure, structure.graph.neighbors, constraints,
            max_passes, seed,
        )
        return out, st.metrics(constraints)

    def restricted_matching(
        self, structure: VectorGraph, labels: np.ndarray, n_labels: int, seed
    ) -> np.ndarray:
        return intra_part_matching(
            structure.graph, labels, n_labels, method="hem", seed=seed
        )

    def contract(self, structure: VectorGraph, match: np.ndarray):
        """Contract the graph and aggregate the weight matrix through the
        node map — coarse node loads are exact sums of their fine nodes,
        so every coarse-level constraint check is exact too."""
        coarse, node_map = contract(structure.graph, match)
        agg = np.zeros(
            (coarse.n, structure.weights.shape[1]), dtype=np.float64
        )
        np.add.at(agg, node_map, structure.weights)
        return VectorGraph(coarse, agg, names=structure.names), node_map


def make_engine(structure, k: int, refine: str = "fm"):
    """Adapter for *structure*: :class:`WGraph` → :class:`GraphEngine`,
    :class:`HGraph` → :class:`HyperEngine`, :class:`VectorGraph` →
    :class:`VectorGraphEngine`.  *refine* is threaded to the adapter
    (see :mod:`repro.partition.flow_refine`)."""
    if isinstance(structure, WGraph):
        return GraphEngine(structure, k, refine=refine)
    if isinstance(structure, HGraph):
        return HyperEngine(structure, k, refine=refine)
    if isinstance(structure, VectorGraph):
        return VectorGraphEngine(structure, k, refine=refine)
    raise PartitionError(
        f"evolve needs a WGraph, HGraph or VectorGraph, "
        f"got {type(structure).__name__}"
    )
