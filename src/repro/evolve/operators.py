"""Variation operators of the memetic partitioner.

``recombine``
    The cut-preserving multilevel recombination of Moreira/Popp/Schulz and
    KaHyPar-E, built from this library's own V-cycle machinery: coarsen
    with matchings restricted to pairs of nodes that agree in **both**
    parents (the *overlay* classes ``a·k + b``), so each parent's
    partition survives contraction exactly; refine the coarse problem with
    the constrained FM starting from the **better** parent's projection;
    project back level by level, refining at each.  Because the
    restricted contraction preserves the better parent's metrics exactly
    and the FM's best-prefix rollback never returns anything worse than
    its input, the child is **never worse than the better parent** under
    the goodness order — the invariant ``tests/test_evolve.py`` pins for
    both engines.

``mutate_perturb``
    Perturb-and-repair: reassign a random fraction of the nodes to random
    parts, then run the constrained FM.  Large basin hops; the FM pulls
    the perturbed partition back to a (different) local optimum.

``mutate_walk``
    Boundary random walk: starting from a random boundary node, walk the
    adjacency structure for a bounded number of steps dragging every
    visited node into the walk's origin part, then repair with the
    constrained FM.  Local, connected perturbations — the shape of move
    FM itself rarely composes.

Mutations may return worse partitions (that is their job — diversity);
the population's replacement rules decide survival.  All operators work
identically on either engine adapter (:mod:`repro.evolve.engines`).
"""

from __future__ import annotations

import numpy as np

from repro.partition.goodness import goodness_key
from repro.partition.metrics import ConstraintSpec
from repro.util.errors import PartitionError
from repro.util.rng import as_rng, spawn_seeds

__all__ = ["recombine", "mutate_perturb", "mutate_walk"]

#: Hierarchy depth cap of one recombination V-cycle; each level strictly
#: shrinks the structure, so 64 is never the binding constraint.
_MAX_LEVELS = 64


def recombine(
    engine,
    parent_best: np.ndarray,
    parent_other: np.ndarray,
    constraints: ConstraintSpec,
    seed=None,
    coarsen_to: int | None = None,
    refine_passes: int = 6,
    parent_metrics=None,
):
    """Recombine two parent partitions; returns ``(child, tracked metrics)``.

    *parent_best* must be the parent with the better (lower) goodness key —
    the caller ranks them; the guarantee "child never worse" is relative to
    this first parent.  Both parents must be valid k-way assignments on
    ``engine.structure``.  *parent_metrics*, when given, must be
    *parent_best*'s evaluated metrics under *constraints* — callers that
    already hold them (the EA's population does) spare the guard one
    from-scratch evaluation per call; omitted, they are recomputed here.

    The guarantee is enforced, not merely inherited: the multilevel descent
    preserves the better parent under the FM's ``(violation, cut)`` key,
    but the four-component goodness order can still rank a refined child
    below the parent in two corners — an FM pass that trades bandwidth
    violation against resource violation at equal total, and (hypergraph
    engine only) coarse pairwise-traffic attribution drifting when
    identical-net merging unifies nets whose roots sit in different parts.
    When either corner fires, the parent itself is returned.
    """
    k = engine.k
    structure = engine.structure
    n = structure.n
    a = np.asarray(parent_best, dtype=np.int64)
    b = np.asarray(parent_other, dtype=np.int64)
    if a.shape != (n,) or b.shape != (n,):
        raise PartitionError(
            f"parents must have shape ({n},), got {a.shape} and {b.shape}"
        )
    if coarsen_to is None:
        coarsen_to = max(30, 4 * k)
    rng = as_rng(seed)
    s_match, s_refine = spawn_seeds(rng, 2)

    # overlay classes: nodes may contract only if BOTH parents agree, so
    # contraction hides no edge/net either parent cuts — each parent's
    # partition (and its metrics) survives to every coarse level exactly
    overlay = a * np.int64(k) + b

    structs = [structure]
    maps: list[np.ndarray] = []
    cur_s, cur_ov, cur_best = structure, overlay, a
    match_seeds = spawn_seeds(s_match, _MAX_LEVELS)
    for level in range(_MAX_LEVELS):
        if cur_s.n <= coarsen_to:
            break
        match = engine.restricted_matching(
            cur_s, cur_ov, k * k, seed=match_seeds[level]
        )
        if np.array_equal(match, np.arange(cur_s.n)):
            break  # nothing contractible inside the agreement classes
        coarse, node_map = engine.contract(cur_s, match)
        if coarse.n >= cur_s.n:
            break
        c_ov = np.empty(coarse.n, dtype=np.int64)
        c_ov[node_map] = cur_ov  # well-defined: merged pairs share a class
        c_best = np.empty(coarse.n, dtype=np.int64)
        c_best[node_map] = cur_best
        structs.append(coarse)
        maps.append(node_map)
        cur_s, cur_ov, cur_best = coarse, c_ov, c_best

    refine_seeds = spawn_seeds(s_refine, len(structs))
    # refine the coarsest level starting from the better parent's (exactly
    # preserved) projection, then project down with refinement per level
    cand, metrics = engine.fm(
        structs[-1], cur_best, constraints, refine_passes, refine_seeds[-1]
    )
    for level in range(len(structs) - 1, 0, -1):
        cand = cand[maps[level - 1]]
        cand, metrics = engine.fm(
            structs[level - 1], cand, constraints,
            refine_passes, refine_seeds[level - 1],
        )
    if parent_metrics is None:
        parent_metrics = engine.evaluate(a, constraints)
    if goodness_key(metrics, constraints) > goodness_key(
        parent_metrics, constraints
    ):
        return a.copy(), parent_metrics
    return cand, metrics


def mutate_perturb(
    engine,
    assign: np.ndarray,
    constraints: ConstraintSpec,
    seed=None,
    frac: float = 0.15,
    refine_passes: int = 6,
):
    """Reassign ``max(1, frac·n)`` random nodes to random parts, then run
    the constrained FM; returns ``(child, tracked metrics)``."""
    if not 0.0 < frac <= 1.0:
        raise PartitionError(f"perturbation fraction must be in (0, 1], got {frac}")
    structure = engine.structure
    n = structure.n
    k = engine.k
    rng = as_rng(seed)
    a = np.asarray(assign, dtype=np.int64).copy()
    m = min(n, max(1, int(round(frac * n))))
    nodes = rng.choice(n, size=m, replace=False)
    a[nodes] = rng.integers(0, k, size=m)
    s_fm = spawn_seeds(rng, 1)[0]
    return engine.fm(structure, a, constraints, refine_passes, s_fm)


def mutate_walk(
    engine,
    assign: np.ndarray,
    constraints: ConstraintSpec,
    seed=None,
    steps: int | None = None,
    refine_passes: int = 6,
):
    """Drag a random walk's nodes into its origin part, then repair.

    The walk starts at a random **boundary** node (a random node when the
    partition has no boundary, e.g. k=1) and takes ``steps`` uniform
    adjacency steps (default ``max(3, n // 16)``), assigning every visited
    node to the origin's part; the constrained FM then repairs constraints
    and cut.  Returns ``(child, tracked metrics)``.
    """
    structure = engine.structure
    n = structure.n
    rng = as_rng(seed)
    if steps is None:
        steps = max(3, n // 16)
    if steps < 0:
        raise PartitionError(f"walk steps must be >= 0, got {steps}")
    # one engine state serves the whole operator: it yields the boundary,
    # absorbs the walk's moves incrementally, and is handed to the FM
    # as-is (incremental == from-scratch, pinned by the invariant suites)
    st = engine.make_state(structure, assign)
    boundary = st.boundary_nodes()
    if boundary.size:
        u = int(boundary[rng.integers(boundary.size)])
    else:
        u = int(rng.integers(n))
    part = int(st.assign[u])
    for _ in range(steps):
        nbrs = engine.neighbors(structure, u)
        if nbrs.size == 0:
            break
        u = int(nbrs[rng.integers(nbrs.size)])
        st.move(u, part)
    st.clear_trail()
    s_fm = spawn_seeds(rng, 1)[0]
    return engine.fm_state(structure, st, constraints, refine_passes, s_fm)
