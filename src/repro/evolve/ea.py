"""``evolve_partition`` — the memetic search loop over either engine.

Search shape (KaHyPar-E / evolutionary-acyclic-partitioning style, built
from this library's own primitives):

1. **Seeding** — the initial population is the GP portfolio: the
   :func:`~repro.partition.portfolio.default_portfolio` members (their
   hypergraph counterparts under the connectivity objective), each with a
   :func:`~repro.util.rng.spawn_seeds`-derived seed and a reduced cycle
   budget, raced through :func:`~repro.util.parallel.parallel_map`.
2. **Generations** — per generation a batch of offspring recipes is drawn
   from the *main-process* RNG (operator choice, parents, child seed),
   the batch is evaluated through ``parallel_map``, and the children are
   inserted **in recipe order** under the population's replacement rules.
   Because every random decision happens before the batch and results are
   consumed in submission order, the whole run — history included — is
   **bit-identical for every** ``n_jobs``.
3. **Stagnation restarts** — after ``stagnation_limit`` generations
   without improving the best goodness key, one recipe of the next
   generation becomes an *immigrant*: a fresh portfolio-member run with a
   new seed, inserted under the same replacement rules.
4. **Budgets** — ``generations`` (hard cap), ``max_evals`` (total
   partitioner evaluations, seeding included; the last generation is
   truncated to fit) and ``time_budget`` (wall-clock seconds, checked at
   generation boundaries).  The first budget to bind stops the run; see
   ``docs/evolve.md`` for which budgets preserve reproducibility.

Completed runs are memoised in :data:`evolve_cache` keyed by
``(structure digest, k, constraints, config, seed)``, exactly like the
portfolio cache.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.evolve.engines import make_engine
from repro.partition.flow_refine import check_refine_mode
from repro.evolve.operators import mutate_perturb, mutate_walk, recombine
from repro.evolve.population import Individual, Population
from repro.graph.wgraph import WGraph
from repro.partition.base import PartitionResult
from repro.partition.goodness import goodness_key
from repro.partition.gp import gp_partition
from repro.partition.metrics import ConstraintSpec
from repro.partition.multires import mr_gp_partition
from repro.partition.portfolio import default_portfolio
from repro.partition.vector_state import VectorConstraints, VectorGraph
from repro.util.errors import InfeasibleError, PartitionError
import repro.obs as _obs
from repro.util.parallel import KeyedCache, parallel_map
from repro.util.rng import as_rng, spawn_seeds

__all__ = [
    "EvolveConfig",
    "evolve_partition",
    "evolve_cache",
    "clear_evolve_cache",
]

#: In-process memo of completed evolutionary runs (see module docstring).
evolve_cache = KeyedCache(maxsize=32, name="evolve")


def clear_evolve_cache() -> None:
    """Drop every memoised evolve result (and reset hit/miss stats)."""
    evolve_cache.clear()


@dataclass(frozen=True)
class EvolveConfig:
    """Tuning knobs of the evolutionary partitioner.

    Attributes
    ----------
    pop_size:
        Number of individuals kept (and seeded — one portfolio-member run
        each).  Replacement is goodness-ranked with Hamming-distance
        diversity tie-breaking (:class:`~repro.evolve.population.Population`).
    generations:
        Hard cap on the number of generations after seeding.
    offspring_per_gen:
        Offspring recipes evaluated per generation; ``None`` (default)
        means ``max(2, pop_size // 2)``.
    max_evals:
        Total partitioner-evaluation budget — seeding members, offspring
        and immigrants all count one each; ``None`` disables.  The last
        generation is truncated to fit, so runs at equal ``max_evals``
        consume equal work regardless of the other knobs.
    time_budget:
        Wall-clock budget in seconds, checked at generation boundaries
        (a started generation always completes); ``None`` disables.
        Unlike the other budgets this one makes the *stopping point*
        machine-dependent — see the determinism contract in
        ``docs/evolve.md``.
    recombine_prob:
        Probability that an offspring recipe is a recombination (needs ≥2
        members; falls back to mutation below that).  The remainder splits
        evenly between the two mutation operators.
    perturb_frac:
        Node fraction reassigned by the perturb mutation.
    walk_steps:
        Steps of the boundary-random-walk mutation; ``None`` (default)
        means ``max(3, n // 16)``.
    refine_passes:
        Constrained-FM passes per refinement call inside every operator.
    coarsen_to:
        Recombination coarsens the overlay-restricted hierarchy down to
        this many nodes; ``None`` (default) means ``max(30, 4k)``.
    stagnation_limit:
        Generations without best-key improvement before an immigrant
        (fresh portfolio-member run) is injected.
    refine:
        Refinement stage used by every operator and (graph/vector)
        seeding member — ``"fm"`` (default), ``"flow"`` or ``"fm+flow"``
        (see :mod:`repro.partition.flow_refine`).  ``"fm+flow"`` applies
        the guarded corridor-flow polish on finest-level refinement
        states; hypergraph seeding members are native FM either way
        (their flow stage lives in the operators).
    seed_max_cycles:
        ``max_cycles`` cap applied to every seeding/immigrant member —
        seeding should populate the pool quickly, not exhaust the budget
        the evolutionary loop is meant to spend.
    on_infeasible:
        ``"return"`` — give back the least-violating individual with
        ``feasible=False``; ``"raise"`` — raise :class:`InfeasibleError`.
    seed:
        Default random seed for the run; the ``seed`` argument of
        :func:`evolve_partition` overrides it when given, and ``None``
        falls back to the library-default seed.

    This docstring is the canonical field-by-field reference for the
    evolve knobs, in the same spirit as
    :class:`~repro.partition.gp.GPConfig` — ``docs/evolve.md`` links here
    rather than re-listing them.  Execution concerns (``n_jobs``,
    ``cache``) are deliberately *not* config fields: they change
    wall-clock, never results, and live on the call site instead.
    """

    pop_size: int = 8
    generations: int = 12
    offspring_per_gen: int | None = None
    max_evals: int | None = None
    time_budget: float | None = None
    recombine_prob: float = 0.7
    perturb_frac: float = 0.15
    walk_steps: int | None = None
    refine_passes: int = 6
    refine: str = "fm"
    coarsen_to: int | None = None
    stagnation_limit: int = 4
    seed_max_cycles: int = 2
    on_infeasible: str = "return"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.pop_size < 2:
            raise PartitionError("pop_size must be >= 2")
        if self.generations < 0:
            raise PartitionError("generations must be >= 0")
        if self.offspring_per_gen is not None and self.offspring_per_gen < 1:
            raise PartitionError("offspring_per_gen must be >= 1")
        if self.max_evals is not None and self.max_evals < 1:
            raise PartitionError("max_evals must be >= 1")
        if self.time_budget is not None and self.time_budget <= 0:
            raise PartitionError("time_budget must be > 0 seconds")
        if not 0.0 <= self.recombine_prob <= 1.0:
            raise PartitionError("recombine_prob must be in [0, 1]")
        if not 0.0 < self.perturb_frac <= 1.0:
            raise PartitionError("perturb_frac must be in (0, 1]")
        if self.walk_steps is not None and self.walk_steps < 0:
            raise PartitionError("walk_steps must be >= 0")
        if self.refine_passes < 1:
            raise PartitionError("refine_passes must be >= 1")
        check_refine_mode(self.refine)
        if self.coarsen_to is not None and self.coarsen_to < 1:
            raise PartitionError("coarsen_to must be >= 1")
        if self.stagnation_limit < 1:
            raise PartitionError("stagnation_limit must be >= 1")
        if self.seed_max_cycles < 1:
            raise PartitionError("seed_max_cycles must be >= 1")
        if self.on_infeasible not in ("return", "raise"):
            raise PartitionError(
                f"on_infeasible must be 'return' or 'raise', "
                f"got {self.on_infeasible!r}"
            )

    @property
    def offspring(self) -> int:
        """Resolved offspring-per-generation count."""
        if self.offspring_per_gen is not None:
            return self.offspring_per_gen
        return max(2, self.pop_size // 2)


def _seed_member_configs(kind: str, config: EvolveConfig) -> list:
    """Portfolio-member configs used for seeding and immigrants.

    Graph and vector-resource runs reuse
    :func:`~repro.partition.portfolio.default_portfolio` verbatim (the
    vector member runner maps the GPConfig knobs onto
    :func:`~repro.partition.multires.mr_gp_partition`); hypergraph runs
    use the equivalent spread of
    :class:`~repro.hypergraph.partition.HyperConfig` members.  Every
    member is neutralised to ``on_infeasible="return"`` (an infeasible
    seed still joins the pool — the EA's job is to repair it) and capped
    at ``seed_max_cycles`` retry cycles.
    """
    if kind in ("graph", "vector"):
        members = default_portfolio()
    else:
        from repro.hypergraph.partition import HyperConfig

        members = [
            HyperConfig(),
            HyperConfig(restarts=20, level_candidates=4),
            HyperConfig(coarsen_to=60),
            HyperConfig(restarts=5, max_cycles=30),
        ]
    if kind in ("graph", "vector"):
        # GPConfig members inherit the run's refine mode (the vector
        # member runner forwards it to mr_gp_partition); HyperConfig
        # has no refine field — hypergraph flow runs live in the
        # engine-level operators, not the seeding members
        return [
            dataclasses.replace(
                cfg,
                on_infeasible="return",
                max_cycles=min(cfg.max_cycles, config.seed_max_cycles),
                refine=config.refine,
            )
            for cfg in members
        ]
    return [
        dataclasses.replace(
            cfg,
            on_infeasible="return",
            max_cycles=min(cfg.max_cycles, config.seed_max_cycles),
        )
        for cfg in members
    ]


def _run_member(structure, k, constraints, cfg, seed):
    """One portfolio-member run on any substrate (seeding/immigrants)."""
    if isinstance(structure, VectorGraph):
        # cache=False: member runs are EA-internal work units — memoising
        # them would make the run's wall-clock depend on cache warmth
        # while the EA's own cache already memoises the whole run
        return mr_gp_partition(
            structure.graph, structure.weights, k, constraints,
            coarsen_to=cfg.coarsen_to, restarts=cfg.restarts,
            max_cycles=cfg.max_cycles, refine_passes=cfg.refine_passes,
            seed=seed, on_infeasible="return", cache=False,
            refine=cfg.refine,
        )
    if isinstance(structure, WGraph):
        return gp_partition(structure, k, constraints, cfg, seed=seed)
    from repro.hypergraph.partition import hyper_partition

    return hyper_partition(structure, k, constraints, config=cfg, seed=seed)


def _run_seed_member(context, task):
    """Seeding worker (a parallel_map worker): ``task = (cfg, seed)``."""
    structure, k, constraints, _config = context
    cfg, s = task
    res = _run_member(structure, k, constraints, cfg, s)
    return res.assign, res.metrics


def _run_offspring(context, task):
    """Offspring worker (a parallel_map worker).

    ``task = (op, payload, seed)``; the structure and knobs travel in the
    shared *context* (shipped once per worker).  Returns
    ``(assign, metrics)`` with metrics read from the final refinement
    state (tracked == from-scratch, pinned by the invariant suites).
    """
    structure, k, constraints, config = context
    op, payload, s = task
    engine = make_engine(structure, k, refine=config.refine)
    if op == "recombine":
        best_a, other_a, best_metrics = payload
        return recombine(
            engine, best_a, other_a, constraints, seed=s,
            coarsen_to=config.coarsen_to,
            refine_passes=config.refine_passes,
            parent_metrics=best_metrics,
        )
    if op == "perturb":
        return mutate_perturb(
            engine, payload, constraints, seed=s,
            frac=config.perturb_frac,
            refine_passes=config.refine_passes,
        )
    if op == "walk":
        return mutate_walk(
            engine, payload, constraints, seed=s,
            steps=config.walk_steps,
            refine_passes=config.refine_passes,
        )
    if op == "immigrant":
        res = _run_member(structure, k, constraints, payload, s)
        return res.assign, res.metrics
    raise PartitionError(f"unknown offspring op {op!r}")


def _draw_recipes(
    pop: Population,
    n_off: int,
    config: EvolveConfig,
    rng,
    member_cfgs: list,
    immigrant_count: int,
) -> tuple[list, int]:
    """One generation's offspring recipes, drawn from the main-process RNG.

    Every random decision (operator, parents, child seed) happens here,
    before any evaluation — what makes serial and parallel runs identical.
    Returns ``(recipes, immigrants_injected)``.
    """
    recipes = []
    injected = 0
    for j in range(n_off):
        if j == 0 and pop.stagnation >= config.stagnation_limit:
            cfg = member_cfgs[immigrant_count % len(member_cfgs)]
            s = spawn_seeds(rng, 1)[0]
            recipes.append(("immigrant", cfg, s))
            injected += 1
            continue
        r = float(rng.random())
        if r < config.recombine_prob and len(pop) >= 2:
            idx = rng.choice(len(pop.members), size=2, replace=False)
            i1, i2 = int(idx[0]), int(idx[1])
            m1, m2 = pop.members[i1], pop.members[i2]
            if (m2.key, i2) < (m1.key, i1):
                m1, m2 = m2, m1
            # the better parent's metrics ride along so the operator's
            # never-worse guard needs no from-scratch re-evaluation
            payload = (m1.assign.copy(), m2.assign.copy(), m1.metrics)
            op = "recombine"
        else:
            i = int(rng.integers(len(pop.members)))
            payload = pop.members[i].assign.copy()
            op = "perturb" if float(rng.random()) < 0.5 else "walk"
        s = spawn_seeds(rng, 1)[0]
        recipes.append((op, payload, s))
    return recipes, injected


def _cached_copy(result: PartitionResult) -> PartitionResult:
    """Deliver a cached result without aliasing the stored arrays/info."""
    return dataclasses.replace(
        result,
        assign=result.assign.copy(),
        info={**copy.deepcopy(result.info), "cache_hit": True},
    )


def evolve_partition(
    structure,
    k: int,
    constraints: ConstraintSpec,
    config: EvolveConfig | None = None,
    seed=None,
    n_jobs: int | None = 1,
    cache: bool = True,
) -> PartitionResult:
    """Memetic k-way partitioning of a graph or hypergraph.

    Parameters
    ----------
    structure:
        :class:`~repro.graph.wgraph.WGraph` (edge-cut objective),
        :class:`~repro.hypergraph.hgraph.HGraph` ((λ−1) connectivity
        objective) or :class:`~repro.partition.vector_state.VectorGraph`
        (edge-cut with componentwise multi-resource budgets) — the engine
        is picked by type and every operator runs through the shared
        constrained-FM driver.
    k:
        Number of partitions (FPGAs).
    constraints:
        ``Bmax`` / ``Rmax`` caps; either may be ``inf``.  With a
        :class:`~repro.partition.vector_state.VectorGraph` this must be a
        :class:`~repro.partition.vector_state.VectorConstraints` whose
        ``rmax`` vector matches the structure's resource count.
    config:
        :class:`EvolveConfig`; defaults when omitted.
    seed:
        Overrides ``config.seed`` when given.
    n_jobs:
        Worker processes racing the seeding members and each generation's
        offspring batch (``1`` = serial in-process, ``-1`` = all CPUs).
        Recipes are drawn before each batch and results consumed in recipe
        order, so the returned partition **and the run history** are
        bit-identical for every ``n_jobs``; only wall-clock changes.
    cache:
        Memoise the outcome in :data:`evolve_cache` keyed by ``(structure
        digest, k, constraints, config, seed)``.  Hits return a fresh copy
        flagged with ``info["cache_hit"]=True``; only ``int``/``None``
        seeds participate.

    Returns
    -------
    PartitionResult
        Algorithm ``"EA"`` (graph), ``"EA-hyper"`` (hypergraph) or
        ``"EA-vector"`` (vector resources, metrics a
        :class:`~repro.partition.vector_state.MultiResMetrics`), with
        ``info`` carrying ``generations``, ``evals``, ``restarts``,
        ``stop`` (which budget bound first) and the per-generation
        ``history``.

    Raises
    ------
    InfeasibleError
        If the final best individual is infeasible and
        ``config.on_infeasible == "raise"`` (least-violating result in
        ``.best``).
    """
    config = config or EvolveConfig()
    engine = make_engine(structure, k, refine=config.refine)
    if engine.kind == "vector":
        if not isinstance(constraints, VectorConstraints):
            raise PartitionError(
                "a VectorGraph instance needs VectorConstraints, got "
                f"{type(constraints).__name__}"
            )
        if constraints.n_resources != structure.n_resources:
            raise PartitionError(
                f"constraints cap {constraints.n_resources} resources, "
                f"structure carries {structure.n_resources}"
            )
    elif isinstance(constraints, VectorConstraints):
        raise PartitionError(
            "VectorConstraints need a VectorGraph structure; wrap the "
            "graph and its weight matrix in one (or pass a ConstraintSpec)"
        )
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > structure.n:
        raise PartitionError(f"k={k} exceeds node count {structure.n}")
    run_seed = seed if seed is not None else config.seed
    rng = as_rng(run_seed)

    cacheable = cache and (run_seed is None or isinstance(run_seed, int))
    key = None
    if cacheable:
        key = (
            "evolve",
            engine.kind,
            engine.digest(),
            k,
            constraints,
            config,
            run_seed,
        )
        # lookup (not get): a cached falsy value must stay a hit
        found, hit = evolve_cache.lookup(key)
        if found:
            result = _cached_copy(hit)
            if not result.feasible and config.on_infeasible == "raise":
                raise InfeasibleError(
                    f"evolutionary search found no feasible partitioning "
                    f"({result.info['evals']} evaluations)",
                    best=result,
                )
            return result

    with _obs.timed_span("evolve", nodes=structure.n, k=k,
                         model=engine.kind) as sw:
        t0 = time.perf_counter()
        member_cfgs = _seed_member_configs(engine.kind, config)
        context = (structure, k, constraints, config)

        # -- seeding: one portfolio-member run per slot, raced like a portfolio
        n_seed = config.pop_size
        if config.max_evals is not None:
            n_seed = max(1, min(n_seed, config.max_evals))
        seed_cfgs = [member_cfgs[i % len(member_cfgs)] for i in range(n_seed)]
        seed_seeds = spawn_seeds(rng, n_seed)
        with _obs.trace_span("evolve.seed", members=n_seed):
            seeded = parallel_map(
                _run_seed_member,
                list(zip(seed_cfgs, seed_seeds)),
                n_jobs=n_jobs,
                context=context,
            )
        pop = Population(config.pop_size)
        for assign, metrics in seeded:
            pop.add(
                Individual(
                    assign=assign,
                    metrics=metrics,
                    key=goodness_key(metrics, constraints),
                    origin="seed",
                )
            )
        evals = n_seed
        pop.note_generation()

        # -- generations
        history: list[dict] = []
        restarts = 0
        immigrant_count = 0
        gens_run = 0
        stop = "generations"
        for gen in range(config.generations):
            if (
                config.time_budget is not None
                and time.perf_counter() - t0 >= config.time_budget
            ):
                stop = "time"
                break
            n_off = config.offspring
            if config.max_evals is not None:
                n_off = min(n_off, config.max_evals - evals)
                if n_off <= 0:
                    stop = "evals"
                    break
            recipes, injected = _draw_recipes(
                pop, n_off, config, rng, member_cfgs, immigrant_count
            )
            if injected:
                immigrant_count += injected
                restarts += injected
                pop.reset_stagnation()
            with _obs.trace_span(
                "evolve.generation", generation=gen, offspring=len(recipes)
            ) as gsp:
                children = parallel_map(
                    _run_offspring, recipes, n_jobs=n_jobs, context=context
                )
                outcomes = []
                for (op, _payload, _s), (assign, metrics) in zip(
                    recipes, children
                ):
                    fate = pop.add(
                        Individual(
                            assign=assign,
                            metrics=metrics,
                            key=goodness_key(metrics, constraints),
                            origin=op,
                        )
                    )
                    outcomes.append((op, fate))
                evals += len(recipes)
                gens_run = gen + 1
                improved = pop.note_generation()
                best = pop.best
                gsp.set(best_cut=float(best.metrics.cut), improved=improved)
            history.append(
                {
                    "generation": gen,
                    "evals": evals,
                    "best_key": tuple(best.key),
                    "best_cut": float(best.metrics.cut),
                    "best_violation": float(best.metrics.total_violation),
                    "improved": improved,
                    "outcomes": tuple(outcomes),
                }
            )

    best = pop.best
    result = PartitionResult(
        assign=best.assign.copy(),
        k=k,
        metrics=best.metrics,
        algorithm={
            "graph": "EA",
            "hypergraph": "EA-hyper",
            "vector": "EA-vector",
        }[engine.kind],
        runtime=sw.elapsed,
        constraints=constraints,
        info={
            "model": engine.kind,
            "pop_size": config.pop_size,
            "seed_members": n_seed,
            "generations": gens_run,
            "evals": evals,
            "restarts": restarts,
            "stop": stop,
            "best_origin": best.origin,
            "history": history,
        },
    )
    if cacheable:
        evolve_cache.put(
            key,
            dataclasses.replace(
                result,
                assign=result.assign.copy(),
                info=copy.deepcopy(result.info),
            ),
        )
    if not best.metrics.feasible and config.on_infeasible == "raise":
        raise InfeasibleError(
            f"evolutionary search found no feasible partitioning meeting "
            f"Bmax={constraints.bmax}, Rmax={constraints.rmax} within "
            f"{evals} evaluations (best violation: bandwidth "
            f"{best.metrics.bandwidth_violation:g}, resource "
            f"{best.metrics.resource_violation:g})",
            best=result,
        )
    return result
