"""Request/response schema of the serve daemon (see ``docs/serve.md``).

A ``/partition`` request is a JSON object:

```
{
  "graph":  {<repro-wgraph-v1 document>},   # or omitted — see "digest"
  "digest": "<64-hex sha256>",              # optional with "graph"
  "k":      4,                              # required
  "method": "gp",                           # default "gp"
  "bmax":   16.0,                           # optional; null/omitted = inf
  "rmax":   165.0,                          # optional; null/omitted = inf
  "seed":   0                               # optional; null/omitted = None
}
```

Exactly the argument surface of :func:`repro.core.api.partition_graph`
(graph model, scalar constraints), so a served result is **bit-identical**
to the direct library call — that equivalence is pinned by
``scripts/serve_smoke.py`` in CI.  A request may carry the ``digest``
*instead of* the graph: it is answered purely from the cache (the digest
keys everything), and misses with 404 rather than guessing.  When both
are present the digest must match the graph's
:meth:`~repro.graph.wgraph.WGraph.content_digest` — a cheap end-to-end
integrity check.

The cache key built here deliberately excludes execution knobs (the
daemon's ``n_jobs``, worker pool, …): by the determinism contract they
cannot change the result, so they must not fragment the cache.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.graph.io import graph_from_json
from repro.graph.wgraph import WGraph
from repro.util.errors import ReproError

__all__ = [
    "ServeError",
    "BadRequest",
    "UnknownDigest",
    "ServeRequest",
    "parse_request",
    "request_cache_key",
    "result_payload",
    "SERVE_METHODS",
]

#: Methods servable on the graph model — the full partition_graph surface.
SERVE_METHODS = ("gp", "mlkp", "spectral", "exact", "hyper", "evolve")


class ServeError(ReproError):
    """A serve-layer error carrying the HTTP status to respond with."""

    status = 500

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status


class BadRequest(ServeError):
    """Malformed or unsupported request payload."""

    status = 400


class UnknownDigest(ServeError):
    """A digest-only request whose result is not (or no longer) cached."""

    status = 404


@dataclass(frozen=True)
class ServeRequest:
    """A validated ``/partition`` request."""

    digest: str
    k: int
    method: str
    bmax: float
    rmax: float
    seed: int | None
    graph: WGraph | None


def _parse_bound(doc: dict, name: str) -> float:
    value = doc.get(name)
    if value is None:
        return float("inf")
    if isinstance(value, str):
        try:
            value = float(value)
        except ValueError:
            raise BadRequest(f"{name!r} must be a number, got {value!r}") from None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise BadRequest(f"{name!r} must be a number, got {type(value).__name__}")
    value = float(value)
    if math.isnan(value) or value < 0:
        raise BadRequest(f"{name!r} must be a non-negative number, got {value}")
    return value


def parse_request(doc) -> ServeRequest:
    """Validate a decoded request body into a :class:`ServeRequest`.

    Raises :class:`BadRequest` with a message naming the offending field;
    the daemon maps it to a 400 response.
    """
    if not isinstance(doc, dict):
        raise BadRequest(
            f"request body must be a JSON object, got {type(doc).__name__}"
        )
    unknown = set(doc) - {"graph", "digest", "k", "method", "bmax", "rmax", "seed"}
    if unknown:
        raise BadRequest(f"unknown request fields: {sorted(unknown)}")

    k = doc.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise BadRequest(f"'k' must be a positive integer, got {k!r}")

    method = doc.get("method", "gp")
    if method not in SERVE_METHODS:
        raise BadRequest(
            f"unknown method {method!r}; servable methods: {SERVE_METHODS}"
        )

    bmax = _parse_bound(doc, "bmax")
    rmax = _parse_bound(doc, "rmax")

    seed = doc.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise BadRequest(f"'seed' must be an integer or null, got {seed!r}")

    graph = None
    graph_doc = doc.get("graph")
    if graph_doc is not None:
        if not isinstance(graph_doc, dict):
            raise BadRequest(
                "'graph' must be a repro-wgraph-v1 JSON object "
                "(see repro.graph.io.graph_to_json)"
            )
        try:
            graph = graph_from_json(json.dumps(graph_doc))
        except ReproError as exc:
            raise BadRequest(f"bad 'graph' payload: {exc}") from exc

    digest = doc.get("digest")
    if digest is not None and not (
        isinstance(digest, str) and len(digest) == 64
    ):
        raise BadRequest("'digest' must be a 64-hex content digest string")
    if graph is not None:
        computed = graph.content_digest()
        if digest is not None and digest != computed:
            raise BadRequest(
                f"'digest' {digest[:12]}… does not match the graph payload "
                f"({computed[:12]}…)"
            )
        digest = computed
    if digest is None:
        raise BadRequest("request needs a 'graph' payload or a 'digest'")

    return ServeRequest(
        digest=digest, k=k, method=method, bmax=bmax, rmax=rmax,
        seed=seed, graph=graph,
    )


def request_cache_key(req: ServeRequest) -> tuple:
    """The digest-keyed cache/single-flight key of a request.

    Execution knobs (``n_jobs``, pool size) are absent by design: the
    determinism contract says they cannot change the result.
    """
    return ("serve", req.digest, req.method, req.k, req.bmax, req.rmax, req.seed)


def result_payload(req: ServeRequest, result) -> dict:
    """JSON-able response body for a computed result (server fields —
    ``cached``/``deduped`` — are stamped at delivery time, so the same
    stored payload serves every later hit)."""
    m = result.metrics
    return {
        "digest": req.digest,
        "method": req.method,
        "k": req.k,
        "seed": req.seed,
        "algorithm": result.algorithm,
        "assign": [int(p) for p in result.assign],
        "feasible": bool(result.feasible),
        "cut": float(m.cut),
        "metrics": {
            "cut": float(m.cut),
            "max_local_bandwidth": float(m.max_local_bandwidth),
            "max_resource": float(m.max_resource),
            "bandwidth_violation": float(m.bandwidth_violation),
            "resource_violation": float(m.resource_violation),
        },
    }
