"""The ``repro serve`` daemon: a long-running partitioning service.

Stdlib-only (``http.server`` / ``socketserver``): one
``ThreadingHTTPServer`` accepts JSON requests; each request thread

1. parses/validates the body (:mod:`repro.serve.schema`),
2. looks the digest-keyed request key up in the two-level result cache
   (in-memory :class:`~repro.util.parallel.KeyedCache` over the
   persistent :class:`~repro.util.diskcache.DiskCache`),
3. on a miss, enters the :class:`~repro.serve.singleflight.SingleFlight`
   — concurrent identical requests compute once — and the flight leader
   runs :func:`repro.core.api.partition_graph` and writes the cache.

The daemon also injects the disk store under the library's own
portfolio/evolve/multires memos (:func:`repro.core.api.
configure_cache_backend`) and keeps a warm ``parallel_map`` worker pool
across requests (:func:`repro.util.parallel.start_warm_pool`), so the
*library-level* caching and racing the CLI gets per process become
persistent and warm here.  Endpoints, schema and operational notes:
``docs/serve.md``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro.obs as _obs
from repro import __version__
from repro.core.api import configure_cache_backend, partition_graph
from repro.obs import LATENCY_BUCKETS_MS
from repro.serve.schema import (
    ServeError,
    ServeRequest,
    parse_request,
    request_cache_key,
    result_payload,
)
from repro.serve.singleflight import SingleFlight
from repro.util.diskcache import DiskCache
from repro.util.errors import ReproError
from repro.util.parallel import (
    KeyedCache,
    resolve_jobs,
    start_warm_pool,
    stop_warm_pool,
    warm_pool_size,
)

__all__ = ["ReproServer", "ServerMetrics"]

#: Maximum accepted request body (a graph payload of ~1M edges).
_MAX_BODY_BYTES = 128 * 1024 * 1024


class ServerMetrics:
    """Request counters and latency histogram on the shared obs registry.

    Serve-level series — ``serve.requests{endpoint}`` /
    ``serve.errors{endpoint}`` counters, the ``serve.latency_ms``
    histogram, the ``serve.in_flight`` gauge and the ``serve.computes``
    counter — are written straight into :data:`repro.obs.REGISTRY` (the
    registry's own lock makes them thread-safe).  :meth:`snapshot`
    reads them back as a delta against a baseline taken at construction,
    so each server instance reports its own lifetime even though the
    registry is process-global, while ``/metrics`` keeps its historical
    payload shape.

    Uptime is measured from a monotonic start reference: wall-clock
    adjustments (NTP steps, DST) cannot bend or negate it.  The
    wall-clock ``started`` stamp is kept separately for humans.
    """

    def __init__(self) -> None:
        self.started = time.time()
        self._started_monotonic = time.monotonic()
        self._baseline = _obs.REGISTRY.snapshot()

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def note_compute(self) -> None:
        _obs.REGISTRY.inc("serve.computes")

    @contextmanager
    def track(self, endpoint: str):
        t0 = time.perf_counter()
        reg = _obs.REGISTRY
        reg.gauge_add("serve.in_flight", 1.0)
        reg.inc("serve.requests", 1.0, endpoint=endpoint)
        try:
            yield
        except BaseException:
            reg.inc("serve.errors", 1.0, endpoint=endpoint)
            raise
        finally:
            reg.gauge_add("serve.in_flight", -1.0)
            reg.observe(
                "serve.latency_ms",
                (time.perf_counter() - t0) * 1000.0,
                buckets=LATENCY_BUCKETS_MS,
            )

    def snapshot(self) -> dict:
        d = _obs.REGISTRY.delta(self._baseline)
        counters = d.get("counters", {})
        requests: dict[str, dict[str, int]] = {}
        for key, v in counters.get("serve.requests", {}).items():
            endpoint = dict(key).get("endpoint", "")
            requests[endpoint] = {"count": int(v), "errors": 0}
        for key, v in counters.get("serve.errors", {}).items():
            endpoint = dict(key).get("endpoint", "")
            row = requests.setdefault(endpoint, {"count": 0, "errors": 0})
            row["errors"] = int(v)
        in_flight = 0
        for v in d.get("gauges", {}).get("serve.in_flight", {}).values():
            in_flight = int(v)
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        sum_ms, count = 0.0, 0
        _, series = d.get("histograms", {}).get(
            "serve.latency_ms", ((), {})
        )
        for row_counts, row_sum, row_count in series.values():
            counts = [a + b for a, b in zip(counts, row_counts)]
            sum_ms += row_sum
            count += row_count
        return {
            "uptime_s": self.uptime_s,
            "in_flight": in_flight,
            "computes": int(
                sum(counters.get("serve.computes", {}).values())
            ),
            "requests": requests,
            "latency": {
                "bucket_upper_ms": list(LATENCY_BUCKETS_MS) + ["inf"],
                "counts": counts,
                "count": count,
                "sum_ms": sum_ms,
            },
        }


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro: "ReproServer"


class ReproServer:
    """The serving daemon; construct, then :meth:`serve_forever`.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` — the CLI prints it).
    cache_dir:
        Directory of the persistent :class:`DiskCache`; ``None`` serves
        from memory only (no warm restarts).
    cache_bytes:
        Size budget of the disk store.
    memory_entries:
        In-memory LRU entries layered above the disk store.
    n_jobs:
        Worker processes for methods with independent randomized work
        (``gp``/``evolve``; other methods run serially — they have
        nothing to race).  By the determinism contract the value cannot
        change any result.  With ``n_jobs > 1`` a warm pool is started
        once and reused across requests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        cache_bytes: int = 256 * 1024 * 1024,
        memory_entries: int = 256,
        n_jobs: int | None = 1,
        warm_pool: bool = True,
    ) -> None:
        self.disk = (
            DiskCache(cache_dir, max_bytes=cache_bytes, name="serve-disk")
            if cache_dir is not None
            else None
        )
        self.results = KeyedCache(
            maxsize=memory_entries, backend=self.disk, name="results"
        )
        # the library's own memos persist through the same store
        configure_cache_backend(self.disk)
        self.flight = SingleFlight()
        # library-level metrics (FM stats, cache rates, pool utilization)
        # stay on for the daemon's lifetime so /metrics can report them
        self._prev_obs = (_obs.metrics_on(), _obs.tracing_on())
        _obs.enable(metrics=True, tracing=self._prev_obs[1])
        self.metrics = ServerMetrics()
        self.n_jobs = resolve_jobs(n_jobs)
        self.pool_workers = (
            start_warm_pool(self.n_jobs)
            if (warm_pool and self.n_jobs > 1)
            else 0
        )
        self.httpd = _HTTPServer((host, port), _Handler)
        self.httpd.repro = self
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` (safe from any other thread)."""
        self.httpd.shutdown()

    def close(self) -> None:
        """Release the socket, the warm pool and the backend injection."""
        if self._closed:
            return
        self._closed = True
        self.httpd.server_close()
        stop_warm_pool()
        configure_cache_backend(None)
        _obs.enable(metrics=self._prev_obs[0], tracing=self._prev_obs[1])

    # ------------------------------------------------------------------ #
    def handle_partition(self, doc) -> tuple[int, dict]:
        """Body → ``(status, payload)`` for ``POST /partition``."""
        req = parse_request(doc)
        key = request_cache_key(req)
        found, payload = self.results.lookup(key)
        if found:
            return 200, {**payload, "cached": True, "deduped": False}
        payload, leader = self.flight.do(key, lambda: self._compute(req))
        if leader:
            self.results.put(key, payload)
        return 200, {**payload, "cached": False, "deduped": not leader}

    def _compute(self, req: ServeRequest) -> dict:
        if req.graph is None:
            raise ServeError(
                f"digest {req.digest[:12]}… is not cached on this server; "
                f"resend the request with the graph payload",
                status=404,
            )
        self.metrics.note_compute()
        result = partition_graph(
            req.graph,
            req.k,
            bmax=req.bmax,
            rmax=req.rmax,
            method=req.method,
            seed=req.seed,
            # only methods with independent randomized work take the pool
            n_jobs=self.n_jobs if req.method in ("gp", "evolve") else 1,
        )
        return result_payload(req, result)

    def metrics_payload(self) -> dict:
        from repro.core.api import _module_caches

        caches = {"results": self.results.stats()}
        for name, c in _module_caches().items():
            caches[name] = c.stats()
        out = self.metrics.snapshot()
        out.update(
            {
                "version": __version__,
                "single_flight": self.flight.stats(),
                # queue depth == requests currently inside a handler
                "queue_depth": out["in_flight"],
                "warm_pool_workers": warm_pool_size(),
                "caches": caches,
                # library-level series from the shared obs registry:
                # FM pass stats, unified cache rates, pool utilization
                "library": {
                    name: data
                    for name, data in _obs.REGISTRY.collect().items()
                    if name.startswith(("fm.", "cache.", "pool."))
                },
            }
        )
        return out

    def health_payload(self) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": self.metrics.uptime_s,
            "persistent_cache": self.disk is not None,
        }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/" + __version__
    protocol_version = "HTTP/1.1"

    # quiet by default: the daemon's stdout is its operational interface
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # ------------------------------------------------------------------ #
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _wants_prometheus(self, query: str) -> bool:
        """``?format=prometheus`` wins; else Accept-header negotiation.

        A scraper that asks for the exposition media type (and does not
        prefer JSON) gets the text format without needing the query
        parameter — stock Prometheus sends exactly such an Accept line.
        """
        params = urllib.parse.parse_qs(query)
        fmt = params.get("format", [""])[-1].lower()
        if fmt:
            return fmt == "prometheus"
        accept = self.headers.get("Accept", "")
        return (
            "text/plain" in accept or "openmetrics" in accept
        ) and "application/json" not in accept

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServeError("request needs a JSON body", status=400)
        if length > _MAX_BODY_BYTES:
            raise ServeError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"invalid JSON body: {exc}", status=400) from exc

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        server = self.server.repro
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            with server.metrics.track("/healthz"):
                self._send_json(200, server.health_payload())
        elif path == "/metrics":
            with server.metrics.track("/metrics"):
                if self._wants_prometheus(query):
                    self._send_text(
                        200,
                        _obs.render_prometheus(_obs.REGISTRY.snapshot()),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send_json(200, server.metrics_payload())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _drain_body(self) -> None:
        # keep-alive hygiene: consume an ignored body so the connection
        # stays parseable for the next request
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            self.rfile.read(min(length, _MAX_BODY_BYTES))

    def do_POST(self) -> None:  # noqa: N802 - stdlib signature
        server = self.server.repro
        if self.path == "/partition":
            try:
                with server.metrics.track("/partition"):
                    status, payload = server.handle_partition(self._read_body())
                self._send_json(status, payload)
            except ServeError as exc:
                self._send_json(exc.status, {"error": str(exc)})
            except ReproError as exc:
                # library-level rejection (bad k, method/knob mismatch, …)
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json(500, {"error": f"internal error: {exc}"})
        elif self.path == "/shutdown":
            self._drain_body()
            self._send_json(200, {"status": "shutting down"})
            # shutdown() blocks until serve_forever exits — defer it so
            # this handler can finish its response first
            threading.Thread(target=server.shutdown, daemon=True).start()
        else:
            self._drain_body()
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
