"""Single-flight deduplication: one computation per key, shared by all.

When many users ask for the same digest-keyed result at the same moment
(the "thundering herd" on a cold cache), computing it once and handing
the one result to every waiter is strictly better than N identical
computations.  :class:`SingleFlight` is the standard primitive: the
first caller of a key becomes the **leader** and runs the function;
concurrent callers of the same key block on the leader's completion and
receive the leader's result (or its exception).  Once the flight lands
the key is forgotten — a *later* caller computes afresh (the result
cache, not single-flight, is what makes repeats cheap).

Correctness here depends on the library's determinism contract
(``docs/parallel.md``): a key fully determines its result, so handing a
waiter the leader's result is indistinguishable from computing it again.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

__all__ = ["SingleFlight"]


class _Flight:
    __slots__ = ("event", "result", "exc")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.exc: BaseException | None = None


class SingleFlight:
    """Per-key in-flight computation dedup (thread-safe).

    ``do(key, fn)`` returns ``(result, leader)`` where *leader* tells
    whether this caller ran *fn* (``True``) or shared another caller's
    in-flight result (``False``) — the daemon uses the flag to decide
    who writes the cache and to count dedup savings.  ``stats()``
    reports cumulative ``leaders``/``shared`` and the current number of
    in-flight keys.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Any, _Flight] = {}
        self.leaders = 0
        self.shared = 0

    def do(self, key, fn: Callable[[], Any]) -> tuple[Any, bool]:
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                self.leaders += 1
                lead = True
            else:
                self.shared += 1
                lead = False
        if lead:
            try:
                flight.result = fn()
            except BaseException as exc:
                flight.exc = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
            return flight.result, True
        flight.event.wait()
        if flight.exc is not None:
            # waiters see the leader's failure: same request, same outcome
            raise flight.exc
        return flight.result, False

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def stats(self) -> dict:
        with self._lock:
            return {
                "leaders": self.leaders,
                "shared": self.shared,
                "in_flight": len(self._flights),
            }
