"""Stdlib client helper for the ``repro serve`` daemon.

``ServeClient`` speaks the JSON schema of :mod:`repro.serve.schema` over
``urllib`` — no dependencies, usable from notebooks, scripts and the CI
smoke test alike:

>>> client = ServeClient("http://127.0.0.1:8077")
>>> out = client.partition(g, k=4, bmax=16.0, rmax=165.0, seed=0)
>>> out["assign"], out["cut"], out["cached"]

A second identical call — from this client, another process, or another
user — is answered from the daemon's digest-keyed cache.  Once a result
is cached, ``client.partition(digest=g.content_digest(), k=4, ...)``
fetches it without shipping the graph at all.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

from repro.graph.io import graph_to_json
from repro.graph.wgraph import WGraph
from repro.serve.schema import ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """Minimal HTTP client for one serve daemon.

    *base_url* is the daemon's root (e.g. ``http://127.0.0.1:8077``);
    *timeout* bounds every call in seconds.  Server-side rejections
    raise :class:`~repro.serve.schema.ServeError` carrying the HTTP
    status and the server's message.
    """

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    def _request(self, path: str, body: dict | None = None) -> dict:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:
                message = str(exc)
            raise ServeError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach {self.base_url}: {exc.reason}", status=503
            ) from None

    # ------------------------------------------------------------------ #
    def partition(
        self,
        graph: WGraph | None = None,
        *,
        k: int,
        method: str = "gp",
        bmax: float = float("inf"),
        rmax: float = float("inf"),
        seed: int | None = None,
        digest: str | None = None,
    ) -> dict:
        """Request a partition; returns the decoded response payload.

        Pass *graph* (shipped as its JSON document) or, for an instance
        the daemon has already seen, just its *digest*.  Infinite
        *bmax*/*rmax* are simply omitted from the wire format.
        """
        doc: dict = {"k": int(k), "method": method}
        if seed is not None:
            doc["seed"] = int(seed)
        if not math.isinf(bmax):
            doc["bmax"] = float(bmax)
        if not math.isinf(rmax):
            doc["rmax"] = float(rmax)
        if graph is not None:
            doc["graph"] = json.loads(graph_to_json(graph))
        if digest is not None:
            doc["digest"] = digest
        return self._request("/partition", doc)

    def health(self) -> dict:
        return self._request("/healthz")

    def metrics(self) -> dict:
        return self._request("/metrics")

    def shutdown(self) -> dict:
        """Ask the daemon to stop accepting requests and exit cleanly."""
        return self._request("/shutdown", {})
