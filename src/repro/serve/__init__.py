"""Partitioning-as-a-service: the ``repro serve`` daemon.

Everything the library computes is memoised by content digest under a
determinism contract (``docs/parallel.md``), which makes results safely
shareable across processes, sessions and users.  This package turns that
into a serving story (``docs/serve.md``):

* :mod:`repro.serve.server` — a long-running HTTP daemon
  (stdlib ``http.server``) with ``/partition``, ``/healthz``,
  ``/metrics`` and ``/shutdown`` endpoints, a digest-keyed result cache
  layered over the persistent :class:`~repro.util.diskcache.DiskCache`,
  and a warm :func:`~repro.util.parallel.parallel_map` worker pool kept
  across requests.
* :mod:`repro.serve.singleflight` — concurrent identical requests
  compute **once**; all waiters share the leader's result.
* :mod:`repro.serve.schema` — the JSON request/response schema and the
  digest-keyed cache key.
* :mod:`repro.serve.client` — a tiny stdlib client helper.
"""

from repro.serve.client import ServeClient
from repro.serve.schema import BadRequest, ServeError, ServeRequest, UnknownDigest
from repro.serve.server import ReproServer
from repro.serve.singleflight import SingleFlight

__all__ = [
    "ReproServer",
    "ServeClient",
    "SingleFlight",
    "ServeRequest",
    "ServeError",
    "BadRequest",
    "UnknownDigest",
]
