"""``python -m repro`` entry point.

Delegates to :func:`repro.cli.main` unchanged, so the module form exposes
the **full** CLI surface — every subcommand and option of the ``repro``
console script and of ``python -m repro.cli``.  The three invocations are
kept identical by ``tests/test_cli_parity.py`` (subcommand-set parity on
``--help``).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
