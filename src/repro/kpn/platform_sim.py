"""Mapped-PPN execution with inter-FPGA link contention.

The paper's future work is to "test this system on actual multi-FPGA based
systems".  This module provides the simulated equivalent (per the
substitution rules in DESIGN.md): execute a PPN *after mapping*, where every
channel crossing a device pair shares that pair's link, which moves at most
``link_capacity`` tokens per cycle.

This closes the loop on the paper's premise: a mapping that violates
``Bmax`` is not just formally infeasible — its saturated links throttle the
network, measurably inflating the makespan.  Benchmark X7 quantifies that
throughput gap between GP's bandwidth-feasible mappings and the baseline's
violating ones.

Model
-----
Each channel is split into a producer-side outbox and a consumer-side inbox.
Per cycle:

1. every process whose next firing has its input tokens (inbox) and outbox
   space fires, popping inboxes and pushing outboxes;
2. intra-device channels move outbox -> inbox instantly (on-chip traffic is
   free, Section V);
3. each inter-device link moves up to ``capacity`` tokens this cycle across
   its channels, round-robin one token at a time (fair share).

Link capacities default to the system's ``Bmax``; there is no link between
unconnected devices (restricted topologies), so tokens for such pairs never
move — the simulation deadlocks, faithfully: that mapping cannot run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fpga.system import MultiFPGASystem
from repro.kpn.simulator import DeadlockError, simulate_ppn
from repro.polyhedral.ppn import PPN
from repro.util.errors import ReproError

__all__ = ["simulate_mapped_ppn", "MappedSimulationResult", "LinkStats"]


@dataclass
class LinkStats:
    """Per-link outcome of a mapped simulation."""

    pair: tuple[int, int]
    capacity: float
    total_tokens: int
    busy_cycles: int
    #: fraction of cycles the link moved at full capacity
    saturation: float


@dataclass
class MappedSimulationResult:
    """Outcome of :func:`simulate_mapped_ppn`."""

    cycles: int
    ideal_cycles: int
    link_stats: list[LinkStats]
    fired: dict[str, int]
    deadlocked: bool = False
    info: dict = field(default_factory=dict)

    @property
    def slowdown(self) -> float:
        """Makespan inflation versus the unmapped (contention-free) run."""
        return self.cycles / max(self.ideal_cycles, 1)

    @property
    def max_link_saturation(self) -> float:
        return max((ls.saturation for ls in self.link_stats), default=0.0)


def simulate_mapped_ppn(
    ppn: PPN,
    assign: np.ndarray,
    system: MultiFPGASystem,
    max_cycles: int = 10_000_000,
    ideal_cycles: int | None = None,
    on_deadlock: str = "raise",
) -> MappedSimulationResult:
    """Execute *ppn* mapped by *assign* onto *system*.

    Parameters
    ----------
    assign:
        Process index -> device slot, shape ``(n_processes,)``.
    ideal_cycles:
        Contention-free makespan for the slowdown ratio; measured with
        :func:`repro.kpn.simulator.simulate_ppn` when omitted.
    on_deadlock:
        ``"raise"`` or ``"return"`` (partial result, ``deadlocked=True``) —
        a mapping whose traffic needs a missing link deadlocks by design.
    """
    if on_deadlock not in ("raise", "return"):
        raise ReproError(f"on_deadlock must be raise/return, got {on_deadlock!r}")
    assign = np.asarray(assign, dtype=np.int64)
    if assign.shape != (ppn.n_processes,):
        raise ReproError(
            f"assign has shape {assign.shape}, expected ({ppn.n_processes},)"
        )
    if ppn.n_processes and (assign.min() < 0 or assign.max() >= system.k):
        raise ReproError("assignment slot out of range for the system")

    if ideal_cycles is None:
        ideal_cycles = simulate_ppn(ppn, max_cycles=max_cycles).cycles

    n_proc = ppn.n_processes
    names = [p.name for p in ppn.processes]
    index = ppn.process_index()
    firings_total = np.array([p.firings for p in ppn.processes], dtype=np.int64)
    fired = np.zeros(n_proc, dtype=np.int64)

    n_ch = ppn.n_channels
    outbox = [0] * n_ch
    inbox = [0] * n_ch
    in_channels: list[list[int]] = [[] for _ in range(n_proc)]
    out_channels: list[list[int]] = [[] for _ in range(n_proc)]
    ch_pair: list[tuple[int, int] | None] = [None] * n_ch
    for ci, ch in enumerate(ppn.channels):
        src, dst = index[ch.src], index[ch.dst]
        out_channels[src].append(ci)
        in_channels[dst].append(ci)
        a, b = int(assign[src]), int(assign[dst])
        ch_pair[ci] = None if a == b else (min(a, b), max(a, b))

    links: dict[tuple[int, int], list[int]] = {}
    for ci, pair in enumerate(ch_pair):
        if pair is not None:
            links.setdefault(pair, []).append(ci)
    link_moved: dict[tuple[int, int], int] = {p: 0 for p in links}
    link_busy: dict[tuple[int, int], int] = {p: 0 for p in links}
    link_full: dict[tuple[int, int], int] = {p: 0 for p in links}
    rr_offset: dict[tuple[int, int], int] = {p: 0 for p in links}

    def need(p: int, j: int, ci: int) -> int:
        dep = ppn.channels[ci].dependence
        return int(dep.consumption[j]) if j < len(dep.consumption) else 0

    def produce(p: int, j: int, ci: int) -> int:
        dep = ppn.channels[ci].dependence
        return int(dep.production[j]) if j < len(dep.production) else 0

    def can_fire(p: int) -> bool:
        j = int(fired[p])
        if j >= firings_total[p]:
            return False
        for ci in in_channels[p]:
            if inbox[ci] < need(p, j, ci):
                return False
        return True

    cycle = 0
    stall = 0
    while not np.all(fired >= firings_total):
        if cycle >= max_cycles:
            raise ReproError(f"mapped simulation exceeded max_cycles={max_cycles}")
        fireable = [p for p in range(n_proc) if can_fire(p)]
        progressed = bool(fireable)
        # fire: pops then pushes
        for p in fireable:
            j = int(fired[p])
            for ci in in_channels[p]:
                inbox[ci] -= need(p, j, ci)
        for p in fireable:
            j = int(fired[p])
            for ci in out_channels[p]:
                outbox[ci] += produce(p, j, ci)
            fired[p] = j + 1
        # transport phase
        for ci, pair in enumerate(ch_pair):
            if pair is None and outbox[ci]:
                inbox[ci] += outbox[ci]
                outbox[ci] = 0
        for pair, chans in links.items():
            cap = system.link_capacity(*pair)
            if cap <= 0:
                continue
            budget = int(cap)
            moved = 0
            # fair round-robin, one token per channel per turn
            start = rr_offset[pair]
            idle_rounds = 0
            i = 0
            while budget > 0 and idle_rounds < len(chans):
                ci = chans[(start + i) % len(chans)]
                if outbox[ci] > 0:
                    outbox[ci] -= 1
                    inbox[ci] += 1
                    budget -= 1
                    moved += 1
                    idle_rounds = 0
                else:
                    idle_rounds += 1
                i += 1
            rr_offset[pair] = (start + i) % len(chans)
            if moved:
                link_busy[pair] += 1
                link_moved[pair] += moved
                progressed = True
                if moved >= int(cap):
                    link_full[pair] += 1
        cycle += 1
        if not progressed:
            stall += 1
            if stall > 2:
                blocked = {
                    names[p]: "waiting on starved link"
                    for p in range(n_proc)
                    if fired[p] < firings_total[p]
                }
                if on_deadlock == "raise":
                    raise DeadlockError(
                        f"mapped execution deadlocked at cycle {cycle} "
                        f"(likely traffic on a missing/zero-capacity link)",
                        blocked=blocked,
                        cycle=cycle,
                    )
                return _mk_result(
                    ppn, cycle, ideal_cycles, links, link_moved, link_busy,
                    link_full, system, fired, names, deadlocked=True,
                )
        else:
            stall = 0

    return _mk_result(
        ppn, cycle, ideal_cycles, links, link_moved, link_busy, link_full,
        system, fired, names, deadlocked=False,
    )


def _mk_result(
    ppn, cycle, ideal_cycles, links, link_moved, link_busy, link_full,
    system, fired, names, deadlocked,
):
    stats = [
        LinkStats(
            pair=pair,
            capacity=system.link_capacity(*pair),
            total_tokens=link_moved[pair],
            busy_cycles=link_busy[pair],
            saturation=link_full[pair] / max(cycle, 1),
        )
        for pair in sorted(links)
    ]
    return MappedSimulationResult(
        cycles=cycle,
        ideal_cycles=ideal_cycles,
        link_stats=stats,
        fired={names[p]: int(fired[p]) for p in range(len(names))},
        deadlocked=deadlocked,
        info={"k": system.k},
    )
