"""Counted-token FIFO with occupancy statistics.

The simulator tracks token *counts*, not payloads: bandwidth and buffering
behaviour depend only on counts, and PPN flow dependences fix the
producer/consumer pairing anyway (see
:class:`repro.polyhedral.dependence.Dependence`).
"""

from __future__ import annotations

from repro.util.errors import ReproError

__all__ = ["Fifo", "FifoError"]


class FifoError(ReproError):
    """Illegal FIFO operation (overflow/underflow)."""


class Fifo:
    """Bounded (or unbounded) counted-token FIFO.

    Parameters
    ----------
    capacity:
        Maximum token count; ``None`` = unbounded (pure KPN semantics).
    """

    __slots__ = ("capacity", "_tokens", "peak", "total_pushed", "total_popped")

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise FifoError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._tokens = 0
        self.peak = 0
        self.total_pushed = 0
        self.total_popped = 0

    @property
    def tokens(self) -> int:
        return self._tokens

    @property
    def free(self) -> float:
        if self.capacity is None:
            return float("inf")
        return self.capacity - self._tokens

    def can_push(self, n: int = 1) -> bool:
        return self.capacity is None or self._tokens + n <= self.capacity

    def can_pop(self, n: int = 1) -> bool:
        return self._tokens >= n

    def push(self, n: int = 1) -> None:
        if n < 0:
            raise FifoError(f"cannot push {n} tokens")
        if not self.can_push(n):
            raise FifoError(
                f"FIFO overflow: {self._tokens}+{n} > capacity {self.capacity}"
            )
        self._tokens += n
        self.total_pushed += n
        self.peak = max(self.peak, self._tokens)

    def pop(self, n: int = 1) -> None:
        if n < 0:
            raise FifoError(f"cannot pop {n} tokens")
        if not self.can_pop(n):
            raise FifoError(f"FIFO underflow: want {n}, have {self._tokens}")
        self._tokens -= n
        self.total_popped += n

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else self.capacity
        return f"Fifo(tokens={self._tokens}, capacity={cap}, peak={self.peak})"
