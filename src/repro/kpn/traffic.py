"""Bandwidth annotation: from simulated traffic to the mapping graph.

Two channel-weighting modes feed the partitioners:

``"tokens"``
    Edge weight = total tokens transported (data volume).  Cheap — no
    simulation needed — and what the paper's synthetic graphs encode.

``"sustained"``
    Edge weight = tokens / makespan x *scale*, measured by the KPN
    simulator: the *sustained* bandwidth of Section I.  Captures rate, not
    volume, so a long-lived trickle weighs less than a burst.
"""

from __future__ import annotations

import math

from repro.graph.wgraph import WGraph
from repro.kpn.simulator import SimulationResult, simulate_ppn
from repro.polyhedral.ppn import PPN
from repro.util.errors import ReproError

__all__ = ["sustained_bandwidth", "ppn_to_mapped_graph"]


def sustained_bandwidth(
    ppn: PPN, result: SimulationResult | None = None
) -> dict[tuple[str, str, str], float]:
    """Per-channel sustained bandwidth (tokens/cycle), keyed by
    ``(src, dst, array)``.  Runs the simulator when *result* is omitted."""
    if result is None:
        result = simulate_ppn(ppn)
    return {
        (cs.src, cs.dst, cs.array): cs.sustained_bandwidth
        for cs in result.channel_stats
    }


def ppn_to_mapped_graph(
    ppn: PPN,
    mode: str = "tokens",
    scale: float = 1.0,
    result: SimulationResult | None = None,
    round_up: bool = True,
) -> tuple[WGraph, list[str]]:
    """Export *ppn* as the partitioners' weighted graph.

    Parameters
    ----------
    mode:
        ``"tokens"`` or ``"sustained"`` (see module docstring).
    scale:
        Multiplier applied to every edge weight (e.g. bytes per token, or
        cycles per bandwidth window).
    result:
        Reuse an existing simulation (``mode="sustained"`` only).
    round_up:
        Ceil edge weights to integers, matching the paper's integral
        bandwidth units.

    Returns
    -------
    (graph, names):
        ``names[i]`` is the process name of node *i*.
    """
    if mode == "tokens":
        g, names = ppn.to_wgraph(bandwidth_scale=scale)
        if round_up:
            eu, ev, ew = g.edge_array
            edges = [
                (int(u), int(v), float(math.ceil(w)))
                for u, v, w in zip(eu, ev, ew)
            ]
            g = WGraph(g.n, edges, node_weights=g.node_weights)
        return g, names
    if mode != "sustained":
        raise ReproError(f"mode must be 'tokens' or 'sustained', got {mode!r}")

    bw = sustained_bandwidth(ppn, result)
    index = ppn.process_index()
    merged: dict[tuple[int, int], float] = {}
    for (src, dst, _array), rate in bw.items():
        u, v = index[src], index[dst]
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        merged[key] = merged.get(key, 0.0) + rate * scale
    edges = [
        (u, v, float(math.ceil(w)) if round_up else w)
        for (u, v), w in sorted(merged.items())
    ]
    node_weights = [p.resources for p in ppn.processes]
    g = WGraph(ppn.n_processes, edges, node_weights=node_weights)
    return g, [p.name for p in ppn.processes]
