"""Cycle-based self-timed execution of a Polyhedral Process Network.

Semantics
---------
Every process fires its domain points in lexicographic order, at most one
firing per cycle.  Firing *j* of process *p*:

* requires, on each input channel, the tokens its dependence record says
  firing *j* consumes (``consumption[j]``), and
* requires space for ``production[j]`` tokens on each output channel
  (bounded FIFOs), then
* pops and pushes those tokens atomically at the cycle boundary.

All fireable processes fire concurrently each cycle — the maximally-parallel
self-timed schedule.  External inputs (reads nothing wrote) are always
available.  With unbounded FIFOs a live PPN always completes; with bounded
FIFOs undersized buffers cause an artificial deadlock, which the simulator
detects and reports with the blocked state (useful for buffer sizing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kpn.fifo import Fifo
from repro.polyhedral.ppn import PPN
from repro.util.errors import ReproError

__all__ = ["simulate_ppn", "SimulationResult", "DeadlockError", "ChannelStats"]


class DeadlockError(ReproError):
    """No process can fire, yet the network has not completed.

    Carries ``blocked`` — a dict of process name → reason string — so buffer
    sizing problems are diagnosable.
    """

    def __init__(self, message: str, blocked: dict[str, str], cycle: int):
        super().__init__(message)
        self.blocked = blocked
        self.cycle = cycle


@dataclass
class ChannelStats:
    """Per-channel outcome of a simulation."""

    src: str
    dst: str
    array: str
    total_tokens: int
    peak_occupancy: int
    #: tokens / makespan — the sustained bandwidth the paper's model uses
    sustained_bandwidth: float


@dataclass
class SimulationResult:
    """Outcome of :func:`simulate_ppn`."""

    cycles: int
    channel_stats: list[ChannelStats]
    #: cycle at which each process completed its last firing
    completion: dict[str, int]
    #: firings per process actually executed
    fired: dict[str, int]
    deadlocked: bool = False
    info: dict = field(default_factory=dict)

    def stats_for(self, src: str, dst: str, array: str) -> ChannelStats:
        for cs in self.channel_stats:
            if (cs.src, cs.dst, cs.array) == (src, dst, array):
                return cs
        raise KeyError(f"no channel {src}->{dst} on {array!r}")

    @property
    def total_traffic(self) -> int:
        return sum(cs.total_tokens for cs in self.channel_stats)


def simulate_ppn(
    ppn: PPN,
    fifo_capacity: int | None = None,
    max_cycles: int = 10_000_000,
    on_deadlock: str = "raise",
) -> SimulationResult:
    """Execute *ppn* to completion (or deadlock).

    Parameters
    ----------
    fifo_capacity:
        Uniform channel capacity in tokens; ``None`` = unbounded.
    max_cycles:
        Hard stop guarding against simulator bugs.
    on_deadlock:
        ``"raise"`` (default) raises :class:`DeadlockError`; ``"return"``
        gives back a partial :class:`SimulationResult` with
        ``deadlocked=True``.
    """
    if on_deadlock not in ("raise", "return"):
        raise ReproError(f"on_deadlock must be raise/return, got {on_deadlock!r}")
    n_proc = ppn.n_processes
    names = [p.name for p in ppn.processes]
    firings_total = np.array([p.firings for p in ppn.processes], dtype=np.int64)
    fired = np.zeros(n_proc, dtype=np.int64)
    index = ppn.process_index()

    fifos = [Fifo(fifo_capacity) for _ in ppn.channels]
    in_channels: list[list[int]] = [[] for _ in range(n_proc)]
    out_channels: list[list[int]] = [[] for _ in range(n_proc)]
    for ci, ch in enumerate(ppn.channels):
        out_channels[index[ch.src]].append(ci)
        in_channels[index[ch.dst]].append(ci)

    completion = {name: 0 for name in names}
    cycle = 0

    def need(p: int, j: int, ci: int) -> int:
        dep = ppn.channels[ci].dependence
        return int(dep.consumption[j]) if j < len(dep.consumption) else 0

    def produce(p: int, j: int, ci: int) -> int:
        dep = ppn.channels[ci].dependence
        return int(dep.production[j]) if j < len(dep.production) else 0

    def blocked_reason(p: int) -> str | None:
        """None if process p can fire its next firing now, else why not."""
        j = int(fired[p])
        if j >= firings_total[p]:
            return "done"
        for ci in in_channels[p]:
            want = need(p, j, ci)
            # self-loop tokens were pushed by this process's earlier firings
            if want and not fifos[ci].can_pop(want):
                ch = ppn.channels[ci]
                return (
                    f"waiting for {want} token(s) on {ch.src}->{ch.dst}"
                    f"[{ch.array}] (has {fifos[ci].tokens})"
                )
        for ci in out_channels[p]:
            put = produce(p, j, ci)
            ch = ppn.channels[ci]
            if put:
                # a self-loop pops before pushing within the same firing
                slack = need(p, j, ci) if ch.src == ch.dst else 0
                if not fifos[ci].can_push(put - slack):
                    return (
                        f"no space for {put} token(s) on {ch.src}->{ch.dst}"
                        f"[{ch.array}] (free {fifos[ci].free})"
                    )
        return None

    while not np.all(fired >= firings_total):
        if cycle >= max_cycles:
            raise ReproError(f"simulation exceeded max_cycles={max_cycles}")
        fireable = [p for p in range(n_proc) if blocked_reason(p) is None]
        if not fireable:
            blocked = {
                names[p]: blocked_reason(p) or "?"
                for p in range(n_proc)
                if fired[p] < firings_total[p]
            }
            if on_deadlock == "raise":
                raise DeadlockError(
                    f"deadlock at cycle {cycle}: "
                    + "; ".join(f"{k}: {v}" for k, v in blocked.items()),
                    blocked=blocked,
                    cycle=cycle,
                )
            return _result(ppn, fifos, completion, fired, names, cycle,
                           deadlocked=True)
        cycle += 1
        # pops first (frees space), then pushes — standard two-phase update
        for p in fireable:
            j = int(fired[p])
            for ci in in_channels[p]:
                want = need(p, j, ci)
                if want:
                    fifos[ci].pop(want)
        for p in fireable:
            j = int(fired[p])
            for ci in out_channels[p]:
                put = produce(p, j, ci)
                if put:
                    fifos[ci].push(put)
            fired[p] = j + 1
            completion[names[p]] = cycle

    return _result(ppn, fifos, completion, fired, names, cycle, deadlocked=False)


def _result(ppn, fifos, completion, fired, names, cycle, deadlocked):
    makespan = max(cycle, 1)
    stats = [
        ChannelStats(
            src=ch.src,
            dst=ch.dst,
            array=ch.array,
            total_tokens=fifos[ci].total_pushed,
            peak_occupancy=fifos[ci].peak,
            sustained_bandwidth=fifos[ci].total_pushed / makespan,
        )
        for ci, ch in enumerate(ppn.channels)
    ]
    return SimulationResult(
        cycles=cycle,
        channel_stats=stats,
        completion=dict(completion),
        fired={names[p]: int(fired[p]) for p in range(len(names))},
        deadlocked=deadlocked,
        info={"fifo_capacity": fifos[0].capacity if fifos else None},
    )
