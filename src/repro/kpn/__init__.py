"""Process-network simulation substrate (system S7 in DESIGN.md).

The paper weights each channel with "an amount of sustained data
transferred" (Section I).  This package supplies the measurement: a
cycle-based self-timed execution of a PPN over bounded FIFOs, recording
per-channel traffic, FIFO occupancy and completion time.  The sustained
bandwidths annotate the mapping graph the partitioners consume
(:func:`repro.kpn.traffic.ppn_to_mapped_graph`).
"""

from repro.kpn.fifo import Fifo
from repro.kpn.simulator import DeadlockError, SimulationResult, simulate_ppn
from repro.kpn.traffic import ppn_to_mapped_graph, sustained_bandwidth

__all__ = [
    "Fifo",
    "simulate_ppn",
    "SimulationResult",
    "DeadlockError",
    "sustained_bandwidth",
    "ppn_to_mapped_graph",
]
