"""FIFO buffer sizing for PPN channels.

PPN-to-FPGA flows must pick a depth for every FIFO: too small deadlocks the
network, too large wastes BRAM.  Two standard strategies are provided, both
driven by the simulator:

``per_channel_depths``
    Depth = peak occupancy observed in an unbounded run — sufficient by
    construction for the self-timed schedule (the schedule bounded FIFOs can
    only delay, never reorder), and the sizing PPN tools report.

``minimal_uniform_capacity``
    The smallest single capacity C such that every FIFO sized C completes —
    found by exponential + binary search over simulated runs, with the
    deadlock detector as the oracle.
"""

from __future__ import annotations

from repro.kpn.simulator import simulate_ppn
from repro.polyhedral.ppn import PPN
from repro.util.errors import ReproError

__all__ = ["per_channel_depths", "minimal_uniform_capacity", "brams_needed"]


def per_channel_depths(ppn: PPN) -> dict[tuple[str, str, str], int]:
    """Peak unbounded occupancy per channel, keyed ``(src, dst, array)``.

    A depth of at least 1 is always reported (a zero-depth FIFO cannot
    transport anything).
    """
    res = simulate_ppn(ppn)
    return {
        (cs.src, cs.dst, cs.array): max(cs.peak_occupancy, 1)
        for cs in res.channel_stats
    }


def minimal_uniform_capacity(ppn: PPN, cap_limit: int = 1 << 20) -> int:
    """Smallest uniform FIFO capacity that completes without deadlock."""
    if ppn.n_channels == 0:
        return 1

    def completes(capacity: int) -> bool:
        res = simulate_ppn(ppn, fifo_capacity=capacity, on_deadlock="return")
        return not res.deadlocked

    # upper bound: unbounded peak occupancy always suffices
    upper = max(per_channel_depths(ppn).values())
    if upper > cap_limit:
        raise ReproError(f"required capacity {upper} exceeds limit {cap_limit}")
    if completes(1):
        return 1
    lo, hi = 1, upper  # lo: fails, hi: works
    if not completes(upper):  # pragma: no cover - contradicts the theory
        raise ReproError("peak-occupancy capacity deadlocked; simulator bug")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if completes(mid):
            hi = mid
        else:
            lo = mid
    return hi


def brams_needed(
    ppn: PPN,
    tokens_per_bram: int = 1024,
    depths: dict[tuple[str, str, str], int] | None = None,
) -> int:
    """Total BRAM count for per-channel depths (ceil per channel)."""
    if tokens_per_bram < 1:
        raise ReproError(f"tokens_per_bram must be >= 1, got {tokens_per_bram}")
    if depths is None:
        depths = per_channel_depths(ppn)
    total = 0
    for depth in depths.values():
        total += -(-depth // tokens_per_bram)
    return total
