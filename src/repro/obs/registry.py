"""Process-wide metrics registry: counters, gauges, bounded histograms.

One :class:`MetricsRegistry` (the module singleton lives in
:mod:`repro.obs.tracer` as ``REGISTRY``) holds every labeled series the
instrumented library emits — FM pass statistics, cache hit/miss rates,
worker-pool utilization, serve request counters.  The registry itself is
always writable; whether the *instrumentation call sites* write to it is
gated by the global switch in :mod:`repro.obs.tracer`, so the hot path
pays one branch when observability is off (see ``docs/observability.md``).

Three metric kinds, all keyed by ``(name, sorted label items)``:

* **counter** — monotonically accumulating float (``inc``);
* **gauge** — last-written float with add/sub support (``gauge_set`` /
  ``gauge_add``);
* **histogram** — bounded explicit-bucket counts plus sum and count
  (``observe`` / ``observe_bulk``); bucket bounds are fixed at first
  observation of a series' metric name.

Snapshots, deltas and merges are the substrate of two features:

* ``capture()`` reports the metric *delta* of the captured region
  (:meth:`MetricsRegistry.snapshot` before, :meth:`MetricsRegistry.delta`
  after);
* ``parallel_map`` ships each worker task's delta back to the parent and
  :meth:`MetricsRegistry.merge`-s it **in task order**, so merged
  totals are identical for every ``n_jobs`` (counters and histogram
  buckets are commutative sums; gauges are last-writer-wins in task
  order, exactly the serial outcome).

All operations take the registry lock — cheap, and required because the
serve daemon's request threads share one registry.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "GAIN_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "metrics_to_json",
]

#: Generic magnitude buckets (upper bounds; an implicit +inf bucket follows).
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)

#: Signed decade buckets for FM move gains (cut deltas; negative = better).
GAIN_BUCKETS = (
    -1000.0, -100.0, -10.0, -1.0, 0.0, 1.0, 10.0, 100.0, 1000.0
)

#: Request latency buckets, milliseconds (shared with the serve daemon).
LATENCY_BUCKETS_MS = (5.0, 25.0, 100.0, 500.0, 2500.0, 10000.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Thread-safe labeled metric store with snapshot/delta/merge."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # name -> {label_key: float}
        self._counters: dict[str, dict[tuple, float]] = {}
        self._gauges: dict[str, dict[tuple, float]] = {}
        # name -> (bucket bounds, {label_key: [counts, sum, count]})
        self._hists: dict[str, tuple[tuple, dict[tuple, list]]] = {}

    # ------------------------------------------------------------------ #
    # write paths
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(value)

    def gauge_set(self, name: str, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def gauge_add(self, name: str, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(value)

    def _hist_series(self, name: str, buckets, key: tuple) -> list:
        bounds, series = self._hists.setdefault(
            name, (tuple(buckets or DEFAULT_BUCKETS), {})
        )
        row = series.get(key)
        if row is None:
            row = series[key] = [[0] * (len(bounds) + 1), 0.0, 0]
        return [bounds, row]

    def observe(self, name: str, value: float, buckets=None, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            bounds, row = self._hist_series(name, buckets, key)
            row[0][bisect_left(bounds, float(value))] += 1
            row[1] += float(value)
            row[2] += 1

    def observe_bulk(self, name: str, values, buckets=None, **labels) -> None:
        """Observe a whole sequence in one lock acquisition.

        The bulk path is what keeps per-move histograms (FM gains) cheap
        enough to leave on in a serving process: the caller accumulates a
        plain list during the pass and flushes it once.
        """
        values = [float(v) for v in values]
        if not values:
            return
        key = _label_key(labels)
        with self._lock:
            bounds, row = self._hist_series(name, buckets, key)
            counts = row[0]
            for v in values:
                counts[bisect_left(bounds, v)] += 1
            row[1] += sum(values)
            row[2] += len(values)

    # ------------------------------------------------------------------ #
    # snapshot / delta / merge
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Deep plain-data copy of the whole registry (picklable)."""
        with self._lock:
            return {
                "counters": {
                    n: dict(s) for n, s in self._counters.items()
                },
                "gauges": {n: dict(s) for n, s in self._gauges.items()},
                "histograms": {
                    n: (
                        bounds,
                        {
                            k: [list(row[0]), row[1], row[2]]
                            for k, row in series.items()
                        },
                    )
                    for n, (bounds, series) in self._hists.items()
                },
            }

    def delta(self, before: dict) -> dict:
        """What changed since *before* (a :meth:`snapshot`).

        Counters and histograms subtract; gauges report their current
        value when it differs from (or is absent in) *before*.
        """
        after = self.snapshot()
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        b_counters = before.get("counters", {})
        for name, series in after["counters"].items():
            prev = b_counters.get(name, {})
            d = {
                k: v - prev.get(k, 0.0)
                for k, v in series.items()
                if v != prev.get(k, 0.0)
            }
            if d:
                out["counters"][name] = d
        b_gauges = before.get("gauges", {})
        for name, series in after["gauges"].items():
            prev = b_gauges.get(name, {})
            d = {k: v for k, v in series.items() if v != prev.get(k)}
            if d:
                out["gauges"][name] = d
        b_hists = before.get("histograms", {})
        for name, (bounds, series) in after["histograms"].items():
            prev_bounds, prev = b_hists.get(name, ((), {}))
            if prev and tuple(prev_bounds) != tuple(bounds):
                raise ValueError(
                    f"histogram {name!r}: bucket bounds changed between "
                    f"snapshots ({tuple(prev_bounds)} != {tuple(bounds)}); "
                    f"counts cannot be subtracted"
                )
            d = {}
            for k, (counts, total, count) in series.items():
                p = prev.get(k, [[0] * len(counts), 0.0, 0])
                if count != p[2]:
                    d[k] = [
                        [c - pc for c, pc in zip(counts, p[0])],
                        total - p[1],
                        count - p[2],
                    ]
            if d:
                out["histograms"][name] = (bounds, d)
        return out

    def merge(self, payload: dict) -> None:
        """Fold a delta/snapshot *payload* into this registry (additive)."""
        if not payload:
            return
        with self._lock:
            for name, series in payload.get("counters", {}).items():
                mine = self._counters.setdefault(name, {})
                for k, v in series.items():
                    mine[k] = mine.get(k, 0.0) + v
            for name, series in payload.get("gauges", {}).items():
                mine = self._gauges.setdefault(name, {})
                mine.update(series)
            for name, (bounds, series) in payload.get(
                "histograms", {}
            ).items():
                my_bounds, mine = self._hists.setdefault(
                    name, (tuple(bounds), {})
                )
                if mine and my_bounds != tuple(bounds):
                    raise ValueError(
                        f"histogram {name!r}: payload bucket bounds "
                        f"{tuple(bounds)} disagree with registry bounds "
                        f"{my_bounds}; refusing to misalign counts"
                    )
                for k, (counts, total, count) in series.items():
                    row = mine.get(k)
                    if row is None:
                        mine[k] = [list(counts), total, count]
                    else:
                        row[0] = [a + b for a, b in zip(row[0], counts)]
                        row[1] += total
                        row[2] += count

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()

    # ------------------------------------------------------------------ #
    def collect(self) -> dict:
        """JSON-able rendering of every series (the ``/metrics`` shape)."""
        return metrics_to_json(self.snapshot())


def metrics_to_json(snap: dict) -> dict:
    """Snapshot/delta → JSON-able ``{name: {type, series: [...]}}``."""
    out: dict = {}
    for name in sorted(snap.get("counters", {})):
        out[name] = {
            "type": "counter",
            "series": [
                {"labels": dict(k), "value": v}
                for k, v in sorted(snap["counters"][name].items())
            ],
        }
    for name in sorted(snap.get("gauges", {})):
        out[name] = {
            "type": "gauge",
            "series": [
                {"labels": dict(k), "value": v}
                for k, v in sorted(snap["gauges"][name].items())
            ],
        }
    for name in sorted(snap.get("histograms", {})):
        bounds, series = snap["histograms"][name]
        out[name] = {
            "type": "histogram",
            "bucket_upper": list(bounds) + ["inf"],
            "series": [
                {
                    "labels": dict(k),
                    "counts": list(row[0]),
                    "sum": row[1],
                    "count": row[2],
                }
                for k, row in sorted(series.items())
            ],
        }
    return out
