"""Hierarchical span tracer with a zero-overhead-when-disabled switch.

The library is instrumented with two primitives:

``trace_span(name, **attrs)``
    A context manager producing a timed :class:`Span` in a per-thread
    tree.  **When tracing is off this returns a shared no-op singleton**
    — the instrumented hot path pays one module-global branch and
    nothing else (no object, no clock read).  Real spans nest by the
    call structure: a span opened while another is open on the same
    thread becomes its child; a root span is handed to the active
    :func:`capture`.

``timed_span(name, **attrs)``
    Same, but it *always* measures wall-clock (``.elapsed``) even when
    tracing is off — the replacement for the old ad-hoc ``Stopwatch``
    sites whose results carry a ``runtime`` field regardless of
    observability.  Timing uses :class:`~repro.util.stopwatch.Stopwatch`
    (whose ``split()`` also timestamps :meth:`Span.event` marks).

Recording is controlled by two process-global switches (one branch each
at every instrumentation site):

* **metrics** — call sites write to :data:`REGISTRY` (the process-wide
  :class:`~repro.obs.registry.MetricsRegistry`); the serve daemon turns
  this on for its lifetime so ``/metrics`` reports library-level series.
* **tracing** — ``trace_span`` returns real spans.

:func:`capture` turns both on for a ``with`` block and yields a
:class:`Capture` collecting the root spans plus the registry delta —
the machinery behind ``partition_graph(..., profile=True)``.  Captures
are process-global (one at a time); worker processes run their own
(:func:`repro.util.parallel.parallel_map` ships each task's
:meth:`Capture.payload` back and :func:`absorb_payload` grafts it into
the parent's tree, rebased onto the submitting span's timeline).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

from repro.obs import memory as _memory
from repro.obs.registry import MetricsRegistry
from repro.util.stopwatch import Stopwatch

__all__ = [
    "REGISTRY",
    "Span",
    "Capture",
    "trace_span",
    "timed_span",
    "capture",
    "enable",
    "disable",
    "metrics_on",
    "tracing_on",
    "active",
    "absorb_payload",
    "add",
    "gauge_set",
    "gauge_add",
    "observe",
    "observe_bulk",
    "cache_event",
    "current_span",
]

#: The process-wide metrics registry every instrumented series lands in.
REGISTRY = MetricsRegistry()
# allocation gauges (obs.memory.note_bytes) land in the same registry;
# an attribute hand-off rather than an import keeps the modules acyclic
_memory._registry = REGISTRY

_METRICS_ON = False
_TRACING_ON = False
_CAPTURE: "Capture | None" = None
_capture_lock = threading.Lock()
_tls = threading.local()


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


# --------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------- #
class Span:
    """One timed node of the trace tree (a Chrome complete event)."""

    __slots__ = (
        "name", "attrs", "children", "events",
        "t0", "elapsed", "tid", "pid", "_sw", "_mem",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.events: list[tuple] = []  # (name, offset_s, attrs)
        self.t0 = 0.0
        self.elapsed = 0.0
        self.tid = threading.get_ident()
        self.pid = os.getpid()
        self._sw = Stopwatch()
        self._mem = None

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes (e.g. results known only at exit)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record an instant event at the current offset into this span."""
        self.events.append((name, self._sw.split(), dict(attrs) if attrs else {}))

    def __enter__(self) -> "Span":
        if _memory._MEMORY_ON:
            self._mem = _memory.frame_enter()
        self.t0 = time.perf_counter()
        self._sw.start()
        _stack().append(self)
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self._sw.stop()
        if self._mem is not None:
            measured = _memory.frame_exit(self._mem)
            self._mem = None
            if measured is not None:
                self.attrs["peak_bytes"] = measured[0]
                self.attrs["alloc_delta"] = measured[1]
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            cap = _CAPTURE
            if cap is not None:
                with _capture_lock:
                    cap.spans.append(self)
        # without a capture, a finished root span is simply discarded

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "t0": self.t0,
            "elapsed": self.elapsed,
            "tid": self.tid,
            "pid": self.pid,
            "events": [list(e) for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: dict, shift: float = 0.0) -> "Span":
        s = object.__new__(cls)
        s.name = d["name"]
        s.attrs = dict(d.get("attrs", {}))
        s.t0 = d["t0"] + shift
        s.elapsed = d["elapsed"]
        s.tid = d.get("tid", 0)
        s.pid = d.get("pid", 0)
        s.events = [tuple(e) for e in d.get("events", [])]
        s.children = [cls.from_dict(c, shift) for c in d.get("children", [])]
        s._sw = None
        s._mem = None
        return s


class _NullSpan:
    """Shared do-nothing span: the entire cost of disabled tracing."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _TimerSpan:
    """Records nothing, but still times — ``timed_span`` when disabled."""

    __slots__ = ("_sw", "elapsed")

    def __enter__(self) -> "_TimerSpan":
        self.elapsed = 0.0
        self._sw = Stopwatch().start()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self._sw.stop()

    def set(self, **attrs) -> "_TimerSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass


def trace_span(name: str, **attrs):
    """A recording span when tracing is on, else the no-op singleton."""
    if not _TRACING_ON:
        return _NULL_SPAN
    return Span(name, attrs)


def timed_span(name: str, **attrs):
    """A span that always exposes ``.elapsed`` (the Stopwatch successor)."""
    if _TRACING_ON:
        return Span(name, attrs)
    return _TimerSpan()


def current_span():
    """The innermost open span of this thread (``None`` outside any)."""
    stack = _stack()
    return stack[-1] if stack else None


# --------------------------------------------------------------------- #
# switches
# --------------------------------------------------------------------- #
def metrics_on() -> bool:
    return _METRICS_ON


def tracing_on() -> bool:
    return _TRACING_ON


def active() -> bool:
    return _METRICS_ON or _TRACING_ON


def enable(metrics: bool = True, tracing: bool = False) -> None:
    """Turn instrumentation on process-wide (the serve daemon's mode)."""
    global _METRICS_ON, _TRACING_ON
    _METRICS_ON = bool(metrics)
    _TRACING_ON = bool(tracing)


def disable() -> None:
    global _METRICS_ON, _TRACING_ON
    _METRICS_ON = False
    _TRACING_ON = False


# --------------------------------------------------------------------- #
# metric helpers — each is one switch branch when observability is off
# --------------------------------------------------------------------- #
def add(name: str, value: float = 1.0, **labels) -> None:
    if _METRICS_ON:
        REGISTRY.inc(name, value, **labels)


def gauge_set(name: str, value: float, **labels) -> None:
    if _METRICS_ON:
        REGISTRY.gauge_set(name, value, **labels)


def gauge_add(name: str, value: float, **labels) -> None:
    if _METRICS_ON:
        REGISTRY.gauge_add(name, value, **labels)


def observe(name: str, value: float, buckets=None, **labels) -> None:
    if _METRICS_ON:
        REGISTRY.observe(name, value, buckets=buckets, **labels)


def observe_bulk(name: str, values, buckets=None, **labels) -> None:
    if _METRICS_ON:
        REGISTRY.observe_bulk(name, values, buckets=buckets, **labels)


def cache_event(cache: str, outcome: str) -> None:
    """One ``cache.lookups`` count — the unified hit/miss/promotion series."""
    if _METRICS_ON:
        REGISTRY.inc("cache.lookups", 1.0, cache=cache, outcome=outcome)


# --------------------------------------------------------------------- #
# capture
# --------------------------------------------------------------------- #
class Capture:
    """Everything observed inside one :func:`capture` block."""

    __slots__ = ("spans", "metrics", "t0", "wall_s", "pid", "_before")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.metrics: dict = {}
        self.t0 = 0.0
        self.wall_s = 0.0
        self.pid = os.getpid()
        self._before: dict = {}

    def payload(self) -> dict:
        """Picklable form for shipping across processes (``parallel_map``)."""
        return {
            "pid": self.pid,
            "t0": self.t0,
            "spans": [s.to_dict() for s in self.spans],
            "metrics": self.metrics,
        }


@contextmanager
def capture(tracing: bool = True, metrics: bool = True,
            memory: bool | str = False):
    """Enable instrumentation for the block; yield the :class:`Capture`.

    Span roots and the registry delta are filled in when the block
    exits.  Previous switch states are restored (a serve daemon that
    enabled metrics process-wide keeps them on; memory instrumentation
    enabled beforehand via :func:`~repro.obs.memory.enable_memory`
    likewise stays on).  With *memory* true, per-span byte accounting
    is enabled for the block and ``mem.rss_peak_bytes`` is stamped on
    exit; ``memory="gauges"`` publishes the allocation/RSS gauges but
    skips tracemalloc entirely (no per-span bytes, no tracing
    overhead — the mode for minutes-long scale benchmarks).  One
    capture at a time per process: captures are global so that spans
    from *any* thread land in the trace.
    """
    global _CAPTURE, _METRICS_ON, _TRACING_ON
    if _CAPTURE is not None and _CAPTURE.pid != os.getpid():
        # a fork-started worker inherits the parent's capture (and its
        # switch state) in its memory image — stale here, discard it
        _CAPTURE = None
        _METRICS_ON = _TRACING_ON = False
        _stack().clear()
    if _CAPTURE is not None:
        raise RuntimeError("an observability capture is already active")
    cap = Capture()
    prev = (_METRICS_ON, _TRACING_ON)
    mem_was_on = _memory.memory_on()
    cap._before = REGISTRY.snapshot()
    cap.t0 = time.perf_counter()
    _CAPTURE = cap
    _METRICS_ON = _METRICS_ON or bool(metrics)
    _TRACING_ON = _TRACING_ON or bool(tracing)
    if memory and not mem_was_on:
        _memory.enable_memory(trace=memory != "gauges")
    try:
        yield cap
    finally:
        rss = None
        if _memory.memory_on():
            rss = float(_memory.rss_peak_bytes())
            REGISTRY.gauge_set("mem.rss_peak_bytes", rss)
        if memory and not mem_was_on:
            _memory.disable_memory()
        _METRICS_ON, _TRACING_ON = prev
        _CAPTURE = None
        cap.wall_s = time.perf_counter() - cap.t0
        cap.metrics = REGISTRY.delta(cap._before)
        if rss is not None:
            # ru_maxrss is monotonic process-wide: a re-stamp at the same
            # value would be dropped by the delta, but the stamp belongs
            # to this capture — every memory-enabled capture reports it
            cap.metrics.setdefault("gauges", {}).setdefault(
                "mem.rss_peak_bytes", {}
            )[()] = rss


def absorb_payload(payload: dict) -> None:
    """Graft a worker task's shipped :meth:`Capture.payload` locally.

    Metrics merge into :data:`REGISTRY` (in the caller's task order —
    deterministic at any ``n_jobs``); span trees are rebased so the
    child's capture start aligns with the innermost open span here (the
    ``parallel_map`` wave span) and attached as its children.
    """
    if not payload:
        return
    if _METRICS_ON and payload.get("metrics"):
        REGISTRY.merge(payload["metrics"])
    if _TRACING_ON and payload.get("spans"):
        parent = current_span()
        anchor = parent.t0 if parent is not None else (
            _CAPTURE.t0 if _CAPTURE is not None else 0.0
        )
        shift = anchor - payload.get("t0", 0.0)
        trees = [Span.from_dict(d, shift) for d in payload["spans"]]
        if parent is not None:
            parent.children.extend(trees)
        elif _CAPTURE is not None:
            with _capture_lock:
                _CAPTURE.spans.extend(trees)
