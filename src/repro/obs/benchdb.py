"""Structured benchmark telemetry: the BENCH JSON schema and the gate.

Every ``benchmarks/bench_*.py`` driver historically printed a one-off
text table — human-readable, machine-opaque, no trajectory.  This module
is the machine-readable half: a benchmark run is a :class:`BenchResult`
(suite name, git revision, schema version, seed) holding
:class:`BenchMetric` rows (name, value, unit, instance params), written
to ``benchmarks/artifacts/BENCH_<suite>.json`` and diffable across
revisions by :func:`compare_results` with per-unit tolerance bands —
the regression gate ``repro bench --compare`` and CI stage 10 run.

Schema (version 1)::

    {
      "schema_version": 1,
      "suite": "smoke",
      "git_rev": "<hex or 'unknown'>",
      "created_utc": "2026-01-01T00:00:00Z",
      "seed": 0,
      "metrics": [
        {"name": "gp.runtime", "value": 0.41, "unit": "s",
         "params": {"instance": "rand", "n": 60, "k": 3},
         "seed": 0, "better": "lower"},
        ...
      ]
    }

Metric identity for comparison is ``(name, params)`` — the same metric
measured on the same instance.  ``better`` declares the improvement
direction (``"lower"`` for runtimes/cuts/bytes — the default — or
``"higher"``); a change past the tolerance band in the *worse*
direction is a regression.  Default bands are per unit: timing units
are noisy (15%), byte counts allocator-dependent (25%), everything
else — cuts, connectivity, violation counts — exact.

The **suite registry** maps names to callables returning metric lists;
:mod:`repro.bench.suites` registers the ``smoke`` suite and the
X9/X11/X13/X14 study wrappers on import, and ``repro bench`` resolves
through :func:`run_suite`.
"""

from __future__ import annotations

import fnmatch
import json
import math
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchMetric",
    "BenchResult",
    "MetricDelta",
    "validate_bench_doc",
    "load_bench",
    "write_bench",
    "git_revision",
    "default_tolerance",
    "compare_results",
    "format_compare",
    "register_suite",
    "run_suite",
    "list_suites",
]

BENCH_SCHEMA_VERSION = 1

#: Default relative tolerance band per unit; anything unlisted is exact.
UNIT_TOLERANCES = {"s": 0.15, "ms": 0.15, "bytes": 0.25}

#: Slack for "exact" metrics — absorbs float formatting, nothing real.
EXACT_EPS = 1e-9


# --------------------------------------------------------------------- #
# model
# --------------------------------------------------------------------- #
@dataclass
class BenchMetric:
    """One measured value of one suite instance."""

    name: str
    value: float
    unit: str
    params: dict = field(default_factory=dict)
    seed: int = 0
    better: str = "lower"

    def key(self) -> tuple:
        """Comparison identity: same metric on the same instance."""
        return (self.name, tuple(sorted(self.params.items())))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "value": float(self.value),
            "unit": self.unit,
            "params": dict(self.params),
            "seed": int(self.seed),
            "better": self.better,
        }


@dataclass
class BenchResult:
    """One suite run: provenance header plus the metric rows."""

    suite: str
    metrics: list
    git_rev: str = "unknown"
    seed: int = 0
    created_utc: str = ""
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": int(self.schema_version),
            "suite": self.suite,
            "git_rev": self.git_rev,
            "created_utc": self.created_utc,
            "seed": int(self.seed),
            "metrics": [m.to_dict() for m in self.metrics],
        }


def git_revision(cwd=None) -> str:
    """The current ``git rev-parse HEAD`` (``"unknown"`` outside a repo)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


# --------------------------------------------------------------------- #
# schema validation / io
# --------------------------------------------------------------------- #
def validate_bench_doc(doc: dict) -> int:
    """Check *doc* against the BENCH schema; returns the metric count.

    Raises :class:`ValueError` naming the first violation — the gate CI
    stage 10 runs on every emitted artifact.
    """
    if not isinstance(doc, dict):
        raise ValueError("BENCH document must be a JSON object")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    for fld in ("suite", "git_rev", "created_utc"):
        if not isinstance(doc.get(fld), str) or not doc[fld]:
            raise ValueError(f"{fld!r} must be a non-empty string")
    if not isinstance(doc.get("seed"), int):
        raise ValueError("'seed' must be an integer")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        raise ValueError("'metrics' must be a non-empty list")
    seen = set()
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(m, dict):
            raise ValueError(f"{where}: must be an object")
        if not isinstance(m.get("name"), str) or not m["name"]:
            raise ValueError(f"{where}: missing metric name")
        v = m.get("value")
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v):
            raise ValueError(
                f"{where} ({m['name']}): value must be a finite number, "
                f"got {v!r}"
            )
        if not isinstance(m.get("unit"), str):
            raise ValueError(f"{where} ({m['name']}): missing unit")
        params = m.get("params")
        if not isinstance(params, dict):
            raise ValueError(f"{where} ({m['name']}): params must be an object")
        for pk, pv in params.items():
            if not isinstance(pk, str) or not isinstance(
                pv, (str, int, float, bool)
            ):
                raise ValueError(
                    f"{where} ({m['name']}): param {pk!r} must map a string "
                    f"to a scalar, got {pv!r}"
                )
        if not isinstance(m.get("seed"), int):
            raise ValueError(f"{where} ({m['name']}): seed must be an integer")
        if m.get("better", "lower") not in ("lower", "higher"):
            raise ValueError(
                f"{where} ({m['name']}): better must be 'lower' or 'higher'"
            )
        key = (m["name"], tuple(sorted(params.items())))
        if key in seen:
            raise ValueError(
                f"{where}: duplicate metric {m['name']!r} with params {params}"
            )
        seen.add(key)
    return len(metrics)


def load_bench(path) -> dict:
    """Read and validate a BENCH JSON file; returns the document."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read BENCH file {path}: {exc}") from exc
    validate_bench_doc(doc)
    return doc


def write_bench(path, result: BenchResult) -> dict:
    """Serialize *result* to *path* (validated first); returns the doc."""
    doc = result.to_dict()
    if not doc.get("created_utc"):
        doc["created_utc"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
    if doc.get("git_rev") in ("", "unknown"):
        doc["git_rev"] = git_revision()
    validate_bench_doc(doc)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc, indent=1, sort_keys=True))
    return doc


# --------------------------------------------------------------------- #
# comparison — the regression gate
# --------------------------------------------------------------------- #
@dataclass
class MetricDelta:
    """One baseline-vs-current metric pair, judged."""

    name: str
    params: dict
    unit: str
    baseline: float
    current: float
    rel_delta: float  # signed, relative to the baseline magnitude
    tolerance: float
    regressed: bool
    improved: bool


def default_tolerance(unit: str) -> float:
    return UNIT_TOLERANCES.get(unit, 0.0)


def _tolerance_for(metric: dict, overrides: dict) -> float:
    for pattern, tol in overrides.items():
        if fnmatch.fnmatchcase(metric["name"], pattern):
            return tol
    return default_tolerance(metric.get("unit", ""))


def compare_results(
    baseline: dict, current: dict, tolerances: dict | None = None
) -> tuple[list[MetricDelta], list[str], list[str]]:
    """Judge *current* against *baseline* metric by metric.

    *tolerances* maps ``fnmatch`` patterns on metric names to relative
    tolerance fractions, overriding the per-unit defaults.  Returns
    ``(deltas, only_in_baseline, only_in_current)`` — the unmatched
    name lists are informational, not regressions (suites grow).
    """
    tolerances = dict(tolerances or {})
    b_by_key = {
        (m["name"], tuple(sorted(m["params"].items()))): m
        for m in baseline["metrics"]
    }
    c_by_key = {
        (m["name"], tuple(sorted(m["params"].items()))): m
        for m in current["metrics"]
    }
    deltas: list[MetricDelta] = []
    for key in sorted(b_by_key.keys() & c_by_key.keys()):
        b, c = b_by_key[key], c_by_key[key]
        bv, cv = float(b["value"]), float(c["value"])
        denom = max(abs(bv), EXACT_EPS)
        rel = (cv - bv) / denom
        tol = _tolerance_for(b, tolerances)
        worse = rel if b.get("better", "lower") == "lower" else -rel
        deltas.append(
            MetricDelta(
                name=b["name"],
                params=dict(b["params"]),
                unit=b.get("unit", ""),
                baseline=bv,
                current=cv,
                rel_delta=rel,
                tolerance=tol,
                regressed=worse > tol + EXACT_EPS,
                improved=worse < -(tol + EXACT_EPS),
            )
        )
    only_b = sorted(
        f"{k[0]}{dict(k[1])}" for k in b_by_key.keys() - c_by_key.keys()
    )
    only_c = sorted(
        f"{k[0]}{dict(k[1])}" for k in c_by_key.keys() - b_by_key.keys()
    )
    return deltas, only_b, only_c


def format_compare(
    deltas: list, only_baseline: list, only_current: list
) -> str:
    """Human-readable comparison table; regressions flagged per row."""
    lines = [
        f"  {'metric':<34} {'params':<28} {'baseline':>12} "
        f"{'current':>12} {'delta':>8}  verdict"
    ]
    for d in deltas:
        verdict = (
            "REGRESSED" if d.regressed
            else "improved" if d.improved else "ok"
        )
        params = ",".join(f"{k}={v}" for k, v in sorted(d.params.items()))
        lines.append(
            f"  {d.name:<34} {params:<28} {d.baseline:>12.6g} "
            f"{d.current:>12.6g} {d.rel_delta:>+7.1%}  {verdict} "
            f"(tol {d.tolerance:.0%})"
        )
    for name in only_baseline:
        lines.append(f"  {name}: only in baseline (dropped?)")
    for name in only_current:
        lines.append(f"  {name}: only in current (new)")
    n_reg = sum(d.regressed for d in deltas)
    lines.append(
        f"  {len(deltas)} compared, {n_reg} regressed, "
        f"{sum(d.improved for d in deltas)} improved"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# suite registry
# --------------------------------------------------------------------- #
_SUITES: dict[str, dict] = {}


def register_suite(name: str, fn=None, description: str = ""):
    """Register *fn* as suite *name* (usable as a decorator).

    A suite is ``fn(seed=0) -> list[BenchMetric]``; :func:`run_suite`
    wraps the list into a provenance-stamped :class:`BenchResult`.
    """

    def _register(fn):
        _SUITES[name] = {
            "fn": fn,
            "description": description or (fn.__doc__ or "").strip()
            .splitlines()[0] if (description or fn.__doc__) else "",
        }
        return fn

    return _register(fn) if fn is not None else _register


def list_suites() -> dict[str, str]:
    """``{name: one-line description}`` of every registered suite."""
    return {n: s["description"] for n, s in sorted(_SUITES.items())}


def run_suite(name: str, seed: int = 0) -> BenchResult:
    """Run registered suite *name*; returns the stamped result."""
    if name not in _SUITES:
        raise ValueError(
            f"unknown bench suite {name!r}; registered: "
            f"{sorted(_SUITES) or '(none)'}"
        )
    metrics = _SUITES[name]["fn"](seed=seed)
    if not metrics:
        raise ValueError(f"suite {name!r} produced no metrics")
    return BenchResult(
        suite=name,
        metrics=list(metrics),
        git_rev=git_revision(),
        seed=int(seed),
        created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
